#include "trace/ingest.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace copra::trace {

namespace {

/** Grammar version of the copra branch-trace text/CSV format this
 * reader understands (docs/TRACES.md). */
constexpr unsigned kIngestGrammarVersion = 1;

/** CBP-style binary header: magic, u32 version, u32 flags, u64 count. */
constexpr char kCbpMagic[8] = {'C', 'B', 'P', 'T', 'R', 'A', 'C', 'E'};
constexpr size_t kCbpHeaderBytes = 24;
constexpr size_t kCbpRecordBytes = 18;
constexpr uint32_t kCbpVersion = 1;

[[noreturn]] void
fail(const std::string &what)
{
    throw std::runtime_error("copra ingest: " + what);
}

uint64_t
readLe64(const unsigned char *p)
{
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

uint32_t
readLe32(const unsigned char *p)
{
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

/** Parse a pc/target field: 0x-prefixed hex or plain decimal. */
uint64_t
parseAddress(const std::string &field, size_t line_no)
{
    size_t consumed = 0;
    uint64_t value = 0;
    try {
        value = std::stoull(field, &consumed, 0);
    } catch (const std::exception &) {
        fail("bad address '" + field + "' on line " +
             std::to_string(line_no));
    }
    if (consumed != field.size())
        fail("bad address '" + field + "' on line " +
             std::to_string(line_no));
    return value;
}

bool
parseKind(const std::string &field, BranchKind &kind)
{
    if (field == "cond")
        kind = BranchKind::Conditional;
    else if (field == "jump")
        kind = BranchKind::Jump;
    else if (field == "call")
        kind = BranchKind::Call;
    else if (field == "ret")
        kind = BranchKind::Return;
    else
        return false;
    return true;
}

bool
parseTaken(const std::string &field, bool &taken)
{
    if (field == "T" || field == "1" || field == "true")
        taken = true;
    else if (field == "N" || field == "0" || field == "false")
        taken = false;
    else
        return false;
    return true;
}

/** Coerce a parsed record into the native convention, counting what
 * changed: executed non-conditional transfers are always taken. */
void
normalizeRecord(BranchRecord &rec, IngestReport &report)
{
    if (rec.kind != BranchKind::Conditional && !rec.taken) {
        rec.taken = true;
        ++report.normalizedTaken;
    }
}

Trace
ingestText(std::istream &is, IngestReport &report)
{
    Trace trace;
    std::string line;
    size_t line_no = 0;
    bool versioned = false;
    while (std::getline(is, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty()) {
            ++report.commentLines;
            continue;
        }
        if (line[0] == '#') {
            std::istringstream hdr(line.substr(1));
            std::string key;
            hdr >> key;
            if (key == "copra-branch-trace") {
                std::string ver;
                hdr >> ver;
                if (ver.size() < 2 || ver[0] != 'v')
                    fail("bad version directive on line " +
                         std::to_string(line_no));
                unsigned v = 0;
                try {
                    v = static_cast<unsigned>(
                        std::stoul(ver.substr(1)));
                } catch (const std::exception &) {
                    fail("bad version directive on line " +
                         std::to_string(line_no));
                }
                if (v > kIngestGrammarVersion)
                    fail("unsupported grammar version v" +
                         std::to_string(v));
                versioned = true;
            } else if (key == "name") {
                std::string name;
                hdr >> name;
                trace.setName(name);
            } else if (key == "seed") {
                uint64_t seed = 0;
                if (!(hdr >> seed))
                    fail("bad seed directive on line " +
                         std::to_string(line_no));
                trace.setSeed(seed);
            } else {
                ++report.commentLines;
            }
            continue;
        }
        std::istringstream ls(line);
        std::string kind_str, pc_str, target_str, taken_str, extra;
        if (!(ls >> kind_str >> pc_str >> target_str >> taken_str))
            fail("malformed record on line " + std::to_string(line_no));
        if (ls >> extra)
            fail("trailing field '" + extra + "' on line " +
                 std::to_string(line_no));
        BranchRecord rec;
        if (!parseKind(kind_str, rec.kind))
            fail("unknown kind '" + kind_str + "' on line " +
                 std::to_string(line_no));
        rec.pc = parseAddress(pc_str, line_no);
        rec.target = parseAddress(target_str, line_no);
        if (!parseTaken(taken_str, rec.taken))
            fail("bad outcome '" + taken_str + "' on line " +
                 std::to_string(line_no));
        normalizeRecord(rec, report);
        trace.append(rec);
    }
    if (!versioned)
        report.warnings.push_back(
            "no '# copra-branch-trace v1' directive; assumed v1");
    return trace;
}

/** Split one CSV line on commas, trimming surrounding spaces. */
std::vector<std::string>
splitCsv(const std::string &line)
{
    std::vector<std::string> fields;
    size_t start = 0;
    while (true) {
        size_t comma = line.find(',', start);
        std::string field = comma == std::string::npos
            ? line.substr(start)
            : line.substr(start, comma - start);
        size_t b = field.find_first_not_of(" \t");
        size_t e = field.find_last_not_of(" \t");
        fields.push_back(b == std::string::npos
                             ? std::string()
                             : field.substr(b, e - b + 1));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return fields;
}

Trace
ingestCsv(std::istream &is, IngestReport &report)
{
    struct IndexedRecord
    {
        uint64_t index;
        uint64_t arrival;
        BranchRecord rec;
    };
    std::vector<IndexedRecord> rows;
    std::string line;
    size_t line_no = 0;
    bool saw_header = false;
    bool has_index = false;
    bool shape_known = false;
    while (std::getline(is, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#') {
            ++report.commentLines;
            continue;
        }
        std::vector<std::string> fields = splitCsv(line);
        if (!shape_known) {
            // First record-bearing line decides the row shape: an
            // optional header row, then 4 fields (kind,pc,target,taken)
            // or 5 (index,kind,pc,target,taken).
            if (!fields.empty() &&
                (fields[0] == "kind" || fields[0] == "index")) {
                saw_header = true;
                has_index = fields[0] == "index";
                shape_known = true;
                size_t expect = has_index ? 5 : 4;
                if (fields.size() != expect)
                    fail("bad CSV header on line " +
                         std::to_string(line_no));
                continue;
            }
            if (fields.size() == 5)
                has_index = true;
            else if (fields.size() != 4)
                fail("CSV row needs 4 or 5 fields on line " +
                     std::to_string(line_no));
            shape_known = true;
        }
        size_t expect = has_index ? 5 : 4;
        if (fields.size() != expect)
            fail("CSV row has " + std::to_string(fields.size()) +
                 " fields, expected " + std::to_string(expect) +
                 " on line " + std::to_string(line_no));
        IndexedRecord row;
        row.arrival = rows.size();
        size_t f = 0;
        if (has_index)
            row.index = parseAddress(fields[f++], line_no);
        else
            row.index = rows.size();
        if (!parseKind(fields[f], row.rec.kind))
            fail("unknown kind '" + fields[f] + "' on line " +
                 std::to_string(line_no));
        ++f;
        row.rec.pc = parseAddress(fields[f++], line_no);
        row.rec.target = parseAddress(fields[f++], line_no);
        if (!parseTaken(fields[f], row.rec.taken))
            fail("bad outcome '" + fields[f] + "' on line " +
                 std::to_string(line_no));
        normalizeRecord(row.rec, report);
        rows.push_back(row);
    }
    (void)saw_header;

    // Normalization: restore program order by index. Equal indices are
    // ambiguous (two records claim the same position) — hard error.
    bool sorted = std::is_sorted(rows.begin(), rows.end(),
                                 [](const IndexedRecord &a,
                                    const IndexedRecord &b) {
                                     return a.index < b.index;
                                 });
    if (!sorted) {
        std::stable_sort(rows.begin(), rows.end(),
                         [](const IndexedRecord &a, const IndexedRecord &b) {
                             return a.index < b.index;
                         });
        for (size_t i = 0; i < rows.size(); ++i)
            if (rows[i].arrival != i)
                ++report.reordered;
        report.warnings.push_back(
            "out-of-order rows sorted back into index order");
    }
    for (size_t i = 1; i < rows.size(); ++i)
        if (rows[i].index == rows[i - 1].index)
            fail("duplicate index " + std::to_string(rows[i].index));

    Trace trace;
    trace.reserve(rows.size());
    for (const IndexedRecord &row : rows)
        trace.append(row.rec);
    return trace;
}

Trace
ingestCbp(std::istream &is, IngestReport &report)
{
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    if (bytes.size() < kCbpHeaderBytes)
        fail("truncated CBP header (" + std::to_string(bytes.size()) +
             " bytes)");
    const auto *p = reinterpret_cast<const unsigned char *>(bytes.data());
    if (std::memcmp(p, kCbpMagic, sizeof(kCbpMagic)) != 0)
        fail("bad CBP magic");
    uint32_t version = readLe32(p + 8);
    if (version != kCbpVersion)
        fail("unsupported CBP version " + std::to_string(version));
    uint32_t flags = readLe32(p + 12);
    if (flags != 0)
        fail("unsupported CBP flags " + std::to_string(flags));
    uint64_t count = readLe64(p + 16);
    uint64_t payload = bytes.size() - kCbpHeaderBytes;
    // The count cross-check is also the endianness tripwire: a
    // byte-swapped (big-endian) count of any plausible trace claims
    // more records than the file could hold.
    if (count * kCbpRecordBytes != payload)
        fail("record count " + std::to_string(count) + " needs " +
             std::to_string(count * kCbpRecordBytes) +
             " payload bytes, file has " + std::to_string(payload) +
             " (truncated, or a byte-swapped/corrupt header)");

    Trace trace;
    trace.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        const unsigned char *r =
            p + kCbpHeaderBytes + i * kCbpRecordBytes;
        BranchRecord rec;
        rec.pc = readLe64(r);
        rec.target = readLe64(r + 8);
        uint8_t type = r[16];
        switch (type) {
          case 0: rec.kind = BranchKind::Conditional; break;
          case 1: rec.kind = BranchKind::Jump; break;
          case 2: rec.kind = BranchKind::Jump; break; // indirect jump
          case 3: rec.kind = BranchKind::Call; break;
          case 4: rec.kind = BranchKind::Call; break; // indirect call
          case 5: rec.kind = BranchKind::Return; break;
          default:
            fail("unknown CBP branch type " + std::to_string(type) +
                 " in record " + std::to_string(i));
        }
        if (r[17] > 1)
            fail("bad taken byte in record " + std::to_string(i));
        rec.taken = r[17] != 0;
        normalizeRecord(rec, report);
        trace.append(rec);
    }
    return trace;
}

/** Decide the format from content: CBP magic, else CSV when the first
 * non-comment line has a comma, else text. */
IngestFormat
sniffFormat(std::istream &is)
{
    char head[8] = {};
    is.read(head, sizeof(head));
    size_t got = static_cast<size_t>(is.gcount());
    is.clear();
    is.seekg(0);
    if (got == sizeof(head) &&
        std::memcmp(head, kCbpMagic, sizeof(kCbpMagic)) == 0)
        return IngestFormat::Cbp;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        is.clear();
        is.seekg(0);
        return line.find(',') != std::string::npos ? IngestFormat::Csv
                                                   : IngestFormat::Text;
    }
    is.clear();
    is.seekg(0);
    return IngestFormat::Text;
}

} // namespace

IngestFormat
parseIngestFormat(const std::string &name)
{
    if (name == "auto")
        return IngestFormat::Auto;
    if (name == "text")
        return IngestFormat::Text;
    if (name == "csv")
        return IngestFormat::Csv;
    if (name == "cbp")
        return IngestFormat::Cbp;
    fail("unknown format '" + name + "' (auto/text/csv/cbp)");
}

const char *
ingestFormatName(IngestFormat format)
{
    switch (format) {
      case IngestFormat::Auto: return "auto";
      case IngestFormat::Text: return "text";
      case IngestFormat::Csv:  return "csv";
      case IngestFormat::Cbp:  return "cbp";
    }
    return "unknown";
}

Trace
ingestStream(std::istream &is, const IngestOptions &options,
             IngestReport &report)
{
    report = IngestReport{};
    IngestFormat format = options.format == IngestFormat::Auto
        ? sniffFormat(is)
        : options.format;
    report.format = format;
    Trace trace;
    switch (format) {
      case IngestFormat::Text:
        trace = ingestText(is, report);
        break;
      case IngestFormat::Csv:
        trace = ingestCsv(is, report);
        break;
      case IngestFormat::Cbp:
        trace = ingestCbp(is, report);
        break;
      case IngestFormat::Auto:
        fail("format sniffing failed"); // unreachable
    }
    if (!options.name.empty())
        trace.setName(options.name);
    if (options.hasSeed)
        trace.setSeed(options.seed);
    report.records = trace.size();
    report.conditionals = trace.conditionalCount();
    if (report.conditionals == 0)
        report.warnings.push_back(
            "trace has no conditional branches; predictors have "
            "nothing to predict");
    return trace;
}

Trace
ingestFile(const std::string &path, const IngestOptions &options,
           IngestReport &report)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fail("cannot open '" + path + "'");
    Trace trace = ingestStream(in, options, report);
    if (trace.name().empty()) {
        // Neither the source's `# name` directive nor a caller override
        // named the trace: fall back to the filename stem.
        size_t slash = path.find_last_of('/');
        std::string stem =
            slash == std::string::npos ? path : path.substr(slash + 1);
        size_t dot = stem.find_last_of('.');
        if (dot != std::string::npos && dot > 0)
            stem = stem.substr(0, dot);
        trace.setName(stem);
    }
    return trace;
}

} // namespace copra::trace
