#include "trace/trace_stats.hpp"

#include <algorithm>

namespace copra::trace {

TraceStats::TraceStats(const Trace &trace)
{
    perBranch_.reserve(1024);
    for (const auto &rec : trace.records()) {
        if (!rec.isConditional())
            continue;
        auto &entry = perBranch_[rec.pc];
        entry.pc = rec.pc;
        ++entry.execs;
        if (rec.taken)
            ++entry.taken;
        ++dynamic_;
        if (rec.taken)
            ++taken_;
    }
}

StaticBranchStats
TraceStats::branch(uint64_t pc) const
{
    auto it = perBranch_.find(pc);
    if (it == perBranch_.end())
        return StaticBranchStats{pc, 0, 0};
    return it->second;
}

double
TraceStats::dynamicFractionWithBiasAbove(double threshold) const
{
    if (dynamic_ == 0)
        return 0.0;
    uint64_t covered = 0;
    // copra-lint: allow(unordered-iter) -- commutative integer aggregation; result is order-independent
    for (const auto &[pc, stats] : perBranch_)
        if (stats.bias() > threshold)
            covered += stats.execs;
    return static_cast<double>(covered) / static_cast<double>(dynamic_);
}

uint64_t
TraceStats::idealStaticCorrect() const
{
    uint64_t correct = 0;
    // copra-lint: allow(unordered-iter) -- commutative integer aggregation; result is order-independent
    for (const auto &[pc, stats] : perBranch_)
        correct += stats.idealStaticCorrect();
    return correct;
}

std::vector<StaticBranchStats>
TraceStats::hottest(size_t n) const
{
    std::vector<StaticBranchStats> all;
    all.reserve(perBranch_.size());
    // copra-lint: allow(unordered-iter) -- collected then sorted with a deterministic tie-break
    for (const auto &[pc, stats] : perBranch_)
        all.push_back(stats);
    std::sort(all.begin(), all.end(),
              [](const StaticBranchStats &a, const StaticBranchStats &b) {
                  if (a.execs != b.execs)
                      return a.execs > b.execs;
                  return a.pc < b.pc;
              });
    if (all.size() > n)
        all.resize(n);
    return all;
}

} // namespace copra::trace
