/**
 * @file
 * On-disk trace cache: memoizes generated benchmark traces so repeated
 * bench/experiment runs skip workload regeneration entirely.
 *
 * Entries are keyed by (benchmark, branches, seed, binary-format
 * version); the key is encoded in the file name, so bumping
 * kTraceFormatVersion invalidates every existing entry without any
 * bookkeeping (old files are simply never looked up). Hits are served
 * by memory-mapping the column-major v2 format (loadBinaryMapped): a
 * header check plus bulk column adoption, no per-record decode. A
 * stale or renamed file the mapped loader rejects falls back to the
 * stream decoder (which still reads v1); corrupt or unreadable
 * entries are treated as misses and removed.
 *
 * The cache directory defaults to ".copra-cache/" and is overridable
 * with the COPRA_CACHE_DIR environment variable. Stores are atomic
 * (temp file + rename), so concurrent writers of the same key — e.g.
 * parallel bench tasks — can never expose a half-written trace.
 *
 * Concurrency contract (DESIGN.md §10): a TraceCache is immutable
 * after construction (dir_ is set once), so any number of pool workers
 * may call load/store/loadOrGenerate on the same instance
 * concurrently; cross-thread coordination happens entirely through
 * the filesystem's atomic rename. The process-wide enable flag and
 * the temp-file uniquifier are lock-free atomics — the only mutable
 * globals here, both sanctioned and annotated in trace_cache.cc.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "trace/trace.hpp"

namespace copra::trace {

/** Identity of one cached trace. */
struct TraceCacheKey
{
    std::string benchmark;  //!< workload name
    uint64_t branches = 0;  //!< dynamic conditional branches requested
    uint64_t seed = 0;      //!< execution seed as requested (0 = canonical)

    /** Entry file name, e.g. "gcc-b2000000-s0-v1.trc". */
    std::string fileName() const;
};

/** An on-disk store of generated traces under one directory. */
class TraceCache
{
  public:
    /**
     * @param dir Cache directory; "" resolves to $COPRA_CACHE_DIR,
     *            falling back to ".copra-cache".
     */
    explicit TraceCache(std::string dir = "");

    const std::string &dir() const { return dir_; }

    /** Absolute-or-relative path of the entry for @p key. */
    std::string pathFor(const TraceCacheKey &key) const;

    /**
     * Load the entry for @p key. Returns nullopt on a miss, and on a
     * corrupt / truncated / wrong-version / mislabeled entry (the bad
     * file is deleted so the next store can replace it).
     */
    std::optional<Trace> load(const TraceCacheKey &key) const;

    /**
     * Write @p trace as the entry for @p key (atomically).
     *
     * @return false when the entry could not be written (e.g. the cache
     *         directory is not creatable); the cache degrades to a
     *         no-op rather than failing the run.
     */
    bool store(const TraceCacheKey &key, const Trace &trace) const;

    /**
     * Load on a hit; otherwise run @p generate, store the result, and
     * return it.
     */
    Trace loadOrGenerate(const TraceCacheKey &key,
                         const std::function<Trace()> &generate) const;

  private:
    std::string dir_;
};

/**
 * Whether makeExperimentTrace-style helpers consult the global cache.
 * Off by default (unit tests and library users get pure generation);
 * the bench harnesses switch it on unless --no-trace-cache is given.
 */
bool traceCacheEnabled();

/** Toggle the global trace cache (see traceCacheEnabled). */
void setTraceCacheEnabled(bool enabled);

/** The process-wide cache instance (directory resolved on first use). */
const TraceCache &globalTraceCache();

} // namespace copra::trace

