#include "trace/trace_io.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "trace/trace_soa.hpp"

namespace copra::trace {

namespace {

constexpr char kMagic[8] = {'C', 'O', 'P', 'R', 'A', 'T', 'R', 'C'};
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersion = kTraceFormatVersion;

void
putU32(std::ostream &os, uint32_t v)
{
    std::array<char, 4> buf;
    for (int i = 0; i < 4; ++i)
        buf[static_cast<size_t>(i)] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(buf.data(), buf.size());
}

void
putU64(std::ostream &os, uint64_t v)
{
    std::array<char, 8> buf;
    for (int i = 0; i < 8; ++i)
        buf[static_cast<size_t>(i)] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(buf.data(), buf.size());
}

uint32_t
getU32(std::istream &is)
{
    std::array<unsigned char, 4> buf;
    is.read(reinterpret_cast<char *>(buf.data()), buf.size());
    if (!is)
        throw std::runtime_error("copra trace: truncated input (u32)");
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | buf[static_cast<size_t>(i)];
    return v;
}

uint64_t
getU64(std::istream &is)
{
    std::array<unsigned char, 8> buf;
    is.read(reinterpret_cast<char *>(buf.data()), buf.size());
    if (!is)
        throw std::runtime_error("copra trace: truncated input (u64)");
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | buf[static_cast<size_t>(i)];
    return v;
}

/** Little-endian u64 load; compiles to one mov on LE hosts. */
uint64_t
loadLe64(const unsigned char *p)
{
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[static_cast<size_t>(i)];
    return v;
}

size_t
paddedNameLen(size_t name_len)
{
    return (name_len + 7) & ~size_t(7);
}

/** v2 header: everything before the name bytes (incl. checksum). */
constexpr size_t kV2HeaderBytes = 8 + 4 + 4 + 8 + 8 + 8 + 8;

/**
 * FNV-1a folded over 8-byte LE words (byte-wise tail). The column
 * layout has no per-record structure to validate — a flipped pc byte
 * decodes silently — so v2 carries an explicit payload checksum;
 * corruption detection, not adversarial tamper-proofing.
 */
uint64_t
checksumPayload(const unsigned char *p, size_t n)
{
    uint64_t h = 1469598103934665603ull;
    size_t words = n / 8;
    for (size_t i = 0; i < words; ++i) {
        h ^= loadLe64(p + i * 8);
        h *= 1099511628211ull;
    }
    for (size_t i = words * 8; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

size_t
v2PayloadBytes(uint64_t count)
{
    return static_cast<size_t>(count) * (8 + 8 + 1 + 1);
}

/**
 * Decode the v2 column payload (laid out pc, target, kind, taken) into
 * a SoABlocks. @p payload must hold v2PayloadBytes(count) bytes.
 */
SoABlocks
decodeColumns(const unsigned char *payload, uint64_t count,
              uint64_t claimed_conditionals)
{
    size_t n = static_cast<size_t>(count);
    std::vector<uint64_t> pc(n);
    std::vector<uint64_t> target(n);
    std::vector<uint8_t> kind(n);
    std::vector<uint8_t> taken(n);
    const unsigned char *p = payload;
    for (size_t i = 0; i < n; ++i, p += 8)
        pc[i] = loadLe64(p);
    for (size_t i = 0; i < n; ++i, p += 8)
        target[i] = loadLe64(p);
    for (size_t i = 0; i < n; ++i)
        kind[i] = p[i];
    p += n;
    for (size_t i = 0; i < n; ++i)
        taken[i] = p[i] ? 1 : 0;
    for (size_t i = 0; i < n; ++i)
        if (kind[i] > static_cast<uint8_t>(BranchKind::Return))
            throw std::runtime_error("copra trace: invalid branch kind");
    SoABlocks blocks(std::move(pc), std::move(target), std::move(kind),
                     std::move(taken));
    if (blocks.conditionalCount() != claimed_conditionals)
        throw std::runtime_error(
            "copra trace: conditional count mismatch (header says " +
            std::to_string(claimed_conditionals) + ", columns hold " +
            std::to_string(blocks.conditionalCount()) + ")");
    return blocks;
}

Trace
readBinaryV1(std::istream &is)
{
    uint64_t seed = getU64(is);
    uint32_t name_len = getU32(is);
    // A malformed header must not drive allocations: cap the name at a
    // size no legitimate writer produces before trusting the field.
    if (name_len > (1u << 16))
        throw std::runtime_error("copra trace: implausible name length " +
                                 std::to_string(name_len));
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    if (!is)
        throw std::runtime_error("copra trace: truncated name");
    uint64_t count = getU64(is);

    Trace trace(name, seed);
    // An inflated count is detected by the truncated-record throw below;
    // only pre-reserve what the field claims up to a sane bound so a
    // corrupt header cannot force a huge up-front allocation.
    trace.reserve(static_cast<size_t>(std::min<uint64_t>(count, 1u << 20)));
    for (uint64_t i = 0; i < count; ++i) {
        BranchRecord rec;
        rec.pc = getU64(is);
        rec.target = getU64(is);
        char tail[2];
        is.read(tail, 2);
        if (!is)
            throw std::runtime_error("copra trace: truncated record");
        auto kind = static_cast<uint8_t>(tail[0]);
        if (kind > static_cast<uint8_t>(BranchKind::Return))
            throw std::runtime_error("copra trace: invalid branch kind");
        rec.kind = static_cast<BranchKind>(kind);
        rec.taken = tail[1] != 0;
        trace.append(rec);
    }
    return trace;
}

Trace
readBinaryV2(std::istream &is)
{
    uint32_t name_len = getU32(is);
    if (name_len > (1u << 16))
        throw std::runtime_error("copra trace: implausible name length " +
                                 std::to_string(name_len));
    uint64_t seed = getU64(is);
    uint64_t count = getU64(is);
    uint64_t conditionals = getU64(is);
    uint64_t checksum = getU64(is);

    size_t padded = paddedNameLen(name_len);
    std::string name_buf(padded, '\0');
    is.read(name_buf.data(), static_cast<std::streamsize>(padded));
    if (!is)
        throw std::runtime_error("copra trace: truncated name");
    std::string name = name_buf.substr(0, name_len);

    // Validate the claimed record count against the actual stream size
    // before allocating column storage for it.
    std::istream::pos_type here = is.tellg();
    is.seekg(0, std::ios::end);
    std::istream::pos_type end = is.tellg();
    is.seekg(here);
    if (here == std::istream::pos_type(-1) ||
        end == std::istream::pos_type(-1) ||
        static_cast<uint64_t>(end - here) != v2PayloadBytes(count))
        throw std::runtime_error("copra trace: truncated columns");

    std::vector<unsigned char> payload(v2PayloadBytes(count));
    if (!payload.empty()) {
        is.read(reinterpret_cast<char *>(payload.data()),
                static_cast<std::streamsize>(payload.size()));
        if (!is)
            throw std::runtime_error("copra trace: truncated columns");
    }
    if (checksumPayload(payload.data(), payload.size()) != checksum)
        throw std::runtime_error("copra trace: payload checksum mismatch");
    return Trace::fromSoa(std::move(name), seed,
                          decodeColumns(payload.data(), count,
                                        conditionals));
}

} // namespace

void
writeBinary(const Trace &trace, std::ostream &os)
{
    // Stage the whole column payload first: the header carries its
    // checksum, so the bytes must exist before the header is written.
    std::span<const BranchRecord> records = trace.records();
    size_t n = records.size();
    std::vector<unsigned char> payload(v2PayloadBytes(n));
    unsigned char *p = payload.data();
    auto putColumn = [&](auto field) {
        for (size_t i = 0; i < n; ++i, p += 8) {
            uint64_t v = field(records[i]);
            for (int b = 0; b < 8; ++b)
                p[static_cast<size_t>(b)] =
                    static_cast<unsigned char>((v >> (8 * b)) & 0xff);
        }
    };
    putColumn([](const BranchRecord &r) { return r.pc; });
    putColumn([](const BranchRecord &r) { return r.target; });
    for (size_t i = 0; i < n; ++i)
        *p++ = static_cast<unsigned char>(records[i].kind);
    for (size_t i = 0; i < n; ++i)
        *p++ = records[i].taken ? 1 : 0;

    os.write(kMagic, sizeof(kMagic));
    putU32(os, kVersion);
    putU32(os, static_cast<uint32_t>(trace.name().size()));
    putU64(os, trace.seed());
    putU64(os, trace.size());
    putU64(os, trace.conditionalCount());
    putU64(os, checksumPayload(payload.data(), payload.size()));
    size_t padded = paddedNameLen(trace.name().size());
    std::string name_buf(padded, '\0');
    std::copy(trace.name().begin(), trace.name().end(), name_buf.begin());
    os.write(name_buf.data(), static_cast<std::streamsize>(padded));
    if (!payload.empty())
        os.write(reinterpret_cast<const char *>(payload.data()),
                 static_cast<std::streamsize>(payload.size()));
}

Trace
readBinary(std::istream &is)
{
    char magic[8];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error("copra trace: bad magic");
    uint32_t version = getU32(is);
    if (version == kVersionV1)
        return readBinaryV1(is);
    if (version == kVersion)
        return readBinaryV2(is);
    throw std::runtime_error("copra trace: unsupported version " +
                             std::to_string(version));
}

void
saveBinary(const Trace &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("copra trace: cannot open for write: " +
                                 path);
    writeBinary(trace, os);
    if (!os)
        throw std::runtime_error("copra trace: write failed: " + path);
}

Trace
loadBinary(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("copra trace: cannot open for read: " +
                                 path);
    return readBinary(is);
}

#ifndef _WIN32

Trace
loadBinaryMapped(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throw std::runtime_error("copra trace: cannot open for read: " +
                                 path);
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        throw std::runtime_error("copra trace: cannot stat: " + path);
    }
    size_t file_size = static_cast<size_t>(st.st_size);
    if (file_size < kV2HeaderBytes) {
        ::close(fd);
        throw std::runtime_error("copra trace: truncated header");
    }
    void *map = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED)
        throw std::runtime_error("copra trace: mmap failed: " + path);

    // Unmap on every exit path; the decoded columns own their memory.
    struct Unmapper
    {
        void *addr;
        size_t len;
        ~Unmapper() { ::munmap(addr, len); }
    } unmapper{map, file_size};

    const unsigned char *base = static_cast<const unsigned char *>(map);
    if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error("copra trace: bad magic");
    uint32_t version = static_cast<uint32_t>(loadLe64(base + 8) & 0xffffffff);
    uint32_t name_len =
        static_cast<uint32_t>(loadLe64(base + 8) >> 32);
    if (version != kVersion)
        throw std::runtime_error("copra trace: unsupported version " +
                                 std::to_string(version));
    if (name_len > (1u << 16))
        throw std::runtime_error("copra trace: implausible name length " +
                                 std::to_string(name_len));
    uint64_t seed = loadLe64(base + 16);
    uint64_t count = loadLe64(base + 24);
    uint64_t conditionals = loadLe64(base + 32);
    uint64_t checksum = loadLe64(base + 40);

    size_t padded = paddedNameLen(name_len);
    uint64_t expected = kV2HeaderBytes + padded + v2PayloadBytes(count);
    if (file_size != expected)
        throw std::runtime_error(
            "copra trace: size mismatch (file is " +
            std::to_string(file_size) + " bytes, header implies " +
            std::to_string(expected) + ")");
    const unsigned char *payload = base + kV2HeaderBytes + padded;
    if (checksumPayload(payload, v2PayloadBytes(count)) != checksum)
        throw std::runtime_error("copra trace: payload checksum mismatch");
    std::string name(reinterpret_cast<const char *>(base) + kV2HeaderBytes,
                     name_len);
    return Trace::fromSoa(std::move(name), seed,
                          decodeColumns(payload, count, conditionals));
}

#else // _WIN32

Trace
loadBinaryMapped(const std::string &path)
{
    // No mmap on this platform; callers fall back to loadBinary.
    throw std::runtime_error("copra trace: mapped load unsupported: " +
                             path);
}

#endif

void
writeText(const Trace &trace, std::ostream &os)
{
    os << "# name " << trace.name() << '\n';
    os << "# seed " << trace.seed() << '\n';
    for (const auto &rec : trace.records()) {
        os << branchKindName(rec.kind) << ' ' << std::hex << "0x" << rec.pc
           << " 0x" << rec.target << std::dec << ' '
           << (rec.taken ? 'T' : 'N') << '\n';
    }
}

Trace
readText(std::istream &is)
{
    Trace trace;
    std::string line;
    size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream hdr(line.substr(1));
            std::string key;
            hdr >> key;
            if (key == "name") {
                std::string name;
                hdr >> name;
                trace.setName(name);
            } else if (key == "seed") {
                uint64_t seed = 0;
                hdr >> seed;
                trace.setSeed(seed);
            }
            continue;
        }
        std::istringstream ls(line);
        std::string kind_str, pc_str, target_str, taken_str;
        if (!(ls >> kind_str >> pc_str >> target_str >> taken_str))
            throw std::runtime_error("copra trace: malformed text line " +
                                     std::to_string(line_no));
        BranchRecord rec;
        if (kind_str == "cond")
            rec.kind = BranchKind::Conditional;
        else if (kind_str == "jump")
            rec.kind = BranchKind::Jump;
        else if (kind_str == "call")
            rec.kind = BranchKind::Call;
        else if (kind_str == "ret")
            rec.kind = BranchKind::Return;
        else
            throw std::runtime_error("copra trace: unknown kind '" +
                                     kind_str + "' on line " +
                                     std::to_string(line_no));
        rec.pc = std::stoull(pc_str, nullptr, 0);
        rec.target = std::stoull(target_str, nullptr, 0);
        if (taken_str == "T")
            rec.taken = true;
        else if (taken_str == "N")
            rec.taken = false;
        else
            throw std::runtime_error("copra trace: bad outcome on line " +
                                     std::to_string(line_no));
        trace.append(rec);
    }
    return trace;
}

} // namespace copra::trace
