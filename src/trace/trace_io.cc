#include "trace/trace_io.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace copra::trace {

namespace {

constexpr char kMagic[8] = {'C', 'O', 'P', 'R', 'A', 'T', 'R', 'C'};
constexpr uint32_t kVersion = kTraceFormatVersion;

void
putU32(std::ostream &os, uint32_t v)
{
    std::array<char, 4> buf;
    for (int i = 0; i < 4; ++i)
        buf[static_cast<size_t>(i)] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(buf.data(), buf.size());
}

void
putU64(std::ostream &os, uint64_t v)
{
    std::array<char, 8> buf;
    for (int i = 0; i < 8; ++i)
        buf[static_cast<size_t>(i)] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(buf.data(), buf.size());
}

uint32_t
getU32(std::istream &is)
{
    std::array<unsigned char, 4> buf;
    is.read(reinterpret_cast<char *>(buf.data()), buf.size());
    if (!is)
        throw std::runtime_error("copra trace: truncated input (u32)");
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | buf[static_cast<size_t>(i)];
    return v;
}

uint64_t
getU64(std::istream &is)
{
    std::array<unsigned char, 8> buf;
    is.read(reinterpret_cast<char *>(buf.data()), buf.size());
    if (!is)
        throw std::runtime_error("copra trace: truncated input (u64)");
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | buf[static_cast<size_t>(i)];
    return v;
}

} // namespace

void
writeBinary(const Trace &trace, std::ostream &os)
{
    os.write(kMagic, sizeof(kMagic));
    putU32(os, kVersion);
    putU64(os, trace.seed());
    putU32(os, static_cast<uint32_t>(trace.name().size()));
    os.write(trace.name().data(),
             static_cast<std::streamsize>(trace.name().size()));
    putU64(os, trace.size());
    for (const auto &rec : trace.records()) {
        putU64(os, rec.pc);
        putU64(os, rec.target);
        char tail[2] = {static_cast<char>(rec.kind),
                        static_cast<char>(rec.taken ? 1 : 0)};
        os.write(tail, 2);
    }
}

Trace
readBinary(std::istream &is)
{
    char magic[8];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error("copra trace: bad magic");
    uint32_t version = getU32(is);
    if (version != kVersion)
        throw std::runtime_error("copra trace: unsupported version " +
                                 std::to_string(version));
    uint64_t seed = getU64(is);
    uint32_t name_len = getU32(is);
    // A malformed header must not drive allocations: cap the name at a
    // size no legitimate writer produces before trusting the field.
    if (name_len > (1u << 16))
        throw std::runtime_error("copra trace: implausible name length " +
                                 std::to_string(name_len));
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    if (!is)
        throw std::runtime_error("copra trace: truncated name");
    uint64_t count = getU64(is);

    Trace trace(name, seed);
    // An inflated count is detected by the truncated-record throw below;
    // only pre-reserve what the field claims up to a sane bound so a
    // corrupt header cannot force a huge up-front allocation.
    trace.reserve(static_cast<size_t>(std::min<uint64_t>(count, 1u << 20)));
    for (uint64_t i = 0; i < count; ++i) {
        BranchRecord rec;
        rec.pc = getU64(is);
        rec.target = getU64(is);
        char tail[2];
        is.read(tail, 2);
        if (!is)
            throw std::runtime_error("copra trace: truncated record");
        auto kind = static_cast<uint8_t>(tail[0]);
        if (kind > static_cast<uint8_t>(BranchKind::Return))
            throw std::runtime_error("copra trace: invalid branch kind");
        rec.kind = static_cast<BranchKind>(kind);
        rec.taken = tail[1] != 0;
        trace.append(rec);
    }
    return trace;
}

void
saveBinary(const Trace &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("copra trace: cannot open for write: " +
                                 path);
    writeBinary(trace, os);
    if (!os)
        throw std::runtime_error("copra trace: write failed: " + path);
}

Trace
loadBinary(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("copra trace: cannot open for read: " +
                                 path);
    return readBinary(is);
}

void
writeText(const Trace &trace, std::ostream &os)
{
    os << "# name " << trace.name() << '\n';
    os << "# seed " << trace.seed() << '\n';
    for (const auto &rec : trace.records()) {
        os << branchKindName(rec.kind) << ' ' << std::hex << "0x" << rec.pc
           << " 0x" << rec.target << std::dec << ' '
           << (rec.taken ? 'T' : 'N') << '\n';
    }
}

Trace
readText(std::istream &is)
{
    Trace trace;
    std::string line;
    size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream hdr(line.substr(1));
            std::string key;
            hdr >> key;
            if (key == "name") {
                std::string name;
                hdr >> name;
                trace.setName(name);
            } else if (key == "seed") {
                uint64_t seed = 0;
                hdr >> seed;
                trace.setSeed(seed);
            }
            continue;
        }
        std::istringstream ls(line);
        std::string kind_str, pc_str, target_str, taken_str;
        if (!(ls >> kind_str >> pc_str >> target_str >> taken_str))
            throw std::runtime_error("copra trace: malformed text line " +
                                     std::to_string(line_no));
        BranchRecord rec;
        if (kind_str == "cond")
            rec.kind = BranchKind::Conditional;
        else if (kind_str == "jump")
            rec.kind = BranchKind::Jump;
        else if (kind_str == "call")
            rec.kind = BranchKind::Call;
        else if (kind_str == "ret")
            rec.kind = BranchKind::Return;
        else
            throw std::runtime_error("copra trace: unknown kind '" +
                                     kind_str + "' on line " +
                                     std::to_string(line_no));
        rec.pc = std::stoull(pc_str, nullptr, 0);
        rec.target = std::stoull(target_str, nullptr, 0);
        if (taken_str == "T")
            rec.taken = true;
        else if (taken_str == "N")
            rec.taken = false;
        else
            throw std::runtime_error("copra trace: bad outcome on line " +
                                     std::to_string(line_no));
        trace.append(rec);
    }
    return trace;
}

} // namespace copra::trace
