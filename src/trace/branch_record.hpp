/**
 * @file
 * The unit of a branch trace: one dynamic branch execution.
 *
 * The paper's infrastructure is a trace-driven branch prediction simulator;
 * everything in copra consumes streams of BranchRecord.
 */

#pragma once

#include <cstdint>

namespace copra::trace {

/** Control-transfer kinds distinguished in traces. */
enum class BranchKind : uint8_t
{
    Conditional = 0, //!< conditional direct branch (the analysis target)
    Jump = 1,        //!< unconditional direct jump
    Call = 2,        //!< subroutine call
    Return = 3,      //!< subroutine return
};

/**
 * One dynamic branch execution.
 *
 * @note Instruction addresses are byte addresses; the synthetic workloads
 * lay static branches out on 4-byte boundaries like a RISC ISA.
 */
struct BranchRecord
{
    uint64_t pc = 0;     //!< address of the branch instruction
    uint64_t target = 0; //!< taken-path target address
    BranchKind kind = BranchKind::Conditional;
    bool taken = false;  //!< actual outcome (always true for Jump/Call/Return)

    /** True for conditional branches, the only kind predictors predict. */
    bool isConditional() const { return kind == BranchKind::Conditional; }

    /**
     * True when the taken target precedes the branch: the loop-closing
     * shape used by the paper's backward-branch instance tagging (§3.2).
     */
    bool isBackward() const noexcept { return target < pc; }

    bool
    operator==(const BranchRecord &other) const
    {
        return pc == other.pc && target == other.target &&
            kind == other.kind && taken == other.taken;
    }
};

/** Human-readable name of a branch kind. */
const char *branchKindName(BranchKind kind);

} // namespace copra::trace

