/**
 * @file
 * Trace serialization: a versioned binary format for bulk storage and a
 * line-oriented text format for inspection and hand-written test inputs.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace copra::trace {

/**
 * Version of the binary trace format written by writeBinary. Bump on any
 * layout change; readers reject other versions and the on-disk trace
 * cache keys its entries on this value, so stale cache files are never
 * misread.
 */
inline constexpr uint32_t kTraceFormatVersion = 1;

/**
 * Write @p trace to @p os in the copra binary trace format.
 *
 * Layout: 8-byte magic "COPRATRC", u32 version, u64 seed, u32 name length,
 * name bytes, u64 record count, then one 18-byte packed record per dynamic
 * branch (u64 pc, u64 target, u8 kind, u8 taken). All integers are
 * little-endian.
 */
void writeBinary(const Trace &trace, std::ostream &os);

/**
 * Read a trace in the copra binary format.
 *
 * @throws std::runtime_error on bad magic, unsupported version, or
 * truncated input.
 */
Trace readBinary(std::istream &is);

/** Write @p trace to the file at @p path in binary format. */
void saveBinary(const Trace &trace, const std::string &path);

/** Load a binary-format trace from the file at @p path. */
Trace loadBinary(const std::string &path);

/**
 * Write @p trace as text: a "# name <name>" / "# seed <seed>" header, then
 * one "<kind> <pc-hex> <target-hex> <T|N>" line per record.
 */
void writeText(const Trace &trace, std::ostream &os);

/**
 * Read a text-format trace. Blank lines and lines starting with '#'
 * (other than the recognized header directives) are ignored.
 *
 * @throws std::runtime_error on malformed lines.
 */
Trace readText(std::istream &is);

} // namespace copra::trace

