/**
 * @file
 * Trace serialization: a versioned binary format for bulk storage and a
 * line-oriented text format for inspection and hand-written test inputs.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace copra::trace {

/**
 * Version of the binary trace format written by writeBinary. Bump on any
 * layout change; the on-disk trace cache keys its entries on this value,
 * so stale cache files are never misread. readBinary still decodes the
 * previous (v1) record-interleaved layout, so a v1 file that shows up
 * under a v2 name falls back to a full re-decode instead of failing.
 */
inline constexpr uint32_t kTraceFormatVersion = 2;

/**
 * Write @p trace to @p os in the copra binary trace format (v2).
 *
 * v2 is column-major so loaders can ingest whole fields at once:
 * 8-byte magic "COPRATRC", u32 version, u32 name length, u64 seed,
 * u64 record count, u64 conditional count, u64 payload checksum
 * (FNV-1a over the column bytes — the column layout has no per-record
 * structure to validate, so integrity is explicit), name bytes
 * zero-padded to an 8-byte boundary, then four contiguous columns —
 * pc (count × u64), target (count × u64), kind (count × u8), taken
 * (count × u8). All integers are little-endian.
 *
 * v1 (read-only support) stored one 18-byte packed record per dynamic
 * branch (u64 pc, u64 target, u8 kind, u8 taken) after a
 * version/seed/name/count header.
 */
void writeBinary(const Trace &trace, std::ostream &os);

/**
 * Read a trace in the copra binary format (v1 or v2).
 *
 * @throws std::runtime_error on bad magic, unsupported version, or
 * truncated input.
 */
Trace readBinary(std::istream &is);

/** Write @p trace to the file at @p path in binary format. */
void saveBinary(const Trace &trace, const std::string &path);

/** Load a binary-format trace from the file at @p path. */
Trace loadBinary(const std::string &path);

/**
 * Load a v2 binary trace by memory-mapping @p path: the header is
 * validated against the exact file size, the columns are adopted
 * directly into the trace's structure-of-arrays image, and no
 * per-record decode loop runs. The mapping is transient (the file may
 * be deleted afterwards).
 *
 * @throws std::runtime_error when the file cannot be mapped, is not a
 * v2 trace (including well-formed v1 files — callers fall back to
 * loadBinary's re-decode), or is truncated / inconsistent.
 */
Trace loadBinaryMapped(const std::string &path);

/**
 * Write @p trace as text: a "# name <name>" / "# seed <seed>" header, then
 * one "<kind> <pc-hex> <target-hex> <T|N>" line per record.
 */
void writeText(const Trace &trace, std::ostream &os);

/**
 * Read a text-format trace. Blank lines and lines starting with '#'
 * (other than the recognized header directives) are ignored.
 *
 * @throws std::runtime_error on malformed lines.
 */
Trace readText(std::istream &is);

} // namespace copra::trace
