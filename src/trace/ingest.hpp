/**
 * @file
 * Foreign-trace ingestion: validate and normalize branch traces from
 * outside the repo into the native in-memory Trace (and from there into
 * cache-v2 files via trace_io). Three source formats are supported; the
 * grammars and failure semantics are documented in docs/TRACES.md.
 *
 *  - Text: the versioned "copra branch-trace" line format. A superset
 *    of what writeText() emits — `# copra-branch-trace v1` declares the
 *    grammar version, `# name` / `# seed` directives carry metadata,
 *    and each record line is `<kind> <pc> <target> <T|N>` with hex or
 *    decimal addresses.
 *
 *  - CSV: `kind,pc,target,taken` rows with an optional header row and
 *    an optional leading `index` column. Records arriving out of order
 *    (by index) are sorted back into program order during
 *    normalization; duplicate indices are a hard error.
 *
 *  - CBP: a championship-style packed binary — 8-byte magic
 *    "CBPTRACE", u32 version (= 1), u32 flags (must be 0), u64 record
 *    count, then one 18-byte record per branch: u64 pc, u64 target,
 *    u8 type, u8 taken (little-endian). Types map onto BranchKind with
 *    indirect jumps/calls folded into Jump/Call.
 *
 * Normalization is where foreign quirks are absorbed: non-conditional
 * records with taken = 0 are coerced to taken (our convention: an
 * executed transfer transferred), CSV reordering is applied, and every
 * coercion is counted in the IngestReport so provenance lands in the
 * run manifest. Validation failures (bad magic, malformed lines,
 * impossible counts, unknown kinds) throw std::runtime_error — an
 * ingested trace is either fully valid or rejected, never silently
 * truncated.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace copra::trace {

/** Source format of an ingested trace. */
enum class IngestFormat : uint8_t
{
    Auto = 0, //!< sniff: CBP magic, else CSV when the first record
              //!< line contains a comma, else text
    Text,     //!< copra branch-trace text grammar
    Csv,      //!< comma-separated records, optional header/index
    Cbp,      //!< championship-style packed binary
};

/** Parse a format name (auto/text/csv/cbp); throws on unknown names. */
IngestFormat parseIngestFormat(const std::string &name);

/** Human-readable format name. */
const char *ingestFormatName(IngestFormat format);

/** Knobs for one ingestion run. */
struct IngestOptions
{
    IngestFormat format = IngestFormat::Auto;
    /** Override the trace name ("" keeps the source's `# name` or the
     * input filename stem). */
    std::string name;
    /** Override the recorded seed (recorded verbatim; foreign traces
     * have no generator seed of their own). */
    uint64_t seed = 0;
    bool hasSeed = false;
};

/** What one ingestion run saw and did — recorded for provenance. */
struct IngestReport
{
    IngestFormat format = IngestFormat::Auto; //!< format actually used
    uint64_t records = 0;         //!< records accepted
    uint64_t conditionals = 0;    //!< conditional records among them
    uint64_t normalizedTaken = 0; //!< non-conditionals coerced to taken
    uint64_t reordered = 0;       //!< CSV rows moved by index sorting
    uint64_t commentLines = 0;    //!< comment/blank lines skipped
    std::vector<std::string> warnings;
};

/**
 * Ingest a foreign trace from @p is.
 *
 * @param is Input stream (binary-capable for CBP/auto).
 * @param options Format selection and metadata overrides.
 * @param report Filled with acceptance counts and warnings (required).
 * @throws std::runtime_error on any validation failure.
 */
Trace ingestStream(std::istream &is, const IngestOptions &options,
                   IngestReport &report);

/**
 * Ingest the file at @p path (Auto format sniffs content, not the file
 * extension; the filename stem becomes the trace name unless the source
 * or @p options name it).
 */
Trace ingestFile(const std::string &path, const IngestOptions &options,
                 IngestReport &report);

} // namespace copra::trace
