#include "trace/trace.hpp"

namespace copra::trace {

const char *
branchKindName(BranchKind kind)
{
    switch (kind) {
      case BranchKind::Conditional:
        return "cond";
      case BranchKind::Jump:
        return "jump";
      case BranchKind::Call:
        return "call";
      case BranchKind::Return:
        return "ret";
    }
    return "unknown";
}

Trace::Trace()
    : soaCache_(std::make_shared<SoaCache>())
{
}

Trace::Trace(std::string name, uint64_t seed)
    : name_(std::move(name)), seed_(seed),
      soaCache_(std::make_shared<SoaCache>())
{
}

void
Trace::ensureOwned(size_t extra_capacity)
{
    if (!store_) {
        store_ = std::make_shared<std::vector<BranchRecord>>();
        store_->reserve(extra_capacity);
        return;
    }
    // Mutating shared storage would be visible through every view, and
    // appending into the middle of someone else's tail would corrupt
    // it; either way, detach onto a private copy of our window first.
    if (store_.use_count() > 1 || offset_ != 0 ||
        count_ != store_->size()) {
        auto owned = std::make_shared<std::vector<BranchRecord>>();
        owned->reserve(count_ + extra_capacity);
        owned->insert(owned->end(), store_->begin() + offset_,
                      store_->begin() + offset_ + count_);
        store_ = std::move(owned);
        offset_ = 0;
    }
}

void
Trace::append(const BranchRecord &rec)
{
    ensureOwned(1);
    store_->push_back(rec);
    ++count_;
    if (rec.isConditional())
        ++conditionals_;
}

void
Trace::appendTrace(const Trace &other)
{
    std::span<const BranchRecord> recs = other.records();
    ensureOwned(recs.size());
    store_->insert(store_->end(), recs.begin(), recs.end());
    count_ += recs.size();
    conditionals_ += other.conditionalCount();
}

void
Trace::reserve(size_t n)
{
    ensureOwned(n);
    store_->reserve(n);
}

void
Trace::clear()
{
    store_.reset();
    offset_ = 0;
    count_ = 0;
    conditionals_ = 0;
    soaCache_ = std::make_shared<SoaCache>();
}

Trace
Trace::prefix(uint64_t n_conditionals) const
{
    Trace out(name_, seed_);
    out.store_ = store_;
    out.offset_ = offset_;
    if (n_conditionals >= conditionals_) {
        out.count_ = count_;
        out.conditionals_ = conditionals_;
        // Same window as this trace: the SoA image is identical too.
        out.soaCache_ = soaCache_;
        return out;
    }
    std::span<const BranchRecord> recs = records();
    uint64_t seen = 0;
    size_t cut = 0;
    for (; cut < recs.size(); ++cut) {
        if (recs[cut].isConditional()) {
            if (seen == n_conditionals)
                break;
            ++seen;
        }
    }
    out.count_ = cut;
    out.conditionals_ = seen;
    return out;
}

const SoABlocks &
Trace::soa() const
{
    util::MutexLock lock(soaCache_->mutex);
    if (!soaCache_->blocks || soaCache_->blocks->size() != count_)
        soaCache_->blocks = std::make_shared<SoABlocks>(records());
    return *soaCache_->blocks;
}

Trace
Trace::fromSoa(std::string name, uint64_t seed, SoABlocks blocks)
{
    Trace out(std::move(name), seed);
    out.store_ = std::make_shared<std::vector<BranchRecord>>(
        blocks.toRecords());
    out.count_ = out.store_->size();
    out.conditionals_ = blocks.conditionalCount();
    {
        util::MutexLock lock(out.soaCache_->mutex);
        out.soaCache_->blocks =
            std::make_shared<const SoABlocks>(std::move(blocks));
    }
    return out;
}

} // namespace copra::trace
