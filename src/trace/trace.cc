#include "trace/trace.hpp"

namespace copra::trace {

const char *
branchKindName(BranchKind kind)
{
    switch (kind) {
      case BranchKind::Conditional:
        return "cond";
      case BranchKind::Jump:
        return "jump";
      case BranchKind::Call:
        return "call";
      case BranchKind::Return:
        return "ret";
    }
    return "unknown";
}

void
Trace::append(const BranchRecord &rec)
{
    records_.push_back(rec);
    if (rec.isConditional())
        ++conditionals_;
}

void
Trace::clear()
{
    records_.clear();
    conditionals_ = 0;
}

Trace
Trace::prefix(uint64_t n_conditionals) const
{
    Trace out(name_, seed_);
    if (n_conditionals >= conditionals_) {
        out.records_ = records_;
        out.conditionals_ = conditionals_;
        return out;
    }
    uint64_t seen = 0;
    for (const auto &rec : records_) {
        if (rec.isConditional()) {
            if (seen == n_conditionals)
                break;
            ++seen;
        }
        out.append(rec);
    }
    return out;
}

} // namespace copra::trace
