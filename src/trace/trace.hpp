/**
 * @file
 * In-memory branch trace container.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/branch_record.hpp"
#include "trace/trace_soa.hpp"
#include "util/sync.hpp"

namespace copra::trace {

/**
 * An in-memory branch trace: an ordered sequence of dynamic branch
 * executions plus identifying metadata (benchmark name, generator seed).
 *
 * Traces are append-only during generation and immutable during
 * simulation; all experiment passes iterate the same trace object so
 * per-branch comparisons are exactly aligned.
 *
 * Storage is shared copy-on-write: copying a Trace, or taking a
 * prefix() view, shares the underlying record array (no record is
 * copied); the first append to a trace whose storage is shared — or
 * whose window does not end at the storage tail — detaches it onto a
 * private copy, so views never observe later mutation.
 *
 * soa() exposes a lazily built, cached structure-of-arrays image of
 * the records (see trace_soa.hpp) reused across all predictor passes.
 * Building is thread-safe; as with the record array itself, mutating
 * a trace while another thread reads it is outside the contract.
 */
class Trace
{
  public:
    Trace();

    /** @param name Benchmark / workload identification string. */
    explicit Trace(std::string name, uint64_t seed = 0);

    /** Workload name this trace was generated from. */
    const std::string &name() const { return name_; }

    /** Set the workload name (used by trace loaders). */
    void setName(std::string name) { name_ = std::move(name); }

    /** Generator seed recorded for reproducibility. */
    uint64_t seed() const { return seed_; }

    /** Set the recorded generator seed. */
    void setSeed(uint64_t seed) { seed_ = seed; }

    /** Append one dynamic branch execution. */
    void append(const BranchRecord &rec);

    /** Append every record of @p other in order (bulk concatenation). */
    void appendTrace(const Trace &other);

    /** Total records (all control-transfer kinds). */
    size_t size() const { return count_; }

    /** True when the trace holds no records. */
    bool empty() const { return count_ == 0; }

    /** Number of conditional branch records. */
    uint64_t conditionalCount() const { return conditionals_; }

    /** Record at position @p i. */
    const BranchRecord &operator[](size_t i) const
    {
        return (*store_)[offset_ + i];
    }

    /** The record window (for range-for iteration and batch spans). */
    std::span<const BranchRecord>
    records() const
    {
        if (!store_)
            return {};
        return {store_->data() + offset_, count_};
    }

    /** Reserve storage for @p n records. */
    void reserve(size_t n);

    /** Remove all records. */
    void clear();

    /**
     * A view of the first @p n_conditionals conditional branches (and
     * every non-conditional record interleaved before them). The view
     * shares record storage with this trace — no records are copied.
     * Used to run experiments on a prefix of a long trace.
     */
    Trace prefix(uint64_t n_conditionals) const;

    /**
     * The structure-of-arrays image of this trace, built on first use
     * and cached (copies of the trace share the cache; prefix views
     * build their own). Loaders that already hold columns install the
     * image directly via fromSoa().
     */
    const SoABlocks &soa() const;

    /**
     * Build a trace directly from a column image: materializes the
     * record array from the columns and installs @p blocks as the
     * cached SoA, so a subsequent soa() call is free.
     */
    static Trace fromSoa(std::string name, uint64_t seed, SoABlocks blocks);

  private:
    /** Lazily built SoA image; shared by copies of the same window. */
    struct SoaCache
    {
        util::Mutex mutex;
        std::shared_ptr<const SoABlocks> blocks COPRA_GUARDED_BY(mutex);
    };

    /** Detach shared or non-tail storage before mutation. */
    void ensureOwned(size_t extra_capacity);

    std::string name_;
    uint64_t seed_ = 0;
    uint64_t conditionals_ = 0;
    std::shared_ptr<std::vector<BranchRecord>> store_;
    size_t offset_ = 0;
    size_t count_ = 0;
    std::shared_ptr<SoaCache> soaCache_;
};

} // namespace copra::trace
