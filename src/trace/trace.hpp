/**
 * @file
 * In-memory branch trace container.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/branch_record.hpp"

namespace copra::trace {

/**
 * An in-memory branch trace: an ordered sequence of dynamic branch
 * executions plus identifying metadata (benchmark name, generator seed).
 *
 * Traces are append-only during generation and immutable during
 * simulation; all experiment passes iterate the same trace object so
 * per-branch comparisons are exactly aligned.
 */
class Trace
{
  public:
    Trace() = default;

    /** @param name Benchmark / workload identification string. */
    explicit Trace(std::string name, uint64_t seed = 0)
        : name_(std::move(name)), seed_(seed)
    {
    }

    /** Workload name this trace was generated from. */
    const std::string &name() const { return name_; }

    /** Set the workload name (used by trace loaders). */
    void setName(std::string name) { name_ = std::move(name); }

    /** Generator seed recorded for reproducibility. */
    uint64_t seed() const { return seed_; }

    /** Set the recorded generator seed. */
    void setSeed(uint64_t seed) { seed_ = seed; }

    /** Append one dynamic branch execution. */
    void append(const BranchRecord &rec);

    /** Total records (all control-transfer kinds). */
    size_t size() const { return records_.size(); }

    /** True when the trace holds no records. */
    bool empty() const { return records_.empty(); }

    /** Number of conditional branch records. */
    uint64_t conditionalCount() const { return conditionals_; }

    /** Record at position @p i. */
    const BranchRecord &operator[](size_t i) const { return records_[i]; }

    /** Underlying record storage (for range-for iteration). */
    const std::vector<BranchRecord> &records() const { return records_; }

    /** Reserve storage for @p n records. */
    void reserve(size_t n) { records_.reserve(n); }

    /** Remove all records. */
    void clear();

    /**
     * Copy the first @p n_conditionals conditional branches (and every
     * non-conditional record interleaved before them) into a new trace.
     * Used to run experiments on a prefix of a long trace.
     */
    Trace prefix(uint64_t n_conditionals) const;

  private:
    std::string name_;
    uint64_t seed_ = 0;
    uint64_t conditionals_ = 0;
    std::vector<BranchRecord> records_;
};

} // namespace copra::trace

