#include "trace/trace_cache.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "obs/instruments.hpp"
#include "obs/registry.hpp"
#include "trace/trace_io.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"

namespace copra::trace {

namespace fs = std::filesystem;

std::string
TraceCacheKey::fileName() const
{
    // The benchmark name lands in a file name; keep it to a safe
    // character set so a hostile or odd workload name cannot escape the
    // cache directory.
    std::string safe;
    safe.reserve(benchmark.size());
    for (char c : benchmark) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
        safe.push_back(ok ? c : '_');
    }
    return safe + "-b" + std::to_string(branches) + "-s" +
        std::to_string(seed) + "-v" + std::to_string(kTraceFormatVersion) +
        ".trc";
}

TraceCache::TraceCache(std::string dir)
    : dir_(std::move(dir))
{
    if (dir_.empty())
        dir_ = util::envString("COPRA_CACHE_DIR", ".copra-cache");
}

std::string
TraceCache::pathFor(const TraceCacheKey &key) const
{
    return (fs::path(dir_) / key.fileName()).string();
}

std::optional<Trace>
TraceCache::load(const TraceCacheKey &key) const
{
    std::string path = pathFor(key);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        obs::count(obs::ids().traceCacheMiss);
        return std::nullopt;
    }
    uint64_t bytes = fs::file_size(path, ec);
    if (ec)
        bytes = 0;
    try {
        // Fast path: mmap the entry and adopt its columns directly.
        // Anything the mapped loader rejects — most usefully a
        // wrong-version header, e.g. a v1 file renamed into place —
        // falls back to the stream decoder, which still reads v1.
        Trace trace;
        bool mapped = false;
        try {
            trace = loadBinaryMapped(path);
            mapped = true;
        } catch (const std::exception &) {
            trace = loadBinary(path);
        }
        if (mapped)
            obs::count(obs::ids().traceCacheMmapHit);
        if (trace.name() != key.benchmark) {
            warn("trace cache: entry " + path +
                 " is labeled '" + trace.name() + "', dropping it");
            fs::remove(path, ec);
            obs::count(obs::ids().traceCacheEvict);
            obs::count(obs::ids().traceCacheMiss);
            return std::nullopt;
        }
        obs::count(obs::ids().traceCacheHit);
        obs::count(obs::ids().traceCacheReadBytes, bytes);
        obs::observe(obs::ids().traceCacheEntryBytes,
                     static_cast<double>(bytes));
        return trace;
    } catch (const std::exception &e) {
        warn("trace cache: dropping unreadable entry " + path + " (" +
             e.what() + ")");
        fs::remove(path, ec);
        obs::count(obs::ids().traceCacheEvict);
        obs::count(obs::ids().traceCacheMiss);
        return std::nullopt;
    }
}

bool
TraceCache::store(const TraceCacheKey &key, const Trace &trace) const
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        warn("trace cache: cannot create " + dir_ + ": " + ec.message());
        return false;
    }

    // Unique temp name per store, then an atomic rename: readers only
    // ever see complete entries, even with concurrent writers.
    // copra-lint: sanctioned-global(temp-file name uniquifier; names never reach results)
    static std::atomic<uint64_t> counter{0};
    std::string tmp = pathFor(key) + ".tmp" +
        std::to_string(counter.fetch_add(1));
    try {
        saveBinary(trace, tmp);
    } catch (const std::exception &e) {
        warn("trace cache: store failed: " + std::string(e.what()));
        fs::remove(tmp, ec);
        return false;
    }
    fs::rename(tmp, pathFor(key), ec);
    if (ec) {
        warn("trace cache: rename failed: " + ec.message());
        fs::remove(tmp, ec);
        return false;
    }
    uint64_t bytes = fs::file_size(pathFor(key), ec);
    if (!ec) {
        obs::count(obs::ids().traceCacheWriteBytes, bytes);
        obs::observe(obs::ids().traceCacheEntryBytes,
                     static_cast<double>(bytes));
    }
    return true;
}

Trace
TraceCache::loadOrGenerate(const TraceCacheKey &key,
                           const std::function<Trace()> &generate) const
{
    if (std::optional<Trace> cached = load(key))
        return std::move(*cached);
    Trace trace = generate();
    store(key, trace);
    return trace;
}

namespace {

// Cache config toggled once by CLI parsing before any simulation runs;
// caching only short-circuits regeneration of byte-identical traces.
// Lock-free by design: relaxed ordering is enough because the flag is
// written before the pool fans out and the cached bytes it gates are
// identical to regeneration (no data is published through the flag).
// copra-lint: sanctioned-global(process-wide trace-cache on/off switch)
std::atomic<bool> g_cache_enabled{false};

} // namespace

bool
traceCacheEnabled()
{
    return g_cache_enabled.load(std::memory_order_relaxed);
}

void
setTraceCacheEnabled(bool enabled)
{
    g_cache_enabled.store(enabled, std::memory_order_relaxed);
}

const TraceCache &
globalTraceCache()
{
    static const TraceCache cache;
    return cache;
}

} // namespace copra::trace
