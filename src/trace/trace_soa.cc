#include "trace/trace_soa.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace copra::trace {

SoABlocks::SoABlocks(std::span<const BranchRecord> records)
{
    size_t n = records.size();
    pc_.resize(n);
    target_.resize(n);
    kind_.resize(n);
    taken_.resize(n);
    for (size_t i = 0; i < n; ++i) {
        const BranchRecord &rec = records[i];
        pc_[i] = rec.pc;
        target_[i] = rec.target;
        kind_[i] = static_cast<uint8_t>(rec.kind);
        taken_[i] = rec.taken ? 1 : 0;
    }
    indexSegments();
}

SoABlocks::SoABlocks(std::vector<uint64_t> pc, std::vector<uint64_t> target,
                     std::vector<uint8_t> kind, std::vector<uint8_t> taken)
    : pc_(std::move(pc)), target_(std::move(target)),
      kind_(std::move(kind)), taken_(std::move(taken))
{
    panicIf(pc_.size() != target_.size() || pc_.size() != kind_.size() ||
            pc_.size() != taken_.size(),
            "SoABlocks columns must have equal length");
    for (uint8_t k : kind_)
        panicIf(k > static_cast<uint8_t>(BranchKind::Return),
                "SoABlocks: invalid branch kind in column");
    indexSegments();
}

void
SoABlocks::indexSegments()
{
    constexpr auto cond = static_cast<uint8_t>(BranchKind::Conditional);
    size_t n = kind_.size();
    size_t i = 0;
    while (i < n) {
        if (kind_[i] != cond) {
            ++i;
            continue;
        }
        size_t end = i + 1;
        while (end < n && kind_[end] == cond)
            ++end;
        condSegments_.push_back({i, end - i});
        conditionals_ += end - i;
        i = end;
    }
    indexStatics();
}

void
SoABlocks::indexStatics()
{
    // Open-addressing pc → dense-index table, linear probing, grown at
    // 50% load. Runs once per trace; the produced column lets every
    // ledger pass accumulate with a plain indexed add.
    size_t n = pc_.size();
    staticIndex_.resize(n);
    size_t cap = 256;
    // slot: index+1 into staticPcs_, 0 = empty.
    std::vector<uint32_t> slots(cap, 0);
    for (size_t i = 0; i < n; ++i) {
        if (staticPcs_.size() * 2 >= cap) {
            cap *= 2;
            slots.assign(cap, 0);
            for (uint32_t id = 0; id < staticPcs_.size(); ++id) {
                size_t j = mix64(staticPcs_[id]) & (cap - 1);
                while (slots[j] != 0)
                    j = (j + 1) & (cap - 1);
                slots[j] = id + 1;
            }
        }
        uint64_t pc = pc_[i];
        size_t j = mix64(pc) & (cap - 1);
        while (slots[j] != 0 && staticPcs_[slots[j] - 1] != pc)
            j = (j + 1) & (cap - 1);
        if (slots[j] == 0) {
            staticPcs_.push_back(pc);
            slots[j] = static_cast<uint32_t>(staticPcs_.size());
        }
        staticIndex_[i] = slots[j] - 1;
    }
}

SoABlocks::BlockView
SoABlocks::block(size_t i) const
{
    panicIf(i >= blockCount(), "SoABlocks::block index out of range");
    size_t begin = i * kBlockRecords;
    size_t count = std::min(kBlockRecords, size() - begin);
    BlockView view;
    view.firstRecord = begin;
    view.pc = {pc_.data() + begin, count};
    view.target = {target_.data() + begin, count};
    view.kind = {kind_.data() + begin, count};
    view.taken = {taken_.data() + begin, count};
    return view;
}

BranchRecord
SoABlocks::record(size_t i) const
{
    BranchRecord rec;
    rec.pc = pc_[i];
    rec.target = target_[i];
    rec.kind = static_cast<BranchKind>(kind_[i]);
    rec.taken = taken_[i] != 0;
    return rec;
}

std::vector<BranchRecord>
SoABlocks::toRecords() const
{
    std::vector<BranchRecord> records(size());
    for (size_t i = 0; i < size(); ++i)
        records[i] = record(i);
    return records;
}

} // namespace copra::trace
