/**
 * @file
 * Structure-of-arrays view of a branch trace.
 *
 * The simulation hot loops stream one or two fields of every record
 * (pc and taken), but the canonical in-memory layout is an array of
 * 24-byte BranchRecord structs — so the AoS walk drags target/kind
 * bytes through the cache for nothing. SoABlocks transposes a trace
 * once into contiguous per-field columns (pc[], target[], kind[],
 * taken[]) and precomputes the maximal runs of consecutive conditional
 * branches, so every predictor pass reuses the same cache-friendly
 * columns and batch boundaries. Columns are index-aligned with the
 * record sequence: column k describes the same dynamic branch as
 * records()[k].
 *
 * Kernels consume columns through fixed-size blocks (block()) so their
 * per-batch scratch buffers stay L1-resident regardless of trace
 * length.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/branch_record.hpp"

namespace copra::trace {

/** Column-major (structure-of-arrays) image of one branch trace. */
class SoABlocks
{
  public:
    /** Records per fixed-size block view (see block()). */
    static constexpr size_t kBlockRecords = size_t(1) << 16;

    /** A maximal run of consecutive conditional records. */
    struct Segment
    {
        size_t begin = 0; //!< index of the first record of the run
        size_t count = 0; //!< number of consecutive conditionals
    };

    /** One fixed-size window over the columns. */
    struct BlockView
    {
        size_t firstRecord = 0;
        std::span<const uint64_t> pc;
        std::span<const uint64_t> target;
        std::span<const uint8_t> kind;
        std::span<const uint8_t> taken;
    };

    SoABlocks() = default;

    /** Transpose @p records into columns and index conditional runs. */
    explicit SoABlocks(std::span<const BranchRecord> records);

    /**
     * Adopt pre-built columns (trace loaders, chunked generation). All
     * four vectors must have equal length; kind values must be valid
     * BranchKind encodings.
     */
    SoABlocks(std::vector<uint64_t> pc, std::vector<uint64_t> target,
              std::vector<uint8_t> kind, std::vector<uint8_t> taken);

    /** Total records (all control-transfer kinds). */
    size_t size() const { return pc_.size(); }

    /** Number of conditional records across all segments. */
    uint64_t conditionalCount() const { return conditionals_; }

    /** Branch addresses, one per record. */
    const uint64_t *pc() const noexcept { return pc_.data(); }

    /** Taken-path targets, one per record. */
    const uint64_t *target() const { return target_.data(); }

    /** BranchKind encodings, one byte per record. */
    const uint8_t *kind() const { return kind_.data(); }

    /** Outcomes (0/1), one byte per record. */
    const uint8_t *taken() const noexcept { return taken_.data(); }

    /**
     * Dense static-branch index, one entry per record: records with the
     * same pc share one index in [0, staticCount()). Ledger passes
     * accumulate per-branch tallies into a flat array addressed by this
     * column, replacing a hashed map probe per dynamic branch with one
     * indexed add — the pc → index hashing happens once per trace,
     * here, and is reused by every predictor pass.
     */
    const uint32_t *staticIndex() const noexcept { return staticIndex_.data(); }

    /** Distinct branch addresses; position = dense static index. */
    std::span<const uint64_t> staticPcs() const { return staticPcs_; }

    /** Number of distinct branch addresses in the trace. */
    size_t staticCount() const noexcept { return staticPcs_.size(); }

    /** Maximal conditional runs, in trace order. */
    std::span<const Segment> conditionalSegments() const noexcept
    {
        return condSegments_;
    }

    /** Number of kBlockRecords-sized blocks covering the columns. */
    size_t
    blockCount() const
    {
        return (size() + kBlockRecords - 1) / kBlockRecords;
    }

    /** Fixed-size window @p i over the columns (last may be short). */
    BlockView block(size_t i) const;

    /** Materialize record @p i (AoS form). */
    BranchRecord record(size_t i) const;

    /** Materialize the whole trace back to AoS (round-trip, loaders). */
    std::vector<BranchRecord> toRecords() const;

  private:
    void indexSegments();
    void indexStatics();

    std::vector<uint64_t> pc_;
    std::vector<uint64_t> target_;
    std::vector<uint8_t> kind_;
    std::vector<uint8_t> taken_;
    std::vector<Segment> condSegments_;
    std::vector<uint32_t> staticIndex_;
    std::vector<uint64_t> staticPcs_;
    uint64_t conditionals_ = 0;
};

} // namespace copra::trace
