/**
 * @file
 * Static-branch population statistics over a trace: execution counts,
 * taken rates, bias distribution. Feeds the Table 1 style benchmark
 * summaries and the "more than 99% biased" accounting in the paper's
 * sections 4.2 and 5.1.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"

namespace copra::trace {

/** Aggregate behaviour of one static conditional branch. */
struct StaticBranchStats
{
    uint64_t pc = 0;
    uint64_t execs = 0;
    uint64_t taken = 0;

    /** Fraction of executions that were taken. */
    double takenRate() const
    {
        return execs ? static_cast<double>(taken) / execs : 0.0;
    }

    /**
     * Bias toward the predominant direction: max(taken, not-taken)/execs.
     * 1.0 means perfectly biased; 0.5 means an even split.
     */
    double
    bias() const
    {
        if (!execs)
            return 0.0;
        uint64_t majority = taken > execs - taken ? taken : execs - taken;
        return static_cast<double>(majority) / execs;
    }

    /**
     * Dynamic executions an ideal static predictor (per-branch majority
     * direction over the whole run, paper §4.1) gets right.
     */
    uint64_t
    idealStaticCorrect() const
    {
        return taken > execs - taken ? taken : execs - taken;
    }
};

/** Population statistics for the conditional branches of one trace. */
class TraceStats
{
  public:
    /** Analyze @p trace (conditional branches only). */
    explicit TraceStats(const Trace &trace);

    /** Number of distinct static conditional branches. */
    size_t staticBranches() const { return perBranch_.size(); }

    /** Total dynamic conditional branches. */
    uint64_t dynamicBranches() const { return dynamic_; }

    /** Dynamic conditional branches that were taken. */
    uint64_t dynamicTaken() const { return taken_; }

    /** Per-branch statistics keyed by pc. */
    const std::unordered_map<uint64_t, StaticBranchStats> &
    perBranch() const
    {
        return perBranch_;
    }

    /** Stats for a specific branch; execs == 0 if never seen. */
    StaticBranchStats branch(uint64_t pc) const;

    /**
     * Fraction of dynamic branches whose static branch has bias() strictly
     * greater than @p threshold (e.g., 0.99 reproduces the paper's "more
     * than 99% biased" bucket).
     */
    double dynamicFractionWithBiasAbove(double threshold) const;

    /**
     * Total dynamic executions an ideal static predictor would get right,
     * summed over branches.
     */
    uint64_t idealStaticCorrect() const;

    /** Branches sorted by descending execution count. */
    std::vector<StaticBranchStats> hottest(size_t n) const;

  private:
    uint64_t dynamic_ = 0;
    uint64_t taken_ = 0;
    std::unordered_map<uint64_t, StaticBranchStats> perBranch_;
};

} // namespace copra::trace

