#include "sim/driver.hpp"

#include "util/logging.hpp"

namespace copra::sim {

RunResult
run(const trace::Trace &trace, predictor::Predictor &pred, Ledger *ledger)
{
    RunResult result;
    result.predictorName = pred.name();
    for (const auto &rec : trace.records()) {
        if (!rec.isConditional()) {
            pred.observe(rec);
            continue;
        }
        bool prediction = pred.predict(rec);
        pred.update(rec, rec.taken);
        bool correct = prediction == rec.taken;
        ++result.dynamicBranches;
        if (correct)
            ++result.correct;
        if (ledger)
            ledger->record(rec.pc, rec.taken, correct);
    }
    return result;
}

std::vector<RunResult>
runAll(const trace::Trace &trace,
       const std::vector<predictor::Predictor *> &preds,
       std::vector<Ledger> *ledgers)
{
    for (auto *p : preds)
        panicIf(p == nullptr, "runAll: null predictor");
    if (ledgers)
        ledgers->resize(preds.size());

    std::vector<RunResult> results(preds.size());
    for (size_t i = 0; i < preds.size(); ++i)
        results[i].predictorName = preds[i]->name();

    for (const auto &rec : trace.records()) {
        if (!rec.isConditional()) {
            for (auto *p : preds)
                p->observe(rec);
            continue;
        }
        for (size_t i = 0; i < preds.size(); ++i) {
            bool prediction = preds[i]->predict(rec);
            preds[i]->update(rec, rec.taken);
            bool correct = prediction == rec.taken;
            ++results[i].dynamicBranches;
            if (correct)
                ++results[i].correct;
            if (ledgers)
                (*ledgers)[i].record(rec.pc, rec.taken, correct);
        }
    }
    return results;
}

} // namespace copra::sim
