#include "sim/driver.hpp"

#include <span>
#include <vector>

#include "obs/instruments.hpp"
#include "obs/registry.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace copra::sim {

RunResult
run(const trace::Trace &trace, predictor::Predictor &pred, Ledger *ledger)
{
    RunResult result;
    result.predictorName = pred.name();

    // Feed maximal runs of consecutive conditional branches through the
    // batch entry point: for predictors that override it (TwoLevel) the
    // inner loop pays no virtual dispatch per branch, and for everything
    // else the default batch method reproduces the classic
    // predict/update call sequence exactly.
    const std::vector<trace::BranchRecord> &records = trace.records();
    std::vector<uint8_t> correct;
    size_t i = 0;
    while (i < records.size()) {
        if (!records[i].isConditional()) {
            pred.observe(records[i]);
            ++i;
            continue;
        }
        size_t end = i + 1;
        while (end < records.size() && records[end].isConditional())
            ++end;
        size_t count = end - i;
        std::span<const trace::BranchRecord> batch(&records[i], count);
        if (ledger) {
            if (correct.size() < count)
                correct.resize(count);
            result.correct += pred.predictUpdateBatch(batch,
                                                      correct.data());
            for (size_t k = 0; k < count; ++k)
                ledger->record(batch[k].pc, batch[k].taken,
                               correct[k] != 0);
        } else {
            result.correct += pred.predictUpdateBatch(batch, nullptr);
        }
        result.dynamicBranches += count;
        i = end;
    }
    obs::count(obs::ids().simRunBranches, result.dynamicBranches);
    obs::count(obs::ids().simRunMispredicts,
               result.dynamicBranches - result.correct);
    return result;
}

std::vector<RunResult>
runAll(const trace::Trace &trace,
       const std::vector<predictor::Predictor *> &preds,
       std::vector<Ledger> *ledgers)
{
    for (auto *p : preds)
        panicIf(p == nullptr, "runAll: null predictor");
    if (ledgers)
        ledgers->resize(preds.size());

    std::vector<RunResult> results(preds.size());
    for (size_t i = 0; i < preds.size(); ++i)
        results[i].predictorName = preds[i]->name();

    for (const auto &rec : trace.records()) {
        if (!rec.isConditional()) {
            for (auto *p : preds)
                p->observe(rec);
            continue;
        }
        for (size_t i = 0; i < preds.size(); ++i) {
            bool prediction = preds[i]->predict(rec);
            preds[i]->update(rec, rec.taken);
            bool correct = prediction == rec.taken;
            ++results[i].dynamicBranches;
            if (correct)
                ++results[i].correct;
            if (ledgers)
                (*ledgers)[i].record(rec.pc, rec.taken, correct);
        }
    }
    for (const RunResult &r : results) {
        obs::count(obs::ids().simRunBranches, r.dynamicBranches);
        obs::count(obs::ids().simRunMispredicts,
                   r.dynamicBranches - r.correct);
    }
    return results;
}

std::vector<RunResult>
runAllParallel(const trace::Trace &trace,
               const std::vector<predictor::Predictor *> &preds,
               std::vector<Ledger> *ledgers, ThreadPool *pool)
{
    for (auto *p : preds)
        panicIf(p == nullptr, "runAllParallel: null predictor");
    if (ledgers) {
        ledgers->clear();
        ledgers->resize(preds.size());
    }

    // Each predictor owns its adaptive state and writes only its own
    // result slot and ledger; the trace is shared read-only. Sharding by
    // predictor index is therefore race-free, and because run() itself
    // is deterministic the outcome is bit-identical to the serial path
    // for every thread count.
    std::vector<RunResult> results(preds.size());
    parallelFor(pool ? *pool : globalPool(), preds.size(), [&](size_t i) {
        results[i] = run(trace, *preds[i],
                         ledgers ? &(*ledgers)[i] : nullptr);
    });
    return results;
}

} // namespace copra::sim
