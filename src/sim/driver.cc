#include "sim/driver.hpp"

#include <algorithm>
#include <vector>

#include "obs/instruments.hpp"
#include "obs/registry.hpp"
#include "trace/trace_soa.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace copra::sim {

LoopTotals
runLoop(const trace::SoABlocks &soa,
        std::span<const trace::BranchRecord> records,
        predictor::Predictor &pred, uint8_t *correct_scratch,
        uint64_t *packed, BranchTally *tallies) noexcept
{
    // Ledger path: accumulate per-branch tallies addressed by the
    // trace's dense static index (built once with the SoA image — no
    // hashing per branch). The hot loop does ONE u64 add per branch
    // into a packed execs/taken/correct word (21 bits each, flushed to
    // the wide tallies well before any field can saturate), keeping the
    // randomly-addressed array at 8 bytes per static branch — L1-sized
    // for every benchmark. Folding is additive, so the result is
    // identical to calling Ledger::record per branch.
    constexpr uint64_t kFieldMask = (uint64_t(1) << 21) - 1;
    constexpr uint64_t kFlushEvery = uint64_t(1) << 20;
    const size_t staticCount = packed ? soa.staticCount() : 0;
    uint64_t since_flush = 0;
    auto flush = [&]() noexcept {
        for (size_t id = 0; id < staticCount; ++id) {
            uint64_t p = packed[id];
            if (p == 0)
                continue;
            packed[id] = 0;
            BranchTally &t = tallies[id];
            t.execs += p & kFieldMask;
            t.taken += (p >> 21) & kFieldMask;
            t.correct += (p >> 42) & kFieldMask;
        }
        since_flush = 0;
    };

    LoopTotals totals;
    size_t pos = 0;
    for (const trace::SoABlocks::Segment &seg : soa.conditionalSegments()) {
        for (; pos < seg.begin; ++pos)
            pred.observe(records[pos]);
        predictor::SoaBatch batch{soa.pc() + seg.begin,
                                  soa.taken() + seg.begin,
                                  records.data() + seg.begin, seg.count};
        if (packed) {
            totals.correct +=
                pred.predictUpdateSoa(batch, correct_scratch);
            const uint32_t *sidx = soa.staticIndex() + seg.begin;
            const uint8_t *taken = batch.taken;
            // Accumulate in flush-bounded chunks: a single segment can
            // exceed 2^21 branches (long ingested foreign traces), and
            // a segment-granular flush would let one pc's 21-bit execs
            // field wrap and carry into the taken field.
            size_t k = 0;
            while (k < seg.count) {
                size_t chunk = static_cast<size_t>(std::min<uint64_t>(
                    seg.count - k, kFlushEvery - since_flush));
                for (size_t end = k + chunk; k < end; ++k) {
                    packed[sidx[k]] += 1 | (uint64_t(taken[k]) << 21) |
                        (uint64_t(correct_scratch[k]) << 42);
                }
                since_flush += chunk;
                if (since_flush >= kFlushEvery)
                    flush();
            }
        } else {
            totals.correct += pred.predictUpdateSoa(batch, nullptr);
        }
        totals.branches += seg.count;
        pos = seg.begin + seg.count;
    }
    for (; pos < records.size(); ++pos)
        pred.observe(records[pos]);
    if (packed)
        flush();
    return totals;
}

RunResult
run(const trace::Trace &trace, predictor::Predictor &pred, Ledger *ledger)
{
    RunResult result;
    result.predictorName = pred.name();

    // Feed maximal runs of consecutive conditional branches through the
    // SoA batch entry point: predictors with specialized kernels
    // (TwoLevel, Bimodal) consume the contiguous pc/taken columns
    // directly, and everything else falls back — via the batch's AoS
    // mirror — to the record-based batch default, which reproduces the
    // classic predict/update call sequence exactly. Non-conditional
    // records between runs are delivered to observe() in trace order.
    //
    // Every buffer the loop touches is allocated here, before runLoop:
    // the loop itself is the COPRA_HOT region and performs no heap
    // allocation of its own (`copra_check --hot-gates` enforces this).
    const trace::SoABlocks &soa = trace.soa();
    std::span<const trace::BranchRecord> records = trace.records();
    std::vector<BranchTally> tallies(ledger ? soa.staticCount() : 0);
    std::vector<uint64_t> packed(tallies.size(), 0);
    size_t maxSegment = 0;
    if (ledger)
        for (const trace::SoABlocks::Segment &seg :
             soa.conditionalSegments())
            maxSegment = std::max(maxSegment, seg.count);
    std::vector<uint8_t> correct(maxSegment);

    LoopTotals totals =
        runLoop(soa, records, pred, correct.data(),
                ledger ? packed.data() : nullptr,
                ledger ? tallies.data() : nullptr);
    result.correct = totals.correct;
    result.dynamicBranches = totals.branches;

    if (ledger) {
        std::span<const uint64_t> pcs = soa.staticPcs();
        for (size_t id = 0; id < tallies.size(); ++id)
            if (tallies[id].execs != 0)
                ledger->addTally(pcs[id], tallies[id]);
    }
    obs::count(obs::ids().simRunBranches, result.dynamicBranches);
    obs::count(obs::ids().simRunMispredicts,
               result.dynamicBranches - result.correct);
    return result;
}

std::vector<RunResult>
runAll(const trace::Trace &trace,
       const std::vector<predictor::Predictor *> &preds,
       std::vector<Ledger> *ledgers)
{
    for (auto *p : preds)
        panicIf(p == nullptr, "runAll: null predictor");
    if (ledgers) {
        ledgers->clear();
        ledgers->resize(preds.size());
    }

    // One full pass per predictor over the shared SoA image. Predictors
    // own all their adaptive state, so per-predictor passes produce
    // exactly the branch-interleaved results — every ledger covers the
    // same dynamic branches — while each pass streams the cached
    // columns instead of re-decoding records.
    std::vector<RunResult> results(preds.size());
    for (size_t i = 0; i < preds.size(); ++i)
        results[i] = run(trace, *preds[i],
                         ledgers ? &(*ledgers)[i] : nullptr);
    return results;
}

std::vector<RunResult>
runAllParallel(const trace::Trace &trace,
               const std::vector<predictor::Predictor *> &preds,
               std::vector<Ledger> *ledgers, ThreadPool *pool)
{
    for (auto *p : preds)
        panicIf(p == nullptr, "runAllParallel: null predictor");
    if (ledgers) {
        ledgers->clear();
        ledgers->resize(preds.size());
    }

    // Build the shared SoA image once, before the fan-out, so worker
    // threads only ever read it (the lazy build in soa() is locked, but
    // prebuilding keeps the hot path contention-free).
    trace.soa();

    // Each predictor owns its adaptive state and writes only its own
    // result slot and ledger; the trace is shared read-only. Sharding by
    // predictor index is therefore race-free, and because run() itself
    // is deterministic the outcome is bit-identical to the serial path
    // for every thread count.
    std::vector<RunResult> results(preds.size());
    parallelFor(pool ? *pool : globalPool(), preds.size(), [&](size_t i) {
        results[i] = run(trace, *preds[i],
                         ledgers ? &(*ledgers)[i] : nullptr);
    });
    return results;
}

} // namespace copra::sim
