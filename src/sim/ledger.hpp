/**
 * @file
 * Per-branch accuracy ledger. Every analysis in the paper is a statement
 * about *per-static-branch* accuracy — which predictor is best for which
 * branch — so the driver records correct/total per pc, and the core
 * analyses combine ledgers (best-of, hypothetical hybrids, percentile
 * curves).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace copra::sim {

/** Per-branch prediction accounting. */
struct BranchTally
{
    uint64_t execs = 0;
    uint64_t correct = 0;
    uint64_t taken = 0;

    /** Accuracy in [0, 1]; 0 for never-executed branches. */
    double
    accuracy() const
    {
        return execs ? static_cast<double>(correct) / execs : 0.0;
    }
};

/** Accuracy ledger over all static conditional branches of one run. */
class Ledger
{
  public:
    /** Record one prediction outcome for the branch at @p pc. */
    void
    record(uint64_t pc, bool taken, bool correct)
    {
        BranchTally &t = table_[pc];
        ++t.execs;
        if (taken)
            ++t.taken;
        if (correct)
            ++t.correct;
    }

    /**
     * Install a precomputed tally for @p pc, replacing any existing
     * entry. Used by analyses that compute per-branch counts offline
     * (e.g. the selective-history oracle) and expose them as a ledger.
     */
    void
    setTally(uint64_t pc, uint64_t execs, uint64_t correct, uint64_t taken)
    {
        table_[pc] = BranchTally{execs, correct, taken};
    }

    /**
     * Accumulate a precomputed tally into the entry for @p pc —
     * equivalent to tally.execs record() calls. The driver batches its
     * per-branch accounting in a flat table and folds it in here once
     * per run.
     */
    void
    addTally(uint64_t pc, const BranchTally &tally)
    {
        BranchTally &t = table_[pc];
        t.execs += tally.execs;
        t.correct += tally.correct;
        t.taken += tally.taken;
    }

    /** Total dynamic branches recorded. */
    uint64_t dynamic() const { return dynamic_helper(); }

    /** Total correct predictions recorded. */
    uint64_t correct() const;

    /** Overall accuracy as a percentage (NaN — "n/a" — if empty). */
    double accuracyPercent() const;

    /** Tally for @p pc (zero tally if never recorded). */
    BranchTally branch(uint64_t pc) const;

    /** The underlying per-branch table. */
    const std::unordered_map<uint64_t, BranchTally> &table() const
    {
        return table_;
    }

    /** Number of distinct static branches. */
    size_t staticBranches() const { return table_.size(); }

  private:
    uint64_t dynamic_helper() const;

    std::unordered_map<uint64_t, BranchTally> table_;
};

/**
 * Overall accuracy (%) of the per-branch-best combination of two ledgers:
 * for each branch, take whichever ledger got more executions right. Both
 * ledgers must cover the same trace. This realizes the paper's
 * hypothetical predictors ("gshare w/ Corr", "PAs w/ Loop") and the
 * best-of distributions of §5.
 */
double bestOfAccuracyPercent(const Ledger &a, const Ledger &b);

} // namespace copra::sim

