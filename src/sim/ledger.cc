#include "sim/ledger.hpp"

#include <algorithm>
#include <limits>

#include "util/logging.hpp"

namespace copra::sim {

uint64_t
Ledger::dynamic_helper() const
{
    uint64_t total = 0;
    // copra-lint: allow(unordered-iter) -- commutative integer aggregation; result is order-independent
    for (const auto &[pc, tally] : table_)
        total += tally.execs;
    return total;
}

uint64_t
Ledger::correct() const
{
    uint64_t total = 0;
    // copra-lint: allow(unordered-iter) -- commutative integer aggregation; result is order-independent
    for (const auto &[pc, tally] : table_)
        total += tally.correct;
    return total;
}

double
Ledger::accuracyPercent() const
{
    uint64_t total = dynamic();
    if (total == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return 100.0 * static_cast<double>(correct())
        / static_cast<double>(total);
}

BranchTally
Ledger::branch(uint64_t pc) const
{
    auto it = table_.find(pc);
    return it == table_.end() ? BranchTally{} : it->second;
}

double
bestOfAccuracyPercent(const Ledger &a, const Ledger &b)
{
    uint64_t total = 0;
    uint64_t correct = 0;
    // copra-lint: allow(unordered-iter) -- commutative integer aggregation; result is order-independent
    for (const auto &[pc, ta] : a.table()) {
        BranchTally tb = b.branch(pc);
        panicIf(tb.execs != ta.execs,
                "bestOfAccuracyPercent: ledgers cover different traces");
        total += ta.execs;
        correct += std::max(ta.correct, tb.correct);
    }
    if (total == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return 100.0 * static_cast<double>(correct)
        / static_cast<double>(total);
}

} // namespace copra::sim
