/**
 * @file
 * The trace-driven simulation driver: runs one or more predictors over a
 * trace, producing aggregate results and per-branch ledgers. All
 * conditional branches are predicted; other control transfers are passed
 * through (they exist for path/backward bookkeeping in the analyses).
 *
 * Concurrency contract (DESIGN.md §10): the driver holds no shared
 * mutable state of its own — runAllParallel shards by predictor index,
 * each task owning its predictor, result slot, and ledger outright,
 * with the trace shared strictly read-only. There is deliberately
 * nothing here for a mutex to guard; the statically checked locking
 * discipline lives in the pool (util/thread_pool.hpp) and the bench
 * timing accumulator (bench_common.hpp) that feed this layer.
 */

#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "predictor/predictor.hpp"
#include "sim/ledger.hpp"
#include "trace/trace.hpp"
#include "trace/trace_soa.hpp"
#include "util/hot.hpp"
#include "util/thread_pool.hpp"

namespace copra::sim {

/** Aggregate outcome of one predictor over one trace. */
struct RunResult
{
    std::string predictorName;
    uint64_t dynamicBranches = 0;
    uint64_t correct = 0;

    /**
     * True when the trace held at least one conditional branch, i.e.
     * accuracy is a meaningful number. A run over an all-non-conditional
     * trace predicted nothing; reporting it as 0% would read as "every
     * prediction wrong", so accuracyPercent() is NaN instead and
     * consumers print "n/a" (and oracle selection skips the result).
     */
    bool defined() const { return dynamicBranches != 0; }

    /** Prediction accuracy as a percentage; NaN when !defined(). */
    double
    accuracyPercent() const
    {
        if (dynamicBranches == 0)
            return std::numeric_limits<double>::quiet_NaN();
        return 100.0 * static_cast<double>(correct)
            / static_cast<double>(dynamicBranches);
    }

    /** Misprediction rate as a percentage; NaN when !defined(). */
    double mispredictPercent() const { return 100.0 - accuracyPercent(); }
};

/**
 * Run @p pred over @p trace.
 *
 * @param ledger Optional per-branch accounting sink.
 */
RunResult run(const trace::Trace &trace, predictor::Predictor &pred,
              Ledger *ledger = nullptr);

/** Totals produced by one runLoop pass. */
struct LoopTotals
{
    uint64_t correct = 0;
    uint64_t branches = 0;
};

/**
 * The steady-state inner loop of run(): stream every conditional
 * segment of a prebuilt SoA image through the predictor's batch entry
 * point, delivering non-conditional records to observe() in trace
 * order, and — when @p packed is non-null — fold one packed
 * execs/taken/correct word per branch into the ledger accumulators.
 *
 * This is a COPRA_HOT root: between the buffers being handed in and
 * the totals coming back it allocates nothing, takes no locks, and
 * cannot throw (DESIGN.md §15). All buffers are caller-owned: @p
 * correct_scratch must hold the largest segment's count when @p packed
 * is used (it always may be written), and @p packed / @p tallies must
 * hold soa.staticCount() entries or be null together. `copra_check
 * --hot-gates` replays this exact function under the counting
 * allocator to prove the claim at runtime.
 */
COPRA_HOT LoopTotals
runLoop(const trace::SoABlocks &soa,
        std::span<const trace::BranchRecord> records,
        predictor::Predictor &pred, uint8_t *correct_scratch,
        uint64_t *packed, BranchTally *tallies) noexcept;

/**
 * Run several predictors over the same trace in a single pass, so every
 * ledger covers exactly the same dynamic branches.
 *
 * @param preds Predictors to drive (all receive every branch).
 * @param ledgers Optional parallel array of ledgers, one per predictor
 *                (pass nullptr to skip, or a vector shorter than preds).
 */
std::vector<RunResult> runAll(
    const trace::Trace &trace,
    const std::vector<predictor::Predictor *> &preds,
    std::vector<Ledger> *ledgers = nullptr);

/**
 * Run several predictors over the same trace concurrently, sharding
 * predictors across a thread pool. Unlike runAll this performs one full
 * trace pass per predictor, but each pass is independent, so results
 * and ledgers are bit-identical to runAll (and to serial run calls) for
 * every thread count — predictors own all their adaptive state and
 * there is no shared RNG.
 *
 * @param preds Predictors to drive (all receive every branch).
 * @param ledgers Optional ledger sink; resized to preds.size().
 * @param pool Pool to shard across (nullptr = the global pool).
 */
std::vector<RunResult> runAllParallel(
    const trace::Trace &trace,
    const std::vector<predictor::Predictor *> &preds,
    std::vector<Ledger> *ledgers = nullptr,
    ThreadPool *pool = nullptr);

} // namespace copra::sim

