/**
 * @file
 * Implementation of the runtime hot-path gates (hot_gates.hpp). See
 * DESIGN.md §15 for the static/dynamic division of labor.
 */

#include "check/hot_gates.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <span>
#include <sstream>

#include "check/fuzz.hpp"
#include "trace/trace.hpp"
#include "util/sync.hpp"

namespace copra::check {

namespace {

// copra-lint: sanctioned-global(hot-gate allocation tally, fed by the copra_check binary's operator-new hook)
std::atomic<uint64_t> g_hotAllocs{0};
// copra-lint: sanctioned-global(records whether the operator-new hook TU is linked into this binary)
std::atomic<bool> g_allocProbeLinked{false};

/**
 * One full replay along the path sim::run drives: conditional SoA
 * segments through predictUpdateSoa, everything else through
 * observe(). The SoA image and record span are caller-materialized —
 * Trace::soa() guards its lazy cache with a mutex, and the measured
 * region must take no locks of its own. @p correct is caller-owned
 * scratch, pre-sized to the largest segment, so the measured region
 * itself allocates nothing either.
 */
void
soaReplay(const trace::SoABlocks &soa,
          std::span<const trace::BranchRecord> records,
          predictor::Predictor &pred, std::vector<uint8_t> &correct)
{
    size_t pos = 0;
    for (const trace::SoABlocks::Segment &seg :
         soa.conditionalSegments()) {
        for (; pos < seg.begin; ++pos)
            pred.observe(records[pos]);
        predictor::SoaBatch batch{soa.pc() + seg.begin,
                                  soa.taken() + seg.begin,
                                  records.data() + seg.begin, seg.count};
        pred.predictUpdateSoa(batch, correct.data());
        pos = seg.begin + seg.count;
    }
    for (; pos < records.size(); ++pos)
        pred.observe(records[pos]);
}

/** Largest conditional segment of @p soa (scratch sizing). */
size_t
maxSegment(const trace::SoABlocks &soa)
{
    size_t n = 1;
    for (const trace::SoABlocks::Segment &seg :
         soa.conditionalSegments())
        if (seg.count > n)
            n = seg.count;
    return n;
}

/**
 * A terminate handler that names the contract being enforced: the lint
 * pass forces every hot function to be noexcept, so an exception on
 * the hot path lands here rather than unwinding into silent
 * mispredictions.
 */
[[noreturn]] void
hotGateTerminate()
{
    std::fputs("copra_check --hot-gates: std::terminate reached — an "
               "exception escaped the noexcept hot region "
               "(DESIGN.md §15)\n",
               stderr);
    std::abort();
}

/** RAII terminate-handler swap for the duration of the gates. */
class TerminateGuard
{
  public:
    TerminateGuard() : prev_(std::set_terminate(&hotGateTerminate)) {}
    ~TerminateGuard() { std::set_terminate(prev_); }
    TerminateGuard(const TerminateGuard &) = delete;
    TerminateGuard &operator=(const TerminateGuard &) = delete;

  private:
    std::terminate_handler prev_;
};

} // namespace

void
noteHotAlloc() noexcept
{
    g_hotAllocs.fetch_add(1, std::memory_order_relaxed);
}

void
registerAllocProbe() noexcept
{
    g_allocProbeLinked.store(true, std::memory_order_relaxed);
}

bool
allocProbeLinked() noexcept
{
    return g_allocProbeLinked.load(std::memory_order_relaxed);
}

uint64_t
hotAllocCount() noexcept
{
    return g_hotAllocs.load(std::memory_order_relaxed);
}

HotGateReport
runHotGates(const HotGateOptions &options,
            const std::vector<StatePredictor> &roster)
{
    HotGateReport report;
    report.allocProbe = allocProbeLinked();
    TerminateGuard terminate_guard;

    for (const StatePredictor &entry : roster) {
        for (uint64_t seed = options.seedBase;
             seed < options.seedBase + options.traces; ++seed) {
            trace::Trace trace = fuzzTrace(seed, options.conditionals);
            // Materialize the SoA image here: Trace::soa() locks its
            // lazy cache on every call, so the measured passes work
            // from direct references.
            const trace::SoABlocks &soa = trace.soa();
            std::span<const trace::BranchRecord> records =
                trace.records();
            std::vector<uint8_t> correct(maxSegment(soa));

            // Warm-up: first-touch table fills, then history-keyed
            // instrument pinning — including per-address history
            // registers of rare branches, which converge only after
            // ceil(history_bits / occurrences-per-pass) passes (see
            // HotGateOptions::warmupPasses).
            predictor::PredictorPtr pred = entry.make();
            for (uint64_t pass = 0; pass < options.warmupPasses;
                 ++pass)
                soaReplay(soa, records, *pred, correct);

            for (uint64_t pass = 0; pass < options.steadyPasses;
                 ++pass) {
                uint64_t allocs_before = hotAllocCount();
                uint64_t locks_before = util::lockAcquisitionCount();
                soaReplay(soa, records, *pred, correct);
                uint64_t alloc_delta =
                    hotAllocCount() - allocs_before;
                uint64_t lock_delta =
                    util::lockAcquisitionCount() - locks_before;

                if (report.allocProbe) {
                    ++report.gatesRun;
                    if (alloc_delta != 0) {
                        report.failures.push_back(
                            {entry.spec, "hot-alloc", seed,
                             std::to_string(alloc_delta) +
                                 " heap allocation(s) in a "
                                 "steady-state replay of " +
                                 std::to_string(options.conditionals) +
                                 " conditionals"});
                    }
                }
                ++report.gatesRun;
                if (lock_delta != 0) {
                    report.failures.push_back(
                        {entry.spec, "hot-lock", seed,
                         std::to_string(lock_delta) +
                             " lock acquisition(s) in a steady-state "
                             "replay of " +
                             std::to_string(options.conditionals) +
                             " conditionals"});
                }
            }
        }
    }
    return report;
}

std::string
formatHotGateReport(const HotGateReport &report)
{
    std::ostringstream os;
    os << "hot gates: " << report.gatesRun << " checks, "
       << report.failures.size() << " failure(s)";
    if (!report.allocProbe)
        os << " [alloc probe absent: sanitizer build owns the "
              "allocator, only the lock gate ran]";
    os << "\n";
    for (const HotGateFailure &f : report.failures) {
        os << "  FAIL " << f.spec << " [" << f.gate
           << "] seed=" << f.seed << ": " << f.detail << "\n";
    }
    return os.str();
}

} // namespace copra::check
