#include "check/ingest_gates.hpp"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "check/fuzz.hpp"
#include "trace/ingest.hpp"
#include "trace/trace_io.hpp"

namespace copra::check {

using trace::BranchKind;
using trace::BranchRecord;
using trace::Trace;

namespace {

/** Temp path for the emitted v2 file; pid-qualified so concurrent
 * ctest invocations do not fight over one name. */
std::string
gateTempPath()
{
    std::filesystem::path dir = std::filesystem::temp_directory_path();
    return (dir / ("copra-ingest-gate-" + std::to_string(getpid()) +
                   ".trc"))
        .string();
}

/** Byte-compare every SoA column plus identity metadata. */
bool
soaIdentical(const Trace &a, const Trace &b, std::string &detail)
{
    if (a.name() != b.name()) {
        detail = "name mismatch: '" + a.name() + "' vs '" + b.name() +
            "'";
        return false;
    }
    if (a.seed() != b.seed()) {
        detail = "seed mismatch";
        return false;
    }
    const trace::SoABlocks &sa = a.soa();
    const trace::SoABlocks &sb = b.soa();
    if (sa.size() != sb.size() ||
        sa.conditionalCount() != sb.conditionalCount()) {
        detail = "size mismatch";
        return false;
    }
    size_t n = sa.size();
    if (std::memcmp(sa.pc(), sb.pc(), n * sizeof(uint64_t)) != 0) {
        detail = "pc column differs";
        return false;
    }
    if (std::memcmp(sa.target(), sb.target(), n * sizeof(uint64_t)) !=
        0) {
        detail = "target column differs";
        return false;
    }
    if (std::memcmp(sa.kind(), sb.kind(), n) != 0) {
        detail = "kind column differs";
        return false;
    }
    if (std::memcmp(sa.taken(), sb.taken(), n) != 0) {
        detail = "taken column differs";
        return false;
    }
    return true;
}

/** Render @p t in the native text grammar (with version directive). */
std::string
renderText(const Trace &t)
{
    std::ostringstream os;
    os << "# copra-branch-trace v1\n";
    trace::writeText(t, os);
    return os.str();
}

/** Render @p t as CSV with an explicit in-order index column. */
std::string
renderCsv(const Trace &t)
{
    std::ostringstream os;
    os << "index,kind,pc,target,taken\n";
    uint64_t index = 0;
    for (const BranchRecord &rec : t.records()) {
        os << index++ << ',' << trace::branchKindName(rec.kind) << ','
           << "0x" << std::hex << rec.pc << ",0x" << rec.target
           << std::dec << ',' << (rec.taken ? 'T' : 'N') << '\n';
    }
    return os.str();
}

bool
recordsEqual(const Trace &a, const Trace &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (!(a[i] == b[i]))
            return false;
    return true;
}

/** A loaded-without-throwing corrupt trace must still be structurally
 * valid: every kind decodes, every taken byte is 0/1, and the
 * conditional count matches the kind column. */
bool
structurallyValid(const Trace &t, std::string &detail)
{
    uint64_t conditionals = 0;
    for (const BranchRecord &rec : t.records()) {
        if (static_cast<uint8_t>(rec.kind) > 3) {
            detail = "invalid kind escaped validation";
            return false;
        }
        if (rec.isConditional())
            ++conditionals;
    }
    if (conditionals != t.conditionalCount()) {
        detail = "conditional count out of sync with records";
        return false;
    }
    return true;
}

} // namespace

IngestGateReport
runIngestGates(const IngestGateOptions &options)
{
    IngestGateReport report;
    auto fail = [&](const std::string &gate, uint64_t seed,
                    const std::string &detail) {
        report.failures.push_back({gate, seed, detail});
    };

    // Gate 1: the committed sample ingests, with conditionals to
    // predict and idempotent normalization (re-ingesting our own
    // rendering coerces nothing).
    Trace ingested;
    trace::IngestReport ingest_report;
    ++report.gatesRun;
    try {
        trace::IngestOptions opts;
        ingested =
            trace::ingestFile(options.samplePath, opts, ingest_report);
        if (ingested.empty())
            fail("reference-ingest", 0, "sample has no records");
        else if (ingested.conditionalCount() == 0)
            fail("reference-ingest", 0,
                 "sample has no conditional branches");
    } catch (const std::exception &e) {
        fail("reference-ingest", 0, e.what());
        return report; // everything downstream needs the sample
    }

    // Gate 2: v2 emit, then stream-decode vs mmap-adopt identity.
    std::string temp = gateTempPath();
    ++report.gatesRun;
    try {
        trace::saveBinary(ingested, temp);
        Trace streamed = trace::loadBinary(temp);
        Trace mapped = trace::loadBinaryMapped(temp);
        std::string detail;
        if (!soaIdentical(streamed, mapped, detail))
            fail("stream-mmap-identity", 0, detail);
        if (!soaIdentical(ingested, mapped, detail))
            fail("stream-mmap-identity", 0,
                 "mmap load differs from ingested trace: " + detail);

        // Gate 3: record-for-record round trip out of the v2 file.
        ++report.gatesRun;
        if (!recordsEqual(ingested, streamed))
            fail("round-trip", 0,
                 "v2 records differ from ingested records");
    } catch (const std::exception &e) {
        fail("stream-mmap-identity", 0, e.what());
    }
    std::error_code ec;
    std::filesystem::remove(temp, ec);

    // Gate 4: the text and CSV grammars reproduce the same records.
    ++report.gatesRun;
    try {
        trace::IngestOptions opts;
        opts.name = ingested.name();
        trace::IngestReport r2;
        std::istringstream text_in(renderText(ingested));
        Trace from_text = trace::ingestStream(text_in, opts, r2);
        if (!recordsEqual(ingested, from_text))
            fail("cross-format", 0, "text re-ingest differs");
        if (r2.normalizedTaken != 0)
            fail("cross-format", 0,
                 "normalization not idempotent over text");
        std::istringstream csv_in(renderCsv(ingested));
        Trace from_csv = trace::ingestStream(csv_in, opts, r2);
        if (!recordsEqual(ingested, from_csv))
            fail("cross-format", 0, "CSV re-ingest differs");
    } catch (const std::exception &e) {
        fail("cross-format", 0, e.what());
    }

    // Gate 5: corruption fuzz over the serialized v2 bytes and the
    // text rendering — loaders must throw or produce a valid trace.
    std::string v2_bytes;
    {
        std::ostringstream os;
        trace::writeBinary(ingested, os);
        v2_bytes = os.str();
    }
    std::string text_bytes = renderText(ingested);
    for (uint64_t s = options.seedBase;
         s < options.seedBase + options.corruptionSeeds; ++s) {
        ++report.gatesRun;
        std::string corrupted = corruptBytes(v2_bytes, s);
        try {
            std::istringstream in(corrupted);
            Trace t = trace::readBinary(in);
            std::string detail;
            if (!structurallyValid(t, detail))
                fail("corruption-fuzz", s, "binary: " + detail);
        } catch (const std::exception &) {
            // Rejecting corrupt input is the expected outcome.
        }
        ++report.gatesRun;
        std::string corrupted_text = corruptBytes(text_bytes, s);
        try {
            trace::IngestOptions opts;
            opts.format = trace::IngestFormat::Text;
            trace::IngestReport r3;
            std::istringstream in(corrupted_text);
            Trace t = trace::ingestStream(in, opts, r3);
            std::string detail;
            if (!structurallyValid(t, detail))
                fail("corruption-fuzz", s, "text: " + detail);
        } catch (const std::exception &) {
        }
    }
    return report;
}

std::string
formatIngestGateReport(const IngestGateReport &report)
{
    std::ostringstream os;
    os << "ingest gates: " << report.gatesRun << " checks, "
       << report.failures.size() << " failure(s)\n";
    for (const IngestGateFailure &f : report.failures) {
        os << "  FAIL [" << f.gate << "]";
        if (f.seed != 0)
            os << " seed=" << f.seed;
        os << ": " << f.detail << "\n";
    }
    return os.str();
}

} // namespace copra::check
