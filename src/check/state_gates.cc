/**
 * @file
 * Implementation of the differential state gates (state_gates.hpp) and
 * the STATE_BUDGETS.md generator. See DESIGN.md §14.
 */

#include "check/state_gates.hpp"

#include <span>
#include <sstream>

#include "check/fuzz.hpp"
#include "predictor/factory.hpp"
#include "trace/trace.hpp"

namespace copra::check {

namespace {

/** Scalar replay of a record span; returns the prediction stream. */
std::vector<uint8_t>
replaySpan(std::span<const trace::BranchRecord> records,
           predictor::Predictor &pred)
{
    std::vector<uint8_t> out;
    for (const trace::BranchRecord &rec : records) {
        if (!rec.isConditional()) {
            pred.observe(rec);
            continue;
        }
        bool p = pred.predict(rec);
        pred.update(rec, rec.taken);
        out.push_back(p ? 1 : 0);
    }
    return out;
}

/** Index of the first difference, or npos when equal. */
size_t
firstDiff(const std::vector<uint8_t> &a, const std::vector<uint8_t> &b)
{
    size_t n = a.size() < b.size() ? a.size() : b.size();
    for (size_t i = 0; i < n; ++i)
        if (a[i] != b[i])
            return i;
    return a.size() == b.size() ? std::string::npos : n;
}

/** The once-per-spec gates: cold snapshots and cold restore. */
void
coldGates(const StatePredictor &entry, StateGateReport &report)
{
    predictor::PredictorPtr a = entry.make();
    predictor::PredictorPtr b = entry.make();

    ++report.gatesRun;
    std::vector<uint8_t> snap = a->snapshot();
    if (a->snapshot() != snap) {
        report.failures.push_back(
            {entry.spec, "byte-stability", 0,
             "two cold snapshots of one instance differ"});
    } else if (b->snapshot() != snap) {
        report.failures.push_back(
            {entry.spec, "byte-stability", 0,
             "cold snapshots of two fresh instances differ"});
    }

    ++report.gatesRun;
    b->restore(snap);
    if (b->stateHash() != a->stateHash()) {
        report.failures.push_back(
            {entry.spec, "cold-restore", 0,
             "restoring a cold snapshot changed the state hash"});
    }
    if (b->stateBits() != a->stateBits()) {
        report.failures.push_back(
            {entry.spec, "cold-restore", 0,
             "restore changed stateBits(): " +
                 std::to_string(a->stateBits()) + " -> " +
                 std::to_string(b->stateBits())});
    }
}

/** reset() must reproduce the cold state and the full replay. */
void
resetReplayGate(const StatePredictor &entry, const trace::Trace &trace,
                uint64_t seed, StateGateReport &report)
{
    ++report.gatesRun;
    predictor::PredictorPtr a = entry.make();
    uint64_t cold_hash = a->stateHash();
    std::vector<uint8_t> first = replaySpan(trace.records(), *a);
    uint64_t warm_hash = a->stateHash();

    if (a->snapshot() != a->snapshot()) {
        report.failures.push_back(
            {entry.spec, "byte-stability", seed,
             "two warm snapshots of one instance differ"});
        return;
    }

    a->reset();
    if (a->stateHash() != cold_hash) {
        report.failures.push_back(
            {entry.spec, "reset-replay", seed,
             "reset() does not reproduce the cold state hash"});
        return;
    }
    std::vector<uint8_t> second = replaySpan(trace.records(), *a);
    size_t diff = firstDiff(first, second);
    if (diff != std::string::npos) {
        report.failures.push_back(
            {entry.spec, "reset-replay", seed,
             "replay after reset() diverges at conditional " +
                 std::to_string(diff)});
        return;
    }
    if (a->stateHash() != warm_hash) {
        report.failures.push_back(
            {entry.spec, "reset-replay", seed,
             "replay after reset() ends at a different state hash"});
    }
}

/**
 * The snapshot-completeness probe: a clone restored mid-trace must
 * finish the trace in lockstep with the original. Any live state that
 * snapshotState() misses shows up as a suffix divergence here.
 */
void
roundTripGate(const StatePredictor &entry, const trace::Trace &trace,
              uint64_t seed, StateGateReport &report)
{
    ++report.gatesRun;
    std::span<const trace::BranchRecord> records = trace.records();
    size_t half = records.size() / 2;

    predictor::PredictorPtr original = entry.make();
    replaySpan(records.subspan(0, half), *original);

    std::vector<uint8_t> snap = original->snapshot();
    predictor::PredictorPtr clone = entry.make();
    clone->restore(snap);

    if (clone->snapshot() != snap) {
        report.failures.push_back(
            {entry.spec, "byte-stability", seed,
             "restore -> snapshot is not the identity"});
        return;
    }
    if (clone->stateHash() != original->stateHash()) {
        report.failures.push_back(
            {entry.spec, "round-trip", seed,
             "restored clone hashes differently from the original"});
        return;
    }

    std::vector<uint8_t> suffix_original =
        replaySpan(records.subspan(half), *original);
    std::vector<uint8_t> suffix_clone =
        replaySpan(records.subspan(half), *clone);
    size_t diff = firstDiff(suffix_original, suffix_clone);
    if (diff != std::string::npos) {
        report.failures.push_back(
            {entry.spec, "round-trip", seed,
             "restored clone diverges at suffix conditional " +
                 std::to_string(diff) +
                 " — snapshotState() missed live state"});
        return;
    }
    if (clone->stateHash() != original->stateHash()) {
        report.failures.push_back(
            {entry.spec, "round-trip", seed,
             "clone and original end the suffix at different hashes"});
    }
}

} // namespace

std::vector<StatePredictor>
defaultStateRoster()
{
    // Small geometries for the same reason defaultCheckPairs uses
    // them: tiny tables force the aliasing, allocation, and eviction
    // paths whose state a snapshot is most likely to miss.
    std::vector<std::string> specs = {
        "taken",
        "nottaken",
        "btfnt",
        "bimodal:bits=6",
        "gshare:h=7",
        "gag:h=7",
        "gas:h=6,s=3",
        "pas:h=6,bht=5,s=3",
        "pag:h=6,bht=5",
        "gskewed:h=7,bank=6",
        "ifgshare:h=7",
        "ifpas:h=6",
        "path:n=4,b=2,pht=8",
        "loop",
        "block",
        "fixed:k=2",
        "hybrid:a=gshare.h=6,b=pas.h=5,chooser=6",
        "tage:base=6,tbits=5,tag=7,tables=4,hmin=3,hmax=20",
        "perceptron:tbits=6,tables=4,seg=6",
        "tournament:gh=7,lh=6,bht=5,s=3,chooser=6,btbsets=4,btbways=2,"
        "ras=4",
    };
    std::vector<StatePredictor> roster;
    roster.reserve(specs.size());
    for (const std::string &spec : specs)
        roster.push_back(
            {spec, [spec] { return predictor::makePredictor(spec); }});
    return roster;
}

StateGateReport
runStateGates(const StateGateOptions &options,
              const std::vector<StatePredictor> &roster)
{
    StateGateReport report;
    for (const StatePredictor &entry : roster) {
        coldGates(entry, report);
        for (uint64_t seed = options.seedBase;
             seed < options.seedBase + options.traces; ++seed) {
            trace::Trace trace = fuzzTrace(seed, options.conditionals);
            resetReplayGate(entry, trace, seed, report);
            roundTripGate(entry, trace, seed, report);
        }
    }
    return report;
}

std::string
formatStateGateReport(const StateGateReport &report)
{
    std::ostringstream os;
    os << "state gates: " << report.gatesRun << " checks, "
       << report.failures.size() << " failure(s)\n";
    for (const StateGateFailure &f : report.failures) {
        os << "  FAIL " << f.spec << " [" << f.gate << "]";
        if (f.seed != 0)
            os << " seed=" << f.seed;
        os << ": " << f.detail << "\n";
    }
    return os.str();
}

std::string
renderStateBudgets()
{
    // The documented budgets use the factory defaults, not the small
    // gate geometries — this table is about the roster as shipped.
    std::ostringstream os;
    os << "# Predictor state budgets\n"
          "\n"
          "Generated by `copra_check --doc-state-budgets`; the\n"
          "`state_budgets_doc_drift` ctest gate fails when this file\n"
          "drifts from the factory roster. Regenerate with:\n"
          "\n"
          "    build/tools/copra_check --doc-state-budgets > "
          "docs/STATE_BUDGETS.md\n"
          "\n"
          "Cold is `stateBits()` of a fresh default-geometry instance;\n"
          "warm is after replaying the fixed fuzz trace `fuzz-7` (4000\n"
          "conditionals). The columns differ exactly for the predictors\n"
          "whose tables allocate on demand (the interference-free and\n"
          "fixed-pattern instruments). Inter-call latches and telemetry\n"
          "are serialized by snapshots but not counted (DESIGN.md §14).\n"
          "\n"
          "| spec | name | cold bits | warm bits |\n"
          "|---|---|---:|---:|\n";
    trace::Trace warmup = fuzzTrace(7, 4000);
    for (const std::string &spec : predictor::knownPredictors()) {
        predictor::PredictorPtr pred = predictor::makePredictor(spec);
        uint64_t cold = pred->stateBits();
        replaySpan(warmup.records(), *pred);
        os << "| " << spec << " | " << pred->name() << " | " << cold
           << " | " << pred->stateBits() << " |\n";
    }
    return os.str();
}

} // namespace copra::check
