/**
 * @file
 * Deterministic adversarial trace fuzzer for the differential
 * verification subsystem.
 *
 * fuzzTrace(seed, n) produces a branch stream built from a seed-chosen
 * mix of adversarial shapes: degenerate PCs (zero, unaligned, near the
 * top of the address space, or a single hammered address), alias-heavy
 * address sets that collide in small prediction tables, pathological
 * loop trip counts straddling the 255-saturation boundary, correlation
 * chains whose outcomes are functions of recent history, interleaved
 * non-conditional control transfers (exercising observe() and the
 * driver's batch-boundary logic), and plain random soup. The same seed
 * always yields byte-identical records, so every failure is a
 * one-integer reproducer.
 *
 * corruptBytes() is the companion byte-level mutator for serialized
 * traces: it applies a seed-chosen corruption (truncation, bit flip,
 * magic/version smash, kind poisoning, record-count inflation) for
 * trace_io / trace_cache robustness fuzzing.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace copra::check {

/** The adversarial stream shapes the fuzzer composes. */
enum class FuzzShape : uint8_t
{
    DegeneratePcs = 0,  //!< pc 0 / unaligned / top-of-address-space / hammered
    AliasHeavy,         //!< strided pcs colliding in small tables
    LoopNests,          //!< trip counts around 1, 2, 254..257 saturation
    CorrelationChain,   //!< outcomes = xor of recent source branches
    MixedKinds,         //!< jumps/calls/returns splitting batch runs
    RandomSoup,         //!< everything uniformly random
    TagAliasing,        //!< pc strides hitting same-index/same-tag slots
                        //!< of small tagged tables (TAGE edge paths)
    DeepHistory,        //!< correlations at distances beyond any folded
                        //!< history window, plus fold-flushing runs
    VmDispatch,         //!< interpreter dispatch lowered to else-if
                        //!< chains (workload/frontier.hpp "interp")
    DataDependent,      //!< regime-switching data-dependent branches
                        //!< ("datadep": sorted / walk / noise streams)
    LongPeriodNest,     //!< co-prime counters and long-period loop
                        //!< patterns ("nestloop" shapes)
};

/** Number of FuzzShape values (for enumeration in tests). */
inline constexpr unsigned kFuzzShapeCount = 11;

/** Human-readable shape name. */
const char *fuzzShapeName(FuzzShape shape);

/**
 * Append one shape's segment to @p out, emitting exactly @p conditionals
 * conditional branches (plus any non-conditional records the shape
 * interleaves). Deterministic given the Rng state.
 */
void appendFuzzSegment(trace::Trace &out, FuzzShape shape, Rng &rng,
                       uint64_t conditionals);

/**
 * Build a fuzz trace of roughly @p conditionals conditional branches
 * (exactly that many, spread over 1..4 seed-chosen segments). The trace
 * is named "fuzz-<seed>" and records the seed.
 */
trace::Trace fuzzTrace(uint64_t seed, uint64_t conditionals = 2000);

/**
 * Return a corrupted copy of @p bytes (a serialized binary trace). The
 * mutation is chosen from the seed; the result is guaranteed to differ
 * from the input. Mutations targeting the header (magic, version,
 * record count, kind bytes, truncation) make readBinary() throw; a
 * payload bit flip may instead yield a different-but-valid trace, which
 * is also a legitimate fuzz outcome.
 */
std::string corruptBytes(const std::string &bytes, uint64_t seed);

} // namespace copra::check

