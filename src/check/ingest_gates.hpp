/**
 * @file
 * Ingestion gates: end-to-end verification of the foreign-trace path
 * (trace/ingest.hpp → trace_io v2 → SoA replay) over a committed
 * reference sample plus fuzzed corruption.
 *
 * The gates prove, on every run:
 *
 *  - reference-ingest: the committed sample foreign trace parses, has
 *    conditionals, and normalization is idempotent.
 *  - stream-mmap-identity: the ingested trace, emitted as a cache-v2
 *    file, decodes byte-identically through loadBinary (stream decode)
 *    and loadBinaryMapped (mmap column adoption) — every SoA column,
 *    the name, and the seed. This is the "SoA replay is byte-identical
 *    between the stream and mmap paths" contract the simulator's
 *    determinism rests on.
 *  - round-trip: records out of the v2 file equal the ingested records
 *    one-for-one.
 *  - cross-format: re-rendering the sample as native text and as CSV
 *    (with an explicit index column) and re-ingesting yields the same
 *    record sequence — the three grammars describe one trace.
 *  - corruption-fuzz: seed-ranged corrupted copies of the v2 bytes and
 *    of the text rendering must either throw on load/ingest or decode
 *    to a structurally valid trace; never crash, never silently
 *    truncate past validation.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace copra::check {

/** Configuration of an ingestion-gate run. */
struct IngestGateOptions
{
    std::string samplePath;       //!< committed foreign sample trace
    uint64_t corruptionSeeds = 64; //!< fuzzed corruptions per surface
    uint64_t seedBase = 1;        //!< first corruption seed
};

/** One gate violation. */
struct IngestGateFailure
{
    std::string gate; //!< "reference-ingest", "stream-mmap-identity",
                      //!< "round-trip", "cross-format",
                      //!< "corruption-fuzz"
    uint64_t seed = 0; //!< corruption seed (0 for deterministic gates)
    std::string detail;
};

/** Aggregate outcome of a run. */
struct IngestGateReport
{
    uint64_t gatesRun = 0; //!< individual checks performed
    std::vector<IngestGateFailure> failures;
    bool ok() const { return failures.empty(); }
};

/** Run every ingestion gate over the sample of @p options. */
IngestGateReport runIngestGates(const IngestGateOptions &options);

/** Human-readable report (one line per failure). */
std::string formatIngestGateReport(const IngestGateReport &report);

} // namespace copra::check
