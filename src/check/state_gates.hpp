/**
 * @file
 * Differential state gates: the runtime half of the predictor state
 * contract (DESIGN.md §14).
 *
 * The copra_lint sema pass proves every member field is *declared*
 * state, config, or transient; these gates prove the declarations are
 * *honest*. For every factory-roster predictor over a set of fuzzed
 * traces:
 *
 *  - byte-stability: snapshot() is a pure function of state — two
 *    consecutive snapshots are byte-identical, cold and warm, and
 *    restoring a snapshot then re-snapshotting reproduces it exactly.
 *  - reset-replay: reset() really forgets — a reset predictor hashes
 *    identically to a cold one and replays the trace to the identical
 *    prediction stream and final hash (the determinism gate).
 *  - round-trip: a clone restored from a mid-trace snapshot finishes
 *    the trace in lockstep with the original — prediction-for-
 *    prediction and hash-for-hash. A divergence means some live state
 *    escaped snapshotState(): the snapshot-completeness probe.
 *  - cold-restore: a cold snapshot restores into a fresh instance
 *    without panicking and hashes identically.
 *
 * The gates need no reference models — each predictor is diffed
 * against itself across snapshot/restore/reset seams, so the whole
 * roster is covered, not just the pairs ref_models.hpp reimplements.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/differential.hpp"

namespace copra::check {

/** One roster entry the gates run over. */
struct StatePredictor
{
    std::string spec; //!< factory spec, e.g. "pas:h=6,bht=5,s=3"
    PredictorFactory make;
};

/**
 * The default gate roster: every knownPredictors() family at
 * deliberately small geometries, for the same reason defaultCheckPairs
 * shrinks its tables — aliasing, allocation, and eviction paths must
 * actually run or the snapshots have nothing interesting to miss.
 */
std::vector<StatePredictor> defaultStateRoster();

/** Configuration of a state-gate campaign. */
struct StateGateOptions
{
    uint64_t seedBase = 900;      //!< first fuzz seed (inclusive)
    uint64_t traces = 8;          //!< fuzzed traces per roster entry
    uint64_t conditionals = 2000; //!< conditional branches per trace
};

/** One gate violation. */
struct StateGateFailure
{
    std::string spec; //!< roster entry
    std::string gate; //!< "byte-stability", "reset-replay",
                      //!< "round-trip", or "cold-restore"
    uint64_t seed = 0; //!< fuzz seed (0 for the cold gates)
    std::string detail;
};

/** Aggregate outcome of a campaign. */
struct StateGateReport
{
    uint64_t gatesRun = 0; //!< (spec, gate, trace) checks performed
    std::vector<StateGateFailure> failures;
    bool ok() const { return failures.empty(); }
};

/** Run every gate over @p roster for the seed range of @p options. */
StateGateReport runStateGates(const StateGateOptions &options,
                              const std::vector<StatePredictor> &roster
                              = defaultStateRoster());

/** Human-readable campaign summary (one line per failure). */
std::string formatStateGateReport(const StateGateReport &report);

/**
 * docs/STATE_BUDGETS.md, regenerated: a markdown table of every
 * factory spec's stateBits() cold and after a fixed deterministic fuzz
 * warmup (the two differ exactly for the dynamically allocated
 * predictors). The state_budgets_doc_drift ctest gate holds the
 * committed file to this output.
 */
std::string renderStateBudgets();

} // namespace copra::check
