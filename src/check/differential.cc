#include "check/differential.hpp"

#include <algorithm>
#include <span>
#include <sstream>
#include <unordered_map>

#include "check/fuzz.hpp"
#include "check/ref_models.hpp"
#include "obs/instruments.hpp"
#include "obs/registry.hpp"
#include "predictor/bimodal.hpp"
#include "predictor/block_pattern.hpp"
#include "predictor/fixed_pattern.hpp"
#include "predictor/hybrid.hpp"
#include "predictor/loop_predictor.hpp"
#include "predictor/perceptron.hpp"
#include "predictor/tage.hpp"
#include "predictor/tournament.hpp"
#include "predictor/two_level.hpp"
#include "sim/driver.hpp"
#include "util/logging.hpp"

namespace copra::check {

using predictor::PredictorPtr;
using predictor::TwoLevelConfig;
using trace::BranchRecord;
using trace::Trace;

// ---------------------------------------------------------------------------
// Prediction streams

std::vector<uint8_t>
scalarPredictions(const Trace &trace, predictor::Predictor &pred)
{
    std::vector<uint8_t> out;
    out.reserve(trace.conditionalCount());
    for (const BranchRecord &rec : trace.records()) {
        if (!rec.isConditional()) {
            pred.observe(rec);
            continue;
        }
        bool p = pred.predict(rec);
        pred.update(rec, rec.taken);
        out.push_back(p ? 1 : 0);
    }
    return out;
}

std::vector<uint8_t>
batchedPredictions(const Trace &trace, predictor::Predictor &pred)
{
    // Mirror the driver's historical AoS batching: maximal runs of
    // consecutive conditional records go through predictUpdateBatch; the
    // per-branch prediction is recovered from the correctness bit and
    // the outcome.
    std::span<const BranchRecord> records = trace.records();
    std::vector<uint8_t> out;
    out.reserve(trace.conditionalCount());
    std::vector<uint8_t> correct;
    size_t i = 0;
    while (i < records.size()) {
        if (!records[i].isConditional()) {
            pred.observe(records[i]);
            ++i;
            continue;
        }
        size_t end = i + 1;
        while (end < records.size() && records[end].isConditional())
            ++end;
        size_t count = end - i;
        if (correct.size() < count)
            correct.resize(count);
        std::span<const BranchRecord> batch(&records[i], count);
        pred.predictUpdateBatch(batch, correct.data());
        for (size_t k = 0; k < count; ++k) {
            bool prediction = correct[k] ? batch[k].taken : !batch[k].taken;
            out.push_back(prediction ? 1 : 0);
        }
        i = end;
    }
    return out;
}

std::vector<uint8_t>
soaPredictions(const Trace &trace, predictor::Predictor &pred)
{
    // Mirror sim::run exactly: conditional segments of the cached SoA
    // image go through predictUpdateSoa (the specialized column
    // kernels), non-conditionals through observe() in trace order.
    const trace::SoABlocks &soa = trace.soa();
    std::span<const BranchRecord> records = trace.records();
    std::vector<uint8_t> out;
    out.reserve(trace.conditionalCount());
    std::vector<uint8_t> correct;
    size_t pos = 0;
    for (const trace::SoABlocks::Segment &seg : soa.conditionalSegments()) {
        for (; pos < seg.begin; ++pos)
            pred.observe(records[pos]);
        if (correct.size() < seg.count)
            correct.resize(seg.count);
        predictor::SoaBatch batch{soa.pc() + seg.begin,
                                  soa.taken() + seg.begin,
                                  records.data() + seg.begin, seg.count};
        pred.predictUpdateSoa(batch, correct.data());
        const uint8_t *taken = batch.taken;
        for (size_t k = 0; k < seg.count; ++k) {
            bool prediction =
                correct[k] ? taken[k] != 0 : taken[k] == 0;
            out.push_back(prediction ? 1 : 0);
        }
        pos = seg.begin + seg.count;
    }
    for (; pos < records.size(); ++pos)
        pred.observe(records[pos]);
    return out;
}

// ---------------------------------------------------------------------------
// Diffing

namespace {

/** pc of the @p index-th conditional record. */
uint64_t
conditionalPc(const Trace &trace, size_t index)
{
    size_t seen = 0;
    for (const BranchRecord &rec : trace.records()) {
        if (!rec.isConditional())
            continue;
        if (seen == index)
            return rec.pc;
        ++seen;
    }
    return 0;
}

/** Diff two prediction streams; append at most one mismatch. */
void
diffStreams(const Trace &trace, const std::string &pair,
            const std::string &path, const std::vector<uint8_t> &expected,
            const std::vector<uint8_t> &got, std::vector<Mismatch> &out)
{
    size_t n = std::min(expected.size(), got.size());
    for (size_t i = 0; i < n; ++i) {
        if (expected[i] != got[i]) {
            Mismatch m;
            m.pair = pair;
            m.path = path;
            m.index = i;
            m.pc = conditionalPc(trace, i);
            m.expected = expected[i] != 0;
            m.got = got[i] != 0;
            out.push_back(m);
            return;
        }
    }
    if (expected.size() != got.size()) {
        Mismatch m;
        m.pair = pair;
        m.path = path;
        m.index = Mismatch::kAggregate;
        m.detail = "stream length " + std::to_string(got.size()) +
            " != " + std::to_string(expected.size());
        out.push_back(m);
    }
}

uint64_t
correctCount(const Trace &trace, const std::vector<uint8_t> &predictions)
{
    uint64_t n = 0;
    size_t i = 0;
    for (const BranchRecord &rec : trace.records()) {
        if (!rec.isConditional())
            continue;
        if (i < predictions.size() && (predictions[i] != 0) == rec.taken)
            ++n;
        ++i;
    }
    return n;
}

void
aggregateMismatch(const std::string &pair, const std::string &path,
                  uint64_t expected, uint64_t got,
                  std::vector<Mismatch> &out)
{
    if (expected == got)
        return;
    Mismatch m;
    m.pair = pair;
    m.path = path;
    m.index = Mismatch::kAggregate;
    m.detail = "correct count " + std::to_string(got) + " != " +
        std::to_string(expected);
    out.push_back(m);
}

} // namespace

DiffResult
diffPair(const Trace &trace, const CheckPair &pair, bool check_parallel)
{
    DiffResult result;

    PredictorPtr ref = pair.reference();
    std::vector<uint8_t> want = scalarPredictions(trace, *ref);
    uint64_t want_correct = correctCount(trace, want);

    PredictorPtr scalar = pair.optimized();
    diffStreams(trace, pair.name, "scalar", want,
                scalarPredictions(trace, *scalar), result.mismatches);

    PredictorPtr batched = pair.optimized();
    diffStreams(trace, pair.name, "batched", want,
                batchedPredictions(trace, *batched), result.mismatches);

    PredictorPtr soa = pair.optimized();
    diffStreams(trace, pair.name, "soa", want,
                soaPredictions(trace, *soa), result.mismatches);

    // The driver itself: aggregate counts must agree with the reference
    // stream even though sim::run only reports totals.
    PredictorPtr driven = pair.optimized();
    sim::RunResult run = sim::run(trace, *driven);
    aggregateMismatch(pair.name, "run", want_correct, run.correct,
                      result.mismatches);
    aggregateMismatch(pair.name, "run", trace.conditionalCount(),
                      run.dynamicBranches, result.mismatches);

    if (check_parallel) {
        // Several fresh instances sharded across the pool must all land
        // on the reference count (and on each other).
        PredictorPtr p1 = pair.optimized();
        PredictorPtr p2 = pair.optimized();
        PredictorPtr pr = pair.reference();
        std::vector<predictor::Predictor *> preds{p1.get(), p2.get(),
                                                  pr.get()};
        std::vector<sim::RunResult> results =
            sim::runAllParallel(trace, preds);
        for (const sim::RunResult &r : results) {
            aggregateMismatch(pair.name, "parallel", want_correct,
                              r.correct, result.mismatches);
        }
    }
    return result;
}

// ---------------------------------------------------------------------------
// Minimizer

namespace {

Trace
rebuild(const Trace &like, const std::vector<BranchRecord> &records)
{
    Trace out(like.name(), like.seed());
    out.reserve(records.size());
    for (const BranchRecord &rec : records)
        out.append(rec);
    return out;
}

} // namespace

Trace
minimizeTrace(const Trace &trace,
              const std::function<bool(const Trace &)> &still_fails,
              unsigned max_rounds)
{
    std::span<const BranchRecord> window = trace.records();
    std::vector<BranchRecord> records(window.begin(), window.end());
    size_t chunk = std::max<size_t>(1, records.size() / 2);
    unsigned rounds = 0;
    while (rounds < max_rounds) {
        ++rounds;
        bool removed = false;
        size_t pos = 0;
        while (pos < records.size()) {
            size_t len = std::min(chunk, records.size() - pos);
            std::vector<BranchRecord> candidate;
            candidate.reserve(records.size() - len);
            candidate.insert(candidate.end(), records.begin(),
                             records.begin() +
                                 static_cast<ptrdiff_t>(pos));
            candidate.insert(candidate.end(),
                             records.begin() +
                                 static_cast<ptrdiff_t>(pos + len),
                             records.end());
            obs::count(obs::ids().checkDiffShrinkSteps);
            if (still_fails(rebuild(trace, candidate))) {
                records = std::move(candidate);
                removed = true;
                // Keep pos: the next chunk has slid into this position.
            } else {
                pos += len;
            }
        }
        if (!removed) {
            if (chunk == 1)
                break; // single-record granularity and nothing removable
            chunk = std::max<size_t>(1, chunk / 2);
        }
    }
    return rebuild(trace, records);
}

// ---------------------------------------------------------------------------
// Pair roster

namespace {

CheckPair
twoLevelPair(const TwoLevelConfig &config)
{
    return {config.label,
            [config] { return std::make_unique<predictor::TwoLevel>(config); },
            [config] { return std::make_unique<RefTwoLevel>(config); }};
}

/**
 * The small-geometry TAGE used by the default pairs and the allocation
 * self-test: tiny tables so fuzzed tag aliasing lands, a short aging
 * period so the use-bit halving path runs inside a 2000-branch trace.
 */
predictor::TageConfig
smallTageConfig()
{
    predictor::TageConfig config;
    config.baseBits = 6;
    config.tableBits = 5;
    config.tagBits = 5;
    config.numTables = 4;
    config.minHistory = 3;
    config.maxHistory = 20;
    config.agingPeriod = 512;
    config.label = "tage(small)";
    return config;
}

/** Small hashed perceptron for the pairs and the wraparound self-test:
 * a tight threshold counter so adaptation fires within one fuzz trace,
 * and narrow weight rails so saturation (the path the wrap bug lives
 * on) is reached routinely instead of needing 64 unidirectional
 * trainings of one weight. */
predictor::PerceptronConfig
smallPerceptronConfig()
{
    predictor::PerceptronConfig config;
    config.tableBits = 6;
    config.numTables = 4;
    config.segmentBits = 5;
    config.weightMin = -8;
    config.weightMax = 7;
    config.initialTheta = 8;
    config.thetaCounterSat = 32;
    config.label = "perceptron(small)";
    return config;
}

/** Small tournament with a 2-set 2-way BTB: misses and evictions are
 * constant under fuzz, so the miss model is differentially visible. */
predictor::TournamentConfig
smallTournamentConfig()
{
    predictor::TournamentConfig config;
    config.globalHistory = 5;
    config.localHistory = 5;
    config.localBhtBits = 4;
    config.localSelectBits = 2;
    config.chooserBits = 4;
    config.btb = predictor::BtbConfig::finite(2, 2);
    config.returnStackDepth = 4;
    config.label = "tournament(small)";
    return config;
}

} // namespace

std::vector<CheckPair>
defaultCheckPairs()
{
    std::vector<CheckPair> pairs;

    // Two-level family. Small geometries on purpose: fuzzed aliasing
    // must actually collide for index arithmetic to be exercised.
    pairs.push_back(twoLevelPair(TwoLevelConfig::gshare(8)));
    pairs.push_back(twoLevelPair(TwoLevelConfig::gshare(16)));
    {
        TwoLevelConfig narrow = TwoLevelConfig::gshare(6);
        narrow.counterBits = 1;
        narrow.label = "gshare(h=6,cbits=1)";
        pairs.push_back(twoLevelPair(narrow));
        TwoLevelConfig wide = TwoLevelConfig::gshare(6);
        wide.counterBits = 3;
        wide.label = "gshare(h=6,cbits=3)";
        pairs.push_back(twoLevelPair(wide));
    }
    pairs.push_back(twoLevelPair(TwoLevelConfig::gag(7)));
    pairs.push_back(twoLevelPair(TwoLevelConfig::gas(5, 3)));
    pairs.push_back(twoLevelPair(TwoLevelConfig::pas(7, 5, 3)));
    pairs.push_back(twoLevelPair(TwoLevelConfig::pag(6, 4)));

    pairs.push_back(
        {"bimodal(6b)",
         [] { return std::make_unique<predictor::Bimodal>(6); },
         [] { return std::make_unique<RefBimodal>(6); }});

    pairs.push_back(
        {"loop",
         [] { return std::make_unique<predictor::LoopPredictor>(); },
         [] { return std::make_unique<RefLoop>(); }});

    pairs.push_back(
        {"block-pattern",
         [] { return std::make_unique<predictor::BlockPatternPredictor>(); },
         [] { return std::make_unique<RefBlockPattern>(); }});

    for (unsigned k : {1u, 3u, 32u}) {
        pairs.push_back(
            {"fixed-k(" + std::to_string(k) + ")",
             [k] { return std::make_unique<predictor::FixedPattern>(k); },
             [k] { return std::make_unique<RefFixedPattern>(k); }});
    }

    pairs.push_back(
        {"hybrid(gshare(7),pas(5,4,2))",
         [] {
             return std::make_unique<predictor::Hybrid>(
                 std::make_unique<predictor::TwoLevel>(
                     TwoLevelConfig::gshare(7)),
                 std::make_unique<predictor::TwoLevel>(
                     TwoLevelConfig::pas(5, 4, 2)),
                 6);
         },
         [] {
             return std::make_unique<RefHybrid>(
                 std::make_unique<RefTwoLevel>(TwoLevelConfig::gshare(7)),
                 std::make_unique<RefTwoLevel>(TwoLevelConfig::pas(5, 4, 2)),
                 6);
         }});

    // Modern roster, small geometries (see the config helpers above).
    {
        predictor::TageConfig config = smallTageConfig();
        pairs.push_back(
            {config.label,
             [config] { return std::make_unique<predictor::Tage>(config); },
             [config] { return std::make_unique<RefTage>(config); }});
    }
    {
        predictor::PerceptronConfig config = smallPerceptronConfig();
        pairs.push_back(
            {config.label,
             [config] {
                 return std::make_unique<predictor::Perceptron>(config);
             },
             [config] { return std::make_unique<RefPerceptron>(config); }});
    }
    {
        predictor::TournamentConfig config = smallTournamentConfig();
        pairs.push_back(
            {config.label,
             [config] {
                 return std::make_unique<predictor::Tournament>(config);
             },
             [config] { return std::make_unique<RefTournament>(config); }});
        predictor::TournamentConfig perfect = smallTournamentConfig();
        perfect.btb = predictor::BtbConfig::perfect();
        perfect.label = "tournament(perfect-btb)";
        pairs.push_back(
            {perfect.label,
             [perfect] {
                 return std::make_unique<predictor::Tournament>(perfect);
             },
             [perfect] {
                 return std::make_unique<RefTournament>(perfect);
             }});
    }

    return pairs;
}

// ---------------------------------------------------------------------------
// Campaign driver

SuiteReport
runCheckSuite(const SuiteOptions &options,
              const std::vector<CheckPair> &pairs)
{
    SuiteReport report;
    for (uint64_t t = 0; t < options.traces; ++t) {
        uint64_t seed = options.seedBase + t;
        Trace trace = fuzzTrace(seed, options.conditionals);
        ++report.tracesRun;
        obs::count(obs::ids().checkDiffTraces);
        for (const CheckPair &pair : pairs) {
            ++report.comparisons;
            obs::count(obs::ids().checkDiffComparisons);
            DiffResult diff =
                diffPair(trace, pair, options.checkParallel);
            if (diff.ok())
                continue;
            obs::count(obs::ids().checkDiffMismatches,
                       diff.mismatches.size());
            SuiteFailure failure;
            failure.pair = pair.name;
            failure.seed = seed;
            failure.first = diff.mismatches.front();
            if (options.minimize) {
                // Shrink against the cheap paths only (scalar+batched);
                // the parallel path adds nothing to localization.
                failure.reproducer = minimizeTrace(
                    trace, [&pair](const Trace &candidate) {
                        return !diffPair(candidate, pair, false).ok();
                    });
            } else {
                failure.reproducer = trace;
            }
            report.failures.push_back(std::move(failure));
        }
    }
    return report;
}

std::string
formatReport(const SuiteReport &report)
{
    std::ostringstream os;
    os << "differential check: " << report.tracesRun << " traces, "
       << report.comparisons << " replays, " << report.failures.size()
       << " failure(s)\n";
    for (const SuiteFailure &f : report.failures) {
        os << "  FAIL pair=" << f.pair << " seed=" << f.seed << " path="
           << f.first.path;
        if (f.first.index == Mismatch::kAggregate) {
            os << " (" << f.first.detail << ")";
        } else {
            os << " branch#" << f.first.index << " pc=0x" << std::hex
               << f.first.pc << std::dec << " expected="
               << (f.first.expected ? 'T' : 'N') << " got="
               << (f.first.got ? 'T' : 'N');
        }
        os << " reproducer=" << f.reproducer.size() << " records\n";
    }
    return os.str();
}

// ---------------------------------------------------------------------------
// Injected bugs (harness self-test)

namespace {

/**
 * PAs with the classic off-by-one: predictions read the right BHT row,
 * but update() trains the history of the *neighboring* row.
 */
class BuggyPas : public predictor::Predictor
{
  public:
    explicit BuggyPas(const TwoLevelConfig &config)
        : config_(config)
    {
        historyMask_ = (uint64_t(1) << config.historyBits) - 1;
        phtMask_ = (uint64_t(1) << config.phtBits) - 1;
        histories_.assign(uint64_t(1) << config.bhtBits, 0);
        pht_.assign(uint64_t(1) << config.phtBits, 1);
    }

    bool
    predict(const trace::BranchRecord &br) noexcept override
    {
        return pht_[index(br.pc, row(br.pc))] > 1;
    }

    void
    update(const trace::BranchRecord &br, bool taken) noexcept override
    {
        uint8_t &counter = pht_[index(br.pc, row(br.pc))];
        if (taken && counter < 3)
            ++counter;
        else if (!taken && counter > 0)
            --counter;
        // BUG: trains the neighboring history row.
        uint64_t wrong = (row(br.pc) + 1) % histories_.size();
        histories_[wrong] =
            ((histories_[wrong] << 1) | (taken ? 1 : 0)) & historyMask_;
    }

    void
    reset() override
    {
        std::fill(histories_.begin(), histories_.end(), 0);
        std::fill(pht_.begin(), pht_.end(), 1);
    }

    std::string name() const override { return "buggy-" + config_.label; }

  private:
    uint64_t
    row(uint64_t pc) const
    {
        return (pc >> 2) & (histories_.size() - 1);
    }

    uint64_t
    index(uint64_t pc, uint64_t r) const
    {
        uint64_t hist = histories_[r] & historyMask_;
        uint64_t select =
            (pc >> 2) & ((uint64_t(1) << config_.pcSelectBits) - 1);
        return ((select << config_.historyBits) | hist) & phtMask_;
    }

    TwoLevelConfig config_;
    uint64_t historyMask_;
    uint64_t phtMask_;
    std::vector<uint64_t> histories_;
    std::vector<uint8_t> pht_;
};

/**
 * gshare whose batch path predicts each branch *before* applying the
 * previous branch's update — the scalar path is untouched, so only the
 * batched/run/parallel comparisons can catch it.
 */
class BatchStaleGshare : public predictor::TwoLevel
{
  public:
    using TwoLevel::TwoLevel;

    uint64_t
    predictUpdateBatch(std::span<const trace::BranchRecord> batch,
                       uint8_t *correct_out) noexcept override
    {
        uint64_t n_correct = 0;
        bool have_pending = false;
        trace::BranchRecord pending;
        size_t i = 0;
        for (const trace::BranchRecord &br : batch) {
            bool prediction = predict(br); // BUG: pending update missing
            if (have_pending)
                update(pending, pending.taken);
            pending = br;
            have_pending = true;
            bool correct = prediction == br.taken;
            n_correct += correct ? 1 : 0;
            if (correct_out)
                correct_out[i] = correct ? 1 : 0;
            ++i;
        }
        if (have_pending)
            update(pending, pending.taken);
        return n_correct;
    }
};

/**
 * gshare whose SoA kernel path trains the counter and history *before*
 * predicting each branch. The scalar, batched and default paths all
 * inherit correct TwoLevel behaviour, so only the "soa" stream (and the
 * sim::run aggregates built on it) can catch this — the self-test that
 * proves the harness actually exercises the column-kernel path.
 */
class SoaPrematureTrainGshare : public predictor::TwoLevel
{
  public:
    using TwoLevel::TwoLevel;

    uint64_t
    predictUpdateSoa(const predictor::SoaBatch &batch,
                     uint8_t *correct_out) noexcept override
    {
        uint64_t n_correct = 0;
        for (size_t i = 0; i < batch.count; ++i) {
            const trace::BranchRecord &br = batch.records[i];
            update(br, br.taken); // BUG: trains before predicting
            bool prediction = predict(br);
            bool correct = prediction == br.taken;
            n_correct += correct ? 1 : 0;
            if (correct_out)
                correct_out[i] = correct ? 1 : 0;
        }
        return n_correct;
    }
};

/** Loop predictor that learns trip counts one too large. */
class BuggyLoop : public predictor::Predictor
{
  public:
    bool
    predict(const trace::BranchRecord &br) noexcept override
    {
        auto it = table_.find(br.pc);
        if (it == table_.end())
            return true;
        const State &st = it->second;
        return st.run < st.trip ? st.dir : !st.dir;
    }

    void
    update(const trace::BranchRecord &br, bool taken) noexcept override
    {
        auto it = table_.find(br.pc);
        if (it == table_.end()) {
            table_[br.pc] = State{taken, 1, 255};
            return;
        }
        State &st = it->second;
        if (taken == st.dir) {
            if (st.run < 255)
                ++st.run;
        } else if (st.run == 0) {
            st = State{taken, 1, 255};
        } else {
            st.trip = st.run + 1; // BUG: off by one
            st.run = 0;
        }
    }

    void reset() override { table_.clear(); }
    std::string name() const override { return "buggy-loop"; }

  private:
    struct State
    {
        bool dir;
        int run;
        int trip;
    };
    std::unordered_map<uint64_t, State> table_;
};

/**
 * TAGE whose freshly allocated entries start weakly *against* the
 * observed outcome. Lookup, training, aging and the provider chain are
 * all inherited intact — only allocateEntry (the allocation path) is
 * wrong, so catching this proves the fuzz corpus actually drives
 * mispredict-triggered allocations.
 */
class TageAllocWrongDirectionBug : public predictor::Tage
{
  public:
    using Tage::Tage;

  protected:
    void
    allocateEntry(Entry &slot, uint16_t tag, bool taken) noexcept override
    {
        slot.tag = tag;
        uint8_t weak_taken =
            uint8_t(1) << (config().counterBits - 1);
        // BUG: inverted — initializes weakly against the outcome.
        slot.ctr = taken ? uint8_t(weak_taken - 1) : weak_taken;
        slot.useful = 0;
    }
};

/**
 * Perceptron whose weights wrap at the saturation bounds instead of
 * clamping — the classic missing-saturation bug, visible only once
 * training pushes some weight to a rail.
 */
class PerceptronWeightWrapBug : public predictor::Perceptron
{
  public:
    using Perceptron::Perceptron;

  protected:
    int
    clampWeight(int weight, bool taken) const noexcept override
    {
        int next = weight + (taken ? 1 : -1);
        // BUG: wraps to the opposite rail instead of saturating.
        if (next > config().weightMax)
            return config().weightMin;
        if (next < config().weightMin)
            return config().weightMax;
        return next;
    }
};

/**
 * Tournament with the BTB miss model disabled: taken predictions
 * survive BTB misses. Both direction components and the chooser are
 * inherited intact, so only traces that actually miss the (tiny) BTB
 * expose it.
 */
class TournamentBtbIgnoreMissBug : public predictor::Tournament
{
  public:
    using Tournament::Tournament;

  protected:
    bool
    btbHit(uint64_t) const noexcept override
    {
        return true; // BUG: every target is assumed buffered
    }
};

/**
 * TAGE with hidden state: allocation consults a per-tag ledger kept in
 * an unregistered member, biasing repeat allocations against the
 * observed outcome. reset() remembers to clear the ledger — so the
 * reset-replay gate holds — but the inherited snapshotState() cannot
 * see it, so a clone restored from a snapshot allocates differently
 * from the original. This is the defect class the round-trip
 * (snapshot-completeness) state gate exists to catch; the lint sema
 * pass would flag the member too, had the class lived under
 * src/predictor/.
 */
class TageShadowStateBug : public predictor::Tage
{
  public:
    using Tage::Tage;

    void
    reset() override
    {
        Tage::reset();
        shadow_.clear();
    }

  protected:
    void
    allocateEntry(Entry &slot, uint16_t tag, bool taken) noexcept override
    {
        uint8_t &n = shadow_[tag];
        if (n < 255)
            ++n;
        // BUG: repeat allocations consult the unregistered ledger.
        Tage::allocateEntry(slot, tag, n > 1 ? !taken : taken);
    }

  private:
    std::unordered_map<uint16_t, uint8_t> shadow_; //!< hidden state
};

/**
 * Gshare whose SoA batch path heap-allocates a scratch buffer per
 * batch while predicting bit-identically to the clean implementation.
 * No differential path can see it, and copra_lint's hot-region pass
 * has no jurisdiction here (src/check/ is excluded as harness code) —
 * exactly the defect class the runtime allocation gate
 * (check/hot_gates.hpp) exists for, and the --inject self-test
 * requires that gate to catch it. The allocation inside a noexcept
 * override is part of the bug: a real regression would look the same.
 */
class HotPathAllocBug : public predictor::TwoLevel
{
  public:
    using TwoLevel::TwoLevel;

    uint64_t
    predictUpdateSoa(const predictor::SoaBatch &batch,
                     uint8_t *correct_out) noexcept override
    {
        // BUG: fresh heap scratch on every batch of the hot path.
        // (correct_out is nullptr when the caller keeps no ledger.)
        std::vector<uint8_t> scratch(batch.count);
        uint64_t correct =
            TwoLevel::predictUpdateSoa(batch, scratch.data());
        if (correct_out != nullptr)
            for (size_t i = 0; i < batch.count; ++i)
                correct_out[i] = scratch[i];
        return correct;
    }
};

} // namespace

const char *
injectedBugName(InjectedBug bug)
{
    switch (bug) {
      case InjectedBug::PasHistoryOffByOne:
        return "pas-history-off-by-one";
      case InjectedBug::GshareBatchStaleHistory:
        return "gshare-batch-stale-history";
      case InjectedBug::LoopTripOffByOne:
        return "loop-trip-off-by-one";
      case InjectedBug::GshareSoaPrematureTrain:
        return "gshare-soa-premature-train";
      case InjectedBug::TageAllocWrongDirection:
        return "tage-alloc-wrong-direction";
      case InjectedBug::PerceptronWeightWrap:
        return "perceptron-weight-wrap";
      case InjectedBug::TournamentBtbIgnoreMiss:
        return "tournament-btb-ignore-miss";
      case InjectedBug::TageShadowState:
        return "tage-shadow-state";
      case InjectedBug::HotPathAlloc:
        return "hot-path-alloc";
    }
    return "unknown";
}

CheckPair
injectedBugPair(InjectedBug bug)
{
    switch (bug) {
      case InjectedBug::PasHistoryOffByOne: {
        TwoLevelConfig config = TwoLevelConfig::pas(7, 5, 3);
        return {std::string("injected:") + injectedBugName(bug),
                [config] { return std::make_unique<BuggyPas>(config); },
                [config] { return std::make_unique<RefTwoLevel>(config); }};
      }
      case InjectedBug::GshareBatchStaleHistory: {
        TwoLevelConfig config = TwoLevelConfig::gshare(8);
        return {std::string("injected:") + injectedBugName(bug),
                [config] {
                    return std::make_unique<BatchStaleGshare>(config);
                },
                [config] { return std::make_unique<RefTwoLevel>(config); }};
      }
      case InjectedBug::LoopTripOffByOne:
        return {std::string("injected:") + injectedBugName(bug),
                [] { return std::make_unique<BuggyLoop>(); },
                [] { return std::make_unique<RefLoop>(); }};
      case InjectedBug::GshareSoaPrematureTrain: {
        TwoLevelConfig config = TwoLevelConfig::gshare(8);
        return {std::string("injected:") + injectedBugName(bug),
                [config] {
                    return std::make_unique<SoaPrematureTrainGshare>(
                        config);
                },
                [config] { return std::make_unique<RefTwoLevel>(config); }};
      }
      case InjectedBug::TageAllocWrongDirection: {
        predictor::TageConfig config = smallTageConfig();
        return {std::string("injected:") + injectedBugName(bug),
                [config] {
                    return std::make_unique<TageAllocWrongDirectionBug>(
                        config);
                },
                [config] { return std::make_unique<RefTage>(config); }};
      }
      case InjectedBug::PerceptronWeightWrap: {
        predictor::PerceptronConfig config = smallPerceptronConfig();
        return {std::string("injected:") + injectedBugName(bug),
                [config] {
                    return std::make_unique<PerceptronWeightWrapBug>(
                        config);
                },
                [config] {
                    return std::make_unique<RefPerceptron>(config);
                }};
      }
      case InjectedBug::TournamentBtbIgnoreMiss: {
        predictor::TournamentConfig config = smallTournamentConfig();
        return {std::string("injected:") + injectedBugName(bug),
                [config] {
                    return std::make_unique<TournamentBtbIgnoreMissBug>(
                        config);
                },
                [config] {
                    return std::make_unique<RefTournament>(config);
                }};
      }
      case InjectedBug::TageShadowState: {
        predictor::TageConfig config = smallTageConfig();
        return {std::string("injected:") + injectedBugName(bug),
                [config] {
                    return std::make_unique<TageShadowStateBug>(config);
                },
                [config] { return std::make_unique<RefTage>(config); }};
      }
      case InjectedBug::HotPathAlloc: {
        TwoLevelConfig config = TwoLevelConfig::gshare(8);
        return {std::string("injected:") + injectedBugName(bug),
                [config] {
                    return std::make_unique<HotPathAllocBug>(config);
                },
                [config] { return std::make_unique<RefTwoLevel>(config); }};
      }
    }
    panic("unknown injected bug");
}

} // namespace copra::check
