#include "check/ref_models.hpp"

#include "util/logging.hpp"

namespace copra::check {

using predictor::TwoLevelConfig;

// ---------------------------------------------------------------------------
// RefTwoLevel

RefTwoLevel::RefTwoLevel(const TwoLevelConfig &config)
    : config_(config)
{
    fatalIf(config.historyBits == 0 || config.historyBits > 32,
            "ref two-level history bits must be in 1..32");
    fatalIf(config.counterBits == 0 || config.counterBits > 8,
            "ref two-level counter bits must be in 1..8");
    counterMax_ = (1 << config.counterBits) - 1;
    // Weakly-not-taken: the largest value still predicting not-taken.
    counterInit_ = (counterMax_ + 1) / 2 - 1;
}

uint64_t
RefTwoLevel::historyOf(uint64_t pc) const
{
    uint64_t row = 0;
    if (config_.scope == TwoLevelConfig::Scope::PerAddress) {
        // Branches are word aligned; the BHT is indexed by the low
        // bhtBits bits of the word address.
        row = (pc >> 2) % (uint64_t(1) << config_.bhtBits);
    }
    auto it = histories_.find(row);
    return it == histories_.end() ? 0 : it->second;
}

uint64_t
RefTwoLevel::phtIndexOf(uint64_t pc) const
{
    uint64_t history_mask = (uint64_t(1) << config_.historyBits) - 1;
    uint64_t pht_entries = uint64_t(1) << config_.phtBits;
    uint64_t hist = historyOf(pc) & history_mask;
    uint64_t word = pc >> 2;
    switch (config_.index) {
      case TwoLevelConfig::Index::HistoryOnly:
        return hist % pht_entries;
      case TwoLevelConfig::Index::Concat: {
        uint64_t select = word % (uint64_t(1) << config_.pcSelectBits);
        return ((select << config_.historyBits) | hist) % pht_entries;
      }
      case TwoLevelConfig::Index::Xor:
        return (hist ^ word) % pht_entries;
    }
    return 0;
}

int
RefTwoLevel::counterOf(uint64_t index) const
{
    auto it = counters_.find(index);
    return it == counters_.end() ? counterInit_ : it->second;
}

bool
RefTwoLevel::predict(const trace::BranchRecord &br)
{
    // Taken iff the counter is past the weakly-not-taken init value,
    // i.e. its most significant bit is set.
    return counterOf(phtIndexOf(br.pc)) > counterInit_;
}

void
RefTwoLevel::update(const trace::BranchRecord &br, bool taken)
{
    // Train the counter selected under the *pre-update* history, then
    // shift the outcome into the first-level history.
    uint64_t index = phtIndexOf(br.pc);
    int counter = counterOf(index);
    if (taken)
        counter = counter + 1;
    else
        counter = counter - 1;
    if (counter < 0)
        counter = 0;
    if (counter > counterMax_)
        counter = counterMax_;
    counters_[index] = counter;

    uint64_t row = 0;
    if (config_.scope == TwoLevelConfig::Scope::PerAddress)
        row = (br.pc >> 2) % (uint64_t(1) << config_.bhtBits);
    uint64_t history_mask = (uint64_t(1) << config_.historyBits) - 1;
    uint64_t hist = 0;
    auto it = histories_.find(row);
    if (it != histories_.end())
        hist = it->second;
    histories_[row] = ((hist << 1) | (taken ? 1 : 0)) & history_mask;
}

void
RefTwoLevel::reset()
{
    histories_.clear();
    counters_.clear();
}

std::string
RefTwoLevel::name() const
{
    return "ref-" + config_.label;
}

// ---------------------------------------------------------------------------
// RefBimodal

RefBimodal::RefBimodal(unsigned table_bits)
    : tableBits_(table_bits)
{
    fatalIf(table_bits == 0 || table_bits > 30,
            "ref bimodal table bits must be in 1..30");
}

bool
RefBimodal::predict(const trace::BranchRecord &br)
{
    uint64_t index = (br.pc >> 2) % (uint64_t(1) << tableBits_);
    auto it = counters_.find(index);
    int counter = it == counters_.end() ? 1 : it->second;
    return counter >= 2;
}

void
RefBimodal::update(const trace::BranchRecord &br, bool taken)
{
    uint64_t index = (br.pc >> 2) % (uint64_t(1) << tableBits_);
    auto it = counters_.find(index);
    int counter = it == counters_.end() ? 1 : it->second;
    counter += taken ? 1 : -1;
    if (counter < 0)
        counter = 0;
    if (counter > 3)
        counter = 3;
    counters_[index] = counter;
}

void
RefBimodal::reset()
{
    counters_.clear();
}

std::string
RefBimodal::name() const
{
    return "ref-bimodal(" + std::to_string(tableBits_) + "b)";
}

// ---------------------------------------------------------------------------
// RefLoop

bool
RefLoop::predict(const trace::BranchRecord &br)
{
    auto it = table_.find(br.pc);
    if (it == table_.end())
        return true; // cold: default taken
    const State &st = it->second;
    // Body direction for the learned trip count, then one exit
    // prediction of the opposite direction.
    if (st.run < st.trip)
        return st.dir;
    return !st.dir;
}

void
RefLoop::update(const trace::BranchRecord &br, bool taken)
{
    auto it = table_.find(br.pc);
    if (it == table_.end()) {
        State st;
        st.dir = taken;
        st.run = 1;
        st.trip = 255;
        table_[br.pc] = st;
        return;
    }
    State &st = it->second;
    if (taken == st.dir) {
        if (st.run < 255)
            st.run = st.run + 1;
    } else if (st.run == 0) {
        // Two consecutive opposite outcomes: the body direction we
        // learned was wrong (or this is a while-type branch); flip it.
        st.dir = taken;
        st.run = 1;
        st.trip = 255;
    } else {
        // The run ended: its length is the new learned trip count.
        st.trip = st.run;
        st.run = 0;
    }
}

void
RefLoop::reset()
{
    table_.clear();
}

// ---------------------------------------------------------------------------
// RefBlockPattern

bool
RefBlockPattern::predict(const trace::BranchRecord &br)
{
    auto it = table_.find(br.pc);
    if (it == table_.end())
        return true; // cold: default taken
    const State &st = it->second;
    if (st.run < st.lastRun[st.dir ? 1 : 0])
        return st.dir;
    return !st.dir;
}

void
RefBlockPattern::update(const trace::BranchRecord &br, bool taken)
{
    auto it = table_.find(br.pc);
    if (it == table_.end()) {
        State st;
        st.dir = taken;
        st.run = 1;
        table_[br.pc] = st;
        return;
    }
    State &st = it->second;
    if (taken == st.dir) {
        if (st.run < 255)
            st.run = st.run + 1;
    } else {
        st.lastRun[st.dir ? 1 : 0] = st.run;
        st.dir = taken;
        st.run = 1;
    }
}

void
RefBlockPattern::reset()
{
    table_.clear();
}

// ---------------------------------------------------------------------------
// RefFixedPattern

RefFixedPattern::RefFixedPattern(unsigned k)
    : k_(k)
{
    fatalIf(k == 0 || k > 32, "ref fixed-pattern k must be in 1..32");
}

bool
RefFixedPattern::predict(const trace::BranchRecord &br)
{
    auto it = outcomes_.find(br.pc);
    if (it == outcomes_.end())
        return true;
    const std::vector<bool> &seen = it->second;
    if (seen.size() < k_)
        return true; // cold default until k outcomes exist
    return seen[seen.size() - k_];
}

void
RefFixedPattern::update(const trace::BranchRecord &br, bool taken)
{
    outcomes_[br.pc].push_back(taken);
}

void
RefFixedPattern::reset()
{
    outcomes_.clear();
}

std::string
RefFixedPattern::name() const
{
    return "ref-fixed-k(" + std::to_string(k_) + ")";
}

// ---------------------------------------------------------------------------
// RefHybrid

RefHybrid::RefHybrid(predictor::PredictorPtr a, predictor::PredictorPtr b,
                     unsigned chooser_bits)
    : a_(std::move(a)), b_(std::move(b)), chooserBits_(chooser_bits)
{
    fatalIf(!a_ || !b_, "ref hybrid needs two components");
    fatalIf(chooser_bits == 0 || chooser_bits > 24,
            "ref hybrid chooser bits must be in 1..24");
}

bool
RefHybrid::predict(const trace::BranchRecord &br)
{
    lastA_ = a_->predict(br);
    lastB_ = b_->predict(br);
    uint64_t index = (br.pc >> 2) % (uint64_t(1) << chooserBits_);
    auto it = chooser_.find(index);
    int counter = it == chooser_.end() ? 2 : it->second;
    // Counter >= 2 (weakly/strongly "A") selects component A.
    return counter >= 2 ? lastA_ : lastB_;
}

void
RefHybrid::update(const trace::BranchRecord &br, bool taken)
{
    bool correct_a = lastA_ == taken;
    bool correct_b = lastB_ == taken;
    if (correct_a != correct_b) {
        uint64_t index = (br.pc >> 2) % (uint64_t(1) << chooserBits_);
        auto it = chooser_.find(index);
        int counter = it == chooser_.end() ? 2 : it->second;
        counter += correct_a ? 1 : -1;
        if (counter < 0)
            counter = 0;
        if (counter > 3)
            counter = 3;
        chooser_[index] = counter;
    }
    a_->update(br, taken);
    b_->update(br, taken);
}

void
RefHybrid::reset()
{
    a_->reset();
    b_->reset();
    chooser_.clear();
}

std::string
RefHybrid::name() const
{
    return "ref-hybrid(" + a_->name() + "," + b_->name() + ")";
}

} // namespace copra::check
