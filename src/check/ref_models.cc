#include "check/ref_models.hpp"

#include "util/logging.hpp"

namespace copra::check {

using predictor::TwoLevelConfig;

uint64_t
refFold(const std::vector<bool> &history, unsigned length, unsigned width)
{
    // Outcome j (0 = newest) lands in output bit j % width: chunk
    // number j / width contributes its bit at in-chunk offset j % width,
    // and chunks XOR together.
    uint64_t out = 0;
    for (unsigned j = 0; j < length && j < history.size(); ++j) {
        bool bit = history[history.size() - 1 - j];
        if (bit)
            out ^= uint64_t(1) << (j % width);
    }
    return out;
}

// ---------------------------------------------------------------------------
// RefTwoLevel

RefTwoLevel::RefTwoLevel(const TwoLevelConfig &config)
    : config_(config)
{
    fatalIf(config.historyBits == 0 || config.historyBits > 32,
            "ref two-level history bits must be in 1..32");
    fatalIf(config.counterBits == 0 || config.counterBits > 8,
            "ref two-level counter bits must be in 1..8");
    counterMax_ = (1 << config.counterBits) - 1;
    // Weakly-not-taken: the largest value still predicting not-taken.
    counterInit_ = (counterMax_ + 1) / 2 - 1;
}

uint64_t
RefTwoLevel::historyOf(uint64_t pc) const
{
    uint64_t row = 0;
    if (config_.scope == TwoLevelConfig::Scope::PerAddress) {
        // Branches are word aligned; the BHT is indexed by the low
        // bhtBits bits of the word address.
        row = (pc >> 2) % (uint64_t(1) << config_.bhtBits);
    }
    auto it = histories_.find(row);
    return it == histories_.end() ? 0 : it->second;
}

uint64_t
RefTwoLevel::phtIndexOf(uint64_t pc) const
{
    uint64_t history_mask = (uint64_t(1) << config_.historyBits) - 1;
    uint64_t pht_entries = uint64_t(1) << config_.phtBits;
    uint64_t hist = historyOf(pc) & history_mask;
    uint64_t word = pc >> 2;
    switch (config_.index) {
      case TwoLevelConfig::Index::HistoryOnly:
        return hist % pht_entries;
      case TwoLevelConfig::Index::Concat: {
        uint64_t select = word % (uint64_t(1) << config_.pcSelectBits);
        return ((select << config_.historyBits) | hist) % pht_entries;
      }
      case TwoLevelConfig::Index::Xor:
        return (hist ^ word) % pht_entries;
    }
    return 0;
}

int
RefTwoLevel::counterOf(uint64_t index) const
{
    auto it = counters_.find(index);
    return it == counters_.end() ? counterInit_ : it->second;
}

bool
RefTwoLevel::predict(const trace::BranchRecord &br) noexcept
{
    // Taken iff the counter is past the weakly-not-taken init value,
    // i.e. its most significant bit is set.
    return counterOf(phtIndexOf(br.pc)) > counterInit_;
}

void
RefTwoLevel::update(const trace::BranchRecord &br, bool taken) noexcept
{
    // Train the counter selected under the *pre-update* history, then
    // shift the outcome into the first-level history.
    uint64_t index = phtIndexOf(br.pc);
    int counter = counterOf(index);
    if (taken)
        counter = counter + 1;
    else
        counter = counter - 1;
    if (counter < 0)
        counter = 0;
    if (counter > counterMax_)
        counter = counterMax_;
    counters_[index] = counter;

    uint64_t row = 0;
    if (config_.scope == TwoLevelConfig::Scope::PerAddress)
        row = (br.pc >> 2) % (uint64_t(1) << config_.bhtBits);
    uint64_t history_mask = (uint64_t(1) << config_.historyBits) - 1;
    uint64_t hist = 0;
    auto it = histories_.find(row);
    if (it != histories_.end())
        hist = it->second;
    histories_[row] = ((hist << 1) | (taken ? 1 : 0)) & history_mask;
}

void
RefTwoLevel::reset()
{
    histories_.clear();
    counters_.clear();
}

std::string
RefTwoLevel::name() const
{
    return "ref-" + config_.label;
}

// ---------------------------------------------------------------------------
// RefBimodal

RefBimodal::RefBimodal(unsigned table_bits)
    : tableBits_(table_bits)
{
    fatalIf(table_bits == 0 || table_bits > 30,
            "ref bimodal table bits must be in 1..30");
}

bool
RefBimodal::predict(const trace::BranchRecord &br) noexcept
{
    uint64_t index = (br.pc >> 2) % (uint64_t(1) << tableBits_);
    auto it = counters_.find(index);
    int counter = it == counters_.end() ? 1 : it->second;
    return counter >= 2;
}

void
RefBimodal::update(const trace::BranchRecord &br, bool taken) noexcept
{
    uint64_t index = (br.pc >> 2) % (uint64_t(1) << tableBits_);
    auto it = counters_.find(index);
    int counter = it == counters_.end() ? 1 : it->second;
    counter += taken ? 1 : -1;
    if (counter < 0)
        counter = 0;
    if (counter > 3)
        counter = 3;
    counters_[index] = counter;
}

void
RefBimodal::reset()
{
    counters_.clear();
}

std::string
RefBimodal::name() const
{
    return "ref-bimodal(" + std::to_string(tableBits_) + "b)";
}

// ---------------------------------------------------------------------------
// RefLoop

bool
RefLoop::predict(const trace::BranchRecord &br) noexcept
{
    auto it = table_.find(br.pc);
    if (it == table_.end())
        return true; // cold: default taken
    const State &st = it->second;
    // Body direction for the learned trip count, then one exit
    // prediction of the opposite direction.
    if (st.run < st.trip)
        return st.dir;
    return !st.dir;
}

void
RefLoop::update(const trace::BranchRecord &br, bool taken) noexcept
{
    auto it = table_.find(br.pc);
    if (it == table_.end()) {
        State st;
        st.dir = taken;
        st.run = 1;
        st.trip = 255;
        table_[br.pc] = st;
        return;
    }
    State &st = it->second;
    if (taken == st.dir) {
        if (st.run < 255)
            st.run = st.run + 1;
    } else if (st.run == 0) {
        // Two consecutive opposite outcomes: the body direction we
        // learned was wrong (or this is a while-type branch); flip it.
        st.dir = taken;
        st.run = 1;
        st.trip = 255;
    } else {
        // The run ended: its length is the new learned trip count.
        st.trip = st.run;
        st.run = 0;
    }
}

void
RefLoop::reset()
{
    table_.clear();
}

// ---------------------------------------------------------------------------
// RefBlockPattern

bool
RefBlockPattern::predict(const trace::BranchRecord &br) noexcept
{
    auto it = table_.find(br.pc);
    if (it == table_.end())
        return true; // cold: default taken
    const State &st = it->second;
    if (st.run < st.lastRun[st.dir ? 1 : 0])
        return st.dir;
    return !st.dir;
}

void
RefBlockPattern::update(const trace::BranchRecord &br, bool taken) noexcept
{
    auto it = table_.find(br.pc);
    if (it == table_.end()) {
        State st;
        st.dir = taken;
        st.run = 1;
        table_[br.pc] = st;
        return;
    }
    State &st = it->second;
    if (taken == st.dir) {
        if (st.run < 255)
            st.run = st.run + 1;
    } else {
        st.lastRun[st.dir ? 1 : 0] = st.run;
        st.dir = taken;
        st.run = 1;
    }
}

void
RefBlockPattern::reset()
{
    table_.clear();
}

// ---------------------------------------------------------------------------
// RefFixedPattern

RefFixedPattern::RefFixedPattern(unsigned k)
    : k_(k)
{
    fatalIf(k == 0 || k > 32, "ref fixed-pattern k must be in 1..32");
}

bool
RefFixedPattern::predict(const trace::BranchRecord &br) noexcept
{
    auto it = outcomes_.find(br.pc);
    if (it == outcomes_.end())
        return true;
    const std::vector<bool> &seen = it->second;
    if (seen.size() < k_)
        return true; // cold default until k outcomes exist
    return seen[seen.size() - k_];
}

void
RefFixedPattern::update(const trace::BranchRecord &br, bool taken) noexcept
{
    outcomes_[br.pc].push_back(taken);
}

void
RefFixedPattern::reset()
{
    outcomes_.clear();
}

std::string
RefFixedPattern::name() const
{
    return "ref-fixed-k(" + std::to_string(k_) + ")";
}

// ---------------------------------------------------------------------------
// RefHybrid

RefHybrid::RefHybrid(predictor::PredictorPtr a, predictor::PredictorPtr b,
                     unsigned chooser_bits)
    : a_(std::move(a)), b_(std::move(b)), chooserBits_(chooser_bits)
{
    fatalIf(!a_ || !b_, "ref hybrid needs two components");
    fatalIf(chooser_bits == 0 || chooser_bits > 24,
            "ref hybrid chooser bits must be in 1..24");
}

bool
RefHybrid::predict(const trace::BranchRecord &br) noexcept
{
    lastA_ = a_->predict(br);
    lastB_ = b_->predict(br);
    uint64_t index = (br.pc >> 2) % (uint64_t(1) << chooserBits_);
    auto it = chooser_.find(index);
    int counter = it == chooser_.end() ? 2 : it->second;
    // Counter >= 2 (weakly/strongly "A") selects component A.
    return counter >= 2 ? lastA_ : lastB_;
}

void
RefHybrid::update(const trace::BranchRecord &br, bool taken) noexcept
{
    bool correct_a = lastA_ == taken;
    bool correct_b = lastB_ == taken;
    if (correct_a != correct_b) {
        uint64_t index = (br.pc >> 2) % (uint64_t(1) << chooserBits_);
        auto it = chooser_.find(index);
        int counter = it == chooser_.end() ? 2 : it->second;
        counter += correct_a ? 1 : -1;
        if (counter < 0)
            counter = 0;
        if (counter > 3)
            counter = 3;
        chooser_[index] = counter;
    }
    a_->update(br, taken);
    b_->update(br, taken);
}

void
RefHybrid::reset()
{
    a_->reset();
    b_->reset();
    chooser_.clear();
}

std::string
RefHybrid::name() const
{
    return "ref-hybrid(" + a_->name() + "," + b_->name() + ")";
}

// ---------------------------------------------------------------------------
// RefTage

RefTage::RefTage(const predictor::TageConfig &config)
    : config_(config), tables_(config.numTables)
{
    fatalIf(config.numTables == 0, "ref tage needs tagged tables");
}

uint64_t
RefTage::indexOf(unsigned table, uint64_t pc) const
{
    unsigned length = config_.historyLength(table);
    uint64_t word = pc >> 2;
    uint64_t folded = refFold(history_, length, config_.tableBits);
    uint64_t idx = folded ^ word ^ (word >> (table + 1));
    return idx % (uint64_t(1) << config_.tableBits);
}

int
RefTage::tagOf(unsigned table, uint64_t pc) const
{
    unsigned length = config_.historyLength(table);
    uint64_t word = pc >> 2;
    uint64_t f1 = refFold(history_, length, config_.tagBits);
    uint64_t f2 = config_.tagBits > 1
        ? refFold(history_, length, config_.tagBits - 1) << 1
        : 0;
    return static_cast<int>((word ^ f1 ^ f2) %
                            (uint64_t(1) << config_.tagBits));
}

RefTage::Entry
RefTage::entryOf(unsigned table, uint64_t index) const
{
    auto it = tables_[table].find(index);
    // Absent entries are real: tag 0, counter 0 (strongly not-taken),
    // useful 0 — the optimized dense arrays start exactly there, and a
    // branch whose computed tag is 0 *does* match them.
    return it == tables_[table].end() ? Entry{} : it->second;
}

int
RefTage::baseCounterOf(uint64_t pc) const
{
    uint64_t index = (pc >> 2) % (uint64_t(1) << config_.baseBits);
    auto it = base_.find(index);
    return it == base_.end() ? 1 : it->second; // init weakly-not-taken
}

RefTage::Lookup
RefTage::lookup(uint64_t pc) const
{
    Lookup out;
    bool base_pred = baseCounterOf(pc) >= 2;
    out.prediction = base_pred;
    out.altPrediction = base_pred;
    for (int t = static_cast<int>(config_.numTables) - 1; t >= 0; --t) {
        Entry e = entryOf(t, indexOf(t, pc));
        if (e.tag != tagOf(t, pc))
            continue;
        int half = 1 << (config_.counterBits - 1);
        bool pred = e.ctr >= half;
        if (out.provider < 0) {
            out.provider = t;
            out.prediction = pred;
            out.altPrediction = base_pred;
        } else {
            out.altPrediction = pred;
            break;
        }
    }
    return out;
}

bool
RefTage::predict(const trace::BranchRecord &br) noexcept
{
    return lookup(br.pc).prediction;
}

void
RefTage::update(const trace::BranchRecord &br, bool taken) noexcept
{
    Lookup l = lookup(br.pc);
    bool mispredict = l.prediction != taken;
    int ctr_max = (1 << config_.counterBits) - 1;
    int useful_max = (1 << config_.usefulBits) - 1;

    if (l.provider >= 0) {
        uint64_t index = indexOf(l.provider, br.pc);
        Entry e = entryOf(l.provider, index);
        e.ctr += taken ? 1 : -1;
        if (e.ctr < 0)
            e.ctr = 0;
        if (e.ctr > ctr_max)
            e.ctr = ctr_max;
        if (l.prediction != l.altPrediction) {
            e.useful += l.prediction == taken ? 1 : -1;
            if (e.useful < 0)
                e.useful = 0;
            if (e.useful > useful_max)
                e.useful = useful_max;
        }
        tables_[l.provider][index] = e;
    } else {
        uint64_t index = (br.pc >> 2) % (uint64_t(1) << config_.baseBits);
        int counter = baseCounterOf(br.pc);
        counter += taken ? 1 : -1;
        if (counter < 0)
            counter = 0;
        if (counter > 3)
            counter = 3;
        base_[index] = counter;
    }

    if (mispredict &&
        l.provider < static_cast<int>(config_.numTables) - 1) {
        bool allocated = false;
        for (unsigned t = l.provider + 1; t < config_.numTables; ++t) {
            uint64_t index = indexOf(t, br.pc);
            Entry cand = entryOf(t, index);
            if (cand.useful == 0) {
                Entry fresh;
                fresh.tag = tagOf(t, br.pc);
                int weak_taken = 1 << (config_.counterBits - 1);
                fresh.ctr = taken ? weak_taken : weak_taken - 1;
                fresh.useful = 0;
                tables_[t][index] = fresh;
                allocated = true;
                break;
            }
        }
        if (!allocated) {
            for (unsigned t = l.provider + 1; t < config_.numTables; ++t) {
                uint64_t index = indexOf(t, br.pc);
                Entry cand = entryOf(t, index);
                if (cand.useful > 0) {
                    cand.useful = cand.useful - 1;
                    tables_[t][index] = cand;
                }
            }
        }
    }

    history_.push_back(taken);

    updates_ = updates_ + 1;
    if (config_.agingPeriod != 0 && updates_ % config_.agingPeriod == 0) {
        for (auto &table : tables_)
            for (auto &kv : table)
                kv.second.useful = kv.second.useful / 2;
    }
}

void
RefTage::reset()
{
    base_.clear();
    for (auto &table : tables_)
        table.clear();
    history_.clear();
    updates_ = 0;
}

std::string
RefTage::name() const
{
    return "ref-" + config_.label;
}

// ---------------------------------------------------------------------------
// RefPerceptron

RefPerceptron::RefPerceptron(const predictor::PerceptronConfig &config)
    : config_(config), tables_(config.numTables),
      theta_(config.initialTheta)
{
    fatalIf(config.numTables < 2, "ref perceptron needs >= 2 tables");
}

uint64_t
RefPerceptron::indexOf(unsigned table, uint64_t pc) const
{
    uint64_t word = pc >> 2;
    uint64_t idx;
    if (table == 0) {
        idx = word;
    } else {
        uint64_t folded = refFold(history_, table * config_.segmentBits,
                                  config_.tableBits);
        idx = word ^ (word >> table) ^ folded;
    }
    return idx % (uint64_t(1) << config_.tableBits);
}

int
RefPerceptron::weightOf(unsigned table, uint64_t index) const
{
    auto it = tables_[table].find(index);
    return it == tables_[table].end() ? 0 : it->second;
}

int
RefPerceptron::sumOf(uint64_t pc) const
{
    int sum = 0;
    for (unsigned t = 0; t < config_.numTables; ++t)
        sum += weightOf(t, indexOf(t, pc));
    return sum;
}

bool
RefPerceptron::predict(const trace::BranchRecord &br) noexcept
{
    return sumOf(br.pc) >= 0;
}

void
RefPerceptron::update(const trace::BranchRecord &br, bool taken) noexcept
{
    int yout = sumOf(br.pc);
    bool predicted = yout >= 0;
    bool mispredict = predicted != taken;
    int magnitude = yout < 0 ? -yout : yout;
    bool weak = magnitude <= theta_;

    if (mispredict || weak) {
        for (unsigned t = 0; t < config_.numTables; ++t) {
            uint64_t index = indexOf(t, br.pc);
            int w = weightOf(t, index);
            w += taken ? 1 : -1;
            if (w > config_.weightMax)
                w = config_.weightMax;
            if (w < config_.weightMin)
                w = config_.weightMin;
            tables_[t][index] = w;
        }
    }

    if (mispredict) {
        thetaCtr_ = thetaCtr_ + 1;
        if (thetaCtr_ >= config_.thetaCounterSat) {
            theta_ = theta_ + 1;
            thetaCtr_ = 0;
        }
    } else if (weak) {
        thetaCtr_ = thetaCtr_ - 1;
        if (thetaCtr_ <= -config_.thetaCounterSat) {
            if (theta_ > 1)
                theta_ = theta_ - 1;
            thetaCtr_ = 0;
        }
    }

    history_.push_back(taken);
}

void
RefPerceptron::reset()
{
    for (auto &table : tables_)
        table.clear();
    history_.clear();
    theta_ = config_.initialTheta;
    thetaCtr_ = 0;
}

std::string
RefPerceptron::name() const
{
    return "ref-" + config_.label;
}

// ---------------------------------------------------------------------------
// RefTournament

RefTournament::RefTournament(const predictor::TournamentConfig &config)
    : config_(config),
      global_(TwoLevelConfig::gshare(config.globalHistory)),
      local_(TwoLevelConfig::pas(config.localHistory, config.localBhtBits,
                                 config.localSelectBits))
{
}

bool
RefTournament::btbHit(uint64_t pc) const
{
    if (config_.btb.isPerfect())
        return btbPerfect_.find(pc) != btbPerfect_.end();
    uint64_t set = (pc >> 2) % (uint64_t(1) << config_.btb.setBits);
    auto it = btbSets_.find(set);
    if (it == btbSets_.end())
        return false;
    for (const BtbEntry &entry : it->second)
        if (entry.pc == pc)
            return true;
    return false;
}

void
RefTournament::btbAccess(uint64_t pc)
{
    if (config_.btb.isPerfect()) {
        btbPerfect_[pc] = true;
        return;
    }
    uint64_t set = (pc >> 2) % (uint64_t(1) << config_.btb.setBits);
    std::vector<BtbEntry> &entries = btbSets_[set];
    btbTick_ = btbTick_ + 1;
    for (BtbEntry &entry : entries) {
        if (entry.pc == pc) {
            entry.lastUse = btbTick_;
            return;
        }
    }
    if (entries.size() < config_.btb.ways) {
        entries.push_back({pc, btbTick_});
        return;
    }
    // Evict the least recently used way — first index on ties, exactly
    // as the optimized table scans.
    size_t victim = 0;
    for (size_t i = 1; i < entries.size(); ++i)
        if (entries[i].lastUse < entries[victim].lastUse)
            victim = i;
    entries[victim] = {pc, btbTick_};
}

bool
RefTournament::predict(const trace::BranchRecord &br) noexcept
{
    bool global_pred = global_.predict(br);
    bool local_pred = local_.predict(br);
    uint64_t index = (br.pc >> 2) % (uint64_t(1) << config_.chooserBits);
    auto it = chooser_.find(index);
    int counter = it == chooser_.end() ? 1 : it->second;
    bool direction = counter >= 2 ? global_pred : local_pred;
    // BTB miss model: predicted-taken without a buffered target falls
    // through to not-taken.
    if (direction && !btbHit(br.pc))
        return false;
    return direction;
}

void
RefTournament::update(const trace::BranchRecord &br, bool taken) noexcept
{
    bool global_pred = global_.predict(br);
    bool local_pred = local_.predict(br);
    if (global_pred != local_pred) {
        uint64_t index =
            (br.pc >> 2) % (uint64_t(1) << config_.chooserBits);
        auto it = chooser_.find(index);
        int counter = it == chooser_.end() ? 1 : it->second;
        counter += global_pred == taken ? 1 : -1;
        if (counter < 0)
            counter = 0;
        if (counter > 3)
            counter = 3;
        chooser_[index] = counter;
    }
    global_.update(br, taken);
    local_.update(br, taken);
    if (taken)
        btbAccess(br.pc);
}

void
RefTournament::observe(const trace::BranchRecord &br) noexcept
{
    using trace::BranchKind;
    if (br.kind == BranchKind::Jump || br.kind == BranchKind::Call)
        btbAccess(br.pc);
    // Returns touch only the (stats-only) return stack; no model state.
}

void
RefTournament::reset()
{
    global_.reset();
    local_.reset();
    chooser_.clear();
    btbPerfect_.clear();
    btbSets_.clear();
    btbTick_ = 0;
}

std::string
RefTournament::name() const
{
    return "ref-" + config_.label;
}

} // namespace copra::check
