/**
 * @file
 * Reference branch predictor models for differential verification.
 *
 * Every model here is a second, independent implementation of a
 * predictor that already exists under src/predictor/, written for
 * *obvious correctness* rather than speed: tables are std::map (sparse,
 * no masking tricks beyond what the semantics demand), counters are
 * plain ints clamped explicitly, and there are no batch overrides — a
 * reference model only ever sees the classic predict()/update() call
 * sequence. The differential runner (check/differential.hpp) replays
 * the same trace through the optimized predictor and its reference and
 * diffs the per-branch prediction streams, so any divergence in the
 * optimized scalar, batched, or parallel paths is caught mechanically.
 *
 * The semantics replicated here are the *documented* semantics of the
 * optimized models (weakly-not-taken counter init, pc >> 2 word
 * indexing, history masks, cold defaults). Keep the two in sync on
 * purpose: when a predictor's contract changes, its reference must be
 * changed in the same commit, which is exactly the review speed bump
 * this subsystem exists to create.
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "predictor/perceptron.hpp"
#include "predictor/predictor.hpp"
#include "predictor/tage.hpp"
#include "predictor/tournament.hpp"
#include "predictor/two_level.hpp"

namespace copra::check {

/**
 * The reference history fold: XOR of consecutive @p width bit chunks of
 * the newest @p length outcomes, newest outcome in bit 0 of the first
 * chunk (the one-line spec predictor/history_fold.hpp implements with
 * packed words). @p history holds outcomes newest-last.
 */
uint64_t refFold(const std::vector<bool> &history, unsigned length,
                 unsigned width);

/**
 * Reference two-level adaptive predictor covering the whole
 * gshare / GAg / GAs / PAs / PAg family via the same TwoLevelConfig the
 * optimized engine consumes (the config is shared *data*; none of the
 * optimized logic is reused).
 */
class RefTwoLevel : public predictor::Predictor
{
  public:
    explicit RefTwoLevel(const predictor::TwoLevelConfig &config);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override;

  private:
    uint64_t historyOf(uint64_t pc) const;
    uint64_t phtIndexOf(uint64_t pc) const;
    int counterOf(uint64_t index) const;

    predictor::TwoLevelConfig config_;
    int counterMax_;
    int counterInit_;
    // Sparse tables: absent entries hold the documented initial state
    // (history 0, counter weakly-not-taken).
    std::map<uint64_t, uint64_t> histories_; // bht row -> history bits
    std::map<uint64_t, int> counters_;       // pht index -> counter
};

/** Reference bimodal predictor: per-index 2-bit counter, init weakly-NT. */
class RefBimodal : public predictor::Predictor
{
  public:
    explicit RefBimodal(unsigned table_bits = 12);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override;

  private:
    unsigned tableBits_;
    std::map<uint64_t, int> counters_; // table index -> counter 0..3
};

/**
 * Reference loop predictor (paper §4.1.1) over a perfect per-pc table:
 * predict the learned body direction for the learned trip count, then
 * one opposite prediction; cold branches predict taken.
 */
class RefLoop : public predictor::Predictor
{
  public:
    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override { return "ref-loop"; }

  private:
    struct State
    {
        bool dir = true;   // repeated ("body") direction
        int run = 0;       // current same-direction run length
        int trip = 255;    // learned trip count (previous run of dir)
    };
    std::map<uint64_t, State> table_;
};

/**
 * Reference block-pattern predictor (paper §4.1.2): continue the current
 * same-direction block until it reaches the length of the last completed
 * block in that direction, then switch; cold branches predict taken.
 */
class RefBlockPattern : public predictor::Predictor
{
  public:
    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override { return "ref-block"; }

  private:
    struct State
    {
        bool dir = true;        // direction of the in-progress block
        int run = 0;            // its length so far
        int lastRun[2] = {255, 255}; // [0]=not-taken, [1]=taken
    };
    std::map<uint64_t, State> table_;
};

/**
 * Reference fixed-length-pattern predictor: replay the branch's outcome
 * from k executions ago (cold default taken until k outcomes exist).
 */
class RefFixedPattern : public predictor::Predictor
{
  public:
    explicit RefFixedPattern(unsigned k);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override;

  private:
    unsigned k_;
    // Full outcome history per branch, newest last. Clarity over
    // space: the reference keeps everything and indexes from the end.
    std::map<uint64_t, std::vector<bool>> outcomes_;
};

/**
 * Reference tournament predictor: two reference components and a
 * per-index 2-bit chooser (init weakly-taken = 2, selecting A); the
 * chooser trains only when exactly one component was correct.
 */
class RefHybrid : public predictor::Predictor
{
  public:
    RefHybrid(predictor::PredictorPtr a, predictor::PredictorPtr b,
              unsigned chooser_bits = 12);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override;

  private:
    predictor::PredictorPtr a_;
    predictor::PredictorPtr b_;
    unsigned chooserBits_;
    std::map<uint64_t, int> chooser_; // chooser index -> counter 0..3
    bool lastA_ = false;
    bool lastB_ = false;
};

/**
 * Reference TAGE-lite predictor sharing the optimized model's TageConfig
 * as data (geometry only; none of the optimized logic is reused). Tables
 * are sparse maps whose absent entries hold the documented initial state
 * — which for a tagged table is a *real* entry with tag 0, counter 0,
 * useful 0, exactly as the optimized dense arrays initialize.
 */
class RefTage : public predictor::Predictor
{
  public:
    explicit RefTage(const predictor::TageConfig &config);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override;

  private:
    struct Entry
    {
        int tag = 0;
        int ctr = 0;
        int useful = 0;
    };

    struct Lookup
    {
        int provider = -1; //!< tagged table index, -1 = base
        bool prediction = false;
        bool altPrediction = false;
    };

    Entry entryOf(unsigned table, uint64_t index) const;
    uint64_t indexOf(unsigned table, uint64_t pc) const;
    int tagOf(unsigned table, uint64_t pc) const;
    int baseCounterOf(uint64_t pc) const;
    Lookup lookup(uint64_t pc) const;

    predictor::TageConfig config_;
    std::map<uint64_t, int> base_; // base index -> 2-bit counter
    std::vector<std::map<uint64_t, Entry>> tables_;
    std::vector<bool> history_; // newest last
    uint64_t updates_ = 0;
};

/**
 * Reference hashed perceptron sharing the optimized model's
 * PerceptronConfig as data: sparse weight maps, the refFold history
 * hash, and explicit integer clamping.
 */
class RefPerceptron : public predictor::Predictor
{
  public:
    explicit RefPerceptron(const predictor::PerceptronConfig &config);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override;

  private:
    uint64_t indexOf(unsigned table, uint64_t pc) const;
    int weightOf(unsigned table, uint64_t index) const;
    int sumOf(uint64_t pc) const;

    predictor::PerceptronConfig config_;
    std::vector<std::map<uint64_t, int>> tables_;
    std::vector<bool> history_; // newest last
    int theta_;
    int thetaCtr_ = 0;
};

/**
 * Reference tournament predictor: RefTwoLevel components, a sparse
 * chooser (init weakly-not-taken = 1, selecting the local component),
 * and a clarity-first re-implementation of the set-associative LRU BTB
 * (predictor/btb.hpp semantics: per-access tick, lowest-lastUse victim,
 * first index on ties). The return-address stack is stats-only in the
 * optimized model, so the reference omits it.
 */
class RefTournament : public predictor::Predictor
{
  public:
    explicit RefTournament(const predictor::TournamentConfig &config);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void observe(const trace::BranchRecord &br) noexcept override;
    void reset() override;
    std::string name() const override;

  private:
    struct BtbEntry
    {
        uint64_t pc = 0;
        uint64_t lastUse = 0;
    };

    bool btbHit(uint64_t pc) const;
    void btbAccess(uint64_t pc);

    predictor::TournamentConfig config_;
    RefTwoLevel global_;
    RefTwoLevel local_;
    std::map<uint64_t, int> chooser_; // chooser index -> counter 0..3
    // BTB: perfect mode is a set of pcs; finite mode is per-set entry
    // lists in insertion order (matching the optimized table's ways).
    std::map<uint64_t, bool> btbPerfect_;
    std::map<uint64_t, std::vector<BtbEntry>> btbSets_;
    uint64_t btbTick_ = 0;
};

} // namespace copra::check

