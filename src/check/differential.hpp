/**
 * @file
 * The differential runner: replays a trace through an optimized
 * predictor along every execution path the simulator offers — the
 * classic scalar predict()/update() sequence, the devirtualized
 * predictUpdateBatch() path, the SoA column-kernel path
 * (predictUpdateSoa, what sim::run actually feeds), sim::run(), and
 * sim::runAllParallel() — and diffs each against a clarity-first
 * reference model (check/ref_models.hpp) on a per-branch basis.
 *
 * A mismatch is localized to the first diverging conditional branch,
 * and the offending trace is shrunk by a delta-debugging minimizer to a
 * short reproducer before it is reported. runCheckSuite() drives the
 * whole harness over a seed range of fuzzed traces (check/fuzz.hpp) and
 * is the standing correctness gate behind the copra_check binary and
 * the check_differential_test ctest entry.
 *
 * Deliberately-injected bugs (InjectedBug) provide the suite's
 * self-test: a harness that cannot catch a planted off-by-one is worse
 * than no harness, so the injected bugs run under ctest too.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "predictor/predictor.hpp"
#include "trace/trace.hpp"

namespace copra::check {

/** Factory producing a fresh, cold predictor instance per replay. */
using PredictorFactory = std::function<predictor::PredictorPtr()>;

/** One predictor-under-test and its reference model. */
struct CheckPair
{
    std::string name;          //!< display label, e.g. "pas(h=7,bht=5)"
    PredictorFactory optimized;
    PredictorFactory reference;
};

/**
 * The default pair roster: the two-level family at deliberately small
 * geometries (so fuzzed aliasing actually lands), bimodal, the loop and
 * pattern class predictors, and a hybrid. Small tables are the
 * adversarial choice — a big table hides indexing bugs by never
 * colliding.
 */
std::vector<CheckPair> defaultCheckPairs();

/** One observed divergence between optimized and reference. */
struct Mismatch
{
    std::string pair;   //!< CheckPair name
    std::string path;   //!< "scalar", "batched", "soa", "run" or
                        //!< "parallel"
    size_t index = 0;   //!< conditional-branch index (or ~0 = aggregate)
    uint64_t pc = 0;    //!< pc of the diverging branch
    bool expected = false; //!< reference prediction
    bool got = false;      //!< optimized prediction
    std::string detail;    //!< extra context for aggregate mismatches

    /** Marker index for whole-run (count-level) mismatches. */
    static constexpr size_t kAggregate = ~size_t(0);
};

/** All divergences one trace produced for one pair. */
struct DiffResult
{
    std::vector<Mismatch> mismatches;
    bool ok() const { return mismatches.empty(); }
};

/**
 * Per-conditional prediction stream of @p pred over @p trace using the
 * scalar predict()/update() path (observe() for non-conditionals).
 */
std::vector<uint8_t> scalarPredictions(const trace::Trace &trace,
                                       predictor::Predictor &pred);

/**
 * Per-conditional prediction stream using predictUpdateBatch() over
 * maximal conditional runs — the exact batching sim::run() performs.
 */
std::vector<uint8_t> batchedPredictions(const trace::Trace &trace,
                                        predictor::Predictor &pred);

/**
 * Per-conditional prediction stream using predictUpdateSoa() over the
 * trace's cached SoA segments — the column-kernel path sim::run()
 * drives. Covers the specialized SIMD/scalar index kernels.
 */
std::vector<uint8_t> soaPredictions(const trace::Trace &trace,
                                    predictor::Predictor &pred);

/**
 * Replay @p trace through every path of @p pair and diff against the
 * reference. @p check_parallel additionally runs sim::runAllParallel
 * over several fresh instances (slower; the suite enables it).
 */
DiffResult diffPair(const trace::Trace &trace, const CheckPair &pair,
                    bool check_parallel = true);

/**
 * Delta-debugging trace shrinker: repeatedly deletes record chunks
 * (halving granularity down to single records) while @p still_fails
 * keeps returning true. Deterministic, greedy, and bounded by
 * @p max_rounds full sweeps.
 */
trace::Trace minimizeTrace(const trace::Trace &trace,
                           const std::function<bool(const trace::Trace &)>
                               &still_fails,
                           unsigned max_rounds = 24);

/** Configuration of a differential fuzzing campaign. */
struct SuiteOptions
{
    uint64_t seedBase = 1;       //!< first fuzz seed (inclusive)
    uint64_t traces = 100;       //!< fuzzed traces to replay
    uint64_t conditionals = 2000; //!< conditional branches per trace
    bool minimize = true;        //!< shrink mismatching traces
    bool checkParallel = true;   //!< include the runAllParallel path
};

/** One failing (pair, trace) combination, with its shrunk reproducer. */
struct SuiteFailure
{
    std::string pair;
    uint64_t seed = 0;
    Mismatch first;          //!< first mismatch on the original trace
    trace::Trace reproducer; //!< minimized (or original if !minimize)
};

/** Aggregate outcome of a campaign. */
struct SuiteReport
{
    uint64_t tracesRun = 0;
    uint64_t comparisons = 0; //!< (pair, trace) replays performed
    std::vector<SuiteFailure> failures;
    bool ok() const { return failures.empty(); }
};

/** Run @p pairs over the seed range of @p options. */
SuiteReport runCheckSuite(const SuiteOptions &options,
                          const std::vector<CheckPair> &pairs
                          = defaultCheckPairs());

/** Human-readable campaign summary (one line per failure). */
std::string formatReport(const SuiteReport &report);

/**
 * Deliberate predictor bugs for harness self-tests. Each returns an
 * otherwise-faithful implementation with one planted defect that the
 * differential suite must catch and shrink.
 */
enum class InjectedBug : uint8_t
{
    PasHistoryOffByOne = 0, //!< PAs update trains the neighboring BHT row
    GshareBatchStaleHistory, //!< batch path predicts before applying the
                             //!< previous branch's history update
    LoopTripOffByOne,        //!< learned trip count is run + 1
    GshareSoaPrematureTrain, //!< SoA kernel path trains the counter and
                             //!< history before predicting; every other
                             //!< path is untouched
    TageAllocWrongDirection, //!< freshly allocated TAGE entries start
                             //!< weakly *against* the observed outcome;
                             //!< only the allocation path is wrong
    PerceptronWeightWrap,    //!< perceptron weights wrap at saturation
                             //!< instead of clamping
    TournamentBtbIgnoreMiss, //!< tournament BTB miss model disabled:
                             //!< taken predictions survive BTB misses
    TageShadowState,         //!< TAGE allocation consults a per-tag
                             //!< ledger kept outside the registered
                             //!< state fields: reset() clears it, but
                             //!< snapshots miss it — the hidden-state
                             //!< defect the round-trip gate
                             //!< (check/state_gates.hpp) exists for
    HotPathAlloc,            //!< the SoA batch path reallocates scratch
                             //!< per batch while predicting perfectly:
                             //!< invisible to every differential path
                             //!< and outside copra_lint's jurisdiction
                             //!< (it lives under src/check/), so only
                             //!< the runtime allocation gate
                             //!< (check/hot_gates.hpp) can catch it
};

/** Number of InjectedBug values. */
inline constexpr unsigned kInjectedBugCount = 9;

/** Stable name of an injected bug (CLI selector). */
const char *injectedBugName(InjectedBug bug);

/** Pair whose optimized side carries the planted defect. */
CheckPair injectedBugPair(InjectedBug bug);

} // namespace copra::check

