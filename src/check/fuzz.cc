#include "check/fuzz.hpp"

#include <algorithm>
#include <iterator>

#include "util/logging.hpp"

namespace copra::check {

using trace::BranchKind;
using trace::BranchRecord;
using trace::Trace;

namespace {

/** A conditional record; target direction chosen by the caller. */
BranchRecord
cond(uint64_t pc, uint64_t target, bool taken)
{
    return {pc, target, BranchKind::Conditional, taken};
}

void
degeneratePcs(Trace &out, Rng &rng, uint64_t n)
{
    // A tiny set of the worst addresses: zero, the smallest aligned pc,
    // unaligned pcs (the >> 2 word indexing must not crash or alias
    // differently between implementations), and pcs at the very top of
    // the 64-bit space (index masking must not overflow).
    static constexpr uint64_t kNasty[] = {
        0x0, 0x4, 0x3, 0x7, 0xffffffffffffff00ull, 0xfffffffffffffffcull,
        0xffffffffffffffffull, 0x80000000ull, 0x7ffffffcull,
    };
    size_t npcs = 1 + rng.index(3); // hammer 1..3 of them
    uint64_t pcs[3];
    for (size_t i = 0; i < npcs; ++i)
        pcs[i] = kNasty[rng.index(std::size(kNasty))];
    double bias = rng.bernoulli(0.5) ? 0.5 : (rng.bernoulli(0.5) ? 0.99 : 0.01);
    for (uint64_t i = 0; i < n; ++i) {
        uint64_t pc = pcs[rng.index(npcs)];
        // Mix forward and backward targets so isBackward() sees both.
        uint64_t target = rng.bernoulli(0.5) ? pc + 4 + rng.index(256) * 4
                                             : pc - rng.index(64) * 4;
        out.append(cond(pc, target, rng.bernoulli(bias)));
    }
}

void
aliasHeavy(Trace &out, Rng &rng, uint64_t n)
{
    // Strided pcs that collide in any table indexed by fewer than
    // `aliasBits` word-address bits: pc_i = base + i * (4 << aliasBits).
    unsigned alias_bits = 4 + static_cast<unsigned>(rng.index(13)); // 4..16
    size_t npcs = 4 + rng.index(29);                                // 4..32
    uint64_t base = rng.index(1 << 20) * 4;
    uint64_t stride = uint64_t(4) << alias_bits;
    // Per-pc fixed bias so counters pull in conflicting directions.
    std::vector<double> bias(npcs);
    for (double &b : bias)
        b = rng.uniform();
    for (uint64_t i = 0; i < n; ++i) {
        size_t which = rng.index(npcs);
        uint64_t pc = base + which * stride;
        out.append(cond(pc, pc + 8, rng.bernoulli(bias[which])));
    }
}

void
loopNests(Trace &out, Rng &rng, uint64_t n)
{
    // Loop branches with trip counts hugging the predictor's 255-run
    // saturation boundary plus the degenerate 1-2 trips, emitted as
    // alternating taken-blocks and a single exit (for-type) or the
    // mirrored while-type shape.
    static constexpr uint64_t kTrips[] = {1, 2, 3, 8, 254, 255, 256, 300};
    size_t nloops = 1 + rng.index(4);
    struct Loop
    {
        uint64_t pc;
        uint64_t trip;
        bool forType;   // taken trip times then one not-taken
        uint64_t phase = 0;
    };
    std::vector<Loop> loops(nloops);
    for (Loop &lp : loops) {
        lp.pc = 0x1000 + rng.index(1 << 12) * 4;
        lp.trip = kTrips[rng.index(std::size(kTrips))];
        lp.forType = rng.bernoulli(0.7);
    }
    for (uint64_t i = 0; i < n; ++i) {
        Loop &lp = loops[rng.index(nloops)];
        bool body = lp.phase < lp.trip;
        bool taken = lp.forType ? body : !body;
        lp.phase = body ? lp.phase + 1 : 0;
        // Loop-closing shape: backward target when taken direction is
        // the body (isBackward() true), forward exit otherwise.
        out.append(cond(lp.pc, lp.pc - 16, taken));
        // Occasionally perturb the trip count mid-stream, the
        // "changes infrequently" case of paper §4.1.1.
        if (lp.phase == 0 && rng.bernoulli(0.05))
            lp.trip = kTrips[rng.index(std::size(kTrips))];
    }
}

void
correlationChain(Trace &out, Rng &rng, uint64_t n)
{
    // Source branches take random outcomes; sink branches compute the
    // XOR of the last `depth` outcomes overall — exactly the signal a
    // history-indexed predictor keys on, and the hardest case for any
    // optimized path that mis-orders history updates.
    unsigned depth = 1 + static_cast<unsigned>(rng.index(16)); // 1..16
    size_t nsrc = 1 + rng.index(6);
    uint64_t sink_pc = 0x9000;
    std::vector<bool> recent;
    for (uint64_t i = 0; i < n; ++i) {
        bool is_sink = !recent.empty() && rng.bernoulli(0.4);
        uint64_t pc;
        bool taken;
        if (is_sink) {
            pc = sink_pc;
            bool x = false;
            size_t lookback = std::min<size_t>(depth, recent.size());
            for (size_t j = recent.size() - lookback; j < recent.size(); ++j)
                x ^= recent[j];
            taken = x;
        } else {
            pc = 0x8000 + rng.index(nsrc) * 4;
            taken = rng.bernoulli(0.5);
        }
        recent.push_back(taken);
        if (recent.size() > 64)
            recent.erase(recent.begin());
        out.append(cond(pc, pc + 4 + rng.index(32) * 4, taken));
    }
}

void
mixedKinds(Trace &out, Rng &rng, uint64_t n)
{
    // Conditionals with jumps/calls/returns spliced between them: the
    // driver batches maximal conditional runs, so every non-conditional
    // record is a batch boundary, and observe() must stay a no-op for
    // table predictors no matter where it lands.
    static constexpr BranchKind kOther[] = {BranchKind::Jump,
                                            BranchKind::Call,
                                            BranchKind::Return};
    size_t npcs = 2 + rng.index(15);
    uint64_t emitted = 0;
    while (emitted < n) {
        uint64_t run = 1 + rng.index(8);
        for (uint64_t j = 0; j < run && emitted < n; ++j, ++emitted) {
            uint64_t pc = 0x2000 + rng.index(npcs) * 4;
            out.append(cond(pc, pc - 8, rng.bernoulli(0.6)));
        }
        uint64_t breaks = rng.index(3); // 0..2 non-conditionals
        for (uint64_t j = 0; j < breaks; ++j) {
            uint64_t pc = 0x4000 + rng.index(64) * 4;
            BranchKind kind = kOther[rng.index(std::size(kOther))];
            // Non-conditional transfers are always taken by convention.
            out.append({pc, pc + 64, kind, true});
        }
    }
}

void
tagAliasing(Trace &out, Rng &rng, uint64_t n)
{
    // Strides tuned for small *tagged* tables (the differential TAGE
    // runs 5 index bits and 5 tag bits): a stride of (4 << idx_bits)
    // keeps the pc contribution to the index constant while tags vary,
    // and (4 << (idx_bits + tag_bits)) aliases pc bits out of both —
    // distinct branches then fight over the same tagged entry, driving
    // the allocate / useful-counter / eviction paths hard.
    unsigned idx_bits = 4 + static_cast<unsigned>(rng.index(4)); // 4..7
    unsigned tag_bits = 4 + static_cast<unsigned>(rng.index(4)); // 4..7
    uint64_t stride = rng.bernoulli(0.5)
        ? uint64_t(4) << idx_bits
        : uint64_t(4) << (idx_bits + tag_bits);
    size_t npcs = 2 + rng.index(7); // 2..8 warring branches
    uint64_t base = rng.index(1 << 16) * 4;
    // Mostly-biased branches: stable enough that tagged entries earn
    // useful credit, conflicting enough that allocations keep firing.
    std::vector<double> bias(npcs);
    for (double &b : bias)
        b = rng.bernoulli(0.5) ? 0.85 : 0.15;
    for (uint64_t i = 0; i < n; ++i) {
        size_t which = rng.index(npcs);
        uint64_t pc = base + which * stride;
        out.append(cond(pc, pc + 8, rng.bernoulli(bias[which])));
    }
}

void
deepHistory(Trace &out, Rng &rng, uint64_t n)
{
    // Sink outcomes are the parity of outcomes 100..300 branches back —
    // beyond every folded-history window in the roster (TAGE max
    // geometric length is 80, perceptron history is 56), so no predictor
    // can learn them; what the shape tests is that *long* histories fold
    // identically in optimized (packed-word) and reference (bit-vector)
    // implementations, including the cross-word seams. Long constant
    // runs are spliced in to flush every fold to a known state.
    unsigned depth = 100 + static_cast<unsigned>(rng.index(201)); // 100..300
    size_t nsrc = 1 + rng.index(4);
    uint64_t sink_pc = 0xa000;
    std::vector<bool> all;
    all.reserve(n);
    uint64_t emitted = 0;
    while (emitted < n) {
        if (all.size() > depth && rng.bernoulli(0.02)) {
            // Constant run: 40..200 identical outcomes sweep the packed
            // history words end to end.
            bool dir = rng.bernoulli(0.5);
            uint64_t run = 40 + rng.index(161);
            for (uint64_t j = 0; j < run && emitted < n; ++j, ++emitted) {
                uint64_t pc = 0xb000 + rng.index(4) * 4;
                all.push_back(dir);
                out.append(cond(pc, pc - 32, dir));
            }
            continue;
        }
        bool is_sink = all.size() > depth && rng.bernoulli(0.3);
        uint64_t pc;
        bool taken;
        if (is_sink) {
            pc = sink_pc;
            taken = all[all.size() - depth] ^ all[all.size() - 1];
        } else {
            pc = 0xa100 + rng.index(nsrc) * 4;
            taken = rng.bernoulli(0.5);
        }
        all.push_back(taken);
        out.append(cond(pc, pc + 4 + rng.index(16) * 4, taken));
        ++emitted;
    }
}

void
vmDispatch(Trace &out, Rng &rng, uint64_t n)
{
    // A miniature of the "interp" frontier family: a fixed bytecode
    // sequence with Markov successor structure, each opcode lowered to
    // the else-if compare chain a switch compiles to. The dispatch
    // outcomes are a deterministic function of the opcode stream, so
    // global-history predictors and reference models must agree on
    // long correlated chains with embedded unconditional jumps.
    unsigned opcodes = 4 + static_cast<unsigned>(rng.index(9)); // 4..12
    std::vector<uint8_t> successor(opcodes);
    for (uint8_t &s : successor)
        s = static_cast<uint8_t>(rng.index(opcodes));
    uint8_t op = static_cast<uint8_t>(rng.index(opcodes));
    uint64_t dispatch_pc = 0xc000;
    uint64_t handler_base = 0xd000;
    uint64_t emitted = 0;
    while (emitted < n) {
        op = rng.bernoulli(0.7)
            ? successor[op]
            : static_cast<uint8_t>(rng.index(opcodes));
        for (unsigned j = 0; j <= op && emitted < n; ++j, ++emitted)
            out.append(cond(dispatch_pc + j * 8,
                            handler_base + j * 0x100, j == op));
        if (emitted < n)
            out.append({handler_base + uint64_t(op) * 0x100 + 0x78,
                        dispatch_pc, BranchKind::Jump, true});
    }
}

void
dataDependent(Trace &out, Rng &rng, uint64_t n)
{
    // The "datadep" shape in miniature: the same static branches flip
    // between predictable and random as the value-stream regime
    // changes, stressing any predictor path that specializes on a
    // branch's recent behaviour.
    uint64_t body_pc = 0xe000;
    int64_t value = static_cast<int64_t>(rng.index(256));
    int64_t prev = 0;
    uint64_t emitted = 0;
    auto emit = [&](uint64_t pc, uint64_t target, bool taken) {
        if (emitted < n) {
            out.append(cond(pc, target, taken));
            ++emitted;
        }
    };
    while (emitted < n) {
        unsigned regime = static_cast<unsigned>(rng.index(3));
        uint64_t len = 16 + rng.index(113); // 16..128 elements
        for (uint64_t i = 0; i < len && emitted < n; ++i) {
            switch (regime) {
              case 0:
                value += rng.bernoulli(0.9) ? 1 : 0;
                break;
              case 1:
                value += static_cast<int64_t>(rng.index(17)) - 8;
                break;
              default:
                value = static_cast<int64_t>(rng.index(256));
                break;
            }
            emit(body_pc, body_pc + 0x40, value < 128);
            emit(body_pc + 8, body_pc + 0x48, value >= prev);
            emit(body_pc + 16, body_pc - 0x20, i + 1 < len);
            prev = value;
        }
    }
}

void
longPeriodNest(Trace &out, Rng &rng, uint64_t n)
{
    // The "nestloop" shape in miniature: co-prime period-48/period-37
    // counters (their xor repeats every 1776 iterations) and a
    // period-127 run pattern — periodicities past every history
    // window and loop-count saturation point in the roster.
    uint64_t pc = 0xf000;
    uint64_t tick = rng.index(1776);
    uint64_t emitted = 0;
    auto emit = [&](uint64_t p, uint64_t target, bool taken) {
        if (emitted < n) {
            out.append(cond(p, target, taken));
            ++emitted;
        }
    };
    while (emitted < n) {
        bool a = tick % 48 < 24;
        bool b = tick % 37 < 18;
        emit(pc, pc + 0x40, a);
        emit(pc + 8, pc + 0x48, b);
        emit(pc + 16, pc + 0x50, a != b);
        emit(pc + 24, pc - 0x80, tick % 127 < 96);
        ++tick;
    }
}

void
randomSoup(Trace &out, Rng &rng, uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i) {
        BranchRecord rec;
        rec.pc = rng.next();
        rec.target = rng.next();
        rec.kind = BranchKind::Conditional;
        rec.taken = rng.bernoulli(0.5);
        out.append(rec);
    }
}

} // namespace

const char *
fuzzShapeName(FuzzShape shape)
{
    switch (shape) {
      case FuzzShape::DegeneratePcs:    return "degenerate-pcs";
      case FuzzShape::AliasHeavy:       return "alias-heavy";
      case FuzzShape::LoopNests:        return "loop-nests";
      case FuzzShape::CorrelationChain: return "correlation-chain";
      case FuzzShape::MixedKinds:       return "mixed-kinds";
      case FuzzShape::RandomSoup:       return "random-soup";
      case FuzzShape::TagAliasing:      return "tag-aliasing";
      case FuzzShape::DeepHistory:      return "deep-history";
      case FuzzShape::VmDispatch:       return "vm-dispatch";
      case FuzzShape::DataDependent:    return "data-dependent";
      case FuzzShape::LongPeriodNest:   return "long-period-nest";
    }
    return "unknown";
}

void
appendFuzzSegment(trace::Trace &out, FuzzShape shape, Rng &rng,
                  uint64_t conditionals)
{
    switch (shape) {
      case FuzzShape::DegeneratePcs:
        degeneratePcs(out, rng, conditionals);
        break;
      case FuzzShape::AliasHeavy:
        aliasHeavy(out, rng, conditionals);
        break;
      case FuzzShape::LoopNests:
        loopNests(out, rng, conditionals);
        break;
      case FuzzShape::CorrelationChain:
        correlationChain(out, rng, conditionals);
        break;
      case FuzzShape::MixedKinds:
        mixedKinds(out, rng, conditionals);
        break;
      case FuzzShape::RandomSoup:
        randomSoup(out, rng, conditionals);
        break;
      case FuzzShape::TagAliasing:
        tagAliasing(out, rng, conditionals);
        break;
      case FuzzShape::DeepHistory:
        deepHistory(out, rng, conditionals);
        break;
      case FuzzShape::VmDispatch:
        vmDispatch(out, rng, conditionals);
        break;
      case FuzzShape::DataDependent:
        dataDependent(out, rng, conditionals);
        break;
      case FuzzShape::LongPeriodNest:
        longPeriodNest(out, rng, conditionals);
        break;
    }
}

trace::Trace
fuzzTrace(uint64_t seed, uint64_t conditionals)
{
    Rng rng(mix64(seed ^ 0xc0ffee));
    Trace out("fuzz-" + std::to_string(seed), seed);
    // mixedKinds splices up to ~25% non-conditionals between runs.
    out.reserve(conditionals + conditionals / 4);
    uint64_t segments = 1 + rng.index(4); // 1..4 shapes per trace
    uint64_t left = conditionals;
    for (uint64_t s = 0; s < segments; ++s) {
        uint64_t share = s + 1 == segments
            ? left
            : left / (segments - s);
        auto shape = static_cast<FuzzShape>(rng.index(kFuzzShapeCount));
        appendFuzzSegment(out, shape, rng, share);
        left -= share;
    }
    return out;
}

std::string
corruptBytes(const std::string &bytes, uint64_t seed)
{
    Rng rng(mix64(seed ^ 0xbadbadull));
    std::string mutated = bytes;
    // Mutation kinds, weighted toward header damage (the paths the
    // trace cache must survive): 0 truncate, 1 magic smash, 2 version
    // bump, 3 record-count inflate, 4 kind poison, 5 payload bit flip.
    unsigned kind = static_cast<unsigned>(rng.index(6));
    switch (kind) {
      case 0: // truncate anywhere, including mid-header and mid-record
        mutated.resize(rng.index(bytes.empty() ? 1 : bytes.size()));
        if (mutated == bytes)
            mutated.resize(bytes.size() / 2);
        break;
      case 1: // smash one magic byte
        if (mutated.size() >= 8)
            mutated[rng.index(8)] ^= char(0x40 | (1 + rng.index(0x3f)));
        break;
      case 2: // implausible format version (offset 8..11)
        if (mutated.size() >= 12)
            mutated[8 + rng.index(4)] ^= char(1 + rng.index(0xff));
        break;
      case 3: // inflate the record count so columns run past EOF.
        // v2 keeps the count at a fixed header offset (24..31).
        if (mutated.size() >= 32)
            mutated[24 + 7] = char(0x7f); // count |= 2^63-ish
        break;
      case 4: { // poison one byte of the kind column
        // v2 layout: header(48, incl. payload checksum) + name padded
        // to 8 bytes + pc column (8n) + target column (8n) + kind
        // column (n) + taken (n).
        if (mutated.size() >= 48) {
            uint32_t name_len = 0;
            for (int i = 3; i >= 0; --i) {
                name_len = (name_len << 8) |
                    static_cast<unsigned char>(mutated[12 + i]);
            }
            size_t cols = 48 + ((size_t(name_len) + 7) & ~size_t(7));
            if (mutated.size() >= cols + 18) {
                size_t nrec = (mutated.size() - cols) / 18;
                size_t off = cols + 16 * nrec + rng.index(nrec);
                if (off < mutated.size())
                    mutated[off] = char(4 + rng.index(250)); // > Return
            }
        }
        break;
      }
      default: // flip one payload bit anywhere
        if (!mutated.empty()) {
            size_t off = rng.index(mutated.size());
            mutated[off] ^= char(1 << rng.index(8));
        }
        break;
    }
    if (mutated == bytes && !mutated.empty())
        mutated.pop_back(); // guarantee the copy differs
    return mutated;
}

} // namespace copra::check
