/**
 * @file
 * copra_check — the differential verification CLI.
 *
 * Default mode replays a range of fuzzed adversarial traces through
 * every predictor pair (optimized vs reference) and exits non-zero on
 * any per-branch prediction mismatch, printing a minimized reproducer.
 *
 * --inject <bug|all> flips into self-test mode: a deliberately broken
 * predictor is swapped in, and the exit code is zero only if the suite
 * *does* catch the bug and shrinks it to a small reproducer — proving
 * the harness can actually detect the class of defect it exists for.
 *
 * --state-gates replays fuzzed traces through the whole factory roster
 * and checks the state contract instead: byte-stable snapshots,
 * reset-replay determinism, and snapshot round-trip completeness
 * (check/state_gates.hpp). --doc-state-budgets regenerates
 * docs/STATE_BUDGETS.md from the same roster (--check FILE gates
 * drift).
 *
 * --ingest-gates verifies the foreign-trace path end to end over a
 * committed sample (--sample): reference ingest, stream-vs-mmap SoA
 * identity of the emitted cache-v2 file, record round-trip,
 * cross-format (text/CSV) agreement, and corruption fuzz
 * (check/ingest_gates.hpp).
 *
 * --hot-gates replays fuzzed traces through the roster's SoA hot path
 * and asserts a steady-state replay performs zero heap allocations
 * (this binary replaces operator new to count — check/alloc_probe.cc)
 * and zero lock acquisitions (check/hot_gates.hpp): the runtime half
 * of the copra_lint hot-path discipline (DESIGN.md §15).
 *
 * Examples:
 *   copra_check                         # 100 traces, all pairs
 *   copra_check --traces 500 --branches 5000
 *   copra_check --pairs pas             # only pairs whose name has "pas"
 *   copra_check --inject all            # harness self-test
 *   copra_check --repro-dir /tmp/repro  # dump reproducer .trace files
 *   copra_check --state-gates --traces 8
 *   copra_check --ingest-gates --sample tests/data/sample_foreign.trace
 *   copra_check --hot-gates --traces 3
 *   copra_check --doc-state-budgets --check docs/STATE_BUDGETS.md
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <sstream>

#include "check/differential.hpp"
#include "check/fuzz.hpp"
#include "check/hot_gates.hpp"
#include "check/ingest_gates.hpp"
#include "check/state_gates.hpp"
#include "obs/manifest.hpp"
#include "obs/registry.hpp"
#include "trace/trace_io.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"

namespace {

using namespace copra;

/** Write one failure's reproducer as a text trace under @p dir. */
void
dumpReproducer(const std::string &dir, const check::SuiteFailure &failure)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("cannot create " + dir + ": " + ec.message());
        return;
    }
    std::string safe = failure.pair;
    for (char &c : safe) {
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    std::string path = dir + "/" + safe + "-seed" +
        std::to_string(failure.seed) + ".trace";
    std::ofstream os(path);
    if (!os) {
        warn("cannot write " + path);
        return;
    }
    trace::writeText(failure.reproducer, os);
    std::printf("  reproducer written to %s\n", path.c_str());
}

/**
 * Self-test of the state gates: the tage-shadow-state bug keeps live
 * state outside the registered snapshot fields, so the round-trip
 * (snapshot-completeness) gate — not a reference-model diff — is what
 * must catch it. Returns true when caught.
 */
bool
runShadowStateSelfTest(const check::SuiteOptions &options)
{
    check::CheckPair pair =
        check::injectedBugPair(check::InjectedBug::TageShadowState);
    check::StateGateOptions gate_options;
    gate_options.seedBase = options.seedBase;
    gate_options.traces = options.traces;
    gate_options.conditionals = options.conditionals;
    check::StateGateReport report = check::runStateGates(
        gate_options, {{pair.name, pair.optimized}});
    if (report.ok()) {
        std::printf("MISSED  tage-shadow-state: %llu state-gate checks "
                    "found nothing — the completeness probe failed its "
                    "self-test\n",
                    static_cast<unsigned long long>(report.gatesRun));
        return false;
    }
    const check::StateGateFailure &first = report.failures.front();
    std::printf("caught  %-28s gate=%-14s seed=%llu\n",
                "tage-shadow-state", first.gate.c_str(),
                static_cast<unsigned long long>(first.seed));
    return true;
}

/**
 * Self-test of the hot gates: the hot-path-alloc bug predicts
 * bit-identically, so no differential path can see it — only the
 * steady-state allocation gate can. Returns true when caught (or when
 * the allocation probe is unavailable: sanitizer builds own the
 * allocator, and the Release CI leg carries this proof).
 */
bool
runHotAllocSelfTest(const check::SuiteOptions &options)
{
    if (!check::allocProbeLinked()) {
        std::printf("skipped hot-path-alloc: allocation probe absent "
                    "(sanitizer build owns the allocator)\n");
        return true;
    }
    check::CheckPair pair =
        check::injectedBugPair(check::InjectedBug::HotPathAlloc);
    check::HotGateOptions gate_options;
    gate_options.seedBase = options.seedBase;
    gate_options.traces = options.traces;
    gate_options.conditionals = options.conditionals;
    check::HotGateReport report = check::runHotGates(
        gate_options, {{pair.name, pair.optimized}});
    if (report.ok()) {
        std::printf("MISSED  hot-path-alloc: %llu hot-gate checks "
                    "found nothing — the allocation probe failed its "
                    "self-test\n",
                    static_cast<unsigned long long>(report.gatesRun));
        return false;
    }
    const check::HotGateFailure &first = report.failures.front();
    std::printf("caught  %-28s gate=%-14s seed=%llu\n",
                "hot-path-alloc", first.gate.c_str(),
                static_cast<unsigned long long>(first.seed));
    return true;
}

int
runInjected(const std::string &which, const check::SuiteOptions &options,
            const std::string &repro_dir)
{
    int failed = 0;
    unsigned matched = 0;
    for (unsigned i = 0; i < check::kInjectedBugCount; ++i) {
        auto bug = static_cast<check::InjectedBug>(i);
        if (which != "all" && which != check::injectedBugName(bug))
            continue;
        ++matched;
        if (bug == check::InjectedBug::TageShadowState) {
            if (!runShadowStateSelfTest(options))
                ++failed;
            continue;
        }
        if (bug == check::InjectedBug::HotPathAlloc) {
            if (!runHotAllocSelfTest(options))
                ++failed;
            continue;
        }
        check::CheckPair pair = check::injectedBugPair(bug);
        check::SuiteReport report =
            check::runCheckSuite(options, {pair});
        if (report.ok()) {
            std::printf("MISSED  %s: %llu traces found nothing — the "
                        "harness failed its self-test\n",
                        check::injectedBugName(bug),
                        static_cast<unsigned long long>(report.tracesRun));
            ++failed;
            continue;
        }
        const check::SuiteFailure &first = report.failures.front();
        std::printf("caught  %-28s path=%-8s reproducer=%llu records\n",
                    check::injectedBugName(bug), first.first.path.c_str(),
                    static_cast<unsigned long long>(
                        first.reproducer.size()));
        if (!repro_dir.empty())
            dumpReproducer(repro_dir, first);
    }
    fatalIf(matched == 0,
            "unknown injected bug '" + which +
                "' (see --list-pairs for the injected:* names)");
    return failed == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    check::SuiteOptions options;
    std::string pairs_filter;
    std::string inject;
    std::string repro_dir;
    bool list_pairs = false;
    bool no_minimize = false;
    bool no_parallel = false;
    uint64_t traces = options.traces;
    uint64_t branches = options.conditionals;
    uint64_t seed_base = options.seedBase;

    OptionParser parser(
        "Differential verification: fuzzed traces through optimized "
        "predictors vs reference models");
    parser.addUint("traces", &traces, "fuzzed traces to replay");
    parser.addUint("branches", &branches,
                   "conditional branches per fuzzed trace");
    parser.addUint("seed-base", &seed_base, "first fuzz seed");
    parser.addString("pairs", &pairs_filter,
                     "only run pairs whose name contains this substring");
    parser.addString("inject", &inject,
                     "self-test: plant a bug (name or 'all') and require "
                     "the suite to catch it");
    parser.addString("repro-dir", &repro_dir,
                     "directory for minimized reproducer .trace files");
    parser.addFlag("list-pairs", &list_pairs, "list pair names and exit");
    parser.addFlag("no-minimize", &no_minimize,
                   "report raw failing traces without shrinking");
    parser.addFlag("no-parallel", &no_parallel,
                   "skip the sim::runAllParallel comparison path");
    bool state_gates = false;
    parser.addFlag("state-gates", &state_gates,
                   "run the snapshot/restore state gates over the whole "
                   "factory roster instead of the differential suite");
    bool hot_gates = false;
    parser.addFlag("hot-gates", &hot_gates,
                   "run the steady-state zero-allocation / zero-lock "
                   "hot-path gates over the whole factory roster");
    bool ingest_gates = false;
    parser.addFlag("ingest-gates", &ingest_gates,
                   "run the foreign-trace ingestion gates (sample "
                   "ingest, stream/mmap identity, round-trip, "
                   "corruption fuzz) over --sample");
    std::string sample_path;
    parser.addString("sample", &sample_path,
                     "with --ingest-gates: committed sample foreign "
                     "trace to gate on");
    bool doc_budgets = false;
    parser.addFlag("doc-state-budgets", &doc_budgets,
                   "print docs/STATE_BUDGETS.md regenerated from the "
                   "factory roster and exit");
    std::string budgets_check;
    parser.addString("check", &budgets_check,
                     "with --doc-state-budgets: compare against this "
                     "file and exit non-zero on drift");
    std::string metrics_out =
        util::envString("COPRA_METRICS_OUT", "");
    bool metrics_summary = false;
    parser.addString("metrics-out", &metrics_out,
                     "write a run-manifest JSON here "
                     "($COPRA_METRICS_OUT; empty = off)");
    parser.addFlag("metrics-summary", &metrics_summary,
                   "print non-zero telemetry instruments to stderr");
    if (!parser.parse(argc, argv))
        return 0;
    obs::setEnabled(!metrics_out.empty() || metrics_summary);

    options.traces = traces;
    options.conditionals = branches;
    options.seedBase = seed_base;
    options.minimize = !no_minimize;
    options.checkParallel = !no_parallel;

    if (list_pairs) {
        for (const check::CheckPair &pair : check::defaultCheckPairs())
            std::printf("%s\n", pair.name.c_str());
        for (unsigned i = 0; i < check::kInjectedBugCount; ++i) {
            std::printf("injected:%s\n", check::injectedBugName(
                static_cast<check::InjectedBug>(i)));
        }
        return 0;
    }

    if (doc_budgets) {
        std::string doc = check::renderStateBudgets();
        if (budgets_check.empty()) {
            std::fputs(doc.c_str(), stdout);
            return 0;
        }
        std::ifstream in(budgets_check, std::ios::binary);
        std::ostringstream committed;
        committed << in.rdbuf();
        if (in && committed.str() == doc)
            return 0;
        std::fprintf(stderr,
                     "%s is stale (or unreadable); regenerate with\n"
                     "  copra_check --doc-state-budgets > %s\n",
                     budgets_check.c_str(), budgets_check.c_str());
        return 1;
    }

    if (ingest_gates) {
        fatalIf(sample_path.empty(),
                "--ingest-gates needs --sample <foreign trace>");
        check::IngestGateOptions gate_options;
        gate_options.samplePath = sample_path;
        gate_options.seedBase = seed_base;
        check::IngestGateReport report =
            check::runIngestGates(gate_options);
        std::fputs(check::formatIngestGateReport(report).c_str(),
                   stdout);
        return report.ok() ? 0 : 1;
    }

    if (state_gates) {
        check::StateGateOptions gate_options;
        gate_options.seedBase = seed_base;
        gate_options.traces = traces;
        gate_options.conditionals = branches;
        check::StateGateReport report =
            check::runStateGates(gate_options);
        std::fputs(check::formatStateGateReport(report).c_str(), stdout);
        return report.ok() ? 0 : 1;
    }

    if (hot_gates) {
        check::HotGateOptions gate_options;
        gate_options.seedBase = seed_base;
        gate_options.traces = traces;
        gate_options.conditionals = branches;
        check::HotGateReport report = check::runHotGates(gate_options);
        std::fputs(check::formatHotGateReport(report).c_str(), stdout);
        return report.ok() ? 0 : 1;
    }

    if (!inject.empty())
        return runInjected(inject, options, repro_dir);

    std::vector<check::CheckPair> pairs;
    for (check::CheckPair &pair : check::defaultCheckPairs()) {
        if (pairs_filter.empty() ||
            pair.name.find(pairs_filter) != std::string::npos)
            pairs.push_back(std::move(pair));
    }
    fatalIf(pairs.empty(),
            "no check pairs match filter '" + pairs_filter + "'");

    check::SuiteReport report = check::runCheckSuite(options, pairs);
    std::fputs(check::formatReport(report).c_str(), stdout);
    if (!repro_dir.empty()) {
        for (const check::SuiteFailure &failure : report.failures)
            dumpReproducer(repro_dir, failure);
    }

    if (obs::enabled()) {
        std::ostringstream line;
        for (int i = 1; i < argc; ++i)
            line << (i > 1 ? " " : "") << argv[i];
        obs::RunInfo info;
        info.tool = "copra_check";
        info.args = line.str();
        info.seed = options.seedBase;
        info.threads = 0;
        if (!metrics_out.empty())
            obs::writeManifest(metrics_out, info);
        if (metrics_summary)
            std::fputs(
                obs::renderSummary(
                    obs::Registry::instance().snapshot())
                    .c_str(),
                stderr);
    }
    return report.ok() ? 0 : 1;
}
