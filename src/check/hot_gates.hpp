/**
 * @file
 * Runtime hot-path gates: the dynamic half of the hot-path discipline
 * (DESIGN.md §15).
 *
 * The copra_lint call-graph pass proves the *names* on the hot path
 * behave — no visible allocation, locking, throwing, or I/O in any
 * function reachable from a COPRA_HOT root. These gates prove the
 * *process* behaves: they replay fuzzed traces through every
 * factory-roster predictor along the SoA column-kernel path (the exact
 * path sim::run drives), and after a warm-up pass assert that a
 * steady-state replay moves neither the global allocation counter nor
 * the global lock counter. That catches what no token-level analysis
 * can see — allocations behind project-defined method names, container
 * growth hidden in a branch the lint over-approximation excused, or a
 * dependency locking internally.
 *
 * Probes:
 *  - allocation: the copra_check binary (and only that binary)
 *    replaces global operator new to bump a counter
 *    (check/alloc_probe.cc). Sanitizer builds keep the sanitizer's own
 *    allocator, so there the alloc gate reports itself skipped.
 *  - locks: util::Mutex::lock() bumps a relaxed process-wide counter
 *    (util::lockAcquisitionCount) in every build.
 *  - exceptions: a std::terminate handler is installed for the
 *    duration of the gates, so a throw escaping the (noexcept by lint
 *    decree) hot region dies with an attributable message instead of
 *    an anonymous abort.
 *
 * The planted InjectedBug::HotPathAlloc defect (differential.hpp)
 * allocates per batch while predicting identically — invisible to the
 * differential suite and outside the lint's jurisdiction — and the
 * `copra_check --inject hot-path-alloc` self-test requires these gates
 * to catch it.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/state_gates.hpp"

namespace copra::check {

/** Configuration of a hot-gate campaign. */
struct HotGateOptions
{
    uint64_t seedBase = 1200;     //!< first fuzz seed (inclusive)
    uint64_t traces = 3;          //!< fuzzed traces per roster entry
    uint64_t conditionals = 2000; //!< conditional branches per trace
    uint64_t steadyPasses = 2;    //!< measured replays after warm-up

    /**
     * Replays before measurement starts. Pass 1 fills first-touch
     * tables; pass 2 pins global-history-keyed instruments (their keys
     * depend on the history the pass *starts* with, identical from
     * pass 2 on). The remainder covers per-address history: a branch
     * occurring k times per pass advances its private register only k
     * bits per pass, so an interference-free per-address instrument
     * (pc, history)-keyed map keeps minting novel keys — and heap
     * nodes — for up to ceil(history_bits / k) passes before the
     * register reaches its per-pass fixed point. 16 covers every
     * roster geometry with margin (max per-address history is 6).
     */
    uint64_t warmupPasses = 16;
};

/** One gate violation. */
struct HotGateFailure
{
    std::string spec;  //!< roster entry
    std::string gate;  //!< "hot-alloc" or "hot-lock"
    uint64_t seed = 0; //!< fuzz seed of the offending trace
    std::string detail;
};

/** Aggregate outcome of a campaign. */
struct HotGateReport
{
    uint64_t gatesRun = 0;   //!< (spec, gate, pass) checks performed
    bool allocProbe = false; //!< operator-new hook linked and active
    std::vector<HotGateFailure> failures;
    bool ok() const { return failures.empty(); }
};

/**
 * Run the steady-state allocation and lock gates over @p roster (the
 * state-gate roster by default, so every predictor family is covered
 * at allocation-prone small geometries).
 */
HotGateReport runHotGates(const HotGateOptions &options,
                          const std::vector<StatePredictor> &roster
                          = defaultStateRoster());

/** Human-readable campaign summary (one line per failure). */
std::string formatHotGateReport(const HotGateReport &report);

/**
 * Allocation-probe plumbing. The counter and registration flag live in
 * the check library; the operator-new replacement that feeds them is a
 * dedicated TU linked only into the copra_check executable, so library
 * consumers never pay for (or fight over) the global allocator.
 */
void noteHotAlloc() noexcept;        //!< called by the replaced new
void registerAllocProbe() noexcept;  //!< called at alloc_probe.cc init
bool allocProbeLinked() noexcept;    //!< is the hook in this binary?
uint64_t hotAllocCount() noexcept;   //!< allocations since start

} // namespace copra::check
