/**
 * @file
 * Global operator-new replacement feeding the hot-gate allocation
 * counter (check/hot_gates.hpp).
 *
 * This TU is linked into the copra_check *executable* only — never the
 * check library — so no other binary inherits a replaced allocator.
 * Sanitizer builds are excluded outright: ASan/TSan/MSan interpose
 * their own operator new, and a second strong definition would either
 * fail to link or silently bypass poisoning; there the hot gates
 * report the allocation probe as absent and rely on the lock gate
 * (the Release CI leg carries the allocation proof).
 *
 * Only the allocating paths count. Deallocation is forwarded
 * untouched: the gate's question is "did the steady state allocate",
 * not "is the heap balanced" — leaks are the sanitizers' department.
 */

#include "check/hot_gates.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    defined(__SANITIZE_MEMORY__)
#define COPRA_ALLOC_PROBE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) \
    || __has_feature(memory_sanitizer)
#define COPRA_ALLOC_PROBE 0
#else
#define COPRA_ALLOC_PROBE 1
#endif
#else
#define COPRA_ALLOC_PROBE 1
#endif

#if COPRA_ALLOC_PROBE

#include <cstdlib>
#include <new>

namespace {

/** Runs at static-init of the executable; tells the gates the hook
 * is live so the allocation checks count as run, not skipped. */
const bool g_registered = [] {
    copra::check::registerAllocProbe();
    return true;
}();

void *
countedAlloc(std::size_t size)
{
    copra::check::noteHotAlloc();
    if (size == 0)
        size = 1;
    void *p = std::malloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    copra::check::noteHotAlloc();
    // aligned_alloc requires size to be a multiple of the alignment.
    std::size_t rounded = (size + align - 1) / align * align;
    if (rounded == 0)
        rounded = align;
    void *p = std::aligned_alloc(align, rounded);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    copra::check::noteHotAlloc();
    return std::malloc(size ? size : 1);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    copra::check::noteHotAlloc();
    return std::malloc(size ? size : 1);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size,
                               static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size,
                               static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

#endif // COPRA_ALLOC_PROBE
