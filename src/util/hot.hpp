/**
 * @file
 * The COPRA_HOT hot-path root annotation.
 *
 * Functions marked COPRA_HOT are the roots of the steady-state
 * prediction path: copra_lint's call-graph pass (DESIGN.md §15)
 * computes everything reachable from them through resolved calls and
 * virtual fan-out, and enforces the hot-path discipline rules
 * (hot-alloc / hot-lock / hot-throw / hot-io) over that region. The
 * runtime twin, `copra_check --hot-gates`, replays traces through the
 * same region and asserts zero heap allocations and zero lock
 * acquisitions per branch after warm-up.
 *
 * A marked function must also be declared `noexcept` — the analyzer
 * rejects a COPRA_HOT declaration without it.
 *
 * On GCC/Clang the macro additionally expands to the `hot` function
 * attribute, which biases block placement and inlining toward these
 * functions; elsewhere it is annotation-only.
 */

#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define COPRA_HOT __attribute__((hot))
#else
#define COPRA_HOT
#endif
