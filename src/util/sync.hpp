/**
 * @file
 * Annotated synchronization primitives (DESIGN.md §10).
 *
 * std::mutex and std::lock_guard carry no Clang capability attributes,
 * so -Wthread-safety cannot check code that uses them directly. These
 * thin wrappers add the attributes and nothing else: Mutex is a
 * std::mutex declared as a capability, MutexLock is the scoped guard
 * the analysis can follow, and Mutex::wait() bridges to
 * std::condition_variable without ever letting the capability escape
 * unlabeled. All annotated shared state in the tree is guarded by
 * these (see util/thread_annotations.hpp for the macro contract).
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace copra::util {

namespace detail {
/** Process-wide Mutex acquisition tally (relaxed; monotonic). */
// copra-lint: sanctioned-global(hot-gate lock probe: copra_check --hot-gates diffs this across steady-state replays; never read by result-producing code)
inline std::atomic<uint64_t> g_lockAcquisitions{0};
} // namespace detail

/**
 * Mutex acquisitions since process start. The runtime half of the
 * hot-lock lint rule (DESIGN.md §15): `copra_check --hot-gates` diffs
 * this counter across a steady-state replay and fails if any lock was
 * taken on the prediction path.
 */
inline uint64_t
lockAcquisitionCount() noexcept
{
    return detail::g_lockAcquisitions.load(std::memory_order_relaxed);
}

/** A std::mutex the thread-safety analysis can see. */
class COPRA_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() COPRA_ACQUIRE()
    {
        detail::g_lockAcquisitions.fetch_add(1,
                                             std::memory_order_relaxed);
        mutex_.lock();
    }

    void
    unlock() COPRA_RELEASE()
    {
        mutex_.unlock();
    }

    /**
     * Block on @p cv until notified, atomically releasing and
     * re-acquiring this mutex — the condition_variable protocol, made
     * visible to the analysis: the caller must hold the mutex, and
     * still holds it when wait() returns. Spurious wakeups are
     * possible; call in a predicate-checking loop.
     */
    void
    wait(std::condition_variable &cv) COPRA_REQUIRES(this)
    {
        // Adopt the already-held native mutex for the wait protocol,
        // then release the unique_lock's ownership claim so the
        // caller's guard remains the one true owner.
        std::unique_lock<std::mutex> lock(mutex_, std::adopt_lock);
        cv.wait(lock);
        lock.release();
    }

  private:
    std::mutex mutex_;
};

/** Scoped lock over a Mutex; the annotated std::lock_guard. */
class COPRA_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) COPRA_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() COPRA_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

} // namespace copra::util
