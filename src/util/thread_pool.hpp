/**
 * @file
 * A fixed-size task pool for the parallel experiment engine.
 *
 * Every unit of parallel work in copra — predictors sharded by
 * sim::runAllParallel, static branches partitioned by the selective
 * oracle, benchmarks fanned out by the bench harnesses — is independent
 * and owns its state, so the pool needs no work stealing and no task
 * priorities: a mutex-protected FIFO queue drained by a fixed set of
 * workers is enough, and keeps the scheduling easy to reason about.
 *
 * Determinism contract: the pool never introduces nondeterminism by
 * itself. Callers submit index-addressed tasks and collect results by
 * index (parallelFor), so the output of a parallel computation is
 * bit-identical to the serial loop regardless of thread count or
 * scheduling order.
 *
 * Nested parallelism: a task running on a pool worker must never block
 * on futures of tasks queued behind it (all workers could end up
 * waiting on work nobody can start). parallelFor therefore degrades to
 * an inline serial loop when invoked from a worker thread.
 *
 * Fork safety: fork() duplicates the pool object but not its worker
 * threads, so a child process that submits work and waits would hang
 * forever (gtest death tests do exactly this — they fork, then run code
 * that may reach a parallel region before aborting). Three guards keep
 * children safe: the pool records the pid that created it and
 * parallelFor runs inline whenever the caller is not that process; the
 * destructor detaches instead of joining phantom worker handles in a
 * child; and a pthread_atfork handler leaks the child's copy of the
 * global pool outright, because even destroying it would block
 * (pthread_cond_destroy waits for the parent's parked workers, which
 * the condvar's copied state still counts as waiters).
 *
 * Locking discipline (statically checked, DESIGN.md §10): the queue
 * and stop flag are COPRA_GUARDED_BY(mutex_); a Clang build with
 * -DCOPRA_THREAD_SAFETY=ON fails to compile if any new code touches
 * them without holding the mutex.
 */

#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace copra {

/** Fixed-size FIFO task pool. */
class ThreadPool
{
  public:
    /** @param threads Worker count (0 = defaultThreadCount()). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /** Tasks currently queued (not yet picked up by a worker). */
    size_t pending() const;

    /**
     * Enqueue @p fn for execution on a worker thread.
     *
     * @return A future delivering fn's result (or its exception).
     */
    template <typename F>
    std::future<std::invoke_result_t<F>>
    submit(F &&fn)
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /**
     * True when the calling thread is a pool worker (of any pool).
     * Parallel helpers use this to fall back to inline execution instead
     * of deadlocking on nested waits.
     */
    static bool onWorkerThread();

    /**
     * True when the calling process is the one whose constructor spawned
     * the workers. After fork() the child sees false — its copy of the
     * pool has no threads, so waiting on it would hang (see the fork
     * safety note above).
     */
    bool inOwningProcess() const;

  private:
    void enqueue(std::function<void()> task) COPRA_EXCLUDES(mutex_);
    void workerLoop() COPRA_EXCLUDES(mutex_);

    mutable util::Mutex mutex_;
    std::condition_variable available_;
    std::deque<std::function<void()>> queue_ COPRA_GUARDED_BY(mutex_);
    // workers_ and owner_pid_ are written only during construction,
    // before any worker can observe them, and read-only afterwards;
    // they need no guard.
    std::vector<std::thread> workers_;
    long owner_pid_ = 0;
    bool stop_ COPRA_GUARDED_BY(mutex_) = false;
};

/**
 * Worker count used for default-sized pools: the COPRA_THREADS
 * environment variable when set to a positive integer, otherwise
 * std::thread::hardware_concurrency() (minimum 1).
 */
unsigned defaultThreadCount();

/**
 * The process-wide pool shared by all parallel helpers. Created on
 * first use with defaultThreadCount() workers unless
 * setGlobalPoolThreads() ran first.
 */
ThreadPool &globalPool();

/**
 * Resize the global pool (tears down the old one; outstanding tasks are
 * drained first). Called by the bench harnesses' --threads flag.
 *
 * @param threads New worker count (0 = defaultThreadCount()).
 */
void setGlobalPoolThreads(unsigned threads);

/**
 * Run fn(0) .. fn(n-1) across @p pool, blocking until all complete.
 * Iterations must be independent; exceptions are rethrown in the
 * caller (first chunk wins). Runs inline when the pool has one worker,
 * when n < 2, when called from a pool worker thread, or when called
 * from a forked child of the pool's owning process (see the nested
 * parallelism and fork safety notes above).
 */
void parallelFor(ThreadPool &pool, size_t n,
                 const std::function<void(size_t)> &fn);

} // namespace copra

