/**
 * @file
 * Minimal command line option parser shared by the bench and example
 * binaries. Supports "--name value", "--name=value" and boolean flags,
 * generates --help text, and rejects unknown options.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace copra {

/**
 * Registry of typed command line options. Each option binds directly to a
 * caller-owned variable so defaults are visible at the declaration site.
 */
class OptionParser
{
  public:
    /** @param description One-line program description for --help. */
    explicit OptionParser(std::string description);

    /** Register a signed integer option bound to @p target. */
    void addInt(const std::string &name, int64_t *target,
                const std::string &help);

    /** Register an unsigned integer option bound to @p target. */
    void addUint(const std::string &name, uint64_t *target,
                 const std::string &help);

    /** Register a floating point option bound to @p target. */
    void addDouble(const std::string &name, double *target,
                   const std::string &help);

    /** Register a string option bound to @p target. */
    void addString(const std::string &name, std::string *target,
                   const std::string &help);

    /** Register a boolean flag ("--name" sets true, "--name=false" clears). */
    void addFlag(const std::string &name, bool *target,
                 const std::string &help);

    /**
     * Parse @p argv. On "--help", prints usage and returns false (caller
     * should exit 0). Calls fatal() on malformed or unknown options.
     *
     * @return true when the program should proceed.
     */
    bool parse(int argc, const char *const *argv);

  private:
    enum class Kind { Int, Uint, Double, String, Flag };

    struct Option
    {
        std::string name;
        Kind kind;
        void *target;
        std::string help;
    };

    const Option *find(const std::string &name) const;
    void apply(const Option &opt, const std::string &value) const;
    void printHelp(const std::string &prog) const;

    std::string description_;
    std::vector<Option> options_;
};

} // namespace copra

