#include "util/cli.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/logging.hpp"

namespace copra {

OptionParser::OptionParser(std::string description)
    : description_(std::move(description))
{
}

void
OptionParser::addInt(const std::string &name, int64_t *target,
                     const std::string &help)
{
    options_.push_back({name, Kind::Int, target, help});
}

void
OptionParser::addUint(const std::string &name, uint64_t *target,
                      const std::string &help)
{
    options_.push_back({name, Kind::Uint, target, help});
}

void
OptionParser::addDouble(const std::string &name, double *target,
                        const std::string &help)
{
    options_.push_back({name, Kind::Double, target, help});
}

void
OptionParser::addString(const std::string &name, std::string *target,
                        const std::string &help)
{
    options_.push_back({name, Kind::String, target, help});
}

void
OptionParser::addFlag(const std::string &name, bool *target,
                      const std::string &help)
{
    options_.push_back({name, Kind::Flag, target, help});
}

const OptionParser::Option *
OptionParser::find(const std::string &name) const
{
    for (const auto &opt : options_)
        if (opt.name == name)
            return &opt;
    return nullptr;
}

void
OptionParser::apply(const Option &opt, const std::string &value) const
{
    try {
        switch (opt.kind) {
          case Kind::Int:
            *static_cast<int64_t *>(opt.target) = std::stoll(value);
            break;
          case Kind::Uint:
            *static_cast<uint64_t *>(opt.target) = std::stoull(value);
            break;
          case Kind::Double:
            *static_cast<double *>(opt.target) = std::stod(value);
            break;
          case Kind::String:
            *static_cast<std::string *>(opt.target) = value;
            break;
          case Kind::Flag:
            *static_cast<bool *>(opt.target) =
                !(value == "false" || value == "0" || value == "no");
            break;
        }
    } catch (const std::exception &) {
        fatal("invalid value '" + value + "' for option --" + opt.name);
    }
}

void
OptionParser::printHelp(const std::string &prog) const
{
    std::printf("%s\n\nusage: %s [options]\n\noptions:\n",
                description_.c_str(), prog.c_str());
    for (const auto &opt : options_) {
        std::string left = "  --" + opt.name;
        if (opt.kind != Kind::Flag)
            left += " <value>";
        std::printf("%-32s %s\n", left.c_str(), opt.help.c_str());
    }
    std::printf("%-32s %s\n", "  --help", "show this message");
}

bool
OptionParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp(argv[0]);
            return false;
        }
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected argument '" + arg + "' (options start with --)");
        arg = arg.substr(2);

        std::string name = arg;
        std::string value;
        bool have_value = false;
        if (auto eq = arg.find('='); eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            have_value = true;
        }

        const Option *opt = find(name);
        if (opt == nullptr)
            fatal("unknown option --" + name);

        if (!have_value) {
            if (opt->kind == Kind::Flag) {
                value = "true";
            } else {
                if (i + 1 >= argc)
                    fatal("option --" + name + " expects a value");
                value = argv[++i];
            }
        }
        apply(*opt, value);
    }
    return true;
}

} // namespace copra
