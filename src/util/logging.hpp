/**
 * @file
 * Error and status reporting helpers, following the gem5 convention:
 * panic() for internal invariant violations (simulator bugs), fatal() for
 * unrecoverable user errors (bad configuration / arguments), warn() and
 * inform() for status messages that do not stop the run.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace copra {

/**
 * Abort with a message. Use for conditions that indicate a bug in copra
 * itself, never for user errors.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/**
 * Exit with an error code. Use for conditions caused by the user (bad
 * configuration, invalid arguments), not for internal bugs.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/** Non-fatal warning about questionable but survivable conditions. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Informative status message. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/** panic() unless a condition holds. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

/** fatal() unless a condition holds. */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

} // namespace copra

