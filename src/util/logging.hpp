/**
 * @file
 * Error and status reporting helpers, following the gem5 convention:
 * panic() for internal invariant violations (simulator bugs), fatal() for
 * unrecoverable user errors (bad configuration / arguments), warn() and
 * inform() for status messages that do not stop the run.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace copra {

/**
 * Abort with a message. Use for conditions that indicate a bug in copra
 * itself, never for user errors.
 */
[[noreturn]] inline void
panic(const char *msg)
{
    std::fprintf(stderr, "panic: %s\n", msg);
    std::abort();
}

[[noreturn]] inline void
panic(const std::string &msg)
{
    panic(msg.c_str());
}

/**
 * Exit with an error code. Use for conditions caused by the user (bad
 * configuration, invalid arguments), not for internal bugs.
 */
[[noreturn]] inline void
fatal(const char *msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg);
    std::exit(1);
}

[[noreturn]] inline void
fatal(const std::string &msg)
{
    fatal(msg.c_str());
}

/** Non-fatal warning about questionable but survivable conditions. */
inline void
warn(const char *msg)
{
    std::fprintf(stderr, "warn: %s\n", msg);
}

inline void
warn(const std::string &msg)
{
    warn(msg.c_str());
}

/** Informative status message. */
inline void
inform(const char *msg)
{
    std::fprintf(stderr, "info: %s\n", msg);
}

inline void
inform(const std::string &msg)
{
    inform(msg.c_str());
}

/**
 * panic() unless a condition holds.
 *
 * The const char* overload matters: assertion checks sit on the hot
 * prediction path (e.g. FoldedHistory::fold runs two per call), and a
 * std::string parameter would heap-allocate the message at every call
 * site even when the condition is false — a per-branch allocation the
 * `copra_check --hot-gates` steady-state probe flags. Literal messages
 * must never touch an allocator; only call sites that actually format
 * pay for a std::string.
 */
inline void
panicIf(bool cond, const char *msg)
{
    if (cond)
        panic(msg);
}

inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

/** fatal() unless a condition holds. */
inline void
fatalIf(bool cond, const char *msg)
{
    if (cond)
        fatal(msg);
}

inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

} // namespace copra

