/**
 * @file
 * Branch history shift register: the first-level history of a two-level
 * adaptive branch predictor (Yeh & Patt, 1991).
 */

#pragma once

#include <cstdint>

#include "util/logging.hpp"

namespace copra {

/**
 * A k-bit shift register recording the outcomes of the most recent k
 * branches, newest outcome in the least significant bit.
 *
 * Supports histories of up to 64 bits, which covers every configuration in
 * the paper (8..32).
 */
class HistoryRegister
{
  public:
    /** @param length History length in bits, 0..64. */
    explicit HistoryRegister(unsigned length = 16)
        : length_(length),
          mask_(length >= 64 ? ~uint64_t(0) : ((uint64_t(1) << length) - 1)),
          bits_(0)
    {
        panicIf(length > 64, "HistoryRegister supports at most 64 bits");
    }

    /** History length in bits. */
    unsigned length() const { return length_; }

    /** Current history pattern; newest outcome in bit 0. */
    uint64_t value() const noexcept { return bits_; }

    /** Mask covering the configured length. */
    uint64_t mask() const { return mask_; }

    /** Shift in a new outcome (true = taken). */
    void
    push(bool taken) noexcept
    {
        bits_ = ((bits_ << 1) | (taken ? 1u : 0u)) & mask_;
    }

    /** Outcome of the branch @p ago positions back (0 = most recent). */
    bool
    outcome(unsigned ago) const
    {
        panicIf(ago >= length_, "HistoryRegister::outcome out of range");
        return (bits_ >> ago) & 1u;
    }

    /** Clear all recorded history. */
    void clear() { bits_ = 0; }

    /** Replace the recorded pattern (snapshot restore); masked to the
     *  configured length. */
    void set(uint64_t bits) { bits_ = bits & mask_; }

  private:
    unsigned length_;
    uint64_t mask_;
    uint64_t bits_;
};

/**
 * A path history register (Nair, 1995): instead of outcomes it records a
 * few low-order bits of the addresses of the most recent branches, giving a
 * (lossy) encoding of the path taken to reach the current branch.
 */
class PathRegister
{
  public:
    /**
     * @param branches Number of recent branches encoded.
     * @param bits_per_branch Address bits retained per branch.
     */
    PathRegister(unsigned branches = 8, unsigned bits_per_branch = 2)
        : branches_(branches), bitsPer_(bits_per_branch), value_(0)
    {
        panicIf(branches * bits_per_branch > 64,
                "PathRegister wider than 64 bits");
        panicIf(bits_per_branch == 0, "PathRegister needs >= 1 bit/branch");
        unsigned total = branches * bits_per_branch;
        mask_ = total >= 64 ? ~uint64_t(0) : ((uint64_t(1) << total) - 1);
    }

    /** Total register width in bits. */
    unsigned width() const { return branches_ * bitsPer_; }

    /** Current path pattern. */
    uint64_t value() const noexcept { return value_; }

    /** Record the address of a newly executed branch. */
    void
    push(uint64_t pc) noexcept
    {
        // Instruction addresses are word aligned; skip the low two bits so
        // the retained bits actually vary across branches.
        uint64_t piece = (pc >> 2) & ((uint64_t(1) << bitsPer_) - 1);
        value_ = ((value_ << bitsPer_) | piece) & mask_;
    }

    /** Clear all recorded path history. */
    void clear() { value_ = 0; }

    /** Replace the recorded pattern (snapshot restore); masked to the
     *  configured width. */
    void set(uint64_t value) { value_ = value & mask_; }

  private:
    unsigned branches_;
    unsigned bitsPer_;
    uint64_t mask_;
    uint64_t value_;
};

} // namespace copra

