/**
 * @file
 * Saturating up/down counter, the basic adaptive element of every pattern
 * history table in this library (Smith, 1981).
 */

#pragma once

#include <cstdint>

#include "util/logging.hpp"

namespace copra {

/**
 * An n-bit saturating up/down counter.
 *
 * The counter holds values in [0, 2^bits - 1]. increment() and decrement()
 * saturate at the limits. The most significant bit is the conventional
 * taken/not-taken prediction.
 */
class SatCounter
{
  public:
    /**
     * Construct a counter.
     *
     * @param bits Counter width in bits, 1..8.
     * @param initial Initial counter value; must fit in the width.
     */
    explicit SatCounter(unsigned bits = 2, uint8_t initial = 1)
        : bits_(bits), max_((1u << bits) - 1), value_(initial)
    {
        panicIf(bits == 0 || bits > 8, "SatCounter width must be in 1..8");
        panicIf(initial > max_, "SatCounter initial value out of range");
    }

    /** Current raw counter value. */
    uint8_t value() const noexcept { return value_; }

    /** Largest representable value. */
    uint8_t maxValue() const { return max_; }

    /** Counter width in bits. */
    unsigned bits() const { return bits_; }

    /** Prediction encoded by the counter: true iff the MSB is set. */
    bool taken() const noexcept { return value_ >= (max_ + 1u) / 2; }

    /** True when the counter is at either saturation point. */
    bool saturated() const { return value_ == 0 || value_ == max_; }

    /** Increment, saturating at the maximum. */
    void
    increment() noexcept
    {
        if (value_ < max_)
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement() noexcept
    {
        if (value_ > 0)
            --value_;
    }

    /** Move the counter toward an observed outcome. */
    void
    update(bool outcome) noexcept
    {
        if (outcome)
            increment();
        else
            decrement();
    }

    /** Reset to an explicit value. */
    void
    set(uint8_t value)
    {
        panicIf(value > max_, "SatCounter::set value out of range");
        value_ = value;
    }

    bool operator==(const SatCounter &other) const
    {
        return bits_ == other.bits_ && value_ == other.value_;
    }

  private:
    uint8_t bits_;
    uint8_t max_;
    uint8_t value_;
};

/**
 * A compact 2-bit counter stored in a single byte, for the large counter
 * arrays used by pattern history tables. States: 0 strongly-not-taken,
 * 1 weakly-not-taken, 2 weakly-taken, 3 strongly-taken.
 */
struct Counter2
{
    uint8_t v = 1;

    /** Prediction: taken iff in one of the two taken states. */
    bool taken() const noexcept { return v >= 2; }

    /** Move toward an observed outcome, saturating at [0, 3]. */
    void
    update(bool outcome) noexcept
    {
        if (outcome) {
            if (v < 3)
                ++v;
        } else {
            if (v > 0)
                --v;
        }
    }
};

} // namespace copra

