#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.hpp"

namespace copra {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    panicIf(headers_.empty(), "Table needs at least one column");
}

Table &
Table::row()
{
    if (!rows_.empty() && rows_.back().size() != headers_.size())
        panic("Table row started before previous row was filled");
    rows_.emplace_back();
    rows_.back().reserve(headers_.size());
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    panicIf(rows_.empty(), "Table::cell before Table::row");
    panicIf(rows_.back().size() >= headers_.size(),
            "Table row has too many cells");
    rows_.back().push_back(text);
    return *this;
}

Table &
Table::cell(uint64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(double value, int precision)
{
    return cell(formatFixed(value, precision));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit_row(headers_);
    size_t rule = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(rule, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

namespace {

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << csvEscape(cells[c]);
            if (c + 1 < cells.size())
                os << ',';
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
formatFixed(double value, int precision)
{
    // NaN marks "no data" (e.g. accuracy over zero predicted branches,
    // matching formatPercent's zero-denominator case); print it as n/a
    // rather than the platform's nan spelling.
    if (std::isnan(value))
        return "n/a";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
formatPercent(uint64_t numerator, uint64_t denominator, int precision)
{
    if (denominator == 0)
        return "n/a";
    double pct = 100.0 * static_cast<double>(numerator)
        / static_cast<double>(denominator);
    return formatFixed(pct, precision);
}

} // namespace copra
