#include "util/metrics_hooks.hpp"

#include <atomic>

namespace copra::util {

namespace {

// Written once when obs::setEnabled installs its listeners, read on
// every pool event; relaxed is enough because the hooks only feed
// monotonic telemetry counters, never simulation results.
// copra-lint: sanctioned-global(telemetry hook installation point; results never flow through it)
std::atomic<const PoolMetricsHooks *> g_pool_hooks{nullptr};

} // namespace

const PoolMetricsHooks *
poolMetricsHooks()
{
    return g_pool_hooks.load(std::memory_order_relaxed);
}

void
setPoolMetricsHooks(const PoolMetricsHooks *hooks)
{
    g_pool_hooks.store(hooks, std::memory_order_relaxed);
}

} // namespace copra::util
