#include "util/thread_pool.hpp"

#include <pthread.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>

#include "util/env.hpp"
#include "util/logging.hpp"
#include "util/metrics_hooks.hpp"
#include "util/sync.hpp"

namespace copra {

namespace {

// copra-lint: sanctioned-global(per-thread marker so nested runAllParallel calls degrade to inline execution; never crosses threads)
thread_local bool t_on_worker_thread = false;

} // namespace

ThreadPool::ThreadPool(unsigned threads)
    : owner_pid_(static_cast<long>(::getpid()))
{
    if (threads == 0)
        threads = defaultThreadCount();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    if (!inOwningProcess()) {
        // A forked child (e.g. a gtest death test exiting through the
        // global pool's static destructor) inherits the thread handles
        // but not the threads; join() would block forever on tids that
        // only ever existed in the parent. Detach and walk away — the
        // parent still owns and joins the real threads.
        for (std::thread &worker : workers_)
            worker.detach();
        return;
    }
    {
        util::MutexLock lock(mutex_);
        stop_ = true;
    }
    available_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

size_t
ThreadPool::pending() const
{
    util::MutexLock lock(mutex_);
    return queue_.size();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    size_t depth;
    {
        util::MutexLock lock(mutex_);
        panicIf(stop_, "thread pool: submit after shutdown");
        queue_.push_back(std::move(task));
        depth = queue_.size();
    }
    available_.notify_one();
    if (const util::PoolMetricsHooks *hooks = util::poolMetricsHooks();
        hooks != nullptr && hooks->taskQueued != nullptr)
        hooks->taskQueued(depth);
}

void
ThreadPool::workerLoop()
{
    t_on_worker_thread = true;
    for (;;) {
        std::function<void()> task;
        {
            util::MutexLock lock(mutex_);
            while (!stop_ && queue_.empty())
                mutex_.wait(available_);
            // Drain remaining work even when stopping, so ~ThreadPool
            // never abandons a task whose future somebody holds.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        const util::PoolMetricsHooks *hooks = util::poolMetricsHooks();
        if (hooks != nullptr && hooks->taskExecuted != nullptr) {
            auto start = std::chrono::steady_clock::now();
            task();
            hooks->taskExecuted(std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    start)
                                    .count());
        } else {
            task();
        }
    }
}

bool
ThreadPool::onWorkerThread()
{
    return t_on_worker_thread;
}

bool
ThreadPool::inOwningProcess() const
{
    return owner_pid_ == static_cast<long>(::getpid());
}

unsigned
defaultThreadCount()
{
    if (const char *env = util::envRaw("COPRA_THREADS")) {
        char *end = nullptr;
        long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0)
            return static_cast<unsigned>(parsed);
        if (env[0] != '\0')
            warn("ignoring invalid COPRA_THREADS value '" +
                 std::string(env) + "'");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

namespace {

// The process-wide pool singleton (DESIGN.md §7): simulation results
// never flow through it, only work items, so it cannot break
// determinism; it exists exactly once so fork handlers can find it.
// copra-lint: sanctioned-global(thread-pool singleton registry mutex)
util::Mutex g_pool_mutex;
// copra-lint: sanctioned-global(the thread-pool singleton itself)
std::unique_ptr<ThreadPool> g_pool COPRA_GUARDED_BY(g_pool_mutex);
// copra-lint: sanctioned-global(one-shot pthread_atfork registration)
std::once_flag g_atfork_once;

/**
 * The pthread_atfork protocol, spelled as named functions so each can
 * declare its half of the acquire/release pair: prepare takes the
 * registry mutex so the child's copy is never stuck locked, and both
 * continuations release it on their side of the fork.
 */
void
atforkPrepare() COPRA_ACQUIRE(g_pool_mutex)
{
    g_pool_mutex.lock();
}

void
atforkParent() COPRA_RELEASE(g_pool_mutex)
{
    g_pool_mutex.unlock();
}

void
atforkChild() COPRA_RELEASE(g_pool_mutex)
{
    // Leak the child's copy of the pool: it has no worker threads, and
    // even destroying it would block in pthread_cond_destroy (the
    // condvar's copied state still counts the parent's parked workers
    // as waiters).
    g_pool.release();
    g_pool_mutex.unlock();
}

/**
 * A forked child inherits the global pool object but none of its worker
 * threads, and even destroying the copy is unsafe (see atforkChild).
 * (gtest death tests hit exactly this — fork, then exit(1) through the
 * static destructors.) So on fork we leak the child's copy; a child
 * that wants parallelism gets a fresh pool on its next globalPool()
 * call.
 */
void
registerForkHandlers()
{
    std::call_once(g_atfork_once, []() {
        ::pthread_atfork(atforkPrepare, atforkParent, atforkChild);
    });
}

} // namespace

ThreadPool &
globalPool()
{
    registerForkHandlers();
    util::MutexLock lock(g_pool_mutex);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(defaultThreadCount());
    // The reference outlives the lock by design: the pointer itself is
    // guarded (set-once-or-swap under the mutex), while the pool object
    // is internally synchronized.
    return *g_pool;
}

void
setGlobalPoolThreads(unsigned threads)
{
    registerForkHandlers();
    std::unique_ptr<ThreadPool> fresh =
        std::make_unique<ThreadPool>(threads);
    util::MutexLock lock(g_pool_mutex);
    g_pool = std::move(fresh);
}

void
parallelFor(ThreadPool &pool, size_t n,
            const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (n < 2 || pool.size() < 2 || ThreadPool::onWorkerThread() ||
        !pool.inOwningProcess()) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Static contiguous partition: chunk c covers [begin, end). The
    // assignment depends only on n and the pool size, never on
    // scheduling, so any per-chunk state a caller keeps is reproducible.
    size_t chunks = std::min<size_t>(n, pool.size());
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (size_t c = 0; c < chunks; ++c) {
        size_t begin = n * c / chunks;
        size_t end = n * (c + 1) / chunks;
        futures.push_back(pool.submit([&fn, begin, end]() {
            for (size_t i = begin; i < end; ++i)
                fn(i);
        }));
    }
    // Wait for every chunk before rethrowing: the tasks capture fn by
    // reference, so none may outlive this frame.
    std::exception_ptr first_error;
    for (auto &future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace copra
