/**
 * @file
 * The telemetry seam between util and the observability registry.
 *
 * The module DAG places obs *above* util (util -> obs -> trace -> ...,
 * DESIGN.md §11), so util code — notably the thread pool — may not
 * include obs headers. Instead, util publishes its events through this
 * set of plain function pointers: obs installs implementations when
 * telemetry is enabled, and until then the pool pays exactly one
 * relaxed atomic load per event to discover there is nobody listening.
 * The installer must provide pointers that stay valid for the rest of
 * the process (obs uses function-scope statics).
 */

#pragma once

#include <cstdint>

namespace copra::util {

/** Pool events a listener can subscribe to. Any pointer may be null. */
struct PoolMetricsHooks
{
    /** A task was queued; @p queue_depth is the depth after the push. */
    void (*taskQueued)(uint64_t queue_depth) = nullptr;

    /** A task finished on a worker after @p busy_seconds of run time. */
    void (*taskExecuted)(double busy_seconds) = nullptr;
};

/** The currently installed hooks, or nullptr when telemetry is off. */
const PoolMetricsHooks *poolMetricsHooks();

/**
 * Install @p hooks (nullptr uninstalls). The pointed-to struct must
 * outlive every subsequent pool operation.
 */
void setPoolMetricsHooks(const PoolMetricsHooks *hooks);

} // namespace copra::util
