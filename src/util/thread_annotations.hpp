/**
 * @file
 * Clang thread-safety-analysis attribute macros (DESIGN.md §10).
 *
 * The parallel engine's locking discipline is a statically checked
 * property: every piece of state shared between pool workers is
 * declared COPRA_GUARDED_BY its mutex, every lock-taking function
 * declares what it acquires, and a Clang build with
 * -DCOPRA_THREAD_SAFETY=ON compiles the tree with
 * `-Wthread-safety -Werror`, so an unguarded access is a build
 * failure, not a maybe-TSan-catches-it runtime race.
 *
 * On compilers without the attributes (GCC) every macro expands to
 * nothing, so the annotations are free documentation there; the CI
 * clang job and the `thread_safety_negative` ctest keep them honest.
 * Use the wrappers in util/sync.hpp (Mutex / MutexLock) rather than
 * raw std::mutex for annotated state: the std types carry no
 * capability attributes, so the analysis cannot see through them.
 */

#pragma once

#if defined(__clang__) && !defined(SWIG)
#define COPRA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define COPRA_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/** Marks a type as a lockable capability (e.g. a mutex wrapper). */
#define COPRA_CAPABILITY(name) COPRA_THREAD_ANNOTATION(capability(name))

/** Marks an RAII type that acquires on construction, releases on
 *  destruction (std::lock_guard-shaped). */
#define COPRA_SCOPED_CAPABILITY COPRA_THREAD_ANNOTATION(scoped_lockable)

/** Declares that a member/global may only be touched while holding the
 *  named capability. */
#define COPRA_GUARDED_BY(x) COPRA_THREAD_ANNOTATION(guarded_by(x))

/** Like COPRA_GUARDED_BY, but for the data a pointer points at. */
#define COPRA_PT_GUARDED_BY(x) COPRA_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function acquires the capability (and does not release it). */
#define COPRA_ACQUIRE(...) \
    COPRA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases a capability acquired earlier. */
#define COPRA_RELEASE(...) \
    COPRA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function may only be called while holding the capability. */
#define COPRA_REQUIRES(...) \
    COPRA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function may only be called while NOT holding the capability
 *  (deadlock prevention for self-locking entry points). */
#define COPRA_EXCLUDES(...) \
    COPRA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function tries to acquire; returns `ret` on success. */
#define COPRA_TRY_ACQUIRE(ret, ...) \
    COPRA_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/** Function returns a reference to the named capability. */
#define COPRA_RETURN_CAPABILITY(x) \
    COPRA_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: body is deliberately invisible to the analysis.
 *  Every use must carry a comment explaining why it is sound. */
#define COPRA_NO_THREAD_SAFETY_ANALYSIS \
    COPRA_THREAD_ANNOTATION(no_thread_safety_analysis)
