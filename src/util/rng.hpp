/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Workload generation must be exactly reproducible across runs and
 * platforms, so we implement xoshiro256** (Blackman & Vigna) seeded through
 * splitmix64 rather than relying on implementation-defined std::
 * distributions.
 */

#pragma once

#include <cstdint>

#include "util/logging.hpp"

namespace copra {

/** splitmix64 step; used for seeding and for cheap hash mixing. */
inline uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Stateless 64-bit mix of a single value (splitmix64 finalizer). */
inline uint64_t
mix64(uint64_t x)
{
    uint64_t s = x;
    return splitmix64(s);
}

/**
 * xoshiro256** generator. Deterministic, fast, and identical on every
 * platform, which keeps synthetic benchmark traces byte-for-byte
 * reproducible per seed.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        uint64_t sm = seed;
        for (auto &word : s_)
            word = splitmix64(sm);
    }

    /** Next raw 64-bit output. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool bernoulli(double p) { return uniform() < p; }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        panicIf(lo > hi, "Rng::range requires lo <= hi");
        uint64_t span = hi - lo + 1;
        if (span == 0)
            return next(); // full 64-bit range
        return lo + next() % span;
    }

    /** Uniform index in [0, n). @p n must be positive. */
    uint64_t
    index(uint64_t n)
    {
        panicIf(n == 0, "Rng::index requires n > 0");
        return next() % n;
    }

    /**
     * Geometric-flavoured small integer: minimum @p lo, each further step
     * taken with probability @p grow, capped at @p hi. Used for loop trip
     * counts and chain lengths.
     */
    uint64_t
    geometric(uint64_t lo, uint64_t hi, double grow)
    {
        uint64_t v = lo;
        while (v < hi && bernoulli(grow))
            ++v;
        return v;
    }

    /** Fork an independent stream (e.g., one per condition variable). */
    Rng
    fork()
    {
        return Rng(next());
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s_[4];
};

} // namespace copra

