#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace copra {

Histogram::Histogram(double lo, double hi, unsigned bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    panicIf(bins == 0, "Histogram needs at least one bin");
    panicIf(!(hi > lo), "Histogram interval must be non-empty");
}

void
Histogram::add(double x, uint64_t weight)
{
    double t = (x - lo_) / (hi_ - lo_);
    auto bin = static_cast<long>(std::floor(t * counts_.size()));
    bin = std::clamp(bin, 0l, static_cast<long>(counts_.size()) - 1);
    counts_[static_cast<size_t>(bin)] += weight;
    total_ += weight;
}

double
Histogram::binCenter(unsigned i) const
{
    double width = (hi_ - lo_) / counts_.size();
    return lo_ + (i + 0.5) * width;
}

double
Histogram::fraction(unsigned i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

void
Histogram::merge(const Histogram &other)
{
    panicIf(other.lo_ != lo_ || other.hi_ != hi_ ||
                other.counts_.size() != counts_.size(),
            "Histogram::merge on mismatched geometries");
    for (size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

void
Histogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

void
WeightedPercentiles::add(double value, uint64_t weight)
{
    if (weight == 0)
        return;
    samples_.emplace_back(value, weight);
    total_ += weight;
    sorted_ = false;
}

void
WeightedPercentiles::sort() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        sorted_ = true;
    }
}

double
WeightedPercentiles::percentile(double p) const
{
    panicIf(samples_.empty(), "percentile() on empty sample set");
    sort();
    double target = std::clamp(p, 0.0, 100.0) / 100.0
        * static_cast<double>(total_);
    uint64_t seen = 0;
    for (const auto &[value, weight] : samples_) {
        seen += weight;
        if (static_cast<double>(seen) >= target)
            return value;
    }
    return samples_.back().first;
}

std::vector<std::pair<double, double>>
WeightedPercentiles::curve(double step) const
{
    std::vector<std::pair<double, double>> out;
    for (double p = 0.0; p <= 100.0 + 1e-9; p += step)
        out.emplace_back(p, percentile(p));
    return out;
}

} // namespace copra
