/**
 * @file
 * Aligned ASCII table and CSV emission for the benchmark harnesses. Every
 * bench binary prints the rows/series of one paper table or figure; this
 * keeps their formatting uniform.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace copra {

/**
 * A simple column-aligned text table. Cells are strings; numeric helpers
 * format with fixed precision. Output either as aligned text or CSV.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Number of columns. */
    size_t columns() const { return headers_.size(); }

    /** Number of data rows. */
    size_t rows() const { return rows_.size(); }

    /** Begin a new row; subsequent cell() calls fill it left to right. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &text);

    /** Append an integer cell. */
    Table &cell(uint64_t value);

    /** Append a floating point cell with @p precision decimals. */
    Table &cell(double value, int precision = 2);

    /** Render as an aligned text table. */
    void print(std::ostream &os) const;

    /** Render as CSV (RFC-4180-ish; commas and quotes escaped). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format @p value as a fixed-precision string. */
std::string formatFixed(double value, int precision);

/** Format @p numerator / @p denominator as a percentage string. */
std::string formatPercent(uint64_t numerator, uint64_t denominator,
                          int precision = 2);

} // namespace copra

