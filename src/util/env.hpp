/**
 * @file
 * The one sanctioned doorway to the process environment.
 *
 * copra_lint bans getenv outside src/util: environment reads are a
 * hidden input channel, and scattering them makes "what did this run
 * depend on?" unanswerable. Every knob goes through here so the full
 * set of recognized variables is greppable in one place
 * (COPRA_THREADS, COPRA_CACHE_DIR, COPRA_SIMD today).
 */

#pragma once

#include <cstdlib>
#include <string>

namespace copra::util {

/**
 * Raw environment lookup; nullptr when unset. Prefer envString()
 * unless the caller needs to distinguish unset from empty.
 */
inline const char *
envRaw(const char *name)
{
    return std::getenv(name);
}

/** Environment value, or `fallback` when the variable is unset or
 * empty — empty means "not configured" for every copra knob. */
inline std::string
envString(const char *name, const std::string &fallback)
{
    const char *value = envRaw(name);
    return (value != nullptr && value[0] != '\0') ? value : fallback;
}

} // namespace copra::util
