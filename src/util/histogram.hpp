/**
 * @file
 * Histograms and weighted percentile curves used by the evaluation
 * harnesses (notably the gshare-vs-PAs percentile plot, paper Fig. 9).
 */

#pragma once

#include <cstdint>
#include <vector>

namespace copra {

/**
 * Fixed-bin histogram over a closed real interval. Samples outside the
 * interval clamp to the first/last bin.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower bound of the covered interval.
     * @param hi Upper bound of the covered interval (must exceed @p lo).
     * @param bins Number of equal-width bins (>= 1).
     */
    Histogram(double lo, double hi, unsigned bins);

    /** Add @p weight (default 1) at value @p x. */
    void add(double x, uint64_t weight = 1);

    /** Number of bins. */
    unsigned bins() const { return static_cast<unsigned>(counts_.size()); }

    /** Total weight accumulated. */
    uint64_t total() const { return total_; }

    /** Weight in bin @p i. */
    uint64_t count(unsigned i) const { return counts_.at(i); }

    /** Center value of bin @p i. */
    double binCenter(unsigned i) const;

    /** Fraction of total weight in bin @p i (0 if empty histogram). */
    double fraction(unsigned i) const;

    /** Lower bound of the covered interval. */
    double lo() const { return lo_; }

    /** Upper bound of the covered interval. */
    double hi() const { return hi_; }

    /**
     * Fold @p other into this histogram bin by bin. Both histograms
     * must share the same geometry (lo, hi, bins). Merging is
     * associative and commutative — the property the observability
     * registry's per-thread-merge determinism argument rests on
     * (DESIGN.md §11) — because it is pure bin-wise addition.
     */
    void merge(const Histogram &other);

    /** Reset all counts. */
    void clear();

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/**
 * Weighted sample set supporting percentile queries. Used to reproduce the
 * paper's percentile-of-dynamic-branches curves: each static branch
 * contributes its statistic weighted by execution frequency.
 */
class WeightedPercentiles
{
  public:
    /** Add a sample @p value carrying @p weight. */
    void add(double value, uint64_t weight);

    /** Total accumulated weight. */
    uint64_t totalWeight() const { return total_; }

    /**
     * Value at percentile @p p in [0, 100]: the smallest sample value v
     * such that at least p% of the weight lies at or below v. The sample
     * set must be non-empty.
     */
    double percentile(double p) const;

    /**
     * Evaluate percentiles 0..100 in steps of @p step and return the
     * resulting curve (percentile, value) pairs.
     */
    std::vector<std::pair<double, double>> curve(double step = 5.0) const;

  private:
    mutable std::vector<std::pair<double, uint64_t>> samples_;
    mutable bool sorted_ = false;
    uint64_t total_ = 0;

    void sort() const;
};

} // namespace copra

