#include "workload/patterns.hpp"

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace copra::workload {

using trace::BranchKind;
using trace::BranchRecord;
using trace::Trace;

Trace
loopTrace(uint64_t pc, uint32_t trip, uint32_t invocations)
{
    panicIf(trip == 0, "loopTrace needs trip >= 1");
    Trace out("loop");
    out.reserve(size_t(invocations) * trip);
    uint64_t head = pc >= 64 ? pc - 64 : 0;
    for (uint32_t inv = 0; inv < invocations; ++inv)
        for (uint32_t i = 0; i < trip; ++i)
            out.append({pc, head, BranchKind::Conditional, i + 1 < trip});
    return out;
}

Trace
whileTrace(uint64_t pc, uint32_t trip, uint32_t invocations)
{
    Trace out("while");
    out.reserve(size_t(invocations) * (size_t(trip) + 1));
    for (uint32_t inv = 0; inv < invocations; ++inv) {
        for (uint32_t i = 0; i < trip; ++i)
            out.append({pc, pc + 64, BranchKind::Conditional, false});
        out.append({pc, pc + 64, BranchKind::Conditional, true});
    }
    return out;
}

Trace
periodicTrace(uint64_t pc, const std::vector<bool> &pattern, uint32_t repeats)
{
    panicIf(pattern.empty(), "periodicTrace needs a non-empty pattern");
    Trace out("periodic");
    out.reserve(size_t(repeats) * pattern.size());
    for (uint32_t rep = 0; rep < repeats; ++rep)
        for (bool bit : pattern)
            out.append({pc, pc + 64, BranchKind::Conditional, bit});
    return out;
}

Trace
blockPatternTrace(uint64_t pc, uint32_t n, uint32_t m, uint32_t repeats)
{
    panicIf(n == 0 || m == 0, "blockPatternTrace needs n, m >= 1");
    Trace out("block");
    out.reserve(size_t(repeats) * (size_t(n) + m));
    for (uint32_t rep = 0; rep < repeats; ++rep) {
        for (uint32_t i = 0; i < n; ++i)
            out.append({pc, pc + 64, BranchKind::Conditional, true});
        for (uint32_t i = 0; i < m; ++i)
            out.append({pc, pc + 64, BranchKind::Conditional, false});
    }
    return out;
}

Trace
biasedTrace(uint64_t pc, double p, uint64_t count, uint64_t seed)
{
    Trace out("biased");
    out.reserve(count);
    Rng rng(seed);
    for (uint64_t i = 0; i < count; ++i)
        out.append({pc, pc + 64, BranchKind::Conditional, rng.bernoulli(p)});
    return out;
}

Trace
correlatedPairTrace(uint64_t pc_y, uint64_t pc_x, double p1, double p2,
                    uint64_t pairs, uint64_t seed)
{
    Trace out("fig1a");
    out.reserve(pairs * 2);
    Rng rng(seed);
    for (uint64_t i = 0; i < pairs; ++i) {
        bool cond1 = rng.bernoulli(p1);
        bool cond2 = rng.bernoulli(p2);
        out.append({pc_y, pc_y + 64, BranchKind::Conditional, cond1});
        out.append({pc_x, pc_x + 64, BranchKind::Conditional,
                    cond1 && cond2});
    }
    return out;
}

Trace
inPathTrace(uint64_t base_pc, double p1, double p2, double p3,
            uint64_t iterations, uint64_t seed)
{
    Trace out("fig2");
    out.reserve(iterations * 5); // <= 5 records per iteration
    Rng rng(seed);
    uint64_t pc_y = base_pc;
    uint64_t pc_z = base_pc + 4;
    uint64_t pc_v = base_pc + 8;
    uint64_t pc_x = base_pc + 64;
    for (uint64_t i = 0; i < iterations; ++i) {
        bool cond1 = rng.bernoulli(p1);
        bool cond2 = rng.bernoulli(p2);
        bool cond3 = rng.bernoulli(p3);
        // else-if chain: if (!cond1) ... else if (!cond2) ... else if
        // (cond3) ...; each arm's branch executes only if all earlier
        // arms fell through.
        out.append({pc_y, pc_y + 128, BranchKind::Conditional, !cond1});
        if (cond1) {
            out.append({pc_z, pc_z + 128, BranchKind::Conditional, !cond2});
            if (cond2) {
                out.append({pc_v, pc_v + 128, BranchKind::Conditional,
                            cond3});
            }
        }
        out.append({pc_x, pc_x + 128, BranchKind::Conditional,
                    cond1 && cond2});
        // Close the iteration with a backward jump so method-B tagging
        // (backward-transfer counting) can pin instances to iterations.
        out.append({pc_x + 4, base_pc, BranchKind::Jump, true});
    }
    return out;
}

Trace
interleave(const std::vector<Trace> &traces)
{
    Trace out("interleaved");
    size_t total = 0;
    for (const Trace &t : traces)
        total += t.size();
    out.reserve(total);
    std::vector<size_t> cursor(traces.size(), 0);
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (size_t t = 0; t < traces.size(); ++t) {
            if (cursor[t] < traces[t].size()) {
                out.append(traces[t][cursor[t]++]);
                progressed = true;
            }
        }
    }
    return out;
}

} // namespace copra::workload
