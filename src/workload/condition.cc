#include "workload/condition.hpp"

#include "util/logging.hpp"
#include "util/table.hpp"

namespace copra::workload {

ConditionSpec
ConditionSpec::biased(double p)
{
    ConditionSpec spec;
    spec.kind = ConditionKind::Biased;
    spec.p = p;
    return spec;
}

ConditionSpec
ConditionSpec::periodic(uint32_t pattern, unsigned len)
{
    panicIf(len == 0 || len > 32, "periodic pattern length must be 1..32");
    ConditionSpec spec;
    spec.kind = ConditionKind::Periodic;
    spec.pattern = pattern;
    spec.patternLen = len;
    return spec;
}

ConditionSpec
ConditionSpec::markov(double p_stay_true, double p_enter_true)
{
    ConditionSpec spec;
    spec.kind = ConditionKind::Markov;
    spec.pStayTrue = p_stay_true;
    spec.pEnterTrue = p_enter_true;
    return spec;
}

ConditionSpec
ConditionSpec::markov2(double p_after_differ)
{
    ConditionSpec spec;
    spec.kind = ConditionKind::Markov2;
    spec.pAfterDiffer = p_after_differ;
    return spec;
}

ConditionSpec
ConditionSpec::counter(uint32_t mod, uint32_t lt)
{
    panicIf(mod == 0, "counter condition needs mod > 0");
    ConditionSpec spec;
    spec.kind = ConditionKind::Counter;
    spec.mod = mod;
    spec.lt = lt;
    return spec;
}

std::string
ConditionSpec::describe() const
{
    switch (kind) {
      case ConditionKind::Biased:
        return "biased(p=" + formatFixed(p, 3) + ")";
      case ConditionKind::Periodic:
        return "periodic(len=" + std::to_string(patternLen) + ")";
      case ConditionKind::Markov:
        return "markov(stay=" + formatFixed(pStayTrue, 2) +
            ", enter=" + formatFixed(pEnterTrue, 2) + ")";
      case ConditionKind::Markov2:
        return "markov2(diff=" + formatFixed(pAfterDiffer, 2) + ")";
      case ConditionKind::Counter:
        return "counter(" + std::to_string(lt) + "/" +
            std::to_string(mod) + ")";
    }
    return "unknown";
}

ConditionSource::ConditionSource(const ConditionSpec &spec, Rng rng)
    : spec_(spec), rng_(rng)
{
}

bool
ConditionSource::next()
{
    bool value = false;
    switch (spec_.kind) {
      case ConditionKind::Biased:
        value = rng_.bernoulli(spec_.p);
        break;
      case ConditionKind::Periodic:
        value = (spec_.pattern >> (count_ % spec_.patternLen)) & 1u;
        break;
      case ConditionKind::Markov:
        value = state_ ? rng_.bernoulli(spec_.pStayTrue)
                       : rng_.bernoulli(spec_.pEnterTrue);
        state_ = value;
        break;
      case ConditionKind::Markov2:
        {
            double p = state_ != state2_ ? spec_.pAfterDiffer
                                         : 1.0 - spec_.pAfterDiffer;
            value = rng_.bernoulli(p);
            state2_ = state_;
            state_ = value;
        }
        break;
      case ConditionKind::Counter:
        value = (count_ % spec_.mod) < spec_.lt;
        break;
    }
    ++count_;
    return value;
}

} // namespace copra::workload
