#include "workload/expr.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace copra::workload {

Pred
Pred::var(unsigned index)
{
    Pred p;
    p.nodes_.push_back({Op::Var, index, 0});
    return p;
}

Pred
Pred::notOf(const Pred &a)
{
    panicIf(a.empty(), "Pred::notOf on empty predicate");
    Pred p;
    uint32_t child = p.absorb(a);
    p.nodes_.push_back({Op::Not, child, 0});
    return p;
}

Pred
Pred::andOf(const Pred &a, const Pred &b)
{
    panicIf(a.empty() || b.empty(), "Pred::andOf on empty predicate");
    Pred p;
    uint32_t left = p.absorb(a);
    uint32_t right = p.absorb(b);
    p.nodes_.push_back({Op::And, left, right});
    return p;
}

Pred
Pred::orOf(const Pred &a, const Pred &b)
{
    panicIf(a.empty() || b.empty(), "Pred::orOf on empty predicate");
    Pred p;
    uint32_t left = p.absorb(a);
    uint32_t right = p.absorb(b);
    p.nodes_.push_back({Op::Or, left, right});
    return p;
}

uint32_t
Pred::absorb(const Pred &other)
{
    uint32_t base = static_cast<uint32_t>(nodes_.size());
    for (Node node : other.nodes_) {
        if (node.op != Op::Var) {
            node.a += base;
            if (node.op != Op::Not)
                node.b += base;
        }
        nodes_.push_back(node);
    }
    return static_cast<uint32_t>(nodes_.size()) - 1;
}

bool
Pred::evalNode(uint32_t idx, const std::vector<uint8_t> &vars) const
{
    const Node &node = nodes_[idx];
    switch (node.op) {
      case Op::Var:
        return vars[node.a] != 0;
      case Op::Not:
        return !evalNode(node.a, vars);
      case Op::And:
        return evalNode(node.a, vars) && evalNode(node.b, vars);
      case Op::Or:
        return evalNode(node.a, vars) || evalNode(node.b, vars);
    }
    return false;
}

bool
Pred::eval(const std::vector<uint8_t> &vars) const
{
    panicIf(nodes_.empty(), "Pred::eval on empty predicate");
    return evalNode(static_cast<uint32_t>(nodes_.size()) - 1, vars);
}

std::vector<unsigned>
Pred::variables() const
{
    std::vector<unsigned> out;
    for (const Node &node : nodes_)
        if (node.op == Op::Var)
            out.push_back(node.a);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::string
Pred::nodeString(uint32_t idx) const
{
    const Node &node = nodes_[idx];
    switch (node.op) {
      case Op::Var:
        return "v" + std::to_string(node.a);
      case Op::Not:
        return "!" + nodeString(node.a);
      case Op::And:
        return "(" + nodeString(node.a) + " & " + nodeString(node.b) + ")";
      case Op::Or:
        return "(" + nodeString(node.a) + " | " + nodeString(node.b) + ")";
    }
    return "?";
}

std::string
Pred::toString() const
{
    if (nodes_.empty())
        return "<empty>";
    return nodeString(static_cast<uint32_t>(nodes_.size()) - 1);
}

} // namespace copra::workload
