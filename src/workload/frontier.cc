#include "workload/frontier.hpp"

#include <algorithm>
#include <cstddef>

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "workload/profiles.hpp"

namespace copra::workload {

using trace::BranchKind;
using trace::Trace;

namespace {

/**
 * Conditional-budget emitter: cond() spends one unit of the budget and
 * refuses once it is exhausted, so every generator stops at exactly the
 * requested count no matter where its control flow stands; other()
 * interleaves non-conditional transfers only while budget remains, so
 * traces never end in a tail of unconditional records.
 */
struct Emitter
{
    Trace &out;
    uint64_t budget;

    bool done() const { return budget == 0; }

    bool
    cond(uint64_t pc, uint64_t target, bool taken)
    {
        if (budget == 0)
            return false;
        --budget;
        out.append({pc, target, BranchKind::Conditional, taken});
        return true;
    }

    void
    other(uint64_t pc, uint64_t target, BranchKind kind)
    {
        if (budget > 0)
            out.append({pc, target, kind, true});
    }
};

// ---------------------------------------------------------------------
// interp: VM-dispatch loop lowered to correlated compare chains.
// ---------------------------------------------------------------------

constexpr unsigned kInterpOpcodes = 12;
constexpr unsigned kInterpProgramLen = 96;
constexpr uint64_t kInterpDispatchPc = 0x10000;
constexpr uint64_t kInterpHandlerBase = 0x20000;

/** One bytecode instruction of the synthetic VM. */
struct InterpOp
{
    uint8_t opcode = 0;
    uint8_t operand = 0; //!< drives handler-local loops and biases
};

/**
 * Draw a bytecode program with first-order Markov structure: each
 * opcode has a preferred successor (followed ~70% of the time), so the
 * dispatch-chain outcome sequence carries exactly the kind of
 * cross-branch correlation a global-history predictor keys on.
 */
std::vector<InterpOp>
drawInterpProgram(Rng &rng)
{
    uint8_t successor[kInterpOpcodes];
    for (unsigned i = 0; i < kInterpOpcodes; ++i)
        successor[i] = static_cast<uint8_t>(rng.index(kInterpOpcodes));
    std::vector<InterpOp> program(kInterpProgramLen);
    uint8_t prev = static_cast<uint8_t>(rng.index(kInterpOpcodes));
    for (InterpOp &op : program) {
        op.opcode = rng.bernoulli(0.7)
            ? successor[prev]
            : static_cast<uint8_t>(rng.index(kInterpOpcodes));
        op.operand = static_cast<uint8_t>(rng.index(256));
        prev = op.opcode;
    }
    return program;
}

void
generateInterp(Emitter &emit, Rng &rng)
{
    // Per-opcode handler shape, fixed for the whole trace: how many
    // guard conditionals the handler runs and how biased they are.
    double handler_bias[kInterpOpcodes];
    unsigned handler_guards[kInterpOpcodes];
    for (unsigned i = 0; i < kInterpOpcodes; ++i) {
        handler_bias[i] = 0.1 + 0.8 * rng.uniform();
        handler_guards[i] = 1 + static_cast<unsigned>(rng.index(3));
    }

    std::vector<InterpOp> program = drawInterpProgram(rng);
    // Phase changes: the interpreted program is re-drawn every
    // phase_len outer iterations (a new "script" arrives), so the
    // correlation structure shifts mid-trace.
    uint64_t phase_len = 160 + rng.index(160);
    uint64_t iteration = 0;

    while (!emit.done()) {
        if (iteration > 0 && iteration % phase_len == 0)
            program = drawInterpProgram(rng);
        ++iteration;
        for (const InterpOp &op : program) {
            if (emit.done())
                return;
            // Dispatch: the switch lowered to an else-if chain. Test j
            // executes only when tests 0..j-1 fell through, and is
            // taken exactly when op.opcode == j.
            for (unsigned j = 0; j <= op.opcode; ++j) {
                if (!emit.cond(kInterpDispatchPc + j * 8,
                               kInterpHandlerBase + j * 0x100,
                               j == op.opcode))
                    return;
            }
            // Handler body: guards with the opcode's fixed bias, then
            // an operand-driven micro loop (trip 1..4) for "loopy"
            // opcodes.
            uint64_t hpc = kInterpHandlerBase + uint64_t(op.opcode) * 0x100;
            for (unsigned g = 0; g < handler_guards[op.opcode]; ++g)
                emit.cond(hpc + 8 + g * 8, hpc + 0x80,
                          rng.bernoulli(handler_bias[op.opcode]));
            if (op.opcode % 4 == 0) {
                uint32_t trip = 1 + (op.operand & 3);
                for (uint32_t t = 0; t < trip; ++t)
                    emit.cond(hpc + 0x40, hpc + 0x40 - 16, t + 1 < trip);
            }
            // Back to the top of the dispatch loop.
            emit.other(hpc + 0x78, kInterpDispatchPc, BranchKind::Jump);
        }
    }
}

// ---------------------------------------------------------------------
// datadep: branches over a generated value stream.
// ---------------------------------------------------------------------

constexpr uint64_t kDatadepBodyPc = 0x30000;
constexpr uint64_t kDatadepCallPc = 0x38000;

void
generateDatadep(Emitter &emit, Rng &rng)
{
    constexpr int64_t kPivot = 128;
    int64_t prev = 0;
    while (!emit.done()) {
        // Each segment is one data regime: 0 = sorted ascending run,
        // 1 = bounded random walk, 2 = uncorrelated noise.
        unsigned regime = static_cast<unsigned>(rng.index(3));
        uint64_t len = 64 + rng.index(193); // 64..256 elements
        int64_t value = static_cast<int64_t>(rng.index(256));
        int64_t step = 1 + static_cast<int64_t>(rng.index(3));
        // process_segment() call: a batch boundary before the loop.
        emit.other(kDatadepCallPc, kDatadepCallPc + 0x100, BranchKind::Call);
        for (uint64_t i = 0; i < len && !emit.done(); ++i) {
            switch (regime) {
              case 0: // sorted: monotone with occasional flat spots
                value += rng.bernoulli(0.9) ? step : 0;
                break;
              case 1: // random walk: small signed increments
                value += static_cast<int64_t>(rng.index(17)) - 8;
                break;
              default: // noise: fresh uniform draw
                value = static_cast<int64_t>(rng.index(256));
                break;
            }
            // The four data-dependent tests of the loop body. Their
            // predictability tracks the regime, not the branch.
            emit.cond(kDatadepBodyPc + 0x00, kDatadepBodyPc + 0x40,
                      value < kPivot);
            emit.cond(kDatadepBodyPc + 0x08, kDatadepBodyPc + 0x48,
                      value >= prev);
            emit.cond(kDatadepBodyPc + 0x10, kDatadepBodyPc + 0x50,
                      (value & 1) != 0);
            emit.cond(kDatadepBodyPc + 0x18, kDatadepBodyPc + 0x58,
                      value == 0);
            prev = value;
            // Loop-closing conditional: backward taken until the
            // segment's last element.
            emit.cond(kDatadepBodyPc + 0x20, kDatadepBodyPc - 0x20,
                      i + 1 < len);
        }
        emit.other(kDatadepCallPc + 0x1f8, kDatadepCallPc + 8,
                   BranchKind::Return);
    }
}

// ---------------------------------------------------------------------
// nestloop: long-period nested-loop shapes.
// ---------------------------------------------------------------------

constexpr uint64_t kNestTriPc = 0x40000;
constexpr uint64_t kNestCoprimePc = 0x41000;
constexpr uint64_t kNestPeriodPc = 0x42000;

/** Triangular nest: inner trip grows with the outer index, through and
 * beyond any 16-bit history window. */
void
triangularNest(Emitter &emit, Rng &rng)
{
    constexpr uint32_t kOuterTrip = 24;
    for (uint32_t o = 0; o < kOuterTrip && !emit.done(); ++o) {
        uint32_t inner_trip = o + 2; // grows 2..25
        for (uint32_t i = 0; i < inner_trip; ++i) {
            // First-iteration test and the diagonal test: both are
            // functions of loop indices, not data.
            emit.cond(kNestTriPc + 0x10, kNestTriPc + 0x60, i == 0);
            emit.cond(kNestTriPc + 0x18, kNestTriPc + 0x68, i == o);
            // Inner loop-closing branch, backward taken.
            emit.cond(kNestTriPc + 0x20, kNestTriPc + 0x10, i + 1 < inner_trip);
        }
        // Outer loop-closing branch.
        emit.cond(kNestTriPc + 0x28, kNestTriPc + 0x08, o + 1 < kOuterTrip);
    }
    (void)rng;
    emit.other(kNestTriPc + 0x30, kNestTriPc, BranchKind::Jump);
}

/** Two counters with co-prime periods 48 and 37: the xor branch repeats
 * only every lcm(48, 37) = 1776 iterations. */
void
coprimeCounters(Emitter &emit, uint64_t &tick, uint64_t iterations)
{
    for (uint64_t i = 0; i < iterations && !emit.done(); ++i, ++tick) {
        bool a = tick % 48 < 24;
        bool b = tick % 37 < 18;
        emit.cond(kNestCoprimePc + 0x00, kNestCoprimePc + 0x40, a);
        emit.cond(kNestCoprimePc + 0x08, kNestCoprimePc + 0x48, b);
        emit.cond(kNestCoprimePc + 0x10, kNestCoprimePc + 0x50, a != b);
    }
}

/** Period-127 pattern branch: 96 taken then 31 not-taken, a run length
 * past every loop-count saturation point in the roster. */
void
longPeriodPattern(Emitter &emit, uint64_t &tick, uint64_t iterations)
{
    for (uint64_t i = 0; i < iterations && !emit.done(); ++i, ++tick)
        emit.cond(kNestPeriodPc, kNestPeriodPc - 0x80, tick % 127 < 96);
}

void
generateNestloop(Emitter &emit, Rng &rng)
{
    uint64_t coprime_tick = 0;
    uint64_t period_tick = 0;
    while (!emit.done()) {
        // Interleave the three sub-shapes in seed-chosen chunks so no
        // single periodicity dominates the global history.
        switch (rng.index(3)) {
          case 0:
            triangularNest(emit, rng);
            break;
          case 1:
            coprimeCounters(emit, coprime_tick, 100 + rng.index(300));
            break;
          default:
            longPeriodPattern(emit, period_tick, 100 + rng.index(300));
            break;
        }
    }
}

/** Canonical execution seed per family (the seed == 0 default),
 * mirroring the profiles' buildSeed * 77 + 13 convention. */
uint64_t
canonicalSeed(const std::string &name)
{
    if (name == "interp")
        return 0x171 * 77 + 13;
    if (name == "datadep")
        return 0xDA7 * 77 + 13;
    return 0x135 * 77 + 13; // nestloop
}

} // namespace

const std::vector<std::string> &
frontierNames()
{
    static const std::vector<std::string> names = {
        "interp", "datadep", "nestloop",
    };
    return names;
}

const std::vector<std::string> &
frontierShortNames()
{
    static const std::vector<std::string> names = {"itp", "dat", "nst"};
    return names;
}

bool
isFrontierWorkload(const std::string &name)
{
    const auto &names = frontierNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

const std::vector<std::string> &
workloadSuiteNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> all = benchmarkNames();
        const auto &frontier = frontierNames();
        all.insert(all.end(), frontier.begin(), frontier.end());
        return all;
    }();
    return names;
}

const std::vector<std::string> &
workloadSuiteShortNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> all = benchmarkShortNames();
        const auto &frontier = frontierShortNames();
        all.insert(all.end(), frontier.begin(), frontier.end());
        return all;
    }();
    return names;
}

trace::Trace
makeFrontierTrace(const std::string &name, uint64_t branches, uint64_t seed)
{
    uint64_t exec_seed = seed ? seed : canonicalSeed(name);
    Rng rng(mix64(exec_seed ^ 0xf07f1e5ull));
    Trace out(name, exec_seed);
    out.reserve(branches + branches / 16);
    Emitter emit{out, branches};
    if (name == "interp")
        generateInterp(emit, rng);
    else if (name == "datadep")
        generateDatadep(emit, rng);
    else if (name == "nestloop")
        generateNestloop(emit, rng);
    else
        fatal("unknown frontier workload '" + name + "'");
    return out;
}

} // namespace copra::workload
