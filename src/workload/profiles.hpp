/**
 * @file
 * The eight SPECint95-like synthetic benchmarks and the paper's published
 * reference numbers.
 *
 * SPECint95 binaries and inputs are not redistributable, so each benchmark
 * is a BenchmarkProfile calibrated to reproduce the *behavioural*
 * fingerprint the paper reports for that program: static branch count
 * scale, bias distribution, correlation density, and loopiness. See
 * DESIGN.md §2 for the substitution rationale.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "workload/builder.hpp"

namespace copra::workload {

/** Names of the eight synthetic benchmarks, in the paper's order. */
const std::vector<std::string> &benchmarkNames();

/** Short display names used in the paper's figures (com, gcc, go, ...). */
const std::vector<std::string> &benchmarkShortNames();

/**
 * Profile for one of the eight named benchmarks.
 * Calls fatal() for unknown names.
 */
BenchmarkProfile benchmarkProfile(const std::string &name);

/**
 * Build and execute the named benchmark. Frontier family names
 * (workload/frontier.hpp) are dispatched to makeFrontierTrace, so any
 * suite member can be produced through this one entry point.
 *
 * @param name One of benchmarkNames() or frontierNames().
 * @param branches Number of dynamic conditional branches to emit.
 * @param seed Execution seed (default: the profile's canonical seed).
 */
trace::Trace makeBenchmarkTrace(const std::string &name, uint64_t branches,
                                uint64_t seed = 0);

/** Reference accuracies published in the paper, for bench output. */
struct PaperReference
{
    std::string name;
    uint64_t paperDynamicBranches; //!< Table 1
    double gshare;                 //!< Table 2
    double gshareWithCorr;         //!< Table 2
    double ifGshare;               //!< Table 2
    double ifGshareWithCorr;       //!< Table 2
    double pas;                    //!< Table 3
    double pasWithLoop;            //!< Table 3
    double ifPas;                  //!< Table 3
    double ifPasWithLoop;          //!< Table 3
};

/** Paper reference row for a benchmark; fatal() for unknown names. */
const PaperReference &paperReference(const std::string &name);

} // namespace copra::workload

