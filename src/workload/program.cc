#include "workload/program.hpp"

#include <algorithm>

#include "obs/instruments.hpp"
#include "obs/registry.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace copra::workload {

TripSpec
TripSpec::fixed(uint32_t n)
{
    panicIf(n == 0, "trip count must be >= 1");
    TripSpec spec;
    spec.kind = Kind::Fixed;
    spec.lo = spec.hi = n;
    return spec;
}

TripSpec
TripSpec::drift(uint32_t lo, uint32_t hi, uint32_t period)
{
    panicIf(lo == 0 || lo > hi, "drift trip range must satisfy 1 <= lo <= hi");
    panicIf(period == 0, "drift period must be >= 1");
    TripSpec spec;
    spec.kind = Kind::Drift;
    spec.lo = lo;
    spec.hi = hi;
    spec.period = period;
    return spec;
}

TripSpec
TripSpec::uniform(uint32_t lo, uint32_t hi)
{
    panicIf(lo == 0 || lo > hi, "trip range must satisfy 1 <= lo <= hi");
    TripSpec spec;
    spec.kind = Kind::Uniform;
    spec.lo = lo;
    spec.hi = hi;
    return spec;
}

TripState::TripState(const TripSpec &spec, Rng rng)
    : spec_(spec), rng_(rng)
{
    current_ = static_cast<uint32_t>(rng_.range(spec_.lo, spec_.hi));
}

uint32_t
TripState::next()
{
    switch (spec_.kind) {
      case TripSpec::Kind::Fixed:
        current_ = spec_.lo;
        break;
      case TripSpec::Kind::Drift:
        if (++invocations_ % spec_.period == 0) {
            // Random walk one step within [lo, hi].
            if (current_ <= spec_.lo)
                ++current_;
            else if (current_ >= spec_.hi)
                --current_;
            else
                current_ += rng_.bernoulli(0.5) ? 1 : -1;
        }
        break;
      case TripSpec::Kind::Uniform:
        current_ = static_cast<uint32_t>(rng_.range(spec_.lo, spec_.hi));
        break;
    }
    return current_;
}

ExecContext::ExecContext(const Program &prog, trace::Trace &out,
                         uint64_t budget_conditionals, uint64_t seed)
    : program(prog), out_(out), budget_(budget_conditionals),
      assignRng_(mix64(seed ^ 0xA55A5AA5ull))
{
    Rng seeder(seed);
    vars_.resize(prog.conditionCount(), 0);
    sources_.reserve(prog.conditionCount());
    for (size_t i = 0; i < prog.conditionCount(); ++i)
        sources_.emplace_back(prog.condition(i), seeder.fork());
    trips_.reserve(prog.tripSiteCount());
    for (size_t i = 0; i < prog.tripSiteCount(); ++i)
        trips_.emplace_back(prog.tripSite(i), seeder.fork());
    // Give every variable an initial value.
    for (size_t i = 0; i < vars_.size(); ++i)
        vars_[i] = sources_[i].next() ? 1 : 0;
}

void
ExecContext::emitConditional(uint64_t pc, uint64_t target, bool taken)
{
    if (done_)
        return;
    out_.append({pc, target, trace::BranchKind::Conditional, taken});
    if (++emitted_ >= budget_)
        done_ = true;
}

void
ExecContext::emitOther(uint64_t pc, uint64_t target, trace::BranchKind kind)
{
    if (done_)
        return;
    out_.append({pc, target, kind, true});
}

void
ExecContext::sample(unsigned var)
{
    vars_[var] = sources_[var].next() ? 1 : 0;
}

void
ExecContext::assign(unsigned var, double p)
{
    vars_[var] = assignRng_.bernoulli(p) ? 1 : 0;
}

void
BlockStmt::exec(ExecContext &ctx) const
{
    for (const auto &stmt : stmts_) {
        if (ctx.done())
            return;
        stmt->exec(ctx);
    }
}

void
IfStmt::exec(ExecContext &ctx) const
{
    bool cond = pred_.eval(ctx.vars());
    ctx.emitConditional(pc_, pc_ + 64, cond);
    if (ctx.done())
        return;
    if (cond) {
        if (then_)
            then_->exec(ctx);
    } else {
        if (else_)
            else_->exec(ctx);
    }
}

void
ChainStmt::exec(ExecContext &ctx) const
{
    for (const auto &arm : arms_) {
        bool cond = arm.pred.eval(ctx.vars());
        ctx.emitConditional(arm.pc, arm.pc + 64, cond);
        if (ctx.done())
            return;
        if (cond) {
            if (arm.block)
                arm.block->exec(ctx);
            return;
        }
    }
    if (else_)
        else_->exec(ctx);
}

void
ForStmt::exec(ExecContext &ctx) const
{
    uint32_t trips = ctx.tripState(tripSite_).next();
    for (uint32_t i = 0; i < trips; ++i) {
        if (body_)
            body_->exec(ctx);
        if (ctx.done())
            return;
        // Bottom-test loop-closing branch: taken while iterations remain.
        ctx.emitConditional(bottomPc_, headPc_, i + 1 < trips);
        if (ctx.done())
            return;
    }
}

void
WhileStmt::exec(ExecContext &ctx) const
{
    uint32_t trips = ctx.tripState(tripSite_).next();
    for (uint32_t i = 0; i <= trips; ++i) {
        // Top-test exit branch: taken only when the loop is done.
        bool exit_now = i == trips;
        ctx.emitConditional(headPc_, exitTarget_, exit_now);
        if (ctx.done() || exit_now)
            return;
        if (body_)
            body_->exec(ctx);
        if (ctx.done())
            return;
        ctx.emitOther(jumpPc_, headPc_, trace::BranchKind::Jump);
    }
}

void
CallStmt::exec(ExecContext &ctx) const
{
    if (ctx.callDepth >= ExecContext::maxCallDepth)
        return;
    const Function &fn = ctx.program.function(callee_);
    ctx.emitOther(pc_, fn.entryPc, trace::BranchKind::Call);
    if (ctx.done())
        return;
    ++ctx.callDepth;
    if (fn.body)
        fn.body->exec(ctx);
    --ctx.callDepth;
    if (ctx.done())
        return;
    ctx.emitOther(fn.returnPc, pc_ + 4, trace::BranchKind::Return);
}

unsigned
Program::addCondition(const ConditionSpec &spec)
{
    conditions_.push_back(spec);
    return static_cast<unsigned>(conditions_.size()) - 1;
}

size_t
Program::addTripSite(const TripSpec &spec)
{
    tripSites_.push_back(spec);
    return tripSites_.size() - 1;
}

size_t
Program::addFunction(Function fn)
{
    functions_.push_back(std::move(fn));
    return functions_.size() - 1;
}

trace::Trace
Program::run(const std::string &name, uint64_t budget_conditionals,
             uint64_t seed) const
{
    panicIf(functions_.empty(), "Program::run with no functions");
    trace::Trace out(name, seed);
    out.reserve(budget_conditionals + budget_conditionals / 4);
    ExecContext ctx(*this, out, budget_conditionals, seed);
    const Function &driver = functions_.front();
    panicIf(!driver.body, "driver function has no body");
    while (!ctx.done()) {
        size_t before = out.size();
        driver.body->exec(ctx);
        panicIf(out.size() == before,
                "driver emitted no records; program would never terminate");
    }
    return out;
}

trace::Trace
Program::runParallel(const std::string &name, uint64_t budget_conditionals,
                     uint64_t seed) const
{
    // Chunk size trades fan-out granularity against splice frequency:
    // each chunk restarts the condition sources and trip states from a
    // fresh seed, so chunks must be long enough that the re-warmed
    // splice points are a vanishing fraction of the stream.
    constexpr uint64_t kChunkConditionals = uint64_t(1) << 18;
    if (budget_conditionals <= kChunkConditionals)
        return run(name, budget_conditionals, seed);

    size_t chunks = static_cast<size_t>(
        (budget_conditionals + kChunkConditionals - 1) / kChunkConditionals);
    std::vector<trace::Trace> parts(chunks);
    parallelFor(globalPool(), chunks, [&](size_t i) {
        uint64_t begin = uint64_t(i) * kChunkConditionals;
        uint64_t budget =
            std::min(kChunkConditionals, budget_conditionals - begin);
        // Chunk 0 replays run()'s exact stream; later chunks draw
        // decorrelated streams from a seed mixed with the chunk index.
        uint64_t chunk_seed =
            i == 0 ? seed : mix64(seed ^ (0x9E3779B97F4A7C15ull * i));
        parts[i] = run(name, budget, chunk_seed);
    });

    trace::Trace out(name, seed);
    out.reserve(budget_conditionals + budget_conditionals / 4);
    for (const trace::Trace &part : parts)
        out.appendTrace(part);
    obs::count(obs::ids().traceGenChunks, chunks);
    obs::count(obs::ids().traceGenConditionals, budget_conditionals);
    return out;
}

} // namespace copra::workload
