/**
 * @file
 * Random program construction from a benchmark profile.
 *
 * A BenchmarkProfile describes the *population statistics* of a workload —
 * how many static branches, how biased the conditions are, how much
 * correlation structure, how loopy — and buildProgram() deterministically
 * expands it into a synthetic Program. The eight SPECint95-like profiles
 * live in workload/profiles.hpp.
 */

#pragma once

#include <cstdint>
#include <string>

#include "workload/program.hpp"

namespace copra::workload {

/** Statistical description of a synthetic benchmark. */
struct BenchmarkProfile
{
    std::string name = "synthetic";

    /** Seed for program construction (not for execution). */
    uint64_t buildSeed = 1;

    // --- Condition variable pool -------------------------------------
    unsigned numVars = 64;
    /** Fraction of variables that are strongly biased. */
    double fracVarStrongBias = 0.30;
    /** Strong-bias probability range (toward either direction). */
    double strongBiasLo = 0.97;
    double strongBiasHi = 0.999;
    /** Fraction of variables with moderate bias. */
    double fracVarModerateBias = 0.25;
    /** Moderate-bias probability range (toward either direction). */
    double moderateBiasLo = 0.60;
    double moderateBiasHi = 0.95;
    /** Fraction of sticky Markov variables (run-structured data). */
    double fracVarMarkov = 0.20;
    /** Fraction of periodic variables (repeating input patterns). */
    double fracVarPeriodic = 0.10;
    // Remainder: near-50/50 noise variables (unpredictable data).

    // --- Program shape -----------------------------------------------
    unsigned numFunctions = 10;
    /** Approximate number of static conditional branch sites. */
    unsigned targetStaticBranches = 1200;
    unsigned maxDepth = 4;
    unsigned blockLenLo = 2;
    unsigned blockLenHi = 5;
    /** Per-function variable window width (locality of correlation). */
    unsigned varWindow = 12;

    // Statement kind weights (relative probabilities).
    double wIf = 4.0;
    double wChain = 1.2;
    double wFor = 1.0;
    double wWhile = 0.4;
    double wCall = 0.8;
    double wSample = 2.5;

    /**
     * Callee-choice skew: 1 = uniform over functions; higher values
     * concentrate calls on low-numbered (hot) functions, giving the
     * Zipf-like execution concentration of real programs.
     */
    unsigned callSkew = 2;

    unsigned chainLenLo = 2;
    unsigned chainLenHi = 5;

    /**
     * Probability that a chain resamples its shared variables right
     * before testing them. Fresh values make each arm unpredictable from
     * its own history while the arms stay mutually correlated — the
     * purest form of the paper's Fig. 1a direction correlation, and the
     * structural reason gshare beats PAs on branchy integer code.
     */
    double chainResampleProb = 0.5;

    /**
     * Probability that a chain is followed by the paper's "branch X": an
     * unconditional follow-up test over the chain's shared variables,
     * predictable only through global correlation with the arm outcomes.
     */
    double chainFollowProb = 0.4;

    // --- Predicates ----------------------------------------------------
    /** Probability a predicate combines two variables (AND/OR). */
    double predTwoVar = 0.35;
    /** Probability a predicate combines three variables. */
    double predThreeVar = 0.10;
    /** Probability each literal is negated. */
    double predNegate = 0.30;
    /** Probability an If gets Fig.-1b style assignments in its arms. */
    double fig1bProb = 0.12;

    // --- Loops ---------------------------------------------------------
    double fracLoopFixed = 0.45;
    double fracLoopDrift = 0.35; // remainder: uniform random trips
    uint32_t tripLo = 2;
    uint32_t tripHi = 10;
    uint32_t driftPeriod = 24;
    /** Probability a loop body begins by resampling a window variable. */
    double loopResampleProb = 0.7;
};

/**
 * Deterministically expand @p profile into a Program. The same profile
 * (including buildSeed) always yields the same program.
 */
Program buildProgram(const BenchmarkProfile &profile);

} // namespace copra::workload

