#include "workload/builder.hpp"

#include <algorithm>
#include <vector>

#include "util/logging.hpp"

namespace copra::workload {

namespace {

/**
 * Builder state: walks the profile with a deterministic RNG, allocating
 * program counters per function and charging a global static-branch
 * budget.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(const BenchmarkProfile &profile)
        : profile_(profile), rng_(mix64(profile.buildSeed ^ 0xB111Dull))
    {
    }

    Program build();

  private:
    // Function spacing in the synthetic address space. Deliberately not a
    // power of two: real linkers pack functions contiguously, so the low
    // address bits that predictors index with differ across functions. A
    // power-of-two stride would alias the same-offset branch of every
    // function into the same BHT/PHT slots, which no real program does.
    static constexpr uint64_t kFunctionStride = 0x12F74;

    const BenchmarkProfile &profile_;
    Rng rng_;
    Program program_;
    uint64_t nextPc_ = 0;
    int64_t branchBudget_ = 0;
    size_t currentFunction_ = 0;
    unsigned windowBase_ = 0;
    std::vector<bool> functionCalled_;

    uint64_t allocPc() { uint64_t pc = nextPc_; nextPc_ += 4; return pc; }

    unsigned pickVar();
    Pred buildPred();
    TripSpec buildTripSpec();
    StmtPtr buildStmt(unsigned depth);
    StmtPtr buildIf(unsigned depth);
    StmtPtr buildChain(unsigned depth);
    StmtPtr buildFor(unsigned depth);
    StmtPtr buildWhile(unsigned depth);
    StmtPtr buildBlock(unsigned depth, unsigned len_lo, unsigned len_hi);
    void buildConditionPool();
};

void
ProgramBuilder::buildConditionPool()
{
    // Every variable consumes exactly the same number of RNG draws no
    // matter which category it lands in, so changing the category
    // fractions or bias bands in a profile re-levels the workload
    // without reshuffling the program structure built afterwards.
    for (unsigned i = 0; i < profile_.numVars; ++i) {
        double roll = rng_.uniform();
        double u = rng_.uniform();
        double v = rng_.uniform();
        bool flip = rng_.bernoulli(0.5);
        uint64_t raw = rng_.next();

        double acc = profile_.fracVarStrongBias;
        if (roll < acc) {
            // Strong bias toward one direction.
            double p = profile_.strongBiasLo +
                (profile_.strongBiasHi - profile_.strongBiasLo) * u;
            program_.addCondition(ConditionSpec::biased(flip ? 1 - p : p));
            continue;
        }
        acc += profile_.fracVarModerateBias;
        if (roll < acc) {
            double p = profile_.moderateBiasLo +
                (profile_.moderateBiasHi - profile_.moderateBiasLo) * u;
            program_.addCondition(ConditionSpec::biased(flip ? 1 - p : p));
            continue;
        }
        acc += profile_.fracVarMarkov;
        if (roll < acc) {
            if (raw & 1) {
                // Order-2 chain: feeds the paper's non-repeating class.
                program_.addCondition(
                    ConditionSpec::markov2(0.72 + 0.22 * u));
            } else {
                double stay = 0.75 + 0.24 * u;
                double enter = 0.02 + 0.23 * v;
                program_.addCondition(ConditionSpec::markov(stay, enter));
            }
            continue;
        }
        acc += profile_.fracVarPeriodic;
        if (roll < acc) {
            unsigned len = 2 + static_cast<unsigned>(u * 6.999);
            uint32_t pattern = static_cast<uint32_t>(raw);
            // Guarantee the pattern is not constant.
            pattern |= 1u;
            pattern &= ~(1u << (len - 1));
            program_.addCondition(ConditionSpec::periodic(pattern, len));
            continue;
        }
        // Noise variable: near even split.
        program_.addCondition(ConditionSpec::biased(0.40 + 0.20 * u));
    }
}

unsigned
ProgramBuilder::pickVar()
{
    // Mostly pick from the function's window to concentrate correlation;
    // occasionally reach into the global pool (cross-module coupling).
    unsigned window = std::min(profile_.varWindow, profile_.numVars);
    if (rng_.bernoulli(0.85)) {
        unsigned off = static_cast<unsigned>(rng_.index(window));
        return (windowBase_ + off) % profile_.numVars;
    }
    return static_cast<unsigned>(rng_.index(profile_.numVars));
}

Pred
ProgramBuilder::buildPred()
{
    auto literal = [&]() {
        Pred v = Pred::var(pickVar());
        return rng_.bernoulli(profile_.predNegate) ? Pred::notOf(v) : v;
    };

    double roll = rng_.uniform();
    if (roll < profile_.predThreeVar) {
        Pred inner = rng_.bernoulli(0.5) ? Pred::andOf(literal(), literal())
                                         : Pred::orOf(literal(), literal());
        return rng_.bernoulli(0.5) ? Pred::andOf(inner, literal())
                                   : Pred::orOf(inner, literal());
    }
    if (roll < profile_.predThreeVar + profile_.predTwoVar) {
        return rng_.bernoulli(0.5) ? Pred::andOf(literal(), literal())
                                   : Pred::orOf(literal(), literal());
    }
    return literal();
}

TripSpec
ProgramBuilder::buildTripSpec()
{
    // Fixed draw count per site (see buildConditionPool): trip-range or
    // loop-mix changes re-level loops without reshuffling structure.
    uint32_t lo = profile_.tripLo;
    uint32_t hi = std::max(profile_.tripHi, lo);
    double roll = rng_.uniform();
    uint32_t a = static_cast<uint32_t>(rng_.range(lo, hi));
    uint32_t b = static_cast<uint32_t>(rng_.range(lo, hi));
    if (a > b)
        std::swap(a, b);
    if (roll < profile_.fracLoopFixed)
        return TripSpec::fixed(a);
    if (roll < profile_.fracLoopFixed + profile_.fracLoopDrift) {
        if (a == b)
            b = a + 2;
        return TripSpec::drift(a, b, profile_.driftPeriod);
    }
    return TripSpec::uniform(a, b);
}

StmtPtr
ProgramBuilder::buildIf(unsigned depth)
{
    uint64_t pc = allocPc();
    program_.noteStaticBranch();
    --branchBudget_;
    Pred pred = buildPred();

    auto then_block = std::make_unique<BlockStmt>();
    auto else_block = std::make_unique<BlockStmt>();

    // Fig.-1b correlation: the branch outcome *generates* data a later
    // branch tests, by assigning a variable differently per arm.
    if (rng_.bernoulli(profile_.fig1bProb)) {
        unsigned var = pickVar();
        then_block->append(std::make_unique<AssignStmt>(var, 0.99));
        else_block->append(std::make_unique<AssignStmt>(var, 0.01));
    }

    if (depth < profile_.maxDepth && branchBudget_ > 0) {
        if (auto inner = buildBlock(depth + 1, 0, 2))
            then_block->append(std::move(inner));
        if (rng_.bernoulli(0.35)) {
            if (auto inner = buildBlock(depth + 1, 0, 1))
                else_block->append(std::move(inner));
        }
    }

    StmtPtr then_ptr = then_block->size() ? std::move(then_block) : nullptr;
    StmtPtr else_ptr = else_block->size() ? std::move(else_block) : nullptr;
    return std::make_unique<IfStmt>(pc, std::move(pred),
                                    std::move(then_ptr),
                                    std::move(else_ptr));
}

StmtPtr
ProgramBuilder::buildChain(unsigned depth)
{
    unsigned len = static_cast<unsigned>(
        rng_.range(profile_.chainLenLo, profile_.chainLenHi));

    // Arms test predicates drawn over a small shared variable subset so
    // that reaching a later arm pins down the earlier conditions
    // (in-path correlation, paper Fig. 2).
    std::vector<unsigned> shared;
    unsigned shared_count = 2 + static_cast<unsigned>(rng_.index(3));
    for (unsigned i = 0; i < shared_count; ++i)
        shared.push_back(pickVar());

    // Optionally resample the shared variables immediately before the
    // chain: arms become unpredictable from their own history but stay
    // correlated with each other inside the window (paper Fig. 1a).
    // Resample exactly one shared variable: one fresh bit of entropy per
    // chain visit keeps global history patterns recurrent (trainable)
    // while still randomizing each arm's own outcome stream.
    auto lead_in = std::make_unique<BlockStmt>();
    if (rng_.bernoulli(profile_.chainResampleProb))
        lead_in->append(std::make_unique<SampleStmt>(shared.front()));

    auto shared_literal = [&]() {
        // Weight the first shared variable (the freshly resampled one)
        // so most arms depend on it and the arms stay tightly coupled.
        unsigned var = rng_.bernoulli(0.5)
            ? shared.front() : shared[rng_.index(shared.size())];
        Pred v = Pred::var(var);
        return rng_.bernoulli(profile_.predNegate) ? Pred::notOf(v) : v;
    };

    std::vector<ChainStmt::Arm> arms;
    for (unsigned i = 0; i < len && branchBudget_ > 0; ++i) {
        ChainStmt::Arm arm;
        arm.pc = allocPc();
        program_.noteStaticBranch();
        --branchBudget_;
        arm.pred = rng_.bernoulli(0.6)
            ? shared_literal()
            : (rng_.bernoulli(0.5) ? Pred::andOf(shared_literal(),
                                                 shared_literal())
                                   : Pred::orOf(shared_literal(),
                                                shared_literal()));
        if (depth < profile_.maxDepth && rng_.bernoulli(0.3))
            arm.block = buildBlock(depth + 1, 0, 1);
        arms.push_back(std::move(arm));
    }
    if (arms.empty())
        return nullptr;

    StmtPtr else_block;
    if (depth < profile_.maxDepth && rng_.bernoulli(0.25))
        else_block = buildBlock(depth + 1, 0, 1);
    auto chain = std::make_unique<ChainStmt>(std::move(arms),
                                             std::move(else_block));

    // The paper's branch X (Fig. 1a / Fig. 2): a follow-up branch after
    // the chain that tests the shared condition on every path. Unlike
    // the arms (whose in-path pruning makes later arms statically
    // biased), this branch executes unconditionally, so its outcome is
    // predictable only through correlation with the arm outcomes in the
    // global history.
    StmtPtr follow_up;
    if (branchBudget_ > 0 && rng_.bernoulli(profile_.chainFollowProb)) {
        uint64_t pc = allocPc();
        program_.noteStaticBranch();
        --branchBudget_;
        Pred pred = rng_.bernoulli(0.5)
            ? Pred::andOf(shared_literal(), shared_literal())
            : Pred::orOf(shared_literal(), shared_literal());
        follow_up = std::make_unique<IfStmt>(pc, std::move(pred), nullptr,
                                             nullptr);
    }

    if (lead_in->size() == 0 && !follow_up)
        return chain;
    lead_in->append(std::move(chain));
    if (follow_up)
        lead_in->append(std::move(follow_up));
    return lead_in;
}

StmtPtr
ProgramBuilder::buildFor(unsigned depth)
{
    uint64_t head_pc = allocPc();
    size_t site = program_.addTripSite(buildTripSpec());

    auto body = std::make_unique<BlockStmt>();
    if (rng_.bernoulli(profile_.loopResampleProb))
        body->append(std::make_unique<SampleStmt>(pickVar()));
    if (depth < profile_.maxDepth && branchBudget_ > 0) {
        if (auto inner = buildBlock(depth + 1, 0, 2))
            body->append(std::move(inner));
    }

    uint64_t bottom_pc = allocPc();
    program_.noteStaticBranch();
    --branchBudget_;
    StmtPtr body_ptr = body->size() ? std::move(body) : nullptr;
    return std::make_unique<ForStmt>(head_pc, bottom_pc, site,
                                     std::move(body_ptr));
}

StmtPtr
ProgramBuilder::buildWhile(unsigned depth)
{
    uint64_t head_pc = allocPc();
    program_.noteStaticBranch();
    --branchBudget_;
    size_t site = program_.addTripSite(buildTripSpec());

    auto body = std::make_unique<BlockStmt>();
    if (rng_.bernoulli(profile_.loopResampleProb))
        body->append(std::make_unique<SampleStmt>(pickVar()));
    if (depth < profile_.maxDepth && branchBudget_ > 0) {
        if (auto inner = buildBlock(depth + 1, 0, 2))
            body->append(std::move(inner));
    }

    uint64_t jump_pc = allocPc();
    uint64_t exit_target = jump_pc + 4;
    StmtPtr body_ptr = body->size() ? std::move(body) : nullptr;
    return std::make_unique<WhileStmt>(head_pc, exit_target, jump_pc, site,
                                       std::move(body_ptr));
}

StmtPtr
ProgramBuilder::buildStmt(unsigned depth)
{
    struct Choice
    {
        double weight;
        StmtPtr (ProgramBuilder::*make)(unsigned);
    };

    // Sample and Call handled inline below; branching statements only
    // while budget remains.
    double w_if = branchBudget_ > 0 ? profile_.wIf : 0.0;
    double w_chain = branchBudget_ > 0 && depth < profile_.maxDepth
        ? profile_.wChain : 0.0;
    double w_for = branchBudget_ > 0 ? profile_.wFor : 0.0;
    double w_while = branchBudget_ > 0 ? profile_.wWhile : 0.0;
    double w_call = profile_.numFunctions > 1 ? profile_.wCall : 0.0;
    double w_sample = profile_.wSample;

    double total = w_if + w_chain + w_for + w_while + w_call + w_sample;
    if (total <= 0.0)
        return nullptr;
    double roll = rng_.uniform() * total;

    if ((roll -= w_if) < 0)
        return buildIf(depth);
    if ((roll -= w_chain) < 0)
        return buildChain(depth);
    if ((roll -= w_for) < 0)
        return buildFor(depth);
    if ((roll -= w_while) < 0)
        return buildWhile(depth);
    if ((roll -= w_call) < 0) {
        // Skewed callee choice: real programs concentrate execution in a
        // few hot functions, which concentrates dynamic branches in a
        // small static subset (and keeps table aliasing realistic).
        double u = rng_.uniform();
        for (unsigned s = 1; s < profile_.callSkew; ++s)
            u *= rng_.uniform();
        size_t callee = 1 + static_cast<size_t>(
            u * static_cast<double>(profile_.numFunctions - 1));
        callee = std::min(callee, size_t{profile_.numFunctions - 1});
        if (callee == currentFunction_)
            callee = callee % (profile_.numFunctions - 1) + 1;
        functionCalled_[callee] = true;
        return std::make_unique<CallStmt>(allocPc(), callee);
    }
    return std::make_unique<SampleStmt>(pickVar());
}

StmtPtr
ProgramBuilder::buildBlock(unsigned depth, unsigned len_lo, unsigned len_hi)
{
    unsigned lo = std::max(len_lo, 1u);
    unsigned hi = std::max(len_hi, lo);
    unsigned len = static_cast<unsigned>(rng_.range(lo, hi));
    auto block = std::make_unique<BlockStmt>();
    for (unsigned i = 0; i < len; ++i) {
        if (auto stmt = buildStmt(depth))
            block->append(std::move(stmt));
    }
    if (block->size() == 0)
        return nullptr;
    return block;
}

Program
ProgramBuilder::build()
{
    fatalIf(profile_.numVars == 0, "profile needs at least one variable");
    fatalIf(profile_.numFunctions == 0, "profile needs a driver function");

    buildConditionPool();
    branchBudget_ = static_cast<int64_t>(profile_.targetStaticBranches);
    functionCalled_.assign(profile_.numFunctions, false);

    // Reserve function slots up front so calls can reference any entry pc.
    std::vector<Function> functions(profile_.numFunctions);
    for (size_t i = 0; i < functions.size(); ++i)
        functions[i].entryPc = (i + 1) * kFunctionStride;

    int64_t per_function = std::max<int64_t>(
        1, branchBudget_ / static_cast<int64_t>(profile_.numFunctions));
    for (size_t i = 0; i < functions.size(); ++i) {
        currentFunction_ = i;
        nextPc_ = functions[i].entryPc;
        windowBase_ = static_cast<unsigned>(
            (i * std::max(profile_.varWindow / 2, 1u)) % profile_.numVars);

        int64_t stop_at = branchBudget_ - per_function;
        auto body = std::make_unique<BlockStmt>();
        // Functions always resample a couple of their window variables on
        // entry so call sites see fresh data.
        body->append(std::make_unique<SampleStmt>(pickVar()));
        unsigned spins = 0;
        while (branchBudget_ > stop_at && branchBudget_ > 0) {
            if (auto stmt = buildBlock(0, profile_.blockLenLo,
                                       profile_.blockLenHi))
                body->append(std::move(stmt));
            // Statement draws are random; bail out if the budget refuses
            // to move rather than loop forever on a degenerate profile.
            if (++spins > 100000)
                break;
        }
        functions[i].returnPc = allocPc();
        functions[i].body = std::move(body);
    }

    // Guarantee reachability: the driver calls every function nobody else
    // called.
    auto *driver = static_cast<BlockStmt *>(functions[0].body.get());
    for (size_t i = 1; i < functions.size(); ++i) {
        if (!functionCalled_[i]) {
            nextPc_ = functions[0].returnPc + 4 * (i + 1);
            driver->append(std::make_unique<CallStmt>(allocPc(), i));
        }
    }

    for (auto &fn : functions)
        program_.addFunction(std::move(fn));
    return std::move(program_);
}

} // namespace

Program
buildProgram(const BenchmarkProfile &profile)
{
    ProgramBuilder builder(profile);
    return builder.build();
}

} // namespace copra::workload
