/**
 * @file
 * Condition variable sources for the synthetic program model.
 *
 * A synthetic program owns a pool of boolean condition variables. Each
 * variable is backed by a source that produces a new value whenever the
 * program resamples the variable. Branch predicates are boolean
 * expressions over the pool, so branches whose predicates share variables
 * are genuinely correlated (direction correlation, paper Fig. 1a), and
 * branches inside if-bodies that reassign variables produce
 * outcome-generated correlation (paper Fig. 1b).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/rng.hpp"

namespace copra::workload {

/** Kinds of condition variable behaviour. */
enum class ConditionKind : uint8_t
{
    Biased,   //!< independent Bernoulli draws with fixed probability
    Periodic, //!< cycles through a fixed bit pattern
    Markov,   //!< sticky boolean with state-dependent flip probabilities
    Markov2,  //!< order-2 chain: P(true) depends on the last two values
    Counter,  //!< deterministic function of the sample count
};

/**
 * Declarative description of a condition variable. Specs are stored in the
 * Program; runtime state is created fresh for every execution so traces
 * are exactly reproducible.
 */
struct ConditionSpec
{
    ConditionKind kind = ConditionKind::Biased;

    /** Biased: probability of true. */
    double p = 0.5;

    /** Periodic: pattern bits (bit 0 first) and pattern length (1..32). */
    uint32_t pattern = 0x1;
    unsigned patternLen = 2;

    /** Markov: P(true | previous true) and P(true | previous false). */
    double pStayTrue = 0.9;
    double pEnterTrue = 0.1;

    /**
     * Markov2: P(true | last two values differ). P(true | equal) is the
     * complement, which keeps the marginal near 50% and the order-1
     * statistics uninformative while the order-2 state predicts well —
     * the cleanest generator of the paper's non-repeating-pattern class
     * (predictable from specific previous outcomes, no fixed period).
     */
    double pAfterDiffer = 0.8;

    /** Counter: true while (count % mod) < lt. */
    uint32_t mod = 4;
    uint32_t lt = 1;

    /** Human-readable description (for debugging / docs). */
    std::string describe() const;

    static ConditionSpec biased(double p);
    static ConditionSpec periodic(uint32_t pattern, unsigned len);
    static ConditionSpec markov(double p_stay_true, double p_enter_true);
    static ConditionSpec markov2(double p_after_differ);
    static ConditionSpec counter(uint32_t mod, uint32_t lt);
};

/**
 * Runtime sampling state for one condition variable. Construct from a spec
 * and a per-variable RNG stream; next() yields successive values.
 */
class ConditionSource
{
  public:
    ConditionSource(const ConditionSpec &spec, Rng rng);

    /** Draw the next value of the variable. */
    bool next();

    /** Samples drawn so far. */
    uint64_t samples() const { return count_; }

  private:
    ConditionSpec spec_;
    Rng rng_;
    uint64_t count_ = 0;
    bool state_ = false;  // Markov / Markov2 previous value
    bool state2_ = false; // Markov2 value before that
};

} // namespace copra::workload

