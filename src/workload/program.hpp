/**
 * @file
 * Synthetic program model: a control-flow AST over the condition pool
 * whose execution emits a branch trace.
 *
 * The model reproduces the branch behaviour classes the paper analyzes:
 *  - If / else-if chains over shared predicates: direction and in-path
 *    correlation (paper Figs. 1 and 2).
 *  - Variable reassignment inside taken paths: outcome-generated
 *    correlation (paper Fig. 1b).
 *  - For loops (bottom-test backward branch, taken t-1 times then
 *    not-taken) and While loops (top-test exit branch, not-taken while
 *    iterating): the loop-type per-address class (paper §4.1.1).
 *  - Periodic / Markov condition variables: repeating and non-repeating
 *    pattern classes (paper §4.1.2-4.1.3).
 *  - Subroutine calls: call-site-dependent (in-path) behaviour.
 *
 * Concurrency contract (DESIGN.md §10): a Program is immutable once the
 * builder finishes, and run() is const with every piece of runtime
 * state (variables, condition sources, trip states, RNGs) owned by the
 * per-call ExecContext — so one Program may generate traces from any
 * number of pool workers concurrently. An ExecContext itself is
 * task-confined and never crosses threads.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "workload/condition.hpp"
#include "workload/expr.hpp"

namespace copra::workload {

class Program;

/** How a loop's trip count evolves across invocations. */
struct TripSpec
{
    enum class Kind : uint8_t
    {
        Fixed,   //!< always the same trip count
        Drift,   //!< random walk within [lo, hi], stepping every period-th
                 //!< invocation ("n changes infrequently", paper §4.1.1)
        Uniform, //!< fresh uniform draw in [lo, hi] per invocation
    };

    Kind kind = Kind::Fixed;
    uint32_t lo = 4;
    uint32_t hi = 4;
    uint32_t period = 16; // Drift: invocations between steps

    static TripSpec fixed(uint32_t n);
    static TripSpec drift(uint32_t lo, uint32_t hi, uint32_t period);
    static TripSpec uniform(uint32_t lo, uint32_t hi);
};

/** Runtime trip-count state for one loop site. */
class TripState
{
  public:
    TripState(const TripSpec &spec, Rng rng);

    /** Trip count for the next loop invocation (always >= 1). */
    uint32_t next();

  private:
    TripSpec spec_;
    Rng rng_;
    uint32_t current_;
    uint32_t invocations_ = 0;
};

/**
 * Execution context threaded through the AST walk. Owns variable values,
 * live condition sources, loop trip states, and the output trace.
 */
class ExecContext
{
  public:
    ExecContext(const Program &program, trace::Trace &out,
                uint64_t budget_conditionals, uint64_t seed);

    /** True once the conditional-branch budget has been emitted. */
    bool done() const { return done_; }

    /** Emit a conditional branch record and charge the budget. */
    void emitConditional(uint64_t pc, uint64_t target, bool taken);

    /** Emit a non-conditional control transfer record. */
    void emitOther(uint64_t pc, uint64_t target, trace::BranchKind kind);

    /** Resample variable @p var from its condition source. */
    void sample(unsigned var);

    /** Directly assign variable @p var from a Bernoulli(p) draw. */
    void assign(unsigned var, double p);

    /** Current variable values (0/1). */
    const std::vector<uint8_t> &vars() const { return vars_; }

    /** Trip state for loop site @p site. */
    TripState &tripState(size_t site) { return trips_[site]; }

    /** Current call depth (for bounding recursion). */
    unsigned callDepth = 0;

    /** Maximum call depth before calls are skipped. */
    static constexpr unsigned maxCallDepth = 12;

    const Program &program;

  private:
    trace::Trace &out_;
    uint64_t budget_;
    uint64_t emitted_ = 0;
    bool done_ = false;
    std::vector<uint8_t> vars_;
    std::vector<ConditionSource> sources_;
    std::vector<TripState> trips_;
    Rng assignRng_;
};

/** Base class for program statements. */
class Stmt
{
  public:
    virtual ~Stmt() = default;

    /** Execute the statement, emitting branch records into @p ctx. */
    virtual void exec(ExecContext &ctx) const = 0;
};

using StmtPtr = std::unique_ptr<Stmt>;

/** A straight-line sequence of statements. */
class BlockStmt : public Stmt
{
  public:
    void append(StmtPtr stmt) { stmts_.push_back(std::move(stmt)); }
    size_t size() const { return stmts_.size(); }
    void exec(ExecContext &ctx) const override;

  private:
    std::vector<StmtPtr> stmts_;
};

/** Resample one condition variable from its source. */
class SampleStmt : public Stmt
{
  public:
    explicit SampleStmt(unsigned var) : var_(var) {}
    void exec(ExecContext &ctx) const override { ctx.sample(var_); }

  private:
    unsigned var_;
};

/**
 * Assign a variable from a fixed-bias draw. Placed inside if-bodies by the
 * builder to create outcome-generated correlation (paper Fig. 1b).
 */
class AssignStmt : public Stmt
{
  public:
    AssignStmt(unsigned var, double p) : var_(var), p_(p) {}
    void exec(ExecContext &ctx) const override { ctx.assign(var_, p_); }

  private:
    unsigned var_;
    double p_;
};

/** An if/else: one conditional branch, taken iff the predicate holds. */
class IfStmt : public Stmt
{
  public:
    IfStmt(uint64_t pc, Pred pred, StmtPtr then_block, StmtPtr else_block)
        : pc_(pc), pred_(std::move(pred)),
          then_(std::move(then_block)), else_(std::move(else_block))
    {
    }

    void exec(ExecContext &ctx) const override;
    uint64_t pc() const noexcept { return pc_; }
    const Pred &pred() const { return pred_; }

  private:
    uint64_t pc_;
    Pred pred_;
    StmtPtr then_; // may be null
    StmtPtr else_; // may be null
};

/**
 * An else-if chain: arms are tested in order; each test emits a branch
 * taken iff its predicate holds; the first true arm's block runs and the
 * rest are skipped. Reaching a later arm implies every earlier predicate
 * was false — the paper's in-path correlation (Fig. 2).
 */
class ChainStmt : public Stmt
{
  public:
    struct Arm
    {
        uint64_t pc;
        Pred pred;
        StmtPtr block; // may be null
    };

    explicit ChainStmt(std::vector<Arm> arms, StmtPtr else_block)
        : arms_(std::move(arms)), else_(std::move(else_block))
    {
    }

    void exec(ExecContext &ctx) const override;
    size_t armCount() const { return arms_.size(); }

  private:
    std::vector<Arm> arms_;
    StmtPtr else_; // may be null
};

/**
 * A bottom-test counted loop ("for-type", paper §4.1.1). The loop-closing
 * branch at the bottom is backward (target = loop head) and is taken
 * trip-1 times, then not-taken once. The body always runs at least once.
 */
class ForStmt : public Stmt
{
  public:
    ForStmt(uint64_t head_pc, uint64_t bottom_pc, size_t trip_site,
            StmtPtr body)
        : headPc_(head_pc), bottomPc_(bottom_pc), tripSite_(trip_site),
          body_(std::move(body))
    {
    }

    void exec(ExecContext &ctx) const override;

  private:
    uint64_t headPc_;
    uint64_t bottomPc_;
    size_t tripSite_;
    StmtPtr body_; // may be null
};

/**
 * A top-test loop ("while-type", paper §4.1.1). The exit branch at the top
 * is forward and is not-taken trip times (keep looping), then taken once
 * (exit). An unconditional backward jump closes each iteration.
 */
class WhileStmt : public Stmt
{
  public:
    WhileStmt(uint64_t head_pc, uint64_t exit_target, uint64_t jump_pc,
              size_t trip_site, StmtPtr body)
        : headPc_(head_pc), exitTarget_(exit_target), jumpPc_(jump_pc),
          tripSite_(trip_site), body_(std::move(body))
    {
    }

    void exec(ExecContext &ctx) const override;

  private:
    uint64_t headPc_;
    uint64_t exitTarget_;
    uint64_t jumpPc_;
    size_t tripSite_;
    StmtPtr body_; // may be null
};

/** A call to another function in the program. */
class CallStmt : public Stmt
{
  public:
    CallStmt(uint64_t pc, size_t callee) : pc_(pc), callee_(callee) {}
    void exec(ExecContext &ctx) const override;

  private:
    uint64_t pc_;
    size_t callee_;
};

/** A function: an entry address and a body. */
struct Function
{
    uint64_t entryPc = 0;
    uint64_t returnPc = 0;
    StmtPtr body;
};

/**
 * A complete synthetic program: condition pool, loop trip sites, and a
 * set of functions. Function 0 is the driver; Program::run executes it
 * repeatedly until the requested number of conditional branches has been
 * emitted.
 */
class Program
{
  public:
    /** Append a condition variable; returns its index. */
    unsigned addCondition(const ConditionSpec &spec);

    /** Append a loop trip site; returns its index. */
    size_t addTripSite(const TripSpec &spec);

    /** Append a function; returns its index. */
    size_t addFunction(Function fn);

    size_t conditionCount() const { return conditions_.size(); }
    size_t tripSiteCount() const { return tripSites_.size(); }
    size_t functionCount() const { return functions_.size(); }

    const ConditionSpec &condition(size_t i) const { return conditions_[i]; }
    const TripSpec &tripSite(size_t i) const { return tripSites_[i]; }
    const Function &function(size_t i) const { return functions_[i]; }

    /** Static conditional branch sites created by the builder. */
    uint64_t staticBranchCount() const { return staticBranches_; }

    /** Record that the builder created one more static branch site. */
    void noteStaticBranch() { ++staticBranches_; }

    /**
     * Execute the program deterministically and return the emitted trace.
     *
     * @param name Trace name to record.
     * @param budget_conditionals Stop after this many conditional branches.
     * @param seed Seed for all runtime randomness (condition sources, trip
     *             counts, assignments).
     */
    trace::Trace run(const std::string &name, uint64_t budget_conditionals,
                     uint64_t seed) const;

    /**
     * Parallel chunked variant of run(). The budget is split into fixed
     * chunks of conditional branches; each chunk is generated by an
     * independent run() on the global thread pool and the chunks are
     * concatenated in index order. Chunk 0 uses @p seed verbatim — a
     * budget that fits in one chunk returns run()'s stream byte for
     * byte — and later chunks derive their seeds from (seed, index), so
     * the chunk plan, and therefore the trace, depends only on
     * (budget_conditionals, seed), never on the worker thread count.
     */
    trace::Trace runParallel(const std::string &name,
                             uint64_t budget_conditionals,
                             uint64_t seed) const;

  private:
    std::vector<ConditionSpec> conditions_;
    std::vector<TripSpec> tripSites_;
    std::vector<Function> functions_;
    uint64_t staticBranches_ = 0;
};

} // namespace copra::workload

