#include "workload/profiles.hpp"

#include <unordered_map>

#include "util/logging.hpp"
#include "workload/frontier.hpp"

namespace copra::workload {

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "compress", "gcc", "go", "ijpeg",
        "m88ksim", "perl", "vortex", "xlisp",
    };
    return names;
}

const std::vector<std::string> &
benchmarkShortNames()
{
    static const std::vector<std::string> names = {
        "com", "gcc", "go", "ijp", "m88", "per", "vor", "xli",
    };
    return names;
}

namespace {

/**
 * Calibration notes. Each profile targets the accuracy fingerprint the
 * paper reports for that program (Table 2 gshare / Table 3 PAs columns),
 * tuned empirically with examples/predictor_shootout:
 *  - compress: small code, data-dependent branches; gshare ~92, PAs
 *    slightly better (~93.5).
 *  - gcc: very large executed static branch population; strong
 *    cross-branch correlation (chains over shared flags) that favours
 *    gshare over PAs; big interference gap to IF gshare.
 *  - go: hardest benchmark (~84); many near-50/50 data-dependent
 *    branches resampled every pass; correlation still favours gshare
 *    over PAs.
 *  - ijpeg: loop-dominated numeric kernels with noise inside loop
 *    bodies, which pollutes gshare's global history but not PAs'
 *    per-address history: PAs ~95 > gshare ~92.6.
 *  - m88ksim: simulator dispatch; heavily biased checks; ~98.5 both.
 *  - perl: interpreter dispatch; heavily biased; gshare ~97.8 > PAs.
 *  - vortex: database integrity checks; extremely biased; ~99.
 *  - xlisp: recursive interpreter; correlated type tests; ~95.4.
 */
std::unordered_map<std::string, BenchmarkProfile>
makeProfiles()
{
    std::unordered_map<std::string, BenchmarkProfile> out;

    {
        BenchmarkProfile p;
        p.name = "compress";
        p.chainFollowProb = 0.30;
        p.chainResampleProb = 0.60;
        p.buildSeed = 0xC04;
        p.numVars = 40;
        p.fracVarStrongBias = 0.12;
        p.fracVarModerateBias = 0.20;
        p.moderateBiasLo = 0.66;
        p.moderateBiasHi = 0.88;
        p.fracVarMarkov = 0.30;
        p.fracVarPeriodic = 0.05;
        p.numFunctions = 6;
        p.targetStaticBranches = 260;
        p.varWindow = 10;
        p.wIf = 4.0;
        p.wChain = 1.5;
        p.wFor = 0.9;
        p.wWhile = 0.3;
        p.wSample = 2.0;
        p.fracLoopFixed = 0.35;
        p.fracLoopDrift = 0.25;
        p.tripLo = 2;
        p.tripHi = 16;
        out[p.name] = p;
    }
    {
        BenchmarkProfile p;
        p.name = "gcc";
        p.chainFollowProb = 0.30;
        p.chainResampleProb = 0.85;
        p.callSkew = 1;
        p.buildSeed = 0x6CC;
        p.numVars = 220;
        p.fracVarStrongBias = 0.40;
        p.fracVarModerateBias = 0.26;
        p.moderateBiasLo = 0.68;
        p.moderateBiasHi = 0.88;
        p.fracVarMarkov = 0.15;
        p.fracVarPeriodic = 0.04;
        p.numFunctions = 60;
        p.targetStaticBranches = 9000;
        p.maxDepth = 3;
        p.blockLenLo = 3;
        p.blockLenHi = 8;
        p.varWindow = 12;
        p.wIf = 2.5;
        p.wChain = 4.5;
        p.wFor = 0.9;
        p.wWhile = 0.2;
        p.wCall = 1.6;
        p.wSample = 0.8;
        p.predTwoVar = 0.40;
        p.predThreeVar = 0.14;
        p.fig1bProb = 0.18;
        p.fracLoopFixed = 0.80;
        p.fracLoopDrift = 0.15;
        p.tripLo = 14;
        p.tripHi = 15;
        out[p.name] = p;
    }
    {
        BenchmarkProfile p;
        p.name = "go";
        p.chainFollowProb = 0.85;
        p.chainLenHi = 6;
        p.wCall = 2.2;
        p.chainResampleProb = 0.80;
        p.callSkew = 1;
        p.buildSeed = 0x609;
        p.numVars = 60;
        p.fracVarStrongBias = 0.05;
        p.fracVarModerateBias = 0.56;
        p.moderateBiasLo = 0.68;
        p.moderateBiasHi = 0.86;
        p.fracVarMarkov = 0.02;
        p.fracVarPeriodic = 0.01;
        p.numFunctions = 48;
        p.targetStaticBranches = 6000;
        p.maxDepth = 3;
        p.varWindow = 5;
        p.wIf = 2.0;
        p.wChain = 5.5;
        p.wFor = 0.25;
        p.wWhile = 0.2;
        p.wSample = 3.0;
        p.predTwoVar = 0.42;
        p.predThreeVar = 0.16;
        p.fig1bProb = 0.10;
        p.fracLoopFixed = 0.10;
        p.fracLoopDrift = 0.20;
        p.tripLo = 4;
        p.tripHi = 20;
        out[p.name] = p;
    }
    {
        BenchmarkProfile p;
        p.name = "ijpeg";
        p.chainFollowProb = 0.30;
        p.chainResampleProb = 0.25;
        p.buildSeed = 0x1395;
        p.numVars = 64;
        p.fracVarStrongBias = 0.10;
        p.fracVarModerateBias = 0.12;
        p.moderateBiasLo = 0.50;
        p.moderateBiasHi = 0.72;
        p.fracVarMarkov = 0.25;
        p.fracVarPeriodic = 0.02;
        p.numFunctions = 12;
        p.targetStaticBranches = 1100;
        p.varWindow = 10;
        p.wFor = 2.8;
        p.wWhile = 0.7;
        p.wSample = 1.6;
        p.fracLoopFixed = 0.45;
        p.fracLoopDrift = 0.22;
        p.tripLo = 3;
        p.tripHi = 24;
        p.driftPeriod = 40;
        out[p.name] = p;
    }
    {
        BenchmarkProfile p;
        p.name = "m88ksim";
        p.driftPeriod = 60;
        p.strongBiasHi = 0.9995;
        p.chainFollowProb = 0.40;
        p.chainResampleProb = 0.15;
        p.callSkew = 3;
        p.wSample = 0.5;
        p.strongBiasLo = 0.99;
        p.buildSeed = 0x88;
        p.numVars = 96;
        p.fracVarStrongBias = 0.88;
        p.fracVarModerateBias = 0.10;
        p.moderateBiasLo = 0.92;
        p.moderateBiasHi = 0.99;
        p.fracVarMarkov = 0.02;
        p.fracVarPeriodic = 0.03;
        p.numFunctions = 16;
        p.targetStaticBranches = 1500;
        p.varWindow = 10;
        p.wChain = 1.8;
        p.wFor = 0.7;
        p.wWhile = 0.25;
        p.predTwoVar = 0.28;
        p.fig1bProb = 0.14;
        p.fracLoopFixed = 0.85;
        p.fracLoopDrift = 0.20;
        p.tripLo = 4;
        p.tripHi = 14;
        out[p.name] = p;
    }
    {
        BenchmarkProfile p;
        p.name = "perl";
        p.chainFollowProb = 0.40;
        p.chainResampleProb = 0.35;
        p.callSkew = 3;
        p.strongBiasHi = 0.9995;
        p.strongBiasLo = 0.99;
        p.buildSeed = 0x9E71;
        p.numVars = 110;
        p.fracVarStrongBias = 0.80;
        p.fracVarModerateBias = 0.10;
        p.moderateBiasLo = 0.90;
        p.moderateBiasHi = 0.98;
        p.fracVarMarkov = 0.00;
        p.fracVarPeriodic = 0.01;
        p.numFunctions = 20;
        p.targetStaticBranches = 2200;
        p.varWindow = 12;
        p.wChain = 2.2;
        p.wCall = 1.3;
        p.wFor = 0.9;
        p.wWhile = 0.2;
        p.wSample = 0.6;
        p.fig1bProb = 0.16;
        p.fracLoopFixed = 0.90;
        p.fracLoopDrift = 0.08;
        p.tripLo = 14;
        p.tripHi = 15;
        out[p.name] = p;
    }
    {
        BenchmarkProfile p;
        p.name = "vortex";
        p.driftPeriod = 60;
        p.chainFollowProb = 0.40;
        p.chainResampleProb = 0.55;
        p.callSkew = 3;
        p.strongBiasHi = 0.99995;
        p.strongBiasLo = 0.998;
        p.buildSeed = 0x504;
        p.numVars = 150;
        p.fracVarStrongBias = 0.97;
        p.fracVarModerateBias = 0.03;
        p.moderateBiasLo = 0.97;
        p.moderateBiasHi = 0.998;
        p.fracVarMarkov = 0.00;
        p.fracVarPeriodic = 0.00;
        p.numFunctions = 32;
        p.targetStaticBranches = 5200;
        p.varWindow = 12;
        p.wChain = 1.8;
        p.wCall = 1.5;
        p.wFor = 0.15;
        p.wWhile = 0.15;
        p.wSample = 0.9;
        p.predTwoVar = 0.30;
        p.fig1bProb = 0.08;
        p.fracLoopFixed = 0.95;
        p.fracLoopDrift = 0.06;
        p.tripLo = 6;
        p.tripHi = 12;
        out[p.name] = p;
    }
    {
        BenchmarkProfile p;
        p.name = "xlisp";
        p.chainFollowProb = 0.50;
        p.chainResampleProb = 0.75;
        p.callSkew = 3;
        p.wSample = 1.2;
        p.strongBiasLo = 0.98;
        p.buildSeed = 0x715;
        p.numVars = 80;
        p.fracVarStrongBias = 0.44;
        p.fracVarModerateBias = 0.08;
        p.moderateBiasLo = 0.66;
        p.moderateBiasHi = 0.86;
        p.fracVarMarkov = 0.20;
        p.fracVarPeriodic = 0.04;
        p.numFunctions = 18;
        p.targetStaticBranches = 1700;
        p.varWindow = 10;
        p.wCall = 2.4;
        p.wChain = 2.2;
        p.wFor = 0.6;
        p.wWhile = 0.2;
        p.fig1bProb = 0.14;
        p.fracLoopFixed = 0.75;
        p.fracLoopDrift = 0.25;
        p.tripLo = 5;
        p.tripHi = 15;
        out[p.name] = p;
    }
    return out;
}

std::unordered_map<std::string, PaperReference>
makeReferences()
{
    // Table 1 dynamic branch counts; Table 2 and Table 3 accuracies.
    std::vector<PaperReference> rows = {
        {"compress", 10661855, 92.16, 92.40, 92.25, 92.41,
         93.46, 93.49, 94.41, 94.42},
        {"gcc", 25903086, 92.27, 95.95, 96.23, 96.73,
         92.08, 92.91, 91.86, 93.20},
        {"go", 17925171, 84.11, 88.54, 91.53, 92.14,
         82.16, 83.53, 84.81, 85.84},
        {"ijpeg", 20441307, 92.56, 93.12, 93.22, 93.31,
         94.87, 95.50, 95.86, 96.28},
        {"m88ksim", 16719523, 98.44, 98.58, 98.51, 98.59,
         98.58, 99.14, 99.09, 99.35},
        {"perl", 10570887, 97.84, 98.29, 98.18, 98.34,
         96.83, 96.96, 97.79, 97.87},
        {"vortex", 33853896, 98.98, 99.29, 99.28, 99.32,
         98.86, 99.14, 99.03, 99.23},
        {"xlisp", 26422387, 95.37, 95.52, 95.47, 95.52,
         95.46, 95.54, 96.70, 96.73},
    };
    std::unordered_map<std::string, PaperReference> out;
    for (auto &row : rows)
        out[row.name] = row;
    return out;
}

} // namespace

BenchmarkProfile
benchmarkProfile(const std::string &name)
{
    static const auto profiles = makeProfiles();
    auto it = profiles.find(name);
    if (it == profiles.end())
        fatal("unknown benchmark '" + name + "'");
    return it->second;
}

trace::Trace
makeBenchmarkTrace(const std::string &name, uint64_t branches, uint64_t seed)
{
    if (isFrontierWorkload(name))
        return makeFrontierTrace(name, branches, seed);
    BenchmarkProfile profile = benchmarkProfile(name);
    Program program = buildProgram(profile);
    uint64_t exec_seed = seed ? seed : profile.buildSeed * 77 + 13;
    return program.runParallel(name, branches, exec_seed);
}

const PaperReference &
paperReference(const std::string &name)
{
    static const auto refs = makeReferences();
    auto it = refs.find(name);
    if (it == refs.end())
        fatal("no paper reference for benchmark '" + name + "'");
    return it->second;
}

} // namespace copra::workload
