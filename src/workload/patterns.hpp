/**
 * @file
 * Hand-crafted trace generators with exactly known behaviour, used by the
 * test suite and the quickstart example. Each generator produces the
 * canonical form of one of the paper's branch behaviour classes.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace copra::workload {

/**
 * A for-type loop branch (paper §4.1.1): taken @p trip - 1 times then
 * not-taken once, repeated @p invocations times. Backward branch.
 */
trace::Trace loopTrace(uint64_t pc, uint32_t trip, uint32_t invocations);

/**
 * A while-type loop branch: not-taken @p trip times then taken once per
 * invocation (the exit test), repeated @p invocations times.
 */
trace::Trace whileTrace(uint64_t pc, uint32_t trip, uint32_t invocations);

/**
 * A branch following the fixed repeating outcome @p pattern (paper
 * §4.1.2), cycled @p repeats times.
 */
trace::Trace periodicTrace(uint64_t pc, const std::vector<bool> &pattern,
                           uint32_t repeats);

/**
 * A block-pattern branch (paper §4.1.2): taken @p n times, not-taken
 * @p m times, repeated @p repeats times.
 */
trace::Trace blockPatternTrace(uint64_t pc, uint32_t n, uint32_t m,
                               uint32_t repeats);

/** A branch taken with independent probability @p p, @p count times. */
trace::Trace biasedTrace(uint64_t pc, double p, uint64_t count,
                         uint64_t seed);

/**
 * The paper's Fig. 1a: branch Y tests cond1; branch X tests
 * cond1 AND cond2. Emitted as alternating Y, X records for @p pairs
 * iterations with cond1/cond2 drawn Bernoulli(p1)/Bernoulli(p2).
 */
trace::Trace correlatedPairTrace(uint64_t pc_y, uint64_t pc_x, double p1,
                                 double p2, uint64_t pairs, uint64_t seed);

/**
 * The paper's Fig. 2 (in-path correlation): an else-if chain over cond1,
 * cond2, cond3 followed by branch X testing cond1 AND cond2. Reaching the
 * third arm implies X will be taken.
 */
trace::Trace inPathTrace(uint64_t base_pc, double p1, double p2, double p3,
                         uint64_t iterations, uint64_t seed);

/**
 * Interleave several traces round-robin into one trace (one record from
 * each non-exhausted input per turn). Useful for building multi-branch
 * test scenarios from single-branch generators.
 */
trace::Trace interleave(const std::vector<trace::Trace> &traces);

} // namespace copra::workload

