/**
 * @file
 * Frontier workload families: synthetic branch behaviours the paper's
 * eight SPECint95-like profiles never produce.
 *
 * The ISCA '98 taxonomy was derived from compiled C programs; modern
 * dissections (Firestorm/Oryon probing, PAPERS.md) show predictors are
 * stressed hardest by shapes outside that corpus. Three families close
 * the gap:
 *
 *  - "interp": an interpreter/VM dispatch loop. A small bytecode
 *    program is executed repeatedly; each instruction's indirect
 *    dispatch is lowered to the else-if compare chain a switch compiles
 *    to, so the dispatch target is encoded as a correlated run of
 *    conditional outcomes driven by the bytecode sequence — exactly the
 *    indirect-style correlation global history can capture and
 *    per-address history cannot.
 *
 *  - "datadep": branches over a generated value stream that alternates
 *    between sorted runs, random walks, and uncorrelated noise. The
 *    same static branches flip between trivially predictable and
 *    irreducibly random as the data regime changes — the data-dependent
 *    case the paper's §4 calls out as the limit of history correlation.
 *
 *  - "nestloop": nested loops with trip counts beyond any tracked
 *    history window and co-prime-period interactions, after the
 *    long-period probes of the Firestorm dissection: triangular nests,
 *    two counters with periods 48 and 37 (combined period 1776), and a
 *    period-127 pattern branch.
 *
 * Generators are pure functions of (branches, seed): byte-identical
 * traces for the same arguments, stopping at exactly the requested
 * conditional-branch budget. workload::makeBenchmarkTrace() dispatches
 * these names, so benches, the trace cache, and copra_characterize
 * treat frontier families exactly like the paper suite.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace copra::workload {

/** Names of the frontier families: interp, datadep, nestloop. */
const std::vector<std::string> &frontierNames();

/** Short display names aligned with frontierNames() (itp, dat, nst). */
const std::vector<std::string> &frontierShortNames();

/** True when @p name is one of frontierNames(). */
bool isFrontierWorkload(const std::string &name);

/**
 * The full workload suite: the paper's eight benchmarks followed by the
 * three frontier families. fig4–fig9 benches iterate this list; the
 * table benches stay on benchmarkNames() because only the paper eight
 * have published reference rows.
 */
const std::vector<std::string> &workloadSuiteNames();

/** Short display names aligned with workloadSuiteNames(). */
const std::vector<std::string> &workloadSuiteShortNames();

/**
 * Generate a frontier-family trace with exactly @p branches conditional
 * branches (non-conditional transfers are interleaved on top).
 *
 * @param name One of frontierNames(); fatal() otherwise.
 * @param branches Dynamic conditional branches to emit.
 * @param seed Execution seed (0 = the family's canonical seed).
 */
trace::Trace makeFrontierTrace(const std::string &name, uint64_t branches,
                               uint64_t seed = 0);

} // namespace copra::workload
