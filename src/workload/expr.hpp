/**
 * @file
 * Boolean predicate expressions over the condition variable pool.
 *
 * Predicates are small expression DAGs stored as a flat node vector.
 * Branches whose predicates reference the same variables are correlated
 * exactly as in the paper's motivating examples: `if (c1)` followed by
 * `if (c1 && c2)` (Fig. 1a), or else-if chains over related conditions
 * (Fig. 2).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace copra::workload {

/** Predicate over boolean variables, encoded as a flat expression tree. */
class Pred
{
  public:
    /** Node operators. */
    enum class Op : uint8_t { Var, Not, And, Or };

    /** A literal variable reference. */
    static Pred var(unsigned index);

    /** Negation. */
    static Pred notOf(const Pred &a);

    /** Conjunction. */
    static Pred andOf(const Pred &a, const Pred &b);

    /** Disjunction. */
    static Pred orOf(const Pred &a, const Pred &b);

    /** Evaluate over the variable values @p vars. */
    bool eval(const std::vector<uint8_t> &vars) const;

    /** Indices of every variable referenced (with duplicates removed). */
    std::vector<unsigned> variables() const;

    /** Number of expression nodes. */
    size_t size() const { return nodes_.size(); }

    /** True when no nodes exist (never the case for built predicates). */
    bool empty() const { return nodes_.empty(); }

    /** Render as a string like "(v1 & !v2)". */
    std::string toString() const;

  private:
    struct Node
    {
        Op op;
        uint32_t a; // Var: variable index; Not/And/Or: child node index
        uint32_t b; // And/Or: second child node index
    };

    /** Append another predicate's nodes, returning its new root index. */
    uint32_t absorb(const Pred &other);

    bool evalNode(uint32_t idx, const std::vector<uint8_t> &vars) const;
    std::string nodeString(uint32_t idx) const;

    std::vector<Node> nodes_; // root is the last node
};

} // namespace copra::workload

