#include "core/selective.hpp"

#include "util/logging.hpp"

namespace copra::core {

TagOutcome
stateOf(const std::vector<TagState> &collected, const Tag &tag) noexcept
{
    for (const TagState &ts : collected)
        if (ts.tag == tag)
            return ts.taken ? TagOutcome::Taken : TagOutcome::NotTaken;
    return TagOutcome::NotInPath;
}

SelectiveTable::SelectiveTable(unsigned arity)
    : arity_(arity)
{
    panicIf(arity == 0 || arity > 8, "selective table arity must be 1..8");
    counters_.assign(pow3(arity), Counter2{});
}

uint32_t
SelectiveTable::patternOf(const TagOutcome *states, unsigned arity) noexcept
{
    uint32_t pattern = 0;
    uint32_t radix = 1;
    for (unsigned i = 0; i < arity; ++i) {
        pattern += static_cast<uint32_t>(states[i]) * radix;
        radix *= 3;
    }
    return pattern;
}

bool
SelectiveTable::predict(uint32_t pattern) const noexcept
{
    panicIf(pattern >= counters_.size(), "selective pattern out of range");
    return counters_[pattern].taken();
}

void
SelectiveTable::update(uint32_t pattern, bool taken) noexcept
{
    panicIf(pattern >= counters_.size(), "selective pattern out of range");
    counters_[pattern].update(taken);
}

SelectivePredictor::SelectivePredictor(
    std::unordered_map<uint64_t, std::vector<Tag>> selections,
    unsigned depth)
    : selections_(std::move(selections)), depth_(depth), window_(depth)
{
    // copra-lint: allow(unordered-iter) -- validation-only pass; order cannot affect results
    for (const auto &[pc, tags] : selections_) {
        panicIf(tags.empty() || tags.size() > 8,
                "selective predictor selections must have 1..8 tags");
    }
}

uint32_t
SelectivePredictor::currentPattern(uint64_t pc) noexcept
{
    auto sel = selections_.find(pc);
    if (sel == selections_.end())
        return 0; // degenerate m = 0: single counter
    window_.collect(scratch_);
    TagOutcome states[8];
    unsigned arity = static_cast<unsigned>(sel->second.size());
    for (unsigned i = 0; i < arity; ++i)
        states[i] = stateOf(scratch_, sel->second[i]);
    return SelectiveTable::patternOf(states, arity);
}

bool
SelectivePredictor::predict(const trace::BranchRecord &br) noexcept
{
    auto sel = selections_.find(br.pc);
    unsigned arity = sel == selections_.end()
        ? 1 : static_cast<unsigned>(sel->second.size());
    auto table = tables_.find(br.pc);
    if (table == tables_.end())
        return Counter2{}.taken();
    uint32_t pattern = sel == selections_.end()
        ? 0 : currentPattern(br.pc);
    // Tables are created on first update with the branch's arity; the
    // arity can never change afterwards.
    panicIf(table->second.arity() != arity,
            "selective predictor arity changed");
    return table->second.predict(pattern);
}

void
SelectivePredictor::update(const trace::BranchRecord &br, bool taken) noexcept
{
    auto sel = selections_.find(br.pc);
    unsigned arity = sel == selections_.end()
        ? 1 : static_cast<unsigned>(sel->second.size());
    uint32_t pattern = sel == selections_.end()
        ? 0 : currentPattern(br.pc);
    // The paper's hypothetical selective predictor is an analysis
    // instrument with unbounded per-pc tables; it sits outside the
    // perf roster and the runtime hot gates.
    // copra-lint: allow(hot-alloc) -- analysis instrument, unbounded tables
    auto [it, inserted] = tables_.try_emplace(br.pc, arity);
    it->second.update(pattern, taken);
    window_.push(br);
}

void
SelectivePredictor::observe(const trace::BranchRecord &br) noexcept
{
    window_.push(br);
}

void
SelectivePredictor::reset()
{
    window_.clear();
    tables_.clear();
}

std::string
SelectivePredictor::name() const
{
    return "selective(n=" + std::to_string(depth_) + ")";
}

} // namespace copra::core
