/**
 * @file
 * The selective-history oracle (paper §3.4, §3.6).
 *
 * The paper "used an oracle mechanism to choose the set of 1, 2 or 3 most
 * important branches to include in the history for each branch". This
 * implementation realizes that oracle in three phases:
 *
 *  1. Mine: accumulate per-(branch, tag) contingency statistics over a
 *     trace prefix and keep the top-K candidates per branch by
 *     information gain (core/candidates.hpp).
 *  2. Record: replay the full trace once, storing per execution of each
 *     branch the 3-valued state of each of its K candidates (packed 2
 *     bits per candidate) plus the outcome.
 *  3. Select: greedy forward selection — for sizes 1..3, extend the
 *     current set with the candidate that maximizes the *exact* accuracy
 *     of the selective predictor, scored by replaying the recorded
 *     states through a fresh 3^m-entry 2-bit-counter table.
 *
 * Greedy-over-top-K is an approximation of the (unspecified) paper
 * oracle; an exhaustive subset search is available for ablation.
 */

#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/candidates.hpp"
#include "core/selective.hpp"
#include "sim/ledger.hpp"
#include "trace/trace.hpp"

namespace copra::core {

/** Configuration of a selective-history oracle run. */
struct OracleConfig
{
    /** History window depth n (the paper sweeps 8..32; default 16). */
    unsigned historyDepth = 16;

    /** Candidate pool size K retained per branch after mining. */
    unsigned candidatePool = 14;

    /** Largest selective history size (the paper uses 3). */
    unsigned maxSelect = 3;

    /**
     * Conditional branches of the trace used for mining
     * (0 = all). Recording and scoring always use the whole trace.
     */
    uint64_t mineConditionals = 0;

    /** Cap on distinct tags tracked per branch while mining. */
    size_t perBranchTagCap = 4096;

    /**
     * Exhaustive subset search instead of greedy (costly: C(K,2)+C(K,3)
     * replays per branch — for ablation on small traces only).
     */
    bool exhaustive = false;

    /** Which instance-tagging methods contribute candidates (§3.2). */
    enum class TagFilter : uint8_t
    {
        Both,           //!< union of both methods (the paper's choice)
        OccurrenceOnly, //!< method A only
        BackwardOnly,   //!< method B only
    };
    TagFilter tagFilter = TagFilter::Both;
};

/** Oracle outcome for one static branch. */
struct BranchSelection
{
    uint64_t pc = 0;
    uint64_t execs = 0;
    uint64_t taken = 0;

    /** Correct predictions using the best set of size s+1 (s = 0..2). */
    std::array<uint64_t, 3> correct{};

    /** The chosen tags per size (chosen[s] has s+1 entries). */
    std::array<std::vector<Tag>, 3> chosen{};
};

/** Runs the three oracle phases over one trace. */
class SelectiveOracle
{
  public:
    /**
     * Build and run the oracle. The trace must outlive the constructor
     * call only (results are self-contained).
     */
    SelectiveOracle(const trace::Trace &trace, const OracleConfig &config);

    const OracleConfig &config() const { return config_; }

    /** Per-branch selections and accuracies. */
    const std::unordered_map<uint64_t, BranchSelection> &branches() const
    {
        return branches_;
    }

    /** Selection for one branch (nullptr if it never executed). */
    const BranchSelection *branch(uint64_t pc) const;

    /**
     * Aggregate accuracy (%) of the size-@p size selective history over
     * all dynamic branches (size = 1..maxSelect). This is the "IF
     * s-branch selective history" series of the paper's Fig. 4.
     */
    double accuracyPercent(unsigned size) const;

    /**
     * Per-branch ledger for the size-@p size selective predictor, for
     * best-of combinations with other predictors (Table 2, Fig. 8).
     */
    sim::Ledger toLedger(unsigned size) const;

    /**
     * The per-branch selection map for @p size, usable to instantiate an
     * online SelectivePredictor.
     */
    std::unordered_map<uint64_t, std::vector<Tag>>
    selectionMap(unsigned size) const;

    /**
     * Exact replay score of an arbitrary candidate subset against a
     * recorded state matrix: simulate a fresh 3^m table over the packed
     * rows and count correct predictions. Exposed for tests and the
     * exhaustive mode.
     *
     * @param rows Packed rows (2 bits per candidate, outcome in bit 31).
     * @param subset Candidate indices (into the 2-bit fields) to use.
     */
    static uint64_t replayScore(const std::vector<uint32_t> &rows,
                                const std::vector<unsigned> &subset);

  private:
    struct BranchData
    {
        std::vector<Tag> candidates;      // at most K
        std::vector<uint32_t> rows;       // packed states + outcome
    };

    void record(const trace::Trace &trace, const CandidateMiner &miner);
    void select();
    void selectGreedy(const BranchData &data, BranchSelection &out) const;
    void selectExhaustive(const BranchData &data,
                          BranchSelection &out) const;

    OracleConfig config_;
    std::unordered_map<uint64_t, BranchData> data_;
    std::unordered_map<uint64_t, BranchSelection> branches_;
};

} // namespace copra::core

