/**
 * @file
 * Branch-instance tagging (paper §3.2).
 *
 * To correlate against a *specific dynamic instance* of a prior branch —
 * needed when several iterations of a tight loop fit in the history — the
 * paper tags each history entry with its static address plus an instance
 * number, using two complementary methods:
 *
 *  - Method A (occurrence numbering): the most recent occurrence of
 *    branch A is A0, the next older is A1, and so on.
 *  - Method B (backward-branch counting): the instance number is how many
 *    taken backward control transfers (loop closings) separate it from
 *    the current branch, which identifies "the same branch, k iterations
 *    ago" even when the branch does not execute every iteration.
 *
 * Branches tagged by the two methods are treated as distinct correlation
 * candidates, exactly as in the paper.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "trace/branch_record.hpp"

namespace copra::core {

/** Instance-tagging method. */
enum class TagMethod : uint8_t
{
    Occurrence = 0,    //!< method A: per-pc occurrence index
    BackwardCount = 1, //!< method B: backward branches since execution
};

/**
 * A packed tag identifying one dynamic instance of a prior branch
 * relative to the current branch: pc, method, and instance number.
 * Layout: pc << 9 | method << 8 | num, so tags order and hash cheaply.
 */
struct Tag
{
    uint64_t packed = 0;

    Tag() = default;
    Tag(uint64_t pc, TagMethod method, uint8_t num) noexcept
        : packed((pc << 9) |
                 (static_cast<uint64_t>(method) << 8) | num)
    {
    }

    uint64_t pc() const noexcept { return packed >> 9; }
    TagMethod method() const
    {
        return static_cast<TagMethod>((packed >> 8) & 1);
    }
    uint8_t num() const { return static_cast<uint8_t>(packed & 0xff); }

    bool operator==(const Tag &other) const
    {
        return packed == other.packed;
    }
};

/** A tagged instance observed in the history, with its outcome. */
struct TagState
{
    Tag tag;
    bool taken = false;
};

/**
 * Sliding window over the last n conditional branches, maintaining the
 * bookkeeping both tagging methods need. Feed it every trace record in
 * order; before consuming a conditional branch, call collect() to
 * enumerate the tagged instances currently in the path.
 */
class HistoryWindow
{
  public:
    /** @param depth Window depth n (the paper uses 8..32). */
    explicit HistoryWindow(unsigned depth);

    /** Window depth n. */
    unsigned depth() const { return depth_; }

    /** Number of entries currently held (< depth until warm). */
    unsigned size() const { return count_; }

    /**
     * Enumerate the tagged instances of the branches in the path,
     * newest first, both tagging methods per entry (method B entries
     * deduplicated keeping the most recent). Clears and fills @p out.
     */
    void collect(std::vector<TagState> &out) const noexcept;

    /**
     * Advance past a record. Conditional branches enter the window;
     * taken backward conditional branches and backward unconditional
     * jumps advance the method-B iteration count. Calls and returns
     * only pass through.
     */
    void push(const trace::BranchRecord &rec) noexcept;

    /** Forget everything. */
    void clear();

    /** Total taken-backward transfers seen (method B epoch). */
    uint64_t backwardEpoch() const { return backwardEpoch_; }

  private:
    struct Entry
    {
        uint64_t pc;
        uint64_t epoch; // backwardEpoch_ when this branch executed
        bool taken;
    };

    unsigned depth_;
    unsigned count_ = 0;
    unsigned head_ = 0; // ring index of the next slot to write
    uint64_t backwardEpoch_ = 0;
    std::vector<Entry> ring_;
};

} // namespace copra::core

/** Hash support so Tag can key unordered containers. */
template <>
struct std::hash<copra::core::Tag>
{
    size_t
    operator()(const copra::core::Tag &tag) const noexcept
    {
        // splitmix64 finalizer inlined to avoid pulling in util/rng.hpp.
        uint64_t z = tag.packed + 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return static_cast<size_t>(z ^ (z >> 31));
    }
};

