/**
 * @file
 * Per-address predictability classification (paper §4).
 *
 * Every static branch is scored by the class predictors — loop,
 * repeating pattern (the better of block-pattern and best fixed-length
 * k in 1..32), and non-repeating pattern (interference-free PAs) — and
 * by the ideal static predictor. A branch belongs to the class whose
 * predictor is most accurate for it; branches the ideal static
 * predictor matches or beats belong to no class (paper Fig. 6).
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "sim/ledger.hpp"
#include "trace/trace.hpp"

namespace copra::core {

/** The paper's per-address predictability classes. */
enum class PaClass : uint8_t
{
    IdealStatic = 0,  //!< static majority direction is unbeaten
    Loop = 1,         //!< for-type / while-type behaviour (§4.1.1)
    Repeating = 2,    //!< fixed-length or block patterns (§4.1.2)
    NonRepeating = 3, //!< history-predictable, no repetition (§4.1.3)
};

/** Display name of a class. */
const char *paClassName(PaClass cls);

/** Per-branch classification outcome. */
struct PaBranchResult
{
    uint64_t pc = 0;
    uint64_t execs = 0;
    uint64_t taken = 0;

    uint64_t loopCorrect = 0;
    uint64_t blockCorrect = 0;
    uint64_t fixedCorrect = 0;   //!< best over k = 1..32
    uint64_t ifPasCorrect = 0;
    uint64_t staticCorrect = 0;  //!< ideal static (majority direction)
    unsigned bestFixedK = 1;

    PaClass cls = PaClass::IdealStatic;

    /** Correct count of the repeating-pattern class (max of subsets). */
    uint64_t
    repeatingCorrect() const
    {
        return blockCorrect > fixedCorrect ? blockCorrect : fixedCorrect;
    }

    /** Best correct count over the three dynamic classes. */
    uint64_t
    bestDynamicCorrect() const
    {
        uint64_t best = loopCorrect;
        if (repeatingCorrect() > best)
            best = repeatingCorrect();
        if (ifPasCorrect > best)
            best = ifPasCorrect;
        return best;
    }
};

/**
 * One-pass classification of all static branches of a trace.
 *
 * Tie-breaking: ideal static wins ties against every class (the paper
 * counts branches "at least equally well predicted" by ideal static as
 * unclassified); among the classes, ties resolve loop > repeating >
 * non-repeating, preferring the more specific behaviour.
 */
class PaClassifier
{
  public:
    /**
     * @param trace The trace to classify.
     * @param ifpas_history Interference-free PAs history length.
     */
    explicit PaClassifier(const trace::Trace &trace,
                          unsigned ifpas_history = 12);

    /** Per-branch results. */
    const std::unordered_map<uint64_t, PaBranchResult> &branches() const
    {
        return table_;
    }

    /** Result for one branch (nullptr if it never executed). */
    const PaBranchResult *branch(uint64_t pc) const;

    /**
     * Fraction of dynamic branches in each class, weighted by execution
     * frequency, indexed by PaClass (paper Fig. 6).
     */
    std::array<double, 4> classFractions() const;

    /**
     * Fraction of the dynamic executions in the IdealStatic bucket whose
     * static branch is more than @p threshold biased (the paper reports
     * 88% at 99% bias).
     */
    double staticBucketBiasFraction(double threshold = 0.99) const;

    /** Ledger of the loop class predictor over all branches. */
    sim::Ledger loopLedger() const;

    /** Ledger of the interference-free PAs run over all branches. */
    sim::Ledger ifPasLedger() const;

    /** Ledger of the per-branch best per-address class predictor. */
    sim::Ledger bestPaLedger() const;

    /**
     * Accuracy (%) of the paper's Table 3 hypothetical: the loop
     * predictor for branches classified Loop, @p base for every other
     * branch. @p base must cover the same trace.
     */
    double loopEnhancedAccuracyPercent(const sim::Ledger &base) const;

  private:
    unsigned ifPasHistory_;
    std::unordered_map<uint64_t, PaBranchResult> table_;
};

} // namespace copra::core

