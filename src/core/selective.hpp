/**
 * @file
 * The paper's hypothetical selective-history predictor (§3.4).
 *
 * Instead of a shift register of the last n outcomes, the first-level
 * history records the state of 1-3 specific tagged branch instances,
 * each encoded with three values: taken, not-taken, or not-in-path (the
 * instance did not occur in the last n branches). A set of m instances
 * therefore produces 3^m patterns, each selecting a 2-bit counter in a
 * per-branch (interference-free) second-level table, predicted and
 * updated exactly like a global two-level predictor.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/tagging.hpp"
#include "predictor/predictor.hpp"
#include "util/sat_counter.hpp"

namespace copra::core {

/** Three-valued state of a tagged instance relative to a prediction. */
enum class TagOutcome : uint8_t
{
    NotInPath = 0,
    NotTaken = 1,
    Taken = 2,
};

/** Encode a collected window against one watched tag. */
TagOutcome stateOf(const std::vector<TagState> &collected, const Tag &tag) noexcept;

/** 3^m for m in 0..8 (pattern table sizes). */
constexpr uint32_t
pow3(unsigned m)
{
    uint32_t v = 1;
    for (unsigned i = 0; i < m; ++i)
        v *= 3;
    return v;
}

/**
 * A per-branch second-level table over 3^m selective-history patterns.
 * Counters start weakly-not-taken (see DESIGN.md §5, ablated).
 */
class SelectiveTable
{
  public:
    /** @param arity Number of watched instances m (1..8). */
    explicit SelectiveTable(unsigned arity);

    /** Pattern index of a state vector (radix-3 little-endian). */
    static uint32_t patternOf(const TagOutcome *states, unsigned arity) noexcept;

    /** Predict for the pattern @p pattern. */
    bool predict(uint32_t pattern) const noexcept;

    /** Train the counter for @p pattern with @p taken. */
    void update(uint32_t pattern, bool taken) noexcept;

    unsigned arity() const noexcept { return arity_; }

  private:
    unsigned arity_;
    std::vector<Counter2> counters_;
};

/**
 * Online selective-history predictor over a fixed per-branch selection of
 * watched tags (normally produced by the SelectiveOracle). Branches with
 * no selection fall back to a per-branch bare 2-bit counter, which is the
 * m = 0 degenerate case of the scheme.
 *
 * Unlike table predictors it must see the whole instruction stream (for
 * backward-jump bookkeeping); the simulation driver delivers
 * non-conditional records through observe().
 */
class SelectivePredictor : public predictor::Predictor
{
  public:
    /**
     * @param selections Watched tags per static branch (size 1..8 each).
     * @param depth History window depth n.
     */
    SelectivePredictor(
        std::unordered_map<uint64_t, std::vector<Tag>> selections,
        unsigned depth);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void observe(const trace::BranchRecord &br) noexcept override;
    void reset() override;
    std::string name() const override;

  private:
    uint32_t currentPattern(uint64_t pc) noexcept;

    std::unordered_map<uint64_t, std::vector<Tag>> selections_;
    unsigned depth_;
    HistoryWindow window_;
    std::unordered_map<uint64_t, SelectiveTable> tables_;
    std::vector<TagState> scratch_;
};

} // namespace copra::core

