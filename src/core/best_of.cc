#include "core/best_of.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace copra::core {

BestOfSplit
bestOfSplit(const sim::Ledger &a, const sim::Ledger &b,
            const sim::Ledger &ideal_static, double bias_threshold)
{
    uint64_t total = 0;
    uint64_t execs_a = 0;
    uint64_t execs_b = 0;
    uint64_t execs_static = 0;
    uint64_t static_biased = 0;

    for (const auto &[pc, ta] : a.table()) {
        sim::BranchTally tb = b.branch(pc);
        sim::BranchTally ts = ideal_static.branch(pc);
        panicIf(tb.execs != ta.execs || ts.execs != ta.execs,
                "bestOfSplit: ledgers cover different traces");
        total += ta.execs;

        uint64_t best_dynamic = std::max(ta.correct, tb.correct);
        if (ts.correct >= best_dynamic) {
            execs_static += ta.execs;
            double bias = ta.execs
                ? static_cast<double>(ts.correct) / ta.execs : 0.0;
            if (bias > bias_threshold)
                static_biased += ta.execs;
        } else if (ta.correct >= tb.correct) {
            execs_a += ta.execs;
        } else {
            execs_b += ta.execs;
        }
    }

    BestOfSplit split;
    if (total == 0)
        return split;
    split.fracA = static_cast<double>(execs_a) / total;
    split.fracB = static_cast<double>(execs_b) / total;
    split.fracStatic = static_cast<double>(execs_static) / total;
    split.staticBiasedFraction = execs_static
        ? static_cast<double>(static_biased) / execs_static : 0.0;
    return split;
}

WeightedPercentiles
accuracyDifference(const sim::Ledger &a, const sim::Ledger &b)
{
    WeightedPercentiles percentiles;
    for (const auto &[pc, ta] : a.table()) {
        sim::BranchTally tb = b.branch(pc);
        panicIf(tb.execs != ta.execs,
                "accuracyDifference: ledgers cover different traces");
        if (ta.execs == 0)
            continue;
        double diff = 100.0 * (ta.accuracy() - tb.accuracy());
        percentiles.add(diff, ta.execs);
    }
    return percentiles;
}

sim::Ledger
idealStaticLedger(const sim::Ledger &reference)
{
    sim::Ledger out;
    for (const auto &[pc, tally] : reference.table()) {
        uint64_t not_taken = tally.execs - tally.taken;
        uint64_t correct = std::max(tally.taken, not_taken);
        out.setTally(pc, tally.execs, correct, tally.taken);
    }
    return out;
}

sim::Ledger
maxLedger(const sim::Ledger &a, const sim::Ledger &b)
{
    sim::Ledger out;
    for (const auto &[pc, ta] : a.table()) {
        sim::BranchTally tb = b.branch(pc);
        panicIf(tb.execs != ta.execs,
                "maxLedger: ledgers cover different traces");
        out.setTally(pc, ta.execs, std::max(ta.correct, tb.correct),
                     ta.taken);
    }
    return out;
}

} // namespace copra::core
