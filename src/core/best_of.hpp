/**
 * @file
 * Best-predictor accounting (paper §5): which predictor — global,
 * per-address, or ideal static — is best for each branch, weighted by
 * execution frequency (Figs. 7 and 8), and the per-branch accuracy
 * difference distribution between two predictors (Fig. 9).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/ledger.hpp"
#include "util/histogram.hpp"

namespace copra::core {

/**
 * Execution-weighted split of branches into {A best, B best, static
 * best}. Static absorbs ties against either dynamic predictor ("at
 * least equally well predicted", paper §5.1); between A and B, ties go
 * to A.
 */
struct BestOfSplit
{
    double fracA = 0.0;
    double fracB = 0.0;
    double fracStatic = 0.0;

    /**
     * Of the dynamic executions in the static bucket, the fraction whose
     * branch is more than 99% biased (the paper reports 83% for
     * gshare/PAs and 92% for the class-based comparison).
     */
    double staticBiasedFraction = 0.0;
};

/**
 * Compute the split. All three ledgers must cover the same trace
 * (identical per-pc execution counts).
 *
 * @param a First dynamic predictor's ledger (e.g. gshare).
 * @param b Second dynamic predictor's ledger (e.g. PAs).
 * @param ideal_static The ideal static predictor's ledger.
 * @param bias_threshold Bias level for staticBiasedFraction.
 */
BestOfSplit bestOfSplit(const sim::Ledger &a, const sim::Ledger &b,
                        const sim::Ledger &ideal_static,
                        double bias_threshold = 0.99);

/**
 * Per-branch accuracy difference distribution (paper Fig. 9): for every
 * static branch compute accuracy(a) - accuracy(b) in percentage points,
 * weight it by the branch's execution count, and expose the percentile
 * curve over dynamic branches.
 */
WeightedPercentiles accuracyDifference(const sim::Ledger &a,
                                       const sim::Ledger &b);

/**
 * Ledger whose per-branch correct counts are the ideal static
 * predictor's (majority direction), derived from any ledger covering the
 * trace — the taken counts are already in the tallies.
 */
sim::Ledger idealStaticLedger(const sim::Ledger &reference);

/** Per-branch max of two ledgers covering the same trace. */
sim::Ledger maxLedger(const sim::Ledger &a, const sim::Ledger &b);

} // namespace copra::core

