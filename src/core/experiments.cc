#include "core/experiments.hpp"

#include "obs/instruments.hpp"
#include "obs/registry.hpp"
#include "predictor/factory.hpp"
#include "predictor/interference_free.hpp"
#include "predictor/two_level.hpp"
#include "sim/driver.hpp"
#include "trace/trace_cache.hpp"
#include "workload/profiles.hpp"

namespace copra::core {

namespace {

// Phase timing now goes through obs::PhaseTimer, which both feeds the
// per-phase wall/CPU histograms and accumulates into the PhaseTimes
// field the bench timing= line reports. Durations go to stderr and run
// manifests, never into simulation results or stdout (DESIGN.md §7).

/** Wall+CPU phase guard for the trace-build phase. */
obs::PhaseTimer
traceGuard(PhaseTimes &times)
{
    return {obs::ids().simPhaseTraceSeconds,
            obs::ids().simPhaseTraceCpuSeconds, &times.traceSeconds};
}

/** Wall+CPU phase guard for the predictor-simulation phase. */
obs::PhaseTimer
predictorGuard(PhaseTimes &times)
{
    return {obs::ids().simPhasePredictorSeconds,
            obs::ids().simPhasePredictorCpuSeconds,
            &times.predictorSeconds};
}

/** Wall+CPU phase guard for the oracle/classifier phase. */
obs::PhaseTimer
oracleGuard(PhaseTimes &times)
{
    return {obs::ids().simPhaseOracleSeconds,
            obs::ids().simPhaseOracleCpuSeconds, &times.oracleSeconds};
}

} // namespace

trace::Trace
makeExperimentTrace(const std::string &name, const ExperimentConfig &config)
{
    auto generate = [&]() {
        return workload::makeBenchmarkTrace(name, config.branches,
                                            config.seed);
    };
    if (!trace::traceCacheEnabled())
        return generate();
    trace::TraceCacheKey key{name, config.branches, config.seed};
    return trace::globalTraceCache().loadOrGenerate(key, generate);
}

BenchmarkExperiment::BenchmarkExperiment(const std::string &name,
                                         const ExperimentConfig &config)
    : name_(name), config_(config)
{
    obs::PhaseTimer guard = traceGuard(times_);
    trace_ = makeExperimentTrace(name, config);
    // Build the shared SoA image (and its static index) here, inside
    // the trace phase: it is trace preparation, not predictor work, and
    // every predictor pass then starts on warm columns.
    trace_.soa();
}

BenchmarkExperiment::BenchmarkExperiment(trace::Trace trace,
                                         const ExperimentConfig &config)
    : name_(trace.name()), config_(config), trace_(std::move(trace))
{
}

const trace::TraceStats &
BenchmarkExperiment::stats()
{
    if (!stats_)
        stats_.emplace(trace_);
    return *stats_;
}

const sim::Ledger &
BenchmarkExperiment::gshareLedger()
{
    if (!gshare_) {
        obs::PhaseTimer guard = predictorGuard(times_);
        predictor::TwoLevel pred(
            predictor::TwoLevelConfig::gshare(config_.gshareHistory));
        gshare_.emplace();
        sim::run(trace_, pred, &*gshare_);
    }
    return *gshare_;
}

const sim::Ledger &
BenchmarkExperiment::pasLedger()
{
    if (!pas_) {
        obs::PhaseTimer guard = predictorGuard(times_);
        predictor::TwoLevel pred(predictor::TwoLevelConfig::pas(
            config_.pasHistory, config_.pasBhtBits, config_.pasSelectBits));
        pas_.emplace();
        sim::run(trace_, pred, &*pas_);
    }
    return *pas_;
}

const sim::Ledger &
BenchmarkExperiment::ifGshareLedger()
{
    if (!ifGshare_) {
        obs::PhaseTimer guard = predictorGuard(times_);
        predictor::IfGshare pred(config_.gshareHistory);
        ifGshare_.emplace();
        sim::run(trace_, pred, &*ifGshare_);
    }
    return *ifGshare_;
}

void
BenchmarkExperiment::precomputeLedgers()
{
    std::vector<predictor::PredictorPtr> owned;
    std::vector<predictor::Predictor *> preds;
    std::vector<std::optional<sim::Ledger> *> sinks;
    if (!gshare_) {
        owned.push_back(std::make_unique<predictor::TwoLevel>(
            predictor::TwoLevelConfig::gshare(config_.gshareHistory)));
        sinks.push_back(&gshare_);
    }
    if (!pas_) {
        owned.push_back(std::make_unique<predictor::TwoLevel>(
            predictor::TwoLevelConfig::pas(config_.pasHistory,
                                           config_.pasBhtBits,
                                           config_.pasSelectBits)));
        sinks.push_back(&pas_);
    }
    if (!ifGshare_) {
        owned.push_back(std::make_unique<predictor::IfGshare>(
            config_.gshareHistory));
        sinks.push_back(&ifGshare_);
    }
    if (owned.empty())
        return;
    for (auto &pred : owned)
        preds.push_back(pred.get());

    obs::PhaseTimer guard = predictorGuard(times_);
    std::vector<sim::Ledger> ledgers;
    sim::runAllParallel(trace_, preds, &ledgers);
    for (size_t i = 0; i < sinks.size(); ++i)
        sinks[i]->emplace(std::move(ledgers[i]));
}

const sim::Ledger &
BenchmarkExperiment::idealStaticLedgerRef()
{
    if (!idealStatic_)
        idealStatic_ = idealStaticLedger(gshareLedger());
    return *idealStatic_;
}

const sim::Ledger &
BenchmarkExperiment::ledgerFor(const std::string &spec)
{
    auto it = specLedgers_.find(spec);
    if (it == specLedgers_.end()) {
        obs::PhaseTimer guard = predictorGuard(times_);
        predictor::PredictorPtr pred = predictor::makePredictor(spec);
        sim::Ledger ledger;
        sim::run(trace_, *pred, &ledger);
        it = specLedgers_.emplace(spec, std::move(ledger)).first;
    }
    return it->second;
}

const SelectiveOracle &
BenchmarkExperiment::oracle()
{
    if (!oracle_) {
        obs::PhaseTimer guard = oracleGuard(times_);
        OracleConfig oc;
        oc.historyDepth = config_.historyDepth;
        oc.candidatePool = config_.candidatePool;
        oc.maxSelect = 3;
        oc.mineConditionals = config_.mineConditionals;
        oracle_ = std::make_unique<SelectiveOracle>(trace_, oc);
    }
    return *oracle_;
}

const PaClassifier &
BenchmarkExperiment::classifier()
{
    if (!classifier_) {
        obs::PhaseTimer guard = oracleGuard(times_);
        classifier_ =
            std::make_unique<PaClassifier>(trace_, config_.ifPasHistory);
    }
    return *classifier_;
}

Fig4Row
BenchmarkExperiment::fig4Row()
{
    Fig4Row row;
    row.name = name_;
    const SelectiveOracle &orc = oracle();
    row.selective1 = orc.accuracyPercent(1);
    row.selective2 = orc.accuracyPercent(2);
    row.selective3 = orc.accuracyPercent(3);
    row.ifGshare = ifGshareLedger().accuracyPercent();
    row.gshare = gshareLedger().accuracyPercent();
    return row;
}

Table2Row
BenchmarkExperiment::table2Row()
{
    Table2Row row;
    row.name = name_;
    sim::Ledger selective1 = oracle().toLedger(1);
    row.gshare = gshareLedger().accuracyPercent();
    row.gshareWithCorr =
        sim::bestOfAccuracyPercent(gshareLedger(), selective1);
    row.ifGshare = ifGshareLedger().accuracyPercent();
    row.ifGshareWithCorr =
        sim::bestOfAccuracyPercent(ifGshareLedger(), selective1);
    return row;
}

Fig6Row
BenchmarkExperiment::fig6Row()
{
    Fig6Row row;
    row.name = name_;
    row.fractions = classifier().classFractions();
    row.staticBiasedFraction = classifier().staticBucketBiasFraction();
    return row;
}

Table3Row
BenchmarkExperiment::table3Row()
{
    Table3Row row;
    row.name = name_;
    const PaClassifier &cls = classifier();
    sim::Ledger if_pas = cls.ifPasLedger();
    row.pas = pasLedger().accuracyPercent();
    row.pasWithLoop = cls.loopEnhancedAccuracyPercent(pasLedger());
    row.ifPas = if_pas.accuracyPercent();
    row.ifPasWithLoop = cls.loopEnhancedAccuracyPercent(if_pas);
    return row;
}

BestOfSplit
BenchmarkExperiment::fig7Split()
{
    return bestOfSplit(gshareLedger(), pasLedger(), idealStaticLedgerRef());
}

BestOfSplit
BenchmarkExperiment::fig8Split()
{
    sim::Ledger global = maxLedger(ifGshareLedger(), oracle().toLedger(3));
    sim::Ledger per_address = classifier().bestPaLedger();
    return bestOfSplit(global, per_address, idealStaticLedgerRef());
}

WeightedPercentiles
BenchmarkExperiment::fig9Percentiles()
{
    return accuracyDifference(gshareLedger(), pasLedger());
}

std::vector<std::pair<unsigned, double>>
fig5Series(const trace::Trace &trace, const ExperimentConfig &config,
           const std::vector<unsigned> &depths)
{
    std::vector<std::pair<unsigned, double>> series;
    series.reserve(depths.size());
    for (unsigned depth : depths) {
        OracleConfig oc;
        oc.historyDepth = depth;
        oc.candidatePool = config.candidatePool;
        oc.maxSelect = 3;
        oc.mineConditionals = config.mineConditionals;
        SelectiveOracle oracle(trace, oc);
        series.emplace_back(depth, oracle.accuracyPercent(3));
    }
    return series;
}

} // namespace copra::core
