#include "core/h2p.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "obs/instruments.hpp"
#include "util/logging.hpp"

namespace copra::core {

double
H2pReport::staticFraction() const
{
    return staticBranches
        ? static_cast<double>(branches.size()) / staticBranches
        : 0.0;
}

double
H2pReport::mispredictFraction() const
{
    return totalMispredicts
        ? static_cast<double>(h2pMispredicts) / totalMispredicts
        : 0.0;
}

H2pReport
identifyH2p(const sim::Ledger &ledger, const H2pCriteria &criteria)
{
    H2pReport report;
    report.criteria = criteria;
    report.staticBranches = ledger.staticBranches();
    // copra-lint: allow(unordered-iter) -- collected then sorted with a deterministic tie-break
    for (const auto &[pc, tally] : ledger.table()) {
        report.dynamicBranches += tally.execs;
        uint64_t mispredicts = tally.execs - tally.correct;
        report.totalMispredicts += mispredicts;
        if (tally.execs < criteria.minExecs)
            continue;
        if (tally.accuracy() >= criteria.accuracyThreshold)
            continue;
        report.branches.push_back(
            {pc, tally.execs, mispredicts, tally.accuracy()});
        report.h2pMispredicts += mispredicts;
    }
    std::sort(report.branches.begin(), report.branches.end(),
              [](const H2pBranch &a, const H2pBranch &b) {
                  if (a.mispredicts != b.mispredicts)
                      return a.mispredicts > b.mispredicts;
                  return a.pc < b.pc;
              });
    obs::count(obs::ids().h2pCount, report.branches.size());
    return report;
}

sim::Ledger
bestPerBranchLedger(const std::vector<const sim::Ledger *> &ledgers)
{
    fatalIf(ledgers.empty(), "bestPerBranchLedger needs >= 1 ledger");
    sim::Ledger best;
    // copra-lint: allow(unordered-iter) -- per-key transform into a keyed container; no cross-key order dependence
    for (const auto &[pc, tally] : ledgers.front()->table()) {
        sim::BranchTally winner = tally;
        for (size_t i = 1; i < ledgers.size(); ++i) {
            sim::BranchTally other = ledgers[i]->branch(pc);
            if (other.correct > winner.correct)
                winner = other;
        }
        best.setTally(pc, winner.execs, winner.correct, winner.taken);
    }
    return best;
}

double
MispredictCdf::fractionFromTopPercent(double percent) const
{
    if (points.empty() || totalMispredicts == 0)
        return 0.0;
    auto top = static_cast<size_t>(
        std::ceil(points.size() * percent / 100.0));
    if (top == 0)
        top = 1;
    if (top > points.size())
        top = points.size();
    return points[top - 1].cumulativeFraction;
}

uint64_t
MispredictCdf::branchesForFraction(double fraction) const
{
    if (totalMispredicts == 0)
        return 0;
    for (size_t i = 0; i < points.size(); ++i)
        if (points[i].cumulativeFraction >= fraction)
            return i + 1;
    return points.size();
}

MispredictCdf
mispredictCdf(const sim::Ledger &ledger)
{
    MispredictCdf cdf;
    cdf.points.reserve(ledger.staticBranches());
    // copra-lint: allow(unordered-iter) -- collected then sorted with a deterministic tie-break
    for (const auto &[pc, tally] : ledger.table()) {
        uint64_t mispredicts = tally.execs - tally.correct;
        cdf.points.push_back({pc, mispredicts, 0.0});
        cdf.totalMispredicts += mispredicts;
    }
    std::sort(cdf.points.begin(), cdf.points.end(),
              [](const MispredictCdf::Point &a,
                 const MispredictCdf::Point &b) {
                  if (a.mispredicts != b.mispredicts)
                      return a.mispredicts > b.mispredicts;
                  return a.pc < b.pc;
              });
    uint64_t running = 0;
    for (MispredictCdf::Point &point : cdf.points) {
        running += point.mispredicts;
        point.cumulativeFraction = cdf.totalMispredicts
            ? static_cast<double>(running) / cdf.totalMispredicts
            : 0.0;
    }
    return cdf;
}

H2pStability
h2pStability(const std::vector<H2pReport> &reports)
{
    H2pStability out;
    if (reports.empty()) {
        out.jaccard = 1.0;
        return out;
    }
    std::set<uint64_t> all;
    std::set<uint64_t> common;
    for (const H2pBranch &branch : reports.front().branches)
        common.insert(branch.pc);
    for (const H2pReport &report : reports) {
        std::set<uint64_t> seen;
        for (const H2pBranch &branch : report.branches)
            seen.insert(branch.pc);
        all.insert(seen.begin(), seen.end());
        std::set<uint64_t> kept;
        for (uint64_t pc : common)
            if (seen.count(pc))
                kept.insert(pc);
        common.swap(kept);
    }
    out.unionSize = all.size();
    out.intersectionSize = common.size();
    out.jaccard = all.empty()
        ? 1.0
        : static_cast<double>(common.size()) / all.size();
    return out;
}

} // namespace copra::core
