#include "core/characterize.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "trace/trace_stats.hpp"
#include "workload/frontier.hpp"
#include "workload/profiles.hpp"

namespace copra::core {

namespace {

/** Binary entropy of counts (@p taken of @p total), in bits. */
double
binaryEntropyBits(uint64_t taken, uint64_t total)
{
    if (total == 0 || taken == 0 || taken == total)
        return 0.0;
    double p = static_cast<double>(taken) / static_cast<double>(total);
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

/**
 * Execution-weighted average of per-context binary entropies. Contexts
 * arrive as an unordered map; contributions are summed in key order so
 * the result is bit-stable across platforms and library versions.
 */
double
contextEntropyBits(
    const std::unordered_map<uint64_t, std::array<uint64_t, 2>> &contexts,
    uint64_t total)
{
    if (total == 0)
        return 0.0;
    std::vector<std::pair<uint64_t, std::array<uint64_t, 2>>> sorted(
        contexts.begin(), contexts.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    double bits = 0.0;
    for (const auto &[key, counts] : sorted) {
        uint64_t n = counts[0] + counts[1];
        bits += static_cast<double>(n) / static_cast<double>(total) *
            binaryEntropyBits(counts[1], n);
    }
    return bits;
}

} // namespace

double
WorkloadFingerprint::entropyBits() const
{
    return curve.empty() ? 0.0 : curve.front().globalBits;
}

double
WorkloadFingerprint::globalHistoryGainBits() const
{
    if (curve.empty())
        return 0.0;
    double deepest = curve.front().globalBits;
    for (const HistoryEntropyPoint &point : curve)
        deepest = std::min(deepest, point.globalBits);
    return entropyBits() - deepest;
}

double
WorkloadFingerprint::localHistoryGainBits() const
{
    if (curve.empty())
        return 0.0;
    double deepest = curve.front().localBits;
    for (const HistoryEntropyPoint &point : curve)
        deepest = std::min(deepest, point.localBits);
    return entropyBits() - deepest;
}

double
globalConditionedEntropyBits(const trace::Trace &trace, unsigned depth)
{
    const trace::SoABlocks &soa = trace.soa();
    const uint8_t *kind = soa.kind();
    const uint8_t *taken = soa.taken();
    uint64_t mask = depth >= 64 ? ~uint64_t(0)
                                : (uint64_t(1) << depth) - 1;
    // depth <= 20 keeps the dense table L2-resident; the fingerprint
    // ladder tops out at 16.
    std::vector<std::array<uint64_t, 2>> counts(size_t(1) << depth);
    uint64_t history = 0;
    uint64_t total = 0;
    for (size_t i = 0; i < soa.size(); ++i) {
        if (kind[i] != 0)
            continue;
        ++counts[history & mask][taken[i]];
        history = (history << 1) | taken[i];
        ++total;
    }
    if (total == 0)
        return 0.0;
    double bits = 0.0;
    for (const auto &c : counts) {
        uint64_t n = c[0] + c[1];
        if (n == 0)
            continue;
        bits += static_cast<double>(n) / static_cast<double>(total) *
            binaryEntropyBits(c[1], n);
    }
    return bits;
}

double
localConditionedEntropyBits(const trace::Trace &trace, unsigned depth)
{
    const trace::SoABlocks &soa = trace.soa();
    const uint8_t *kind = soa.kind();
    const uint8_t *taken = soa.taken();
    const uint32_t *static_index = soa.staticIndex();
    uint64_t mask = (uint64_t(1) << depth) - 1;
    std::vector<uint64_t> histories(soa.staticCount(), 0);
    std::unordered_map<uint64_t, std::array<uint64_t, 2>> contexts;
    uint64_t total = 0;
    for (size_t i = 0; i < soa.size(); ++i) {
        if (kind[i] != 0)
            continue;
        uint32_t sidx = static_index[i];
        uint64_t key = (uint64_t(sidx) << depth) | (histories[sidx] & mask);
        ++contexts[key][taken[i]];
        histories[sidx] = (histories[sidx] << 1) | taken[i];
        ++total;
    }
    return contextEntropyBits(contexts, total);
}

std::string
workloadFamily(const std::string &name)
{
    const auto &paper = workload::benchmarkNames();
    if (std::find(paper.begin(), paper.end(), name) != paper.end())
        return "paper";
    if (workload::isFrontierWorkload(name))
        return "frontier";
    return "foreign";
}

WorkloadFingerprint
characterizeTrace(const trace::Trace &trace,
                  const CharacterizeOptions &options)
{
    WorkloadFingerprint fp;
    fp.name = trace.name();
    fp.family = workloadFamily(trace.name());
    fp.seed = trace.seed();
    fp.records = trace.size();
    fp.conditionals = trace.conditionalCount();

    trace::TraceStats stats(trace);
    fp.staticBranches = stats.staticBranches();
    fp.takenRate = stats.dynamicBranches()
        ? static_cast<double>(stats.dynamicTaken()) /
            static_cast<double>(stats.dynamicBranches())
        : 0.0;
    fp.biasedFraction99 = stats.dynamicFractionWithBiasAbove(0.99);

    fp.curve.reserve(options.depths.size());
    for (unsigned depth : options.depths) {
        HistoryEntropyPoint point;
        point.depth = depth;
        point.globalBits = globalConditionedEntropyBits(trace, depth);
        point.localBits = localConditionedEntropyBits(trace, depth);
        fp.curve.push_back(point);
    }

    fp.gshareAccuracyPercent = std::nan("");
    if (options.withPredictor && fp.conditionals > 0) {
        BenchmarkExperiment experiment(trace, options.config);
        const sim::Ledger &ledger = experiment.gshareLedger();
        fp.gshareAccuracyPercent = ledger.accuracyPercent();
        H2pReport h2p = identifyH2p(ledger, options.h2p);
        fp.h2pBranches = h2p.branches.size();
        fp.h2pStaticFraction = h2p.staticFraction();
        fp.h2pMispredictFraction = h2p.mispredictFraction();
    }
    return fp;
}

obs::Json
fingerprintToJson(const WorkloadFingerprint &fp)
{
    auto number = [](double v) {
        return std::isnan(v) ? obs::Json::makeNull()
                             : obs::Json::makeNumber(v);
    };
    obs::Json out = obs::Json::makeObject();
    out.set("name", obs::Json::makeString(fp.name));
    out.set("family", obs::Json::makeString(fp.family));
    out.set("seed", obs::Json::makeNumber(double(fp.seed)));
    out.set("records", obs::Json::makeNumber(double(fp.records)));
    out.set("conditionals",
            obs::Json::makeNumber(double(fp.conditionals)));
    out.set("static_branches",
            obs::Json::makeNumber(double(fp.staticBranches)));
    out.set("taken_rate", number(fp.takenRate));
    out.set("biased_fraction_99", number(fp.biasedFraction99));
    obs::Json curve = obs::Json::makeArray();
    for (const HistoryEntropyPoint &point : fp.curve) {
        obs::Json entry = obs::Json::makeObject();
        entry.set("depth", obs::Json::makeNumber(double(point.depth)));
        entry.set("global_bits", number(point.globalBits));
        entry.set("local_bits", number(point.localBits));
        curve.push(std::move(entry));
    }
    out.set("history_entropy_bits", std::move(curve));
    out.set("global_history_gain_bits", number(fp.globalHistoryGainBits()));
    out.set("local_history_gain_bits", number(fp.localHistoryGainBits()));
    out.set("gshare_accuracy_percent", number(fp.gshareAccuracyPercent));
    out.set("h2p_branches", obs::Json::makeNumber(double(fp.h2pBranches)));
    out.set("h2p_static_fraction", number(fp.h2pStaticFraction));
    out.set("h2p_mispredict_fraction", number(fp.h2pMispredictFraction));
    return out;
}

obs::Json
fingerprintsToJson(const std::vector<WorkloadFingerprint> &fps)
{
    obs::Json out = obs::Json::makeObject();
    out.set("schema_version", obs::Json::makeNumber(1));
    out.set("schema",
            obs::Json::makeString("docs/schema/fingerprint.schema.json"));
    obs::Json list = obs::Json::makeArray();
    for (const WorkloadFingerprint &fp : fps)
        list.push(fingerprintToJson(fp));
    out.set("fingerprints", std::move(list));
    return out;
}

std::string
renderFingerprintTable(const std::vector<WorkloadFingerprint> &fps)
{
    std::string out;
    out += "| workload | family | static | taken | >99% biased "
           "| H(0) | H(4) g/l | H(16) g/l | gshare % | H2P static "
           "| H2P misp |\n";
    out += "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n";
    auto point = [](const WorkloadFingerprint &fp,
                    unsigned depth) -> const HistoryEntropyPoint * {
        for (const HistoryEntropyPoint &p : fp.curve)
            if (p.depth == depth)
                return &p;
        return nullptr;
    };
    for (const WorkloadFingerprint &fp : fps) {
        char row[512];
        const HistoryEntropyPoint *h4 = point(fp, 4);
        const HistoryEntropyPoint *h16 = point(fp, 16);
        char gshare[32];
        if (std::isnan(fp.gshareAccuracyPercent))
            std::snprintf(gshare, sizeof(gshare), "n/a");
        else
            std::snprintf(gshare, sizeof(gshare), "%.2f",
                          fp.gshareAccuracyPercent);
        std::snprintf(
            row, sizeof(row),
            "| %s | %s | %llu | %.3f | %.3f | %.3f | %.3f/%.3f "
            "| %.3f/%.3f | %s | %.3f | %.3f |\n",
            fp.name.c_str(), fp.family.c_str(),
            static_cast<unsigned long long>(fp.staticBranches),
            fp.takenRate, fp.biasedFraction99, fp.entropyBits(),
            h4 ? h4->globalBits : 0.0, h4 ? h4->localBits : 0.0,
            h16 ? h16->globalBits : 0.0, h16 ? h16->localBits : 0.0,
            gshare, fp.h2pStaticFraction, fp.h2pMispredictFraction);
        out += row;
    }
    return out;
}

std::string
renderWorkloadsDoc(const std::vector<WorkloadFingerprint> &fps,
                   uint64_t branches)
{
    std::string out;
    out +=
        "# Workloads\n"
        "\n"
        "Generated by `copra_characterize --doc-workloads`; the\n"
        "`workloads_doc_drift` ctest gate fails when this file drifts\n"
        "from the workload registry or the fingerprint pipeline.\n"
        "Regenerate with:\n"
        "\n"
        "    build/tools/copra_characterize --doc-workloads > "
        "docs/WORKLOADS.md\n"
        "\n"
        "copra analyses run over `copra::trace::Trace` objects. Three "
        "ways to get\none:\n"
        "\n"
        "## 1. The calibrated suite\n"
        "\n"
        "```cpp\n"
        "auto trace = copra::workload::makeBenchmarkTrace(\"gcc\", "
        "2'000'000, /*seed=*/0);\n"
        "```\n"
        "\n"
        "Eight profiles (`compress`…`xlisp`) calibrated against the "
        "paper's\naccuracy fingerprint (see `src/workload/profiles.cc` "
        "for every knob and\nthe calibration notes), plus the three "
        "frontier families of\n`src/workload/frontier.hpp` covering "
        "behaviours the paper never\nmeasured:\n"
        "\n"
        "- **`interp`** — an interpreter/VM dispatch loop: a small "
        "Markov-driven\n  bytecode program whose indirect dispatch is "
        "lowered to else-if\n  compare chains, so the opcode sequence "
        "becomes a correlated run of\n  conditional outcomes (plus "
        "biased handler guards and operand-driven\n  micro-loops).\n"
        "- **`datadep`** — branches over a generated value stream "
        "that alternates\n  between sorted runs, bounded random walks, "
        "and uncorrelated noise:\n  the same static branches flip "
        "between trivially predictable and\n  irreducibly random as the "
        "data regime changes.\n"
        "- **`nestloop`** — long-period nested-loop shapes: "
        "triangular nests with\n  trip counts growing past every "
        "tracked history window, co-prime\n  period-48/period-37 "
        "counters (combined period 1776), and a\n  period-127 pattern "
        "branch.\n"
        "\n"
        "Seed 0 selects each workload's canonical seed, so results are\n"
        "reproducible across machines; any other seed re-executes the "
        "same\nprogram with fresh data. `makeBenchmarkTrace()` "
        "dispatches every suite\nname, frontier families included.\n"
        "\n"
        "`makeBenchmarkTrace()` always generates; the experiment "
        "engine\n(`core::BenchmarkExperiment`) additionally memoizes "
        "generated traces\non disk through `trace::TraceCache` "
        "(`$COPRA_CACHE_DIR`, default\n`.copra-cache/`), keyed by "
        "(benchmark, branches, seed, trace format\nversion), so "
        "re-running a bench skips generation entirely. Cache\n"
        "behaviour is observable as the `trace.cache.*` telemetry "
        "instruments\n(docs/METRICS.md) when metrics are enabled, and "
        "`--no-trace-cache`\nbypasses it.\n"
        "\n"
        "## 2. A custom profile\n"
        "\n"
        "A `BenchmarkProfile` (`src/workload/builder.hpp`) describes a "
        "workload\nstatistically; `buildProgram()` expands it "
        "deterministically into a\nsynthetic program whose execution "
        "emits the trace:\n"
        "\n"
        "```cpp\n"
        "copra::workload::BenchmarkProfile p;\n"
        "p.name = \"mydb\";\n"
        "p.buildSeed = 42;\n"
        "p.numVars = 120;                 // condition pool\n"
        "p.fracVarStrongBias = 0.7;       // mostly assertion-like "
        "checks\n"
        "p.targetStaticBranches = 3000;\n"
        "p.wChain = 2.0;                  // else-if dispatch chains\n"
        "p.chainResampleProb = 0.5;       // fresh data per chain "
        "visit\n"
        "p.tripLo = 4; p.tripHi = 12;     // loop trip counts\n"
        "auto program = copra::workload::buildProgram(p);\n"
        "auto trace = program.run(\"mydb\", 1'000'000, /*seed=*/7);\n"
        "```\n"
        "\n"
        "Knob guidance, learned during calibration (DESIGN.md §2):\n"
        "\n"
        "- **Bias bands** (`strongBias*`, `moderateBias*`) set the "
        "static\n  predictability floor. These are *level* knobs: "
        "changing them never\n  reshuffles the generated program "
        "structure, so you can tune accuracy\n  without changing the "
        "branch population (the builder consumes a fixed\n  number of "
        "RNG draws per decision).\n"
        "- **`chainResampleProb` + `chainFollowProb`** control "
        "global-vs-local\n  predictability: freshly resampled chain "
        "variables make branches\n  unpredictable from their own "
        "history while staying correlated inside\n  the window — "
        "this is what makes gshare beat PAs.\n"
        "- **Loop trips vs history lengths**: fixed trips in `(h_PAs, "
        "h_gshare]`\n  (e.g. 13–15 against PAs h=12 / gshare h=16) "
        "are predictable globally\n  but not per-address; "
        "uniform-random trips hurt everyone equally.\n"
        "- **`callSkew`** concentrates execution in few hot functions "
        "(Zipf-like),\n  which controls table pressure realism.\n"
        "- **Beware power-of-two layouts**: function bases are "
        "deliberately\n  spaced by a non-power-of-two stride; aligned "
        "layouts alias every\n  same-offset branch across functions in "
        "every table predictor.\n"
        "\n"
        "## 3. External traces\n"
        "\n"
        "`copra_ingest` validates and normalizes foreign traces (text, "
        "CSV, or\nCBP-style binary — grammars and failure semantics "
        "in docs/TRACES.md)\ninto cache-v2 files, recording provenance "
        "in the run manifest:\n"
        "\n"
        "```\n"
        "build/tools/copra_ingest --in theirs.csv --out mine.trc\n"
        "build/tools/copra_characterize --trace mine.trc\n"
        "```\n"
        "\n"
        "The native binary and text formats also round-trip through\n"
        "`src/trace/trace_io.hpp` directly; load with `loadBinary()` /\n"
        "`readText()` and pass the trace to `core::BenchmarkExperiment`"
        "\n(see `examples/paper_report.cpp --load`).\n"
        "\n"
        "## Exactly-known patterns for tests\n"
        "\n"
        "`src/workload/patterns.hpp` emits canonical single-behaviour "
        "traces\n(for-type and while-type loops, fixed periodic and "
        "block patterns,\nbiased coins, the paper's Fig. 1a and Fig. 2 "
        "correlation shapes) plus\n`interleave()` to combine them — "
        "the building blocks of most unit tests\nin `tests/`.\n"
        "\n"
        "## Fingerprints\n"
        "\n";
    char budget[512];
    std::snprintf(
        budget, sizeof(budget),
        "Computed by `copra_characterize` over the full suite at the\n"
        "pinned doc budget of %llu conditional branches, seed 0.\n"
        "`H(k)` is the conditional-outcome entropy (bits/branch) under "
        "a\nk-bit global (g) or per-address (l) outcome history; "
        "`gshare %%` is\nthe reference gshare(h=16) accuracy and the "
        "H2P columns are the\nLin-Tarsa hard-branch set it leaves "
        "behind (static fraction /\nmisprediction share).\n\n",
        static_cast<unsigned long long>(branches));
    out += budget;
    out += renderFingerprintTable(fps);
    return out;
}

} // namespace copra::core
