/**
 * @file
 * Correlation candidate mining: the first pass of the selective-history
 * oracle (§3.4). For every static branch X it accumulates, per tagged
 * prior-instance t, the joint statistics of (state of t, outcome of X),
 * and scores candidates by the information the 3-valued state of t
 * carries about X's direction.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/tagging.hpp"
#include "trace/trace.hpp"

namespace copra::core {

/** Joint counts of one candidate tag against one current branch. */
struct Contingency
{
    // present[tag taken][X taken]; not-in-path counts are derived from
    // the branch's execution totals.
    uint32_t present[2][2] = {{0, 0}, {0, 0}};

    uint32_t presentTotal() const
    {
        return present[0][0] + present[0][1] + present[1][0] +
            present[1][1];
    }
};

/** A scored correlation candidate for one static branch. */
struct ScoredCandidate
{
    Tag tag;
    double gain = 0.0; //!< information gain about the branch outcome
};

/**
 * Per-static-branch candidate statistics accumulated during mining.
 * The per-branch tag map is capped to bound memory on very branchy
 * workloads; once the cap is hit, new tags are ignored (existing tags
 * keep accumulating) and `capped` is set.
 */
struct BranchCandidates
{
    uint64_t execsTaken = 0;
    uint64_t execsNotTaken = 0;
    bool capped = false;
    std::unordered_map<Tag, Contingency> tags;

    uint64_t execs() const { return execsTaken + execsNotTaken; }
};

/**
 * Mining pass over a trace. Tracks an n-deep HistoryWindow and, for each
 * dynamic conditional branch, charges every tagged instance in the
 * window against the branch's outcome.
 */
class CandidateMiner
{
  public:
    /**
     * @param depth History window depth n.
     * @param per_branch_cap Maximum distinct tags tracked per branch.
     */
    explicit CandidateMiner(unsigned depth, size_t per_branch_cap = 4096);

    /**
     * Mine the first @p max_conditionals conditional branches of
     * @p trace (0 = the whole trace). May be called once per miner.
     */
    void mine(const trace::Trace &trace, uint64_t max_conditionals = 0);

    /**
     * The top @p k candidates for @p pc by information gain, best first.
     * Fewer than k are returned when the branch has fewer distinct
     * correlated instances.
     */
    std::vector<ScoredCandidate> topCandidates(uint64_t pc,
                                               unsigned k) const;

    /** Mined statistics for @p pc (nullptr if the branch never ran). */
    const BranchCandidates *branch(uint64_t pc) const;

    /** All mined branches. */
    const std::unordered_map<uint64_t, BranchCandidates> &branches() const
    {
        return table_;
    }

    /**
     * Information gain of a candidate's 3-valued state about the branch
     * outcome (in bits). Exposed for tests.
     */
    static double informationGain(const BranchCandidates &branch,
                                  const Contingency &tag);

  private:
    unsigned depth_;
    size_t perBranchCap_;
    bool mined_ = false;
    std::unordered_map<uint64_t, BranchCandidates> table_;
};

} // namespace copra::core

