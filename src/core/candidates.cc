#include "core/candidates.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace copra::core {

namespace {

double
entropyOf(double p)
{
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

} // namespace

CandidateMiner::CandidateMiner(unsigned depth, size_t per_branch_cap)
    : depth_(depth), perBranchCap_(per_branch_cap)
{
    panicIf(per_branch_cap == 0, "candidate cap must be positive");
}

void
CandidateMiner::mine(const trace::Trace &trace, uint64_t max_conditionals)
{
    panicIf(mined_, "CandidateMiner::mine called twice");
    mined_ = true;

    HistoryWindow window(depth_);
    std::vector<TagState> collected;
    uint64_t seen = 0;

    for (const auto &rec : trace.records()) {
        if (!rec.isConditional()) {
            window.push(rec);
            continue;
        }
        if (max_conditionals != 0 && seen >= max_conditionals)
            break;
        ++seen;

        window.collect(collected);
        BranchCandidates &bc = table_[rec.pc];
        if (rec.taken)
            ++bc.execsTaken;
        else
            ++bc.execsNotTaken;
        for (const TagState &ts : collected) {
            auto it = bc.tags.find(ts.tag);
            if (it == bc.tags.end()) {
                if (bc.tags.size() >= perBranchCap_) {
                    bc.capped = true;
                    continue;
                }
                it = bc.tags.emplace(ts.tag, Contingency{}).first;
            }
            ++it->second.present[ts.taken ? 1 : 0][rec.taken ? 1 : 0];
        }
        window.push(rec);
    }
}

double
CandidateMiner::informationGain(const BranchCandidates &branch,
                                const Contingency &tag)
{
    double total = static_cast<double>(branch.execs());
    if (total == 0.0)
        return 0.0;

    double base = entropyOf(static_cast<double>(branch.execsTaken) / total);

    // Three states: not-taken present, taken present, not-in-path.
    double cond = 0.0;
    uint64_t nip_taken = branch.execsTaken;
    uint64_t nip_not = branch.execsNotTaken;
    for (int dir = 0; dir < 2; ++dir) {
        uint64_t with_taken = tag.present[dir][1];
        uint64_t with_not = tag.present[dir][0];
        nip_taken -= with_taken;
        nip_not -= with_not;
        uint64_t n = with_taken + with_not;
        if (n > 0) {
            cond += (n / total) *
                entropyOf(static_cast<double>(with_taken) / n);
        }
    }
    uint64_t n_nip = nip_taken + nip_not;
    if (n_nip > 0) {
        cond += (n_nip / total) *
            entropyOf(static_cast<double>(nip_taken) / n_nip);
    }
    return base - cond;
}

std::vector<ScoredCandidate>
CandidateMiner::topCandidates(uint64_t pc, unsigned k) const
{
    std::vector<ScoredCandidate> scored;
    auto it = table_.find(pc);
    if (it == table_.end())
        return scored;
    const BranchCandidates &bc = it->second;

    scored.reserve(bc.tags.size());
    // copra-lint: allow(unordered-iter) -- collected then sorted with a deterministic tie-break
    for (const auto &[tag, contingency] : bc.tags)
        scored.push_back({tag, informationGain(bc, contingency)});

    // Deterministic order: gain descending, then packed tag ascending so
    // equal-gain candidates do not depend on hash iteration order.
    std::sort(scored.begin(), scored.end(),
              [](const ScoredCandidate &a, const ScoredCandidate &b) {
                  if (a.gain != b.gain)
                      return a.gain > b.gain;
                  return a.tag.packed < b.tag.packed;
              });
    if (scored.size() > k)
        scored.resize(k);
    return scored;
}

const BranchCandidates *
CandidateMiner::branch(uint64_t pc) const
{
    auto it = table_.find(pc);
    return it == table_.end() ? nullptr : &it->second;
}

} // namespace copra::core
