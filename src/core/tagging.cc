#include "core/tagging.hpp"

#include "util/logging.hpp"

namespace copra::core {

HistoryWindow::HistoryWindow(unsigned depth)
    : depth_(depth)
{
    panicIf(depth == 0 || depth > 64, "history window depth must be 1..64");
    ring_.resize(depth);
}

void
HistoryWindow::push(const trace::BranchRecord &rec) noexcept
{
    switch (rec.kind) {
      case trace::BranchKind::Conditional:
        ring_[head_] = {rec.pc, backwardEpoch_, rec.taken};
        head_ = (head_ + 1) % depth_;
        if (count_ < depth_)
            ++count_;
        if (rec.taken && rec.isBackward())
            ++backwardEpoch_;
        break;
      case trace::BranchKind::Jump:
        if (rec.isBackward())
            ++backwardEpoch_;
        break;
      case trace::BranchKind::Call:
      case trace::BranchKind::Return:
        // Calls and returns are not iteration boundaries.
        break;
    }
}

void
HistoryWindow::collect(std::vector<TagState> &out) const noexcept
{
    out.clear();
    if (count_ == 0)
        return;
    // Analysis-side tagging window for the selective predictor:
    // capacity stabilizes after the first few collect() calls and the
    // path is outside the runtime hot gates.
    // copra-lint: allow(hot-alloc) -- analysis-side, capacity stabilizes
    out.reserve(2 * count_);

    // Newest-first walk of the ring. For method A, the occurrence index
    // of an entry is how many newer entries share its pc. For method B,
    // the instance number is the backward-transfer count since the entry
    // executed; only the newest entry per (pc, num) is reported.
    for (unsigned i = 0; i < count_; ++i) {
        unsigned slot = (head_ + depth_ - 1 - i) % depth_;
        const Entry &entry = ring_[slot];

        unsigned occurrence = 0;
        for (unsigned j = 0; j < i; ++j) {
            unsigned newer = (head_ + depth_ - 1 - j) % depth_;
            if (ring_[newer].pc == entry.pc)
                ++occurrence;
        }
        if (occurrence <= 0xff) {
            // copra-lint: allow(hot-alloc) -- within the reserve() above
            out.push_back({Tag(entry.pc, TagMethod::Occurrence,
                               static_cast<uint8_t>(occurrence)),
                           entry.taken});
        }

        uint64_t back = backwardEpoch_ - entry.epoch;
        if (back <= 0xff) {
            Tag tag_b(entry.pc, TagMethod::BackwardCount,
                      static_cast<uint8_t>(back));
            // Deduplicate method-B tags, keeping the most recent (the
            // first produced in this newest-first walk).
            bool duplicate = false;
            for (const TagState &prior : out) {
                if (prior.tag == tag_b) {
                    duplicate = true;
                    break;
                }
            }
            if (!duplicate)
                // copra-lint: allow(hot-alloc) -- within the reserve() above
                out.push_back({tag_b, entry.taken});
        }
    }
}

void
HistoryWindow::clear()
{
    count_ = 0;
    head_ = 0;
    backwardEpoch_ = 0;
}

} // namespace copra::core
