#include "core/pa_class.hpp"

#include "predictor/block_pattern.hpp"
#include "predictor/fixed_pattern.hpp"
#include "predictor/interference_free.hpp"
#include "predictor/loop_predictor.hpp"
#include "util/logging.hpp"

namespace copra::core {

const char *
paClassName(PaClass cls)
{
    switch (cls) {
      case PaClass::IdealStatic:
        return "ideal-static";
      case PaClass::Loop:
        return "loop";
      case PaClass::Repeating:
        return "repeating";
      case PaClass::NonRepeating:
        return "non-repeating";
    }
    return "unknown";
}

PaClassifier::PaClassifier(const trace::Trace &trace, unsigned ifpas_history)
    : ifPasHistory_(ifpas_history)
{
    predictor::LoopPredictor loop;
    predictor::BlockPatternPredictor block;
    predictor::FixedPatternBank fixed;
    predictor::IfPas ifpas(ifpas_history);

    for (const auto &rec : trace.records()) {
        if (!rec.isConditional())
            continue;
        PaBranchResult &res = table_[rec.pc];
        res.pc = rec.pc;
        ++res.execs;
        if (rec.taken)
            ++res.taken;

        if (loop.predict(rec) == rec.taken)
            ++res.loopCorrect;
        loop.update(rec, rec.taken);

        if (block.predict(rec) == rec.taken)
            ++res.blockCorrect;
        block.update(rec, rec.taken);

        if (ifpas.predict(rec) == rec.taken)
            ++res.ifPasCorrect;
        ifpas.update(rec, rec.taken);

        fixed.observe(rec.pc, rec.taken);
    }

    // copra-lint: allow(unordered-iter) -- per-key transform into a keyed container; no cross-key order dependence
    for (auto &[pc, res] : table_) {
        res.fixedCorrect = fixed.bestCorrect(pc);
        res.bestFixedK = fixed.bestK(pc);
        uint64_t not_taken = res.execs - res.taken;
        res.staticCorrect = res.taken > not_taken ? res.taken : not_taken;

        // Classify: ideal static wins ties; then loop > repeating >
        // non-repeating.
        if (res.staticCorrect >= res.bestDynamicCorrect()) {
            res.cls = PaClass::IdealStatic;
        } else if (res.loopCorrect >= res.repeatingCorrect() &&
                   res.loopCorrect >= res.ifPasCorrect) {
            res.cls = PaClass::Loop;
        } else if (res.repeatingCorrect() >= res.ifPasCorrect) {
            res.cls = PaClass::Repeating;
        } else {
            res.cls = PaClass::NonRepeating;
        }
    }
}

const PaBranchResult *
PaClassifier::branch(uint64_t pc) const
{
    auto it = table_.find(pc);
    return it == table_.end() ? nullptr : &it->second;
}

std::array<double, 4>
PaClassifier::classFractions() const
{
    std::array<uint64_t, 4> execs{};
    uint64_t total = 0;
    // copra-lint: allow(unordered-iter) -- commutative integer aggregation; result is order-independent
    for (const auto &[pc, res] : table_) {
        execs[static_cast<size_t>(res.cls)] += res.execs;
        total += res.execs;
    }
    std::array<double, 4> fractions{};
    if (total == 0)
        return fractions;
    for (size_t i = 0; i < 4; ++i)
        fractions[i] = static_cast<double>(execs[i])
            / static_cast<double>(total);
    return fractions;
}

double
PaClassifier::staticBucketBiasFraction(double threshold) const
{
    uint64_t bucket = 0;
    uint64_t biased = 0;
    // copra-lint: allow(unordered-iter) -- commutative integer aggregation; result is order-independent
    for (const auto &[pc, res] : table_) {
        if (res.cls != PaClass::IdealStatic)
            continue;
        bucket += res.execs;
        double bias = res.execs
            ? static_cast<double>(res.staticCorrect) / res.execs : 0.0;
        if (bias > threshold)
            biased += res.execs;
    }
    if (bucket == 0)
        return 0.0;
    return static_cast<double>(biased) / static_cast<double>(bucket);
}

sim::Ledger
PaClassifier::loopLedger() const
{
    sim::Ledger ledger;
    // copra-lint: allow(unordered-iter) -- per-key transform into a keyed container; no cross-key order dependence
    for (const auto &[pc, res] : table_)
        ledger.setTally(pc, res.execs, res.loopCorrect, res.taken);
    return ledger;
}

sim::Ledger
PaClassifier::ifPasLedger() const
{
    sim::Ledger ledger;
    // copra-lint: allow(unordered-iter) -- per-key transform into a keyed container; no cross-key order dependence
    for (const auto &[pc, res] : table_)
        ledger.setTally(pc, res.execs, res.ifPasCorrect, res.taken);
    return ledger;
}

sim::Ledger
PaClassifier::bestPaLedger() const
{
    sim::Ledger ledger;
    // copra-lint: allow(unordered-iter) -- per-key transform into a keyed container; no cross-key order dependence
    for (const auto &[pc, res] : table_)
        ledger.setTally(pc, res.execs, res.bestDynamicCorrect(), res.taken);
    return ledger;
}

double
PaClassifier::loopEnhancedAccuracyPercent(const sim::Ledger &base) const
{
    uint64_t total = 0;
    uint64_t correct = 0;
    // copra-lint: allow(unordered-iter) -- commutative integer aggregation; result is order-independent
    for (const auto &[pc, res] : table_) {
        sim::BranchTally tally = base.branch(pc);
        panicIf(tally.execs != res.execs,
                "loopEnhancedAccuracyPercent: base ledger covers a "
                "different trace");
        total += res.execs;
        correct += res.cls == PaClass::Loop ? res.loopCorrect
                                            : tally.correct;
    }
    if (total == 0)
        return 0.0;
    return 100.0 * static_cast<double>(correct)
        / static_cast<double>(total);
}

} // namespace copra::core
