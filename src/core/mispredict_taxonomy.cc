#include "core/mispredict_taxonomy.hpp"

#include <unordered_map>
#include <vector>

#include "obs/instruments.hpp"
#include "obs/registry.hpp"
#include "util/logging.hpp"
#include "util/sat_counter.hpp"
#include "util/shift_register.hpp"

namespace copra::core {

const char *
mispredictCauseName(MispredictCause cause)
{
    switch (cause) {
      case MispredictCause::Cold:
        return "cold";
      case MispredictCause::Interference:
        return "interference";
      case MispredictCause::Training:
        return "training";
      case MispredictCause::Noise:
        return "noise";
    }
    return "unknown";
}

MispredictBreakdown
classifyMispredicts(const trace::Trace &trace, unsigned history_bits)
{
    fatalIf(history_bits == 0 || history_bits > 26,
            "taxonomy history bits must be in 1..26");

    const size_t pht_size = size_t(1) << history_bits;
    const uint64_t hist_mask = (uint64_t(1) << history_bits) - 1;
    constexpr uint64_t kNoWriter = ~uint64_t(0);

    std::vector<Counter2> pht(pht_size);
    std::vector<uint64_t> last_writer(pht_size, kNoWriter);

    struct ContextStats
    {
        uint32_t taken = 0;
        uint32_t total = 0;
    };
    std::unordered_map<uint64_t, ContextStats> contexts;
    contexts.reserve(1 << 16);

    HistoryRegister history(history_bits);
    MispredictBreakdown breakdown;

    for (const auto &rec : trace.records()) {
        if (!rec.isConditional())
            continue;
        uint64_t hist = history.value() & hist_mask;
        size_t index = (hist ^ (rec.pc >> 2)) & hist_mask;
        // Exact context identity, as in the interference-free predictor.
        uint64_t context = ((rec.pc ^ (rec.pc >> 32)) << 32) ^ hist;

        bool predicted = pht[index].taken();
        bool correct = predicted == rec.taken;
        ++breakdown.dynamicBranches;
        if (correct) {
            ++breakdown.correct;
        } else {
            MispredictCause cause;
            if (last_writer[index] == kNoWriter) {
                cause = MispredictCause::Cold;
            } else if (last_writer[index] != context) {
                cause = MispredictCause::Interference;
            } else {
                // Our own context last trained this counter: did the
                // branch deviate from its learned behaviour, or had the
                // counter simply not converged yet?
                const ContextStats &stats = contexts[context];
                bool majority = 2 * stats.taken >= stats.total;
                cause = rec.taken == majority ? MispredictCause::Training
                                              : MispredictCause::Noise;
            }
            ++breakdown.byCause[static_cast<size_t>(cause)];
        }

        ContextStats &stats = contexts[context];
        ++stats.total;
        if (rec.taken)
            ++stats.taken;
        pht[index].update(rec.taken);
        last_writer[index] = context;
        history.push(rec.taken);
    }

    // Batched outside the per-branch loop: one counter add per cause
    // per classified trace.
    auto causeCount = [&breakdown](MispredictCause cause) {
        return breakdown.byCause[static_cast<size_t>(cause)];
    };
    obs::count(obs::ids().simTaxonomyCold,
               causeCount(MispredictCause::Cold));
    obs::count(obs::ids().simTaxonomyInterference,
               causeCount(MispredictCause::Interference));
    obs::count(obs::ids().simTaxonomyTraining,
               causeCount(MispredictCause::Training));
    obs::count(obs::ids().simTaxonomyNoise,
               causeCount(MispredictCause::Noise));
    return breakdown;
}

} // namespace copra::core
