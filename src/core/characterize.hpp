/**
 * @file
 * Workload fingerprinting: the quantitative identity of one branch
 * trace, after "Workload Characterization for Branch Predictability"
 * (PAPERS.md). A fingerprint reduces a trace — synthetic or ingested —
 * to the population measures that explain predictor rankings:
 *
 *  - footprint: records, dynamic conditionals, static branch count;
 *  - bias: dynamic taken rate and the paper's ">99% biased" fraction;
 *  - history sensitivity: the conditional-outcome entropy H(k) under a
 *    k-bit global history and under a k-bit per-address history, for a
 *    ladder of depths. H(0) is the unconditioned outcome entropy; the
 *    drop from H(0) to min_k H(k) is the predictability that history
 *    correlation can in principle recover (the paper's §4 decomposition
 *    in information-theoretic form);
 *  - realized accuracy: a reference gshare run and the Lin-Tarsa H2P
 *    set it leaves behind (core/h2p.hpp).
 *
 * The same fingerprint drives three surfaces: `copra_characterize`
 * prints it per workload, emits it as schema'd JSON
 * (docs/schema/fingerprint.schema.json), and regenerates the
 * drift-gated fingerprint table of docs/WORKLOADS.md.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/h2p.hpp"
#include "obs/json.hpp"
#include "trace/trace.hpp"

namespace copra::core {

/** Outcome entropy (bits/branch) conditioned on @p depth history bits. */
struct HistoryEntropyPoint
{
    unsigned depth = 0;
    double globalBits = 0.0; //!< conditioned on global outcome history
    double localBits = 0.0;  //!< conditioned on (pc, local history)
};

/** Knobs for one fingerprint computation. */
struct CharacterizeOptions
{
    /** History depths of the H(k) curve, in ascending order. */
    std::vector<unsigned> depths = {0, 1, 2, 4, 8, 12, 16};

    /** Run the reference predictor + H2P analysis (the expensive part;
     * off for entropy-only passes). */
    bool withPredictor = true;

    /** Reference-run parameters (gshare geometry, H2P criteria). */
    ExperimentConfig config;
    H2pCriteria h2p;
};

/** The quantitative identity of one workload trace. */
struct WorkloadFingerprint
{
    std::string name;
    std::string family; //!< "paper", "frontier", or "foreign"
    uint64_t seed = 0;

    uint64_t records = 0;          //!< all control-transfer kinds
    uint64_t conditionals = 0;     //!< dynamic conditional branches
    uint64_t staticBranches = 0;   //!< distinct conditional pcs
    double takenRate = 0.0;        //!< dynamic taken fraction
    double biasedFraction99 = 0.0; //!< dynamic fraction on >99%-biased pcs

    /** H(k) ladder, one point per CharacterizeOptions::depths entry. */
    std::vector<HistoryEntropyPoint> curve;

    /** Reference gshare accuracy (%); NaN when the trace has no
     * conditionals or withPredictor was off. */
    double gshareAccuracyPercent = 0.0;

    /** Lin-Tarsa H2P set under the reference gshare run. */
    uint64_t h2pBranches = 0;
    double h2pStaticFraction = 0.0;
    double h2pMispredictFraction = 0.0;

    /** Unconditioned outcome entropy H(0), bits/branch. */
    double entropyBits() const;

    /** H(0) minus the deepest global point: bits a global-history
     * correlator can in principle remove. */
    double globalHistoryGainBits() const;

    /** H(0) minus the deepest local point: bits per-address history
     * can in principle remove. */
    double localHistoryGainBits() const;
};

/**
 * Outcome entropy of @p trace's conditional branches under a
 * @p depth-bit global outcome history, in bits per branch. Contexts
 * are the 2^depth recent-outcome patterns; the result is the
 * execution-weighted average of the per-context binary entropies.
 */
double globalConditionedEntropyBits(const trace::Trace &trace,
                                    unsigned depth);

/**
 * Outcome entropy under a @p depth-bit *per-address* history: contexts
 * are (static branch, local outcome pattern) pairs. depth 0 gives the
 * execution-weighted per-branch outcome entropy.
 */
double localConditionedEntropyBits(const trace::Trace &trace,
                                   unsigned depth);

/** Compute the fingerprint of @p trace. */
WorkloadFingerprint characterizeTrace(const trace::Trace &trace,
                                      const CharacterizeOptions &options);

/** Fingerprint as a JSON object (schema: fingerprint.schema.json;
 * NaN-valued measures are emitted as null). */
obs::Json fingerprintToJson(const WorkloadFingerprint &fp);

/** Wrap fingerprints in the schema'd top-level document. */
obs::Json fingerprintsToJson(
    const std::vector<WorkloadFingerprint> &fps);

/**
 * Render the full docs/WORKLOADS.md: authoring guidance plus the
 * fingerprint table for @p fps (one row per suite workload at the
 * pinned doc budget — see `copra_characterize --doc-workloads`).
 */
std::string renderWorkloadsDoc(
    const std::vector<WorkloadFingerprint> &fps, uint64_t branches);

/** Fingerprint table rows only (used by tests and the doc renderer). */
std::string renderFingerprintTable(
    const std::vector<WorkloadFingerprint> &fps);

/** Family label for a workload name: "paper" for the suite's eight,
 * "frontier" for the frontier families, otherwise "foreign". */
std::string workloadFamily(const std::string &name);

} // namespace copra::core
