/**
 * @file
 * Hard-to-predict (H2P) branch analysis, after Lin & Tarsa's "Branch
 * Prediction Is Not a Solved Problem" (PAPERS.md): the mispredictions
 * that survive a strong predictor concentrate in a small set of static
 * branches that execute often and still miss. This module identifies
 * them, builds per-static-branch misprediction CDFs, and measures how
 * stable the H2P set is across workload seeds — the modern-roster
 * extension of the paper's per-branch "why" analysis (EXPERIMENTS.md).
 *
 * Everything here is a pure function of ledgers (sim/ledger.hpp), so
 * the same analysis applies to any predictor in the roster, including
 * the per-branch best-of combination that realizes "the best predictor
 * we have" from the Lin-Tarsa criterion.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/ledger.hpp"

namespace copra::core {

/** The Lin-Tarsa H2P membership criterion. */
struct H2pCriteria
{
    uint64_t minExecs = 1000;        //!< dynamic executions floor
    double accuracyThreshold = 0.99; //!< H2P iff accuracy < threshold
};

/** One hard-to-predict static branch. */
struct H2pBranch
{
    uint64_t pc = 0;
    uint64_t execs = 0;
    uint64_t mispredicts = 0;
    double accuracy = 0.0; //!< in [0, 1]
};

/** The H2P set of one (workload, predictor) ledger. */
struct H2pReport
{
    H2pCriteria criteria;
    /** H2P branches, highest misprediction contribution first
     * (ties broken by ascending pc). */
    std::vector<H2pBranch> branches;
    uint64_t staticBranches = 0;   //!< all static branches in the ledger
    uint64_t dynamicBranches = 0;  //!< all dynamic executions
    uint64_t totalMispredicts = 0; //!< all mispredictions
    uint64_t h2pMispredicts = 0;   //!< mispredictions on H2P branches

    /** Fraction of static branches that are H2P (0 when empty). */
    double staticFraction() const;

    /** Fraction of all mispredictions charged to H2P branches. */
    double mispredictFraction() const;
};

/** Identify the H2P set of @p ledger under @p criteria. */
H2pReport identifyH2p(const sim::Ledger &ledger,
                      const H2pCriteria &criteria = {});

/**
 * Per-branch best-of combination of @p ledgers: for every static
 * branch, the tally of whichever ledger predicted it best (most correct
 * executions). This realizes "under the best predictor" in the
 * Lin-Tarsa criterion; all ledgers must cover the same trace.
 */
sim::Ledger bestPerBranchLedger(
    const std::vector<const sim::Ledger *> &ledgers);

/**
 * Per-static-branch misprediction CDF: branches sorted by descending
 * misprediction count, with the cumulative fraction of all
 * mispredictions alongside. points[k].cumulativeFraction is the share
 * of mispredictions charged to the k+1 worst branches.
 */
struct MispredictCdf
{
    struct Point
    {
        uint64_t pc = 0;
        uint64_t mispredicts = 0;
        double cumulativeFraction = 0.0;
    };

    std::vector<Point> points; //!< descending mispredicts; ties by pc
    uint64_t totalMispredicts = 0;

    /**
     * Fraction of all mispredictions charged to the worst
     * ceil(percent% of static branches) branches (e.g. 1.0 -> "the top
     * 1% of branches account for this share of mispredictions").
     */
    double fractionFromTopPercent(double percent) const;

    /** Fewest branches whose mispredictions reach @p fraction of the
     * total (0 when there are no mispredictions). */
    uint64_t branchesForFraction(double fraction) const;
};

/** Build the misprediction CDF of @p ledger. */
MispredictCdf mispredictCdf(const sim::Ledger &ledger);

/** Stability of the H2P set across workload seeds (Lin-Tarsa track
 * H2Ps across inputs; a stable set means the same static branches stay
 * hard no matter the run). */
struct H2pStability
{
    uint64_t unionSize = 0;        //!< pcs H2P in at least one seed
    uint64_t intersectionSize = 0; //!< pcs H2P in every seed
    double jaccard = 0.0;          //!< intersection / union (1.0 if both 0)
};

/** Compare the H2P sets of @p reports (one per seed). */
H2pStability h2pStability(const std::vector<H2pReport> &reports);

} // namespace copra::core
