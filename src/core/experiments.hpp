/**
 * @file
 * Experiment assembly: everything needed to regenerate the paper's
 * tables and figures for one benchmark, with shared intermediate results
 * (trace, ledgers, oracle, classifier) computed lazily and exactly once.
 * The bench binaries are thin wrappers over this layer.
 *
 * Concurrency contract (DESIGN.md §10): a BenchmarkExperiment is
 * task-confined — the lazy getters mutate the cached optionals without
 * locking, so one instance must never be shared across pool workers.
 * The bench fan-out honors this by constructing one experiment per
 * task; inside an experiment, precomputeLedgers() may itself shard
 * across the pool, which is safe because each inner task writes only
 * its own result slot before the single owning task installs them.
 */

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/best_of.hpp"
#include "core/oracle.hpp"
#include "core/pa_class.hpp"
#include "sim/ledger.hpp"
#include "trace/trace.hpp"
#include "trace/trace_stats.hpp"

namespace copra::core {

/** Shared parameters of the paper reproduction experiments. */
struct ExperimentConfig
{
    /** Dynamic conditional branches per benchmark trace. */
    uint64_t branches = 2'000'000;

    /** Workload execution seed (0 = each profile's canonical seed). */
    uint64_t seed = 0;

    /** History window depth n for correlation experiments. */
    unsigned historyDepth = 16;

    /** Oracle candidate pool size K. */
    unsigned candidatePool = 14;

    /** Conditional branches used for candidate mining (0 = all). */
    uint64_t mineConditionals = 1'000'000;

    /** gshare and IF-gshare history length. */
    unsigned gshareHistory = 16;

    /** PAs geometry. */
    unsigned pasHistory = 12;
    unsigned pasBhtBits = 12;
    unsigned pasSelectBits = 4;

    /** IF-PAs history length. */
    unsigned ifPasHistory = 12;
};

/**
 * Wall-clock seconds spent in each phase of one benchmark's experiments,
 * recorded by BenchmarkExperiment as work happens. The bench harnesses
 * sum these across benchmarks for the timing= line and
 * bench_results.json.
 */
struct PhaseTimes
{
    double traceSeconds = 0.0;     //!< workload generation or cache load
    double predictorSeconds = 0.0; //!< sim::run passes over the trace
    double oracleSeconds = 0.0;    //!< selective oracle + classifier
};

/** Fig. 4 row: selective history vs gshare and IF gshare. */
struct Fig4Row
{
    std::string name;
    double selective1 = 0.0;
    double selective2 = 0.0;
    double selective3 = 0.0;
    double ifGshare = 0.0;
    double gshare = 0.0;
};

/** Table 2 row: correlation gshare fails to exploit. */
struct Table2Row
{
    std::string name;
    double gshare = 0.0;
    double gshareWithCorr = 0.0;
    double ifGshare = 0.0;
    double ifGshareWithCorr = 0.0;
};

/** Fig. 6 row: per-address class distribution. */
struct Fig6Row
{
    std::string name;
    std::array<double, 4> fractions{}; //!< indexed by PaClass
    double staticBiasedFraction = 0.0;
};

/** Table 3 row: loop predictability PAs fails to exploit. */
struct Table3Row
{
    std::string name;
    double pas = 0.0;
    double pasWithLoop = 0.0;
    double ifPas = 0.0;
    double ifPasWithLoop = 0.0;
};

/**
 * All shared state for one benchmark's experiments. Construction only
 * generates the trace; each product is computed on first use.
 */
class BenchmarkExperiment
{
  public:
    /**
     * @param name One of workload::benchmarkNames().
     * @param config Experiment parameters.
     */
    BenchmarkExperiment(const std::string &name,
                        const ExperimentConfig &config);

    /** Construct over an externally supplied trace (tests, file input). */
    BenchmarkExperiment(trace::Trace trace, const ExperimentConfig &config);

    const std::string &name() const { return name_; }
    const ExperimentConfig &config() const { return config_; }
    const trace::Trace &trace() const { return trace_; }

    /** Population statistics of the trace. */
    const trace::TraceStats &stats();

    /** Seconds spent so far, by phase. */
    const PhaseTimes &phaseTimes() const { return times_; }

    /**
     * Compute the gshare, PAs and IF-gshare ledgers that are not yet
     * cached, sharding the simulation passes across the global thread
     * pool (sim::runAllParallel). Purely an optimization: the lazy
     * getters return identical ledgers whether or not this ran first.
     */
    void precomputeLedgers();

    /** gshare run (per-branch ledger). */
    const sim::Ledger &gshareLedger();

    /** PAs run. */
    const sim::Ledger &pasLedger();

    /** Interference-free gshare run. */
    const sim::Ledger &ifGshareLedger();

    /** Ideal static predictor (majority direction per branch). */
    const sim::Ledger &idealStaticLedgerRef();

    /**
     * Ledger of an arbitrary factory-spec predictor (predictor/factory
     * grammar, e.g. "tage" or "perceptron:tbits=12"), computed on first
     * use and cached by spec string. The modern-roster and H2P analyses
     * (bench/fig10_modern_roster, core/h2p.hpp) run through this so
     * repeated queries against one benchmark share simulation passes.
     */
    const sim::Ledger &ledgerFor(const std::string &spec);

    /** Selective-history oracle (sizes 1..3). */
    const SelectiveOracle &oracle();

    /** Per-address classification (loop / repeating / non-repeating). */
    const PaClassifier &classifier();

    // --- Row producers, one per paper artifact ------------------------
    Fig4Row fig4Row();
    Table2Row table2Row();
    Fig6Row fig6Row();
    Table3Row table3Row();

    /** Fig. 7: best of {gshare, PAs, ideal static}. */
    BestOfSplit fig7Split();

    /** Fig. 8: best of {global correlation, per-address, ideal static}. */
    BestOfSplit fig8Split();

    /** Fig. 9: percentile curve of gshare - PAs accuracy difference. */
    WeightedPercentiles fig9Percentiles();

  private:
    std::string name_;
    ExperimentConfig config_;
    trace::Trace trace_;

    std::optional<trace::TraceStats> stats_;
    std::optional<sim::Ledger> gshare_;
    std::optional<sim::Ledger> pas_;
    std::optional<sim::Ledger> ifGshare_;
    std::optional<sim::Ledger> idealStatic_;
    std::map<std::string, sim::Ledger> specLedgers_; // keyed by spec
    std::unique_ptr<SelectiveOracle> oracle_;
    std::unique_ptr<PaClassifier> classifier_;
    PhaseTimes times_;
};

/**
 * Fig. 5 series: 3-branch selective history accuracy as a function of
 * history depth, for depths @p depths (the paper uses 8..32 step 4).
 * Each depth runs a fresh oracle over the same trace.
 */
std::vector<std::pair<unsigned, double>> fig5Series(
    const trace::Trace &trace, const ExperimentConfig &config,
    const std::vector<unsigned> &depths);

/**
 * Build the trace for a named benchmark under @p config. When the global
 * trace cache is enabled (trace::setTraceCacheEnabled), the trace is
 * served from / stored to the on-disk cache keyed by
 * (name, branches, seed, format version) instead of being regenerated.
 */
trace::Trace makeExperimentTrace(const std::string &name,
                                 const ExperimentConfig &config);

} // namespace copra::core

