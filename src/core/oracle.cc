#include "core/oracle.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace copra::core {

namespace {

/** Outcome bit position in a packed row. */
constexpr unsigned kOutcomeBit = 31;

/** Extract candidate @p i's 3-valued state from a packed row. */
inline unsigned
stateBits(uint32_t row, unsigned i)
{
    return (row >> (2 * i)) & 0x3u;
}

} // namespace

SelectiveOracle::SelectiveOracle(const trace::Trace &trace,
                                 const OracleConfig &config)
    : config_(config)
{
    fatalIf(config.candidatePool == 0 || config.candidatePool > 15,
            "oracle candidate pool must be in 1..15 (packing limit)");
    fatalIf(config.maxSelect == 0 || config.maxSelect > 3,
            "oracle maxSelect must be in 1..3");
    fatalIf(config.historyDepth == 0 || config.historyDepth > 64,
            "oracle history depth must be in 1..64");

    CandidateMiner miner(config.historyDepth, config.perBranchTagCap);
    miner.mine(trace, config.mineConditionals);
    record(trace, miner);
    select();
}

void
SelectiveOracle::record(const trace::Trace &trace,
                        const CandidateMiner &miner)
{
    HistoryWindow window(config_.historyDepth);
    std::vector<TagState> collected;

    for (const auto &rec : trace.records()) {
        if (!rec.isConditional()) {
            window.push(rec);
            continue;
        }

        auto data_it = data_.find(rec.pc);
        if (data_it == data_.end()) {
            BranchData fresh;
            // Over-fetch so a method filter still fills the pool.
            for (const ScoredCandidate &cand :
                 miner.topCandidates(rec.pc, 2 * config_.candidatePool)) {
                bool is_occurrence =
                    cand.tag.method() == TagMethod::Occurrence;
                if (config_.tagFilter ==
                        OracleConfig::TagFilter::OccurrenceOnly &&
                    !is_occurrence)
                    continue;
                if (config_.tagFilter ==
                        OracleConfig::TagFilter::BackwardOnly &&
                    is_occurrence)
                    continue;
                fresh.candidates.push_back(cand.tag);
                if (fresh.candidates.size() >= config_.candidatePool)
                    break;
            }
            data_it = data_.emplace(rec.pc, std::move(fresh)).first;
        }
        BranchData &data = data_it->second;

        BranchSelection &sel = branches_[rec.pc];
        sel.pc = rec.pc;
        ++sel.execs;
        if (rec.taken)
            ++sel.taken;

        window.collect(collected);
        uint32_t row = rec.taken ? (1u << kOutcomeBit) : 0u;
        for (unsigned i = 0; i < data.candidates.size(); ++i) {
            TagOutcome state = stateOf(collected, data.candidates[i]);
            row |= static_cast<uint32_t>(state) << (2 * i);
        }
        data.rows.push_back(row);

        window.push(rec);
    }
}

uint64_t
SelectiveOracle::replayScore(const std::vector<uint32_t> &rows,
                             const std::vector<unsigned> &subset)
{
    panicIf(subset.size() > 8, "replayScore subset too large");
    uint32_t table_size = pow3(static_cast<unsigned>(subset.size()));
    // 2-bit counters initialized weakly-not-taken, matching Counter2.
    std::array<uint8_t, pow3(8)> counters;
    std::fill(counters.begin(), counters.begin() + table_size, 1);

    uint64_t correct = 0;
    for (uint32_t row : rows) {
        uint32_t pattern = 0;
        uint32_t radix = 1;
        for (unsigned idx : subset) {
            pattern += stateBits(row, idx) * radix;
            radix *= 3;
        }
        uint8_t &counter = counters[pattern];
        bool taken = (row >> kOutcomeBit) & 1u;
        bool predicted = counter >= 2;
        if (predicted == taken)
            ++correct;
        if (taken) {
            if (counter < 3)
                ++counter;
        } else {
            if (counter > 0)
                --counter;
        }
    }
    return correct;
}

void
SelectiveOracle::selectGreedy(const BranchData &data,
                              BranchSelection &out) const
{
    std::vector<unsigned> chosen;
    uint64_t last_score = replayScore(data.rows, chosen);

    for (unsigned size = 1; size <= config_.maxSelect; ++size) {
        unsigned best_candidate = UINT32_MAX;
        uint64_t best_score = 0;
        for (unsigned c = 0; c < data.candidates.size(); ++c) {
            if (std::find(chosen.begin(), chosen.end(), c) != chosen.end())
                continue;
            std::vector<unsigned> trial = chosen;
            trial.push_back(c);
            uint64_t score = replayScore(data.rows, trial);
            if (best_candidate == UINT32_MAX || score > best_score) {
                best_candidate = c;
                best_score = score;
            }
        }
        if (best_candidate != UINT32_MAX) {
            chosen.push_back(best_candidate);
            last_score = best_score;
        }
        // When candidates run out, larger sizes inherit the best smaller
        // set (there is nothing more to include in the history).
        out.correct[size - 1] = last_score;
        out.chosen[size - 1].clear();
        for (unsigned idx : chosen)
            out.chosen[size - 1].push_back(data.candidates[idx]);
    }
}

void
SelectiveOracle::selectExhaustive(const BranchData &data,
                                  BranchSelection &out) const
{
    unsigned n = static_cast<unsigned>(data.candidates.size());
    uint64_t empty_score = replayScore(data.rows, {});

    for (unsigned size = 1; size <= config_.maxSelect; ++size) {
        uint64_t best_score = 0;
        std::vector<unsigned> best_set;
        bool any = false;

        // Enumerate all subsets of exactly min(size, n) candidates.
        unsigned take = std::min(size, n);
        if (take == 0) {
            out.correct[size - 1] = empty_score;
            out.chosen[size - 1].clear();
            continue;
        }
        std::vector<unsigned> idx(take);
        for (unsigned i = 0; i < take; ++i)
            idx[i] = i;
        while (true) {
            uint64_t score = replayScore(data.rows, idx);
            if (!any || score > best_score) {
                any = true;
                best_score = score;
                best_set = idx;
            }
            // Next combination.
            int pos = static_cast<int>(take) - 1;
            while (pos >= 0 && idx[static_cast<unsigned>(pos)] ==
                   n - take + static_cast<unsigned>(pos))
                --pos;
            if (pos < 0)
                break;
            ++idx[static_cast<unsigned>(pos)];
            for (unsigned i = static_cast<unsigned>(pos) + 1; i < take; ++i)
                idx[i] = idx[i - 1] + 1;
        }

        out.correct[size - 1] = best_score;
        out.chosen[size - 1].clear();
        for (unsigned i : best_set)
            out.chosen[size - 1].push_back(data.candidates[i]);
    }
}

void
SelectiveOracle::select()
{
    // Greedy selection replays every candidate subset per static branch
    // — the hottest analysis kernel. Branches are independent (each
    // task reads immutable recorded rows and writes only its own
    // BranchSelection), so partition them across the pool. Aggregates
    // like accuracyPercent() iterate the map afterwards, so results do
    // not depend on completion order.
    std::vector<std::pair<const BranchData *, BranchSelection *>> work;
    work.reserve(branches_.size());
    // copra-lint: allow(unordered-iter) -- builds a keyed work list; aggregates re-iterate the map afterwards
    for (auto &[pc, sel] : branches_)
        work.emplace_back(&data_.at(pc), &sel);

    parallelFor(globalPool(), work.size(), [&](size_t i) {
        auto [data, sel] = work[i];
        if (config_.exhaustive)
            selectExhaustive(*data, *sel);
        else
            selectGreedy(*data, *sel);
    });
}

const BranchSelection *
SelectiveOracle::branch(uint64_t pc) const
{
    auto it = branches_.find(pc);
    return it == branches_.end() ? nullptr : &it->second;
}

double
SelectiveOracle::accuracyPercent(unsigned size) const
{
    panicIf(size == 0 || size > config_.maxSelect,
            "selective size out of range");
    uint64_t execs = 0;
    uint64_t correct = 0;
    // copra-lint: allow(unordered-iter) -- commutative integer aggregation; result is order-independent
    for (const auto &[pc, sel] : branches_) {
        execs += sel.execs;
        correct += sel.correct[size - 1];
    }
    if (execs == 0)
        return 0.0;
    return 100.0 * static_cast<double>(correct)
        / static_cast<double>(execs);
}

sim::Ledger
SelectiveOracle::toLedger(unsigned size) const
{
    panicIf(size == 0 || size > config_.maxSelect,
            "selective size out of range");
    sim::Ledger ledger;
    // copra-lint: allow(unordered-iter) -- per-key transform into a keyed container; no cross-key order dependence
    for (const auto &[pc, sel] : branches_)
        ledger.setTally(pc, sel.execs, sel.correct[size - 1], sel.taken);
    return ledger;
}

std::unordered_map<uint64_t, std::vector<Tag>>
SelectiveOracle::selectionMap(unsigned size) const
{
    panicIf(size == 0 || size > config_.maxSelect,
            "selective size out of range");
    std::unordered_map<uint64_t, std::vector<Tag>> out;
    // copra-lint: allow(unordered-iter) -- per-key transform into a keyed container; no cross-key order dependence
    for (const auto &[pc, sel] : branches_) {
        const auto &tags = sel.chosen[size - 1];
        if (!tags.empty())
            out.emplace(pc, tags);
    }
    return out;
}

} // namespace copra::core
