/**
 * @file
 * Misprediction taxonomy for gshare-style predictors.
 *
 * The paper attributes gshare's gap to its interference-free variant to
 * two causes — PHT interference and training time (§3.6.3) — without
 * separating them per misprediction. This analysis runs a gshare while
 * shadowing every PHT counter with provenance, classifying each
 * misprediction as:
 *
 *  - Cold: the counter was never written before this access.
 *  - Interference: the counter was last written by a *different*
 *    (pc, history) context (an alias disturbed it).
 *  - Training: the counter belongs to this very context but has not yet
 *    converged to the outcome (warm-up / hysteresis on a changed
 *    behaviour).
 *  - Noise: the counter is owned by this context, fully trained toward
 *    the context's majority direction — the branch simply deviated
 *    (intrinsically unpredictable residue).
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace copra::core {

/** Misprediction causes, in classification priority order. */
enum class MispredictCause : uint8_t
{
    Cold = 0,         //!< counter never trained
    Interference = 1, //!< counter last touched by another context
    Training = 2,     //!< own context, not yet converged
    Noise = 3,        //!< trained and owned: inherent unpredictability
};

/** Display name of a cause. */
const char *mispredictCauseName(MispredictCause cause);

/** Result of a taxonomy run. */
struct MispredictBreakdown
{
    uint64_t dynamicBranches = 0;
    uint64_t correct = 0;
    std::array<uint64_t, 4> byCause{}; //!< indexed by MispredictCause

    uint64_t
    mispredicts() const
    {
        return dynamicBranches - correct;
    }

    double
    accuracyPercent() const
    {
        if (dynamicBranches == 0)
            return 0.0;
        return 100.0 * static_cast<double>(correct)
            / static_cast<double>(dynamicBranches);
    }

    /** Fraction of all mispredictions attributed to @p cause. */
    double
    causeFraction(MispredictCause cause) const
    {
        uint64_t total = mispredicts();
        if (total == 0)
            return 0.0;
        return static_cast<double>(
                   byCause[static_cast<size_t>(cause)]) /
            static_cast<double>(total);
    }
};

/**
 * Run a gshare of the given geometry over @p trace with per-counter
 * provenance shadowing and classify every misprediction.
 *
 * @param history_bits gshare history length (PHT has 2^history_bits
 *        counters, the paper's geometry).
 */
MispredictBreakdown classifyMispredicts(const trace::Trace &trace,
                                        unsigned history_bits = 16);

} // namespace copra::core

