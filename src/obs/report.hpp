/**
 * @file
 * Manifest comparison and registry documentation rendering — the logic
 * behind the copra_report CLI, kept in the library so tests can drive
 * it without spawning processes.
 *
 * diffManifests() turns two run manifests into a Markdown regression
 * report: a provenance header, a per-instrument table with absolute
 * and relative deltas, and a call-out section for counters that moved
 * beyond a threshold. renderRegistryDoc() walks the live instrument
 * catalog and produces docs/METRICS.md, the self-documenting metrics
 * reference a ctest gate keeps in sync with the code.
 */

#pragma once

#include <string>

#include "obs/json.hpp"

namespace copra::obs {

/** Options of one manifest diff. */
struct DiffOptions
{
    /** Relative change (fraction, e.g. 0.05 = 5%) beyond which a
     * counter or histogram-sum move is called out as notable. */
    double threshold = 0.05;
};

/**
 * Render a Markdown regression report comparing @p before and @p after
 * (both parsed run manifests). Throws std::runtime_error when either
 * document is not a manifest or the schema versions differ.
 */
std::string diffManifests(const Json &before, const Json &after,
                          const DiffOptions &options = {});

/**
 * Render docs/METRICS.md from the live instrument catalog: every
 * instrument's key, type, unit, description and emitting module,
 * grouped by module, plus the regeneration instructions.
 */
std::string renderRegistryDoc();

} // namespace copra::obs
