/**
 * @file
 * Run manifests: the versioned JSON record one instrumented process
 * leaves behind (--metrics-out / COPRA_METRICS_OUT). A manifest
 * captures enough provenance to compare two runs honestly — git SHA,
 * build type and flags, thread count, seed, tool name and arguments —
 * plus the value of every registry instrument. The schema is
 * docs/schema/run_manifest.schema.json; kManifestSchemaVersion bumps
 * whenever a field changes meaning, and copra_report refuses to diff
 * across schema versions.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace copra::obs {

/** Manifest format version (docs/schema/run_manifest.schema.json). */
inline constexpr int kManifestSchemaVersion = 1;

/** Provenance of the run being recorded. */
struct RunInfo
{
    std::string tool;    //!< emitting binary, e.g. "table1_benchmarks"
    std::string args;    //!< reconstructed command line (may be empty)
    uint64_t seed = 0;   //!< workload seed
    unsigned threads = 0; //!< worker threads in the global pool
};

/** Build @p snapshot (+ provenance) into a manifest JSON document. */
Json buildManifest(const RunInfo &info, const Snapshot &snapshot);

/**
 * Snapshot the registry and write a manifest to @p path. Failures warn
 * and return false instead of aborting the run — telemetry must never
 * take down a simulation that already produced its results.
 */
bool writeManifest(const std::string &path, const RunInfo &info);

/** Read and parse a manifest file (throws std::runtime_error). */
Json loadManifest(const std::string &path);

/**
 * Render the non-zero instruments of @p snapshot as a human-readable
 * aligned table (the --metrics-summary output; callers print it to
 * stderr so stdout stays byte-identical).
 */
std::string renderSummary(const Snapshot &snapshot);

} // namespace copra::obs
