#include "obs/instruments.hpp"

namespace copra::obs {

namespace {

struct Catalog
{
    std::vector<InstrumentDesc> descs;
    Ids ids;
};

/** Append a scalar instrument and record its id. */
void
add(Catalog &c, InstrumentId &slot, const char *key, Kind kind,
    const char *unit, const char *description, const char *module)
{
    slot = static_cast<InstrumentId>(c.descs.size());
    c.descs.push_back({key, kind, unit, description, module});
}

/** Append a histogram instrument over [lo, hi] with @p bins bins. */
void
addHist(Catalog &c, InstrumentId &slot, const char *key, const char *unit,
        const char *description, const char *module, double lo, double hi,
        unsigned bins)
{
    slot = static_cast<InstrumentId>(c.descs.size());
    c.descs.push_back(
        {key, Kind::Histogram, unit, description, module, lo, hi, bins});
}

Catalog
buildCatalog()
{
    Catalog c;
    Ids &i = c.ids;

    // --- sim --------------------------------------------------------
    add(c, i.simRunBranches, "sim.run.branches", Kind::Counter,
        "branches",
        "dynamic conditional branches simulated by sim::run (all "
        "predictors, all paths)",
        "sim");
    add(c, i.simRunMispredicts, "sim.run.mispredicts", Kind::Counter,
        "branches", "mispredicted conditional branches across all "
        "sim::run passes", "sim");
    add(c, i.simKernelBatches, "sim.kernel.batches", Kind::Counter,
        "batches",
        "SoA conditional runs handed to specialized predictor batch "
        "kernels",
        "sim");
    add(c, i.simKernelBranches, "sim.kernel.branches", Kind::Counter,
        "branches",
        "conditional branches simulated through specialized SoA batch "
        "kernels (subset of sim.run.branches)",
        "sim");
    add(c, i.simKernelSimdBranches, "sim.kernel.simd_branches",
        Kind::Counter, "branches",
        "kernel branches whose index phase ran on the SIMD tier "
        "(0 when dispatch selects scalar)",
        "sim");

    // --- predictor: modern-roster internals -------------------------
    add(c, i.tageAllocations, "tage.alloc", Kind::Counter, "entries",
        "TAGE tagged-table entries (re)allocated on mispredicts",
        "predictor");
    add(c, i.perceptronThresholdAdapts, "perceptron.threshold_adapts",
        Kind::Counter, "adjustments",
        "hashed-perceptron adaptive-threshold (theta) adjustments, "
        "increments plus decrements",
        "predictor");

    // --- core: mispredict taxonomy ----------------------------------
    add(c, i.simTaxonomyCold, "sim.taxonomy.cold", Kind::Counter,
        "mispredicts",
        "taxonomy mispredicts attributed to never-trained counters",
        "core");
    add(c, i.simTaxonomyInterference, "sim.taxonomy.interference",
        Kind::Counter, "mispredicts",
        "taxonomy mispredicts attributed to PHT aliasing by another "
        "(pc, history) context",
        "core");
    add(c, i.simTaxonomyTraining, "sim.taxonomy.training", Kind::Counter,
        "mispredicts",
        "taxonomy mispredicts attributed to own-context warm-up or "
        "hysteresis",
        "core");
    add(c, i.simTaxonomyNoise, "sim.taxonomy.noise", Kind::Counter,
        "mispredicts",
        "taxonomy mispredicts on trained, owned counters (inherent "
        "unpredictability)",
        "core");

    // --- core: hard-to-predict branch analysis ----------------------
    add(c, i.h2pCount, "h2p.count", Kind::Counter, "branches",
        "static branches classified hard-to-predict by the Lin-Tarsa "
        "criterion across all identifyH2p passes",
        "core");

    // --- core: per-phase timing -------------------------------------
    addHist(c, i.simPhaseTraceSeconds, "sim.phase.trace.seconds",
            "seconds",
            "wall time per trace generation or cache load, one sample "
            "per benchmark",
            "core", 0.0, 30.0, 30);
    addHist(c, i.simPhaseTraceCpuSeconds, "sim.phase.trace.cpu_seconds",
            "seconds",
            "thread CPU time per trace generation or cache load", "core",
            0.0, 30.0, 30);
    addHist(c, i.simPhasePredictorSeconds, "sim.phase.predictor.seconds",
            "seconds",
            "wall time per predictor-simulation phase (sim::run passes "
            "over one trace)",
            "core", 0.0, 30.0, 30);
    addHist(c, i.simPhasePredictorCpuSeconds,
            "sim.phase.predictor.cpu_seconds", "seconds",
            "thread CPU time per predictor-simulation phase", "core",
            0.0, 30.0, 30);
    addHist(c, i.simPhaseOracleSeconds, "sim.phase.oracle.seconds",
            "seconds",
            "wall time per selective-oracle / classifier phase", "core",
            0.0, 30.0, 30);
    addHist(c, i.simPhaseOracleCpuSeconds,
            "sim.phase.oracle.cpu_seconds", "seconds",
            "thread CPU time per selective-oracle / classifier phase",
            "core", 0.0, 30.0, 30);

    // --- util: thread pool ------------------------------------------
    add(c, i.poolTaskQueued, "pool.task.queued", Kind::Counter, "tasks",
        "tasks submitted to the thread pool queue", "util");
    add(c, i.poolTaskExecuted, "pool.task.executed", Kind::Counter,
        "tasks", "tasks completed by pool workers", "util");
    add(c, i.poolQueueDepthHighWater, "pool.task.queue_depth",
        Kind::Gauge, "tasks",
        "high-water mark of the pool's pending-task queue", "util");
    add(c, i.poolWorkerBusyMicros, "pool.worker.busy_micros",
        Kind::Counter, "microseconds",
        "total worker time spent running tasks (sum across workers; "
        "divide by wall time x workers for utilization)",
        "util");
    addHist(c, i.poolTaskSeconds, "pool.task.seconds", "seconds",
            "run time of individual pool tasks", "util", 0.0, 10.0, 40);
    add(c, i.poolWorkerCount, "pool.worker.count", Kind::Gauge,
        "threads", "worker threads in the global pool at manifest time",
        "util");

    // --- trace: parallel generation ---------------------------------
    add(c, i.traceGenChunks, "trace.gen.chunks", Kind::Counter,
        "chunks",
        "independently-seeded generation chunks executed (1 per trace "
        "when the budget fits a single chunk)",
        "trace");
    add(c, i.traceGenConditionals, "trace.gen.conditionals",
        Kind::Counter, "branches",
        "conditional branches produced by workload trace generation",
        "trace");

    // --- trace: on-disk cache ---------------------------------------
    add(c, i.traceCacheHit, "trace.cache.hit", Kind::Counter, "entries",
        "trace cache lookups served from disk", "trace");
    add(c, i.traceCacheMmapHit, "trace.cache.mmap_hit", Kind::Counter,
        "entries",
        "cache hits decoded through the mmap fast path (subset of "
        "trace.cache.hit)",
        "trace");
    add(c, i.traceCacheMiss, "trace.cache.miss", Kind::Counter,
        "entries",
        "trace cache lookups that fell through to generation", "trace");
    add(c, i.traceCacheEvict, "trace.cache.evict", Kind::Counter,
        "entries",
        "corrupt, truncated or mislabeled cache entries dropped",
        "trace");
    add(c, i.traceCacheReadBytes, "trace.cache.read_bytes",
        Kind::Counter, "bytes", "bytes loaded from trace cache entries",
        "trace");
    add(c, i.traceCacheWriteBytes, "trace.cache.write_bytes",
        Kind::Counter, "bytes", "bytes written as new trace cache "
        "entries", "trace");
    addHist(c, i.traceCacheEntryBytes, "trace.cache.entry_bytes",
            "bytes", "size distribution of cache entries touched "
            "(reads and writes)",
            "trace", 0.0, 64.0 * 1024 * 1024, 64);

    // --- trace: foreign-trace ingestion -----------------------------
    add(c, i.traceIngestRecords, "trace.ingest.records", Kind::Counter,
        "records", "branch records accepted by foreign-trace ingestion",
        "trace");
    add(c, i.traceIngestConditionals, "trace.ingest.conditionals",
        Kind::Counter, "branches",
        "conditional branches among the accepted records", "trace");
    add(c, i.traceIngestNormalized, "trace.ingest.normalized",
        Kind::Counter, "records",
        "non-conditional records whose outcome was coerced to taken "
        "during normalization",
        "trace");
    add(c, i.traceIngestReordered, "trace.ingest.reordered",
        Kind::Counter, "records",
        "CSV rows moved back into index order during normalization",
        "trace");
    add(c, i.traceIngestWarnings, "trace.ingest.warnings",
        Kind::Counter, "warnings",
        "non-fatal validation warnings emitted while ingesting",
        "trace");

    // --- check: differential harness --------------------------------
    add(c, i.checkDiffTraces, "check.diff.traces", Kind::Counter,
        "traces", "fuzzed traces replayed by the differential suite",
        "check");
    add(c, i.checkDiffComparisons, "check.diff.comparisons",
        Kind::Counter, "replays",
        "(pair, trace) differential replays performed", "check");
    add(c, i.checkDiffMismatches, "check.diff.mismatches", Kind::Counter,
        "mismatches",
        "per-branch prediction divergences found (0 on a healthy tree)",
        "check");
    add(c, i.checkDiffShrinkSteps, "check.diff.shrink_steps",
        Kind::Counter, "replays",
        "candidate replays performed by the delta-debugging trace "
        "minimizer",
        "check");

    // --- bench: suite fan-out ---------------------------------------
    addHist(c, i.benchSuiteWallSeconds, "bench.suite.wall_seconds",
            "seconds",
            "end-to-end wall time of one harness suite fan-out", "bench",
            0.0, 120.0, 60);

    return c;
}

const Catalog &
catalog()
{
    // Leaked for the same reason as the registry: worker threads may
    // consult the catalog during their exit-time sink merge.
    // copra-lint: sanctioned-global(immutable instrument catalog, built once)
    static const Catalog *c = new Catalog(buildCatalog());
    return *c;
}

} // namespace

const std::vector<InstrumentDesc> &
instrumentCatalog()
{
    return catalog().descs;
}

const Ids &
ids()
{
    return catalog().ids;
}

} // namespace copra::obs
