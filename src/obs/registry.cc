#include "obs/registry.hpp"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>

#include "obs/instruments.hpp"
#include "util/logging.hpp"
#include "util/metrics_hooks.hpp"

namespace copra::obs {

namespace {

// Telemetry on/off switch. Flipped once by CLI parsing before any
// simulation work; the gated counters never feed back into results, so
// relaxed ordering is sufficient.
// copra-lint: sanctioned-global(process-wide telemetry on/off switch)
std::atomic<bool> g_enabled{false};

double
nowWallSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

double
nowThreadCpuSeconds()
{
    timespec ts{};
    if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0.0;
    return static_cast<double>(ts.tv_sec) +
        static_cast<double>(ts.tv_nsec) * 1e-9;
}

} // namespace

const char *
kindName(Kind kind)
{
    switch (kind) {
    case Kind::Counter:
        return "counter";
    case Kind::Gauge:
        return "gauge";
    case Kind::Histogram:
        return "histogram";
    }
    return "?";
}

void
HistogramValue::observe(double value)
{
    if (count == 0) {
        min = value;
        max = value;
    } else {
        min = std::min(min, value);
        max = std::max(max, value);
    }
    ++count;
    sum += value;
    bins.add(value);
}

void
HistogramValue::merge(const HistogramValue &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    sum += other.sum;
    bins.merge(other.bins);
}

ThreadSink::ThreadSink(const std::vector<InstrumentDesc> &catalog)
{
    util::MutexLock lock(mutex_);
    scalars_.assign(catalog.size(), 0);
    hists_.reserve(catalog.size());
    for (const InstrumentDesc &desc : catalog)
        hists_.emplace_back(desc);
}

void
ThreadSink::add(InstrumentId id, uint64_t delta)
{
    util::MutexLock lock(mutex_);
    scalars_[id] += delta;
}

void
ThreadSink::maxAt(InstrumentId id, uint64_t value)
{
    util::MutexLock lock(mutex_);
    scalars_[id] = std::max(scalars_[id], value);
}

void
ThreadSink::observe(InstrumentId id, double value)
{
    util::MutexLock lock(mutex_);
    hists_[id].observe(value);
}

namespace {

/**
 * Owns the calling thread's sink pointer; the destructor is the "scope
 * exit" of the per-thread-merge design — it folds the sink into the
 * registry's retired totals when the thread goes away.
 */
struct SinkHolder
{
    ThreadSink *sink = nullptr;

    ~SinkHolder();
};

// copra-lint: sanctioned-global(per-thread telemetry sink pointer; merged into the registry at thread exit)
thread_local SinkHolder t_sink;

} // namespace

Registry &
Registry::instance()
{
    // Leaked deliberately: worker threads (and their SinkHolder
    // destructors) may outlive any static destruction order we could
    // arrange, so the registry must never be torn down.
    // copra-lint: sanctioned-global(the observability registry singleton)
    static Registry *registry = new Registry;
    return *registry;
}

Registry::Registry()
    : catalog_(instrumentCatalog())
{
    util::MutexLock lock(mutex_);
    retiredScalars_.assign(catalog_.size(), 0);
    retiredHists_.reserve(catalog_.size());
    for (const InstrumentDesc &desc : catalog_)
        retiredHists_.emplace_back(desc);
}

const InstrumentDesc &
Registry::describe(InstrumentId id) const
{
    panicIf(id >= catalog_.size(), "obs: instrument id out of range");
    return catalog_[id];
}

ThreadSink *
Registry::localSink()
{
    if (t_sink.sink == nullptr) {
        auto *sink = new ThreadSink(catalog_);
        {
            util::MutexLock lock(mutex_);
            sinks_.push_back(sink);
        }
        t_sink.sink = sink;
    }
    return t_sink.sink;
}

void
Registry::retire(ThreadSink *sink)
{
    util::MutexLock lock(mutex_);
    {
        util::MutexLock sinkLock(sink->mutex_);
        for (size_t i = 0; i < retiredScalars_.size(); ++i) {
            if (catalog_[i].kind == Kind::Gauge)
                retiredScalars_[i] =
                    std::max(retiredScalars_[i], sink->scalars_[i]);
            else
                retiredScalars_[i] += sink->scalars_[i];
            retiredHists_[i].merge(sink->hists_[i]);
        }
    }
    sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink),
                 sinks_.end());
    delete sink;
}

namespace {

SinkHolder::~SinkHolder()
{
    // retireCurrentThread() nulls t_sink.sink, i.e. this->sink.
    if (sink != nullptr)
        Registry::instance().retireCurrentThread();
}

} // namespace

void
Registry::retireCurrentThread()
{
    if (t_sink.sink != nullptr) {
        retire(t_sink.sink);
        t_sink.sink = nullptr;
    }
}

void
Registry::add(InstrumentId id, uint64_t delta)
{
    panicIf(describe(id).kind != Kind::Counter,
            "obs: count() on a non-counter instrument");
    localSink()->add(id, delta);
}

void
Registry::maxAt(InstrumentId id, uint64_t value)
{
    panicIf(describe(id).kind != Kind::Gauge,
            "obs: gaugeMax() on a non-gauge instrument");
    localSink()->maxAt(id, value);
}

void
Registry::observe(InstrumentId id, double value)
{
    panicIf(describe(id).kind != Kind::Histogram,
            "obs: observe() on a non-histogram instrument");
    localSink()->observe(id, value);
}

Snapshot
Registry::snapshot()
{
    Snapshot snap;
    snap.values.resize(catalog_.size());
    for (size_t i = 0; i < catalog_.size(); ++i)
        snap.values[i].id = static_cast<InstrumentId>(i);

    util::MutexLock lock(mutex_);
    std::vector<uint64_t> scalars = retiredScalars_;
    std::vector<HistogramValue> hists = retiredHists_;
    for (ThreadSink *sink : sinks_) {
        util::MutexLock sinkLock(sink->mutex_);
        for (size_t i = 0; i < catalog_.size(); ++i) {
            if (catalog_[i].kind == Kind::Gauge)
                scalars[i] = std::max(scalars[i], sink->scalars_[i]);
            else
                scalars[i] += sink->scalars_[i];
            hists[i].merge(sink->hists_[i]);
        }
    }
    for (size_t i = 0; i < catalog_.size(); ++i) {
        snap.values[i].scalar = scalars[i];
        snap.values[i].count = hists[i].count;
        snap.values[i].sum = hists[i].sum;
        snap.values[i].min = hists[i].min;
        snap.values[i].max = hists[i].max;
    }
    return snap;
}

void
Registry::reset()
{
    util::MutexLock lock(mutex_);
    std::fill(retiredScalars_.begin(), retiredScalars_.end(), 0);
    for (size_t i = 0; i < retiredHists_.size(); ++i)
        retiredHists_[i] = HistogramValue(catalog_[i]);
    for (ThreadSink *sink : sinks_) {
        util::MutexLock sinkLock(sink->mutex_);
        std::fill(sink->scalars_.begin(), sink->scalars_.end(), 0);
        for (size_t i = 0; i < sink->hists_.size(); ++i)
            sink->hists_[i] = HistogramValue(catalog_[i]);
    }
}

namespace {

/** util-side pool listeners, forwarding into the registry. */
void
onPoolTaskQueued(uint64_t queue_depth)
{
    count(ids().poolTaskQueued);
    gaugeMax(ids().poolQueueDepthHighWater, queue_depth);
}

void
onPoolTaskExecuted(double busy_seconds)
{
    count(ids().poolTaskExecuted);
    count(ids().poolWorkerBusyMicros,
          static_cast<uint64_t>(busy_seconds * 1e6));
    observe(ids().poolTaskSeconds, busy_seconds);
}

// Installed into util/metrics_hooks.hpp on first enable; must outlive
// every pool, hence namespace scope and const.
const util::PoolMetricsHooks kPoolHooks = {
    &onPoolTaskQueued,
    &onPoolTaskExecuted,
};

} // namespace

bool
enabled()
{
    return detail::enabledRelaxed();
}

bool
detail::enabledRelaxed()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    if (on) {
        // Touch the singletons before the flag flips so no hot path
        // ever races instrument registration.
        Registry::instance();
        util::setPoolMetricsHooks(&kPoolHooks);
    } else {
        util::setPoolMetricsHooks(nullptr);
    }
    g_enabled.store(on, std::memory_order_relaxed);
}

PhaseTimer::PhaseTimer(InstrumentId wall_id, InstrumentId cpu_id,
                       double *wall_sink)
    : wallId_(wall_id), cpuId_(cpu_id), wallSink_(wall_sink),
      armed_(wall_sink != nullptr || detail::enabledRelaxed())
{
    if (armed_) {
        startWall_ = nowWallSeconds();
        startCpu_ = nowThreadCpuSeconds();
    }
}

PhaseTimer::~PhaseTimer()
{
    if (!armed_)
        return;
    double wall = nowWallSeconds() - startWall_;
    if (wallSink_ != nullptr)
        *wallSink_ += wall;
    if (detail::enabledRelaxed()) {
        observe(wallId_, wall);
        observe(cpuId_, nowThreadCpuSeconds() - startCpu_);
    }
}

} // namespace copra::obs
