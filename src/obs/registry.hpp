/**
 * @file
 * The observability registry: a process-wide catalog of typed telemetry
 * instruments, with per-thread aggregation so instrumenting the
 * parallel engine never serializes it and never perturbs its output.
 *
 * Three instrument kinds cover every copra telemetry need:
 *
 *  - Counter: a monotonic uint64 sum (branches simulated, cache hits).
 *  - Gauge: a high-water maximum (queue depth, worker count).
 *  - Histogram: a fixed-bin distribution over doubles with count, sum,
 *    min and max (phase latencies, entry sizes), reusing
 *    copra::Histogram for the bins.
 *
 * Every instrument is registered up front — at Registry construction,
 * from the static catalog in instruments.cc — under a namespaced string
 * key ("sim.run.branches") together with its unit, a one-line
 * description, and the emitting module. The registry is therefore
 * self-documenting: `copra_report --doc-registry` walks it to
 * regenerate docs/METRICS.md, and a ctest gate fails when that file
 * drifts from the code.
 *
 * Concurrency and determinism (DESIGN.md §11): each thread owns a
 * ThreadSink; hot-path updates touch only the caller's sink under its
 * own (uncontended) mutex. Sinks merge into the registry's retired
 * totals when their thread exits, and snapshot() folds retired totals
 * with every live sink. Because counters merge by addition, gauges by
 * max, and histograms by bin-wise addition, the merge is associative
 * and commutative — so aggregate values are independent of thread
 * count and scheduling order wherever the underlying event counts are
 * (timing-valued instruments vary run to run and are labeled as such
 * in the manifest schema). Nothing here ever writes to stdout, so
 * instrumented benches stay byte-identical to uninstrumented ones.
 *
 * Zero-overhead-when-disabled: the free helpers (count, gaugeMax,
 * observe) test one relaxed atomic bool and return; no sink is ever
 * created, no lock taken. Enabling is one-way per run (the bench CLIs
 * flip it before any simulation starts).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/histogram.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace copra::obs {

/** Instrument value/merge semantics. */
enum class Kind : uint8_t
{
    Counter = 0,  //!< monotonic sum
    Gauge = 1,    //!< high-water maximum
    Histogram = 2 //!< fixed-bin distribution with count/sum/min/max
};

/** Display name of an instrument kind ("counter", "gauge", ...). */
const char *kindName(Kind kind);

/** Dense index of an instrument in the registry catalog. */
using InstrumentId = uint32_t;

/** Registration-time identity of one instrument. */
struct InstrumentDesc
{
    const char *key;         //!< namespaced name, e.g. "trace.cache.hit"
    Kind kind;               //!< value semantics
    const char *unit;        //!< what one count means, e.g. "branches"
    const char *description; //!< one-line doc, surfaced in METRICS.md
    const char *module;      //!< emitting module, e.g. "sim" or "util"
    double lo = 0.0;         //!< histogram interval lower bound
    double hi = 1.0;         //!< histogram interval upper bound
    unsigned bins = 1;       //!< histogram bin count
};

/** Aggregated state of one histogram instrument. */
struct HistogramValue
{
    uint64_t count = 0; //!< samples observed
    double sum = 0.0;   //!< sum of observed values
    double min = 0.0;   //!< smallest observed value (0 when count == 0)
    double max = 0.0;   //!< largest observed value (0 when count == 0)
    copra::Histogram bins;

    explicit HistogramValue(const InstrumentDesc &desc)
        : bins(desc.lo, desc.hi, desc.bins)
    {
    }

    /** Record one sample. */
    void observe(double value);

    /** Bin-wise associative fold of @p other into this value. */
    void merge(const HistogramValue &other);
};

/** One instrument's aggregate at snapshot time. */
struct InstrumentValue
{
    InstrumentId id = 0;
    uint64_t scalar = 0;  //!< counter sum or gauge high-water
    uint64_t count = 0;   //!< histogram sample count
    double sum = 0.0;     //!< histogram sample sum
    double min = 0.0;     //!< histogram minimum
    double max = 0.0;     //!< histogram maximum
};

/** A consistent copy of every instrument's aggregate. */
struct Snapshot
{
    std::vector<InstrumentValue> values; //!< indexed by InstrumentId
};

class Registry;

/**
 * Thread-owned aggregation buffer. Updates lock only the sink's own
 * mutex (uncontended in steady state — the owning thread is the only
 * writer; snapshot() is the only cross-thread reader).
 */
class ThreadSink
{
  public:
    explicit ThreadSink(const std::vector<InstrumentDesc> &catalog);

    void add(InstrumentId id, uint64_t delta);
    void maxAt(InstrumentId id, uint64_t value);
    void observe(InstrumentId id, double value);

  private:
    friend class Registry;

    util::Mutex mutex_;
    std::vector<uint64_t> scalars_ COPRA_GUARDED_BY(mutex_);
    std::vector<HistogramValue> hists_ COPRA_GUARDED_BY(mutex_);
};

/** The process-wide instrument registry. */
class Registry
{
  public:
    /** The singleton, constructed (and its catalog registered) on
     * first use. */
    static Registry &instance();

    /** Every registered instrument, in catalog (documentation) order. */
    const std::vector<InstrumentDesc> &catalog() const { return catalog_; }

    /** Catalog entry for @p id. */
    const InstrumentDesc &describe(InstrumentId id) const;

    /** Add @p delta to counter @p id on the calling thread's sink. */
    void add(InstrumentId id, uint64_t delta);

    /** Raise gauge @p id to at least @p value. */
    void maxAt(InstrumentId id, uint64_t value);

    /** Record @p value into histogram @p id. */
    void observe(InstrumentId id, double value);

    /**
     * Merge retired totals and every live thread sink into a consistent
     * copy. Safe to call while other threads keep recording; values are
     * at least as fresh as every event that happened-before the call.
     */
    Snapshot snapshot();

    /**
     * Zero every instrument (all live sinks and the retired totals).
     * Test helper; production code never resets telemetry.
     */
    void reset();

    /**
     * Merge and drop the calling thread's sink now instead of at
     * thread exit. The next update from this thread creates a fresh
     * sink. Used by scope-exit points that outlive their data (e.g. a
     * pool about to join its workers).
     */
    void retireCurrentThread();

  private:
    Registry();

    ThreadSink *localSink();
    void retire(ThreadSink *sink);

    std::vector<InstrumentDesc> catalog_;

    util::Mutex mutex_;
    std::vector<ThreadSink *> sinks_ COPRA_GUARDED_BY(mutex_);
    // Totals of sinks whose threads have exited, folded in at
    // retirement ("merge at scope exit"); same shape as a sink.
    std::vector<uint64_t> retiredScalars_ COPRA_GUARDED_BY(mutex_);
    std::vector<HistogramValue> retiredHists_ COPRA_GUARDED_BY(mutex_);
};

/** True when telemetry is recording (one relaxed atomic load). */
bool enabled();

/**
 * Turn telemetry on or off. Enabling also installs the util-side pool
 * hooks (util/metrics_hooks.hpp) so thread-pool events start flowing.
 */
void setEnabled(bool on);

/** Add @p delta to counter @p id; no-op (and no sink) when disabled. */
inline void count(InstrumentId id, uint64_t delta = 1);

/** Raise gauge @p id to at least @p value; no-op when disabled. */
inline void gaugeMax(InstrumentId id, uint64_t value);

/** Record @p value into histogram @p id; no-op when disabled. */
inline void observe(InstrumentId id, double value);

// --- implementation of the inline fast paths -------------------------

namespace detail {
bool enabledRelaxed();
} // namespace detail

inline void
count(InstrumentId id, uint64_t delta)
{
    if (detail::enabledRelaxed())
        Registry::instance().add(id, delta);
}

inline void
gaugeMax(InstrumentId id, uint64_t value)
{
    if (detail::enabledRelaxed())
        Registry::instance().maxAt(id, value);
}

inline void
observe(InstrumentId id, double value)
{
    if (detail::enabledRelaxed())
        Registry::instance().observe(id, value);
}

/**
 * RAII phase timer: on destruction, records elapsed wall seconds into
 * histogram @p wall_id and elapsed thread-CPU seconds into @p cpu_id,
 * and optionally adds wall seconds to a caller-owned accumulator (the
 * bench timing= plumbing). Clock reads are skipped entirely when both
 * telemetry is disabled and no accumulator is attached.
 */
class PhaseTimer
{
  public:
    /**
     * @param wall_id Wall-seconds histogram instrument.
     * @param cpu_id Thread-CPU-seconds histogram instrument.
     * @param wall_sink Optional accumulator for elapsed wall seconds.
     */
    PhaseTimer(InstrumentId wall_id, InstrumentId cpu_id,
               double *wall_sink = nullptr);
    ~PhaseTimer();

    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

  private:
    InstrumentId wallId_;
    InstrumentId cpuId_;
    double *wallSink_;
    bool armed_;
    double startWall_ = 0.0; //!< seconds since an arbitrary epoch
    double startCpu_ = 0.0;  //!< thread CPU seconds
};

} // namespace copra::obs
