/**
 * @file
 * The static catalog of every copra telemetry instrument.
 *
 * All instruments are registered eagerly, in one place, so the
 * registry is complete no matter which code paths a given binary
 * exercises — `copra_report --doc-registry` must see the whole catalog
 * even though copra_report never simulates a branch. Adding an
 * instrument means adding one entry to buildCatalog() in
 * instruments.cc, one Ids field here, and regenerating docs/METRICS.md
 * (the metrics_doc_drift ctest gate will insist).
 */

#pragma once

#include <vector>

#include "obs/registry.hpp"

namespace copra::obs {

/** Dense ids of every cataloged instrument, grouped by subsystem. */
struct Ids
{
    // sim: the trace-driven driver (src/sim/driver.cc).
    InstrumentId simRunBranches = 0;
    InstrumentId simRunMispredicts = 0;

    // predictor: batch kernel dispatch (src/predictor/two_level.cc,
    // bimodal.cc via predictor/kernels.hpp).
    InstrumentId simKernelBatches = 0;
    InstrumentId simKernelBranches = 0;
    InstrumentId simKernelSimdBranches = 0;

    // predictor: modern-roster internals (src/predictor/tage.cc,
    // perceptron.cc).
    InstrumentId tageAllocations = 0;
    InstrumentId perceptronThresholdAdapts = 0;

    // core: mispredict taxonomy (src/core/mispredict_taxonomy.cc).
    InstrumentId simTaxonomyCold = 0;
    InstrumentId simTaxonomyInterference = 0;
    InstrumentId simTaxonomyTraining = 0;
    InstrumentId simTaxonomyNoise = 0;

    // core: hard-to-predict branch analysis (src/core/h2p.cc).
    InstrumentId h2pCount = 0;

    // core: per-phase experiment timing (src/core/experiments.cc).
    InstrumentId simPhaseTraceSeconds = 0;
    InstrumentId simPhaseTraceCpuSeconds = 0;
    InstrumentId simPhasePredictorSeconds = 0;
    InstrumentId simPhasePredictorCpuSeconds = 0;
    InstrumentId simPhaseOracleSeconds = 0;
    InstrumentId simPhaseOracleCpuSeconds = 0;

    // util: the thread pool (src/util/thread_pool.cc, via hooks).
    InstrumentId poolTaskQueued = 0;
    InstrumentId poolTaskExecuted = 0;
    InstrumentId poolQueueDepthHighWater = 0;
    InstrumentId poolWorkerBusyMicros = 0;
    InstrumentId poolTaskSeconds = 0;
    InstrumentId poolWorkerCount = 0;

    // trace: parallel trace generation (src/workload/program.cc).
    InstrumentId traceGenChunks = 0;
    InstrumentId traceGenConditionals = 0;

    // trace: the on-disk trace cache (src/trace/trace_cache.cc).
    InstrumentId traceCacheHit = 0;
    InstrumentId traceCacheMmapHit = 0;
    InstrumentId traceCacheMiss = 0;
    InstrumentId traceCacheEvict = 0;
    InstrumentId traceCacheReadBytes = 0;
    InstrumentId traceCacheWriteBytes = 0;
    InstrumentId traceCacheEntryBytes = 0;

    // trace: foreign-trace ingestion (src/trace/ingest.cc via
    // tools/copra_ingest).
    InstrumentId traceIngestRecords = 0;
    InstrumentId traceIngestConditionals = 0;
    InstrumentId traceIngestNormalized = 0;
    InstrumentId traceIngestReordered = 0;
    InstrumentId traceIngestWarnings = 0;

    // check: the differential harness (src/check/differential.cc).
    InstrumentId checkDiffTraces = 0;
    InstrumentId checkDiffComparisons = 0;
    InstrumentId checkDiffMismatches = 0;
    InstrumentId checkDiffShrinkSteps = 0;

    // bench: the suite fan-out (bench/bench_common.hpp).
    InstrumentId benchSuiteWallSeconds = 0;
};

/** The full instrument catalog, in documentation order. */
const std::vector<InstrumentDesc> &instrumentCatalog();

/** Ids matching instrumentCatalog() positions. */
const Ids &ids();

} // namespace copra::obs
