#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace copra::obs {

Json
Json::makeBool(bool b)
{
    Json j;
    j.type_ = Type::Bool;
    j.bool_ = b;
    return j;
}

Json
Json::makeNumber(double n)
{
    Json j;
    j.type_ = Type::Number;
    j.num_ = n;
    return j;
}

Json
Json::makeString(std::string s)
{
    Json j;
    j.type_ = Type::String;
    j.str_ = std::move(s);
    return j;
}

Json
Json::makeArray()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::makeObject()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

namespace {

[[noreturn]] void
typeError(const char *want)
{
    throw std::runtime_error(std::string("json: value is not a ") + want);
}

} // namespace

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        typeError("bool");
    return bool_;
}

double
Json::asNumber() const
{
    if (type_ != Type::Number)
        typeError("number");
    return num_;
}

uint64_t
Json::asUint() const
{
    double n = asNumber();
    if (n < 0)
        throw std::runtime_error("json: negative value where an "
                                 "unsigned count was expected");
    return static_cast<uint64_t>(std::llround(n));
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        typeError("string");
    return str_;
}

const std::vector<Json> &
Json::items() const
{
    if (type_ != Type::Array)
        typeError("array");
    return arr_;
}

const std::vector<std::pair<std::string, Json>> &
Json::entries() const
{
    if (type_ != Type::Object)
        typeError("object");
    return obj_;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[k, v] : obj_)
        if (k == key)
            return &v;
    return nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *found = find(key);
    if (found == nullptr)
        throw std::runtime_error("json: missing key '" + key + "'");
    return *found;
}

void
Json::push(Json value)
{
    if (type_ != Type::Array)
        typeError("array");
    arr_.push_back(std::move(value));
}

void
Json::set(const std::string &key, Json value)
{
    if (type_ != Type::Object)
        typeError("object");
    obj_.emplace_back(key, std::move(value));
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

namespace {

/** Shortest round-trip decimal for a double; integers print as such. */
std::string
numberToString(double n)
{
    if (std::isnan(n) || std::isinf(n))
        return "0"; // JSON has no non-finite numbers
    double rounded = std::nearbyint(n);
    if (rounded == n && std::fabs(n) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", n);
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", n);
    // Trim to the shortest representation that still round-trips.
    for (int precision = 1; precision < 17; ++precision) {
        char shorter[64];
        std::snprintf(shorter, sizeof(shorter), "%.*g", precision, n);
        if (std::strtod(shorter, nullptr) == n)
            return shorter;
    }
    return buf;
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent > 0) {
            out += '\n';
            out.append(static_cast<size_t>(indent) * d, ' ');
        }
    };
    switch (type_) {
    case Type::Null:
        out += "null";
        break;
    case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
    case Type::Number:
        out += numberToString(num_);
        break;
    case Type::String:
        out += jsonQuote(str_);
        break;
    case Type::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (size_t i = 0; i < arr_.size(); ++i) {
            if (i > 0)
                out += ',';
            newline(depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
    case Type::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (size_t i = 0; i < obj_.size(); ++i) {
            if (i > 0)
                out += ',';
            newline(depth + 1);
            out += jsonQuote(obj_[i].first);
            out += indent > 0 ? ": " : ":";
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

namespace {

/** Recursive-descent RFC 8259 parser over a string. */
class Parser
{
  public:
    explicit Parser(const std::string &text)
        : text_(text)
    {
        // Tolerate (skip) a UTF-8 BOM.
        if (text_.size() >= 3 && text_.compare(0, 3, "\xef\xbb\xbf") == 0)
            pos_ = 3;
    }

    Json
    document()
    {
        Json value = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing content after the document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw std::runtime_error("json: " + what + " at byte " +
                                 std::to_string(pos_));
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(const char *literal)
    {
        size_t len = std::string(literal).size();
        if (text_.compare(pos_, len, literal) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        skipSpace();
        char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return Json::makeString(parseString());
        if (consume("true"))
            return Json::makeBool(true);
        if (consume("false"))
            return Json::makeBool(false);
        if (consume("null"))
            return Json::makeNull();
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber();
        fail("unexpected character");
    }

    Json
    parseObject()
    {
        expect('{');
        Json obj = Json::makeObject();
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        for (;;) {
            skipSpace();
            std::string key = parseString();
            skipSpace();
            expect(':');
            obj.set(key, parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    Json
    parseArray()
    {
        expect('[');
        Json arr = Json::makeArray();
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        for (;;) {
            arr.push(parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                if (static_cast<unsigned char>(c) < 0x20)
                    fail("unescaped control character in string");
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
            case '"':
            case '\\':
            case '/':
                out += e;
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // Encode the code point as UTF-8 (surrogate pairs are
                // passed through as two 3-byte sequences; the manifests
                // never contain astral-plane text).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
            }
            default:
                fail("unknown escape");
            }
        }
    }

    Json
    parseNumber()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        std::string literal = text_.substr(start, pos_ - start);
        char *end = nullptr;
        double value = std::strtod(literal.c_str(), &end);
        if (end == literal.c_str() || *end != '\0')
            fail("malformed number '" + literal + "'");
        return Json::makeNumber(value);
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).document();
}

} // namespace copra::obs
