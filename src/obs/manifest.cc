#include "obs/manifest.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/build_info.hpp"
#include "util/logging.hpp"

namespace copra::obs {

Json
buildManifest(const RunInfo &info, const Snapshot &snapshot)
{
    Json root = Json::makeObject();
    root.set("schema_version",
             Json::makeNumber(kManifestSchemaVersion));
    root.set("tool", Json::makeString(info.tool));
    if (!info.args.empty())
        root.set("args", Json::makeString(info.args));
    root.set("git_sha", Json::makeString(kBuildGitSha));
    root.set("build_type", Json::makeString(kBuildType));
    root.set("compiler", Json::makeString(kBuildCompiler));
    root.set("build_flags", Json::makeString(kBuildFlags));
    root.set("threads", Json::makeNumber(info.threads));
    root.set("seed", Json::makeNumber(static_cast<double>(info.seed)));

    const Registry &registry = Registry::instance();
    Json instruments = Json::makeArray();
    for (const InstrumentValue &value : snapshot.values) {
        const InstrumentDesc &desc = registry.describe(value.id);
        Json entry = Json::makeObject();
        entry.set("key", Json::makeString(desc.key));
        entry.set("type", Json::makeString(kindName(desc.kind)));
        entry.set("unit", Json::makeString(desc.unit));
        if (desc.kind == Kind::Histogram) {
            entry.set("count", Json::makeNumber(
                                   static_cast<double>(value.count)));
            entry.set("sum", Json::makeNumber(value.sum));
            entry.set("min", Json::makeNumber(value.min));
            entry.set("max", Json::makeNumber(value.max));
        } else {
            entry.set("value", Json::makeNumber(
                                   static_cast<double>(value.scalar)));
        }
        instruments.push(std::move(entry));
    }
    root.set("instruments", std::move(instruments));
    return root;
}

bool
writeManifest(const std::string &path, const RunInfo &info)
{
    Snapshot snapshot = Registry::instance().snapshot();
    Json manifest = buildManifest(info, snapshot);
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        warn("metrics: cannot write manifest to " + path);
        return false;
    }
    out << manifest.dump(2);
    if (!out.good()) {
        warn("metrics: short write to " + path);
        return false;
    }
    return true;
}

Json
loadManifest(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open manifest " + path);
    std::ostringstream slurp;
    slurp << in.rdbuf();
    Json manifest = Json::parse(slurp.str());
    const Json *version = manifest.find("schema_version");
    if (version == nullptr || !version->isNumber())
        throw std::runtime_error(path +
                                 " is not a run manifest (no "
                                 "schema_version)");
    return manifest;
}

std::string
renderSummary(const Snapshot &snapshot)
{
    const Registry &registry = Registry::instance();
    std::ostringstream out;
    out << "metrics summary (non-zero instruments)\n";
    char line[256];
    for (const InstrumentValue &value : snapshot.values) {
        const InstrumentDesc &desc = registry.describe(value.id);
        if (desc.kind == Kind::Histogram) {
            if (value.count == 0)
                continue;
            std::snprintf(line, sizeof(line),
                          "  %-34s %12llu samples  sum=%-12.6g "
                          "min=%-10.4g max=%-10.4g [%s]\n",
                          desc.key,
                          static_cast<unsigned long long>(value.count),
                          value.sum, value.min, value.max, desc.unit);
        } else {
            if (value.scalar == 0)
                continue;
            std::snprintf(
                line, sizeof(line), "  %-34s %12llu %s\n", desc.key,
                static_cast<unsigned long long>(value.scalar),
                desc.unit);
        }
        out << line;
    }
    return out.str();
}

} // namespace copra::obs
