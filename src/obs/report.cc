#include "obs/report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "obs/instruments.hpp"
#include "obs/manifest.hpp"
#include "obs/registry.hpp"

namespace copra::obs {

namespace {

/** Integer-or-compact rendering for table cells. */
std::string
formatValue(double v)
{
    char buf[48];
    if (std::nearbyint(v) == v && std::fabs(v) < 1e15)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/** The comparable scalar of one manifest instrument entry. */
double
entryValue(const Json &entry)
{
    const Json *value = entry.find("value");
    if (value != nullptr)
        return value->asNumber();
    const Json *sum = entry.find("sum");
    return sum != nullptr ? sum->asNumber() : 0.0;
}

std::string
metaString(const Json &manifest, const char *key)
{
    const Json *value = manifest.find(key);
    if (value == nullptr)
        return "?";
    if (value->isString())
        return value->asString();
    if (value->isNumber())
        return formatValue(value->asNumber());
    return "?";
}

struct DiffRow
{
    std::string key;
    std::string unit;
    std::string type;
    bool inBefore = false;
    bool inAfter = false;
    double before = 0.0;
    double after = 0.0;
};

} // namespace

std::string
diffManifests(const Json &before, const Json &after,
              const DiffOptions &options)
{
    for (const Json *m : {&before, &after}) {
        const Json *version = m->find("schema_version");
        if (version == nullptr || !version->isNumber())
            throw std::runtime_error(
                "diff: document is not a run manifest");
        if (static_cast<int>(version->asNumber()) !=
            kManifestSchemaVersion)
            throw std::runtime_error(
                "diff: manifest schema_version " +
                formatValue(version->asNumber()) +
                " does not match this build (expected " +
                std::to_string(kManifestSchemaVersion) + ")");
    }

    // Union of instruments, in before-order then after-only extras.
    std::vector<DiffRow> rows;
    auto rowFor = [&rows](const std::string &key) -> DiffRow & {
        for (DiffRow &row : rows)
            if (row.key == key)
                return row;
        rows.push_back({});
        rows.back().key = key;
        return rows.back();
    };
    auto fold = [&](const Json &manifest, bool is_before) {
        for (const Json &entry : manifest.at("instruments").items()) {
            DiffRow &row = rowFor(entry.at("key").asString());
            row.unit = entry.at("unit").asString();
            row.type = entry.at("type").asString();
            (is_before ? row.inBefore : row.inAfter) = true;
            (is_before ? row.before : row.after) = entryValue(entry);
        }
    };
    fold(before, true);
    fold(after, false);

    std::ostringstream out;
    out << "# copra run-manifest diff\n\n";
    out << "| | before | after |\n|---|---|---|\n";
    for (const char *key : {"tool", "git_sha", "build_type", "compiler",
                            "threads", "seed"}) {
        out << "| " << key << " | " << metaString(before, key) << " | "
            << metaString(after, key) << " |\n";
    }

    out << "\n## Instruments\n\n"
        << "| instrument | unit | before | after | delta | delta % |\n"
        << "|---|---|---:|---:|---:|---:|\n";
    struct Notable
    {
        std::string text;
        double magnitude = 0.0;
    };
    std::vector<Notable> notable;
    for (const DiffRow &row : rows) {
        if (row.before == 0.0 && row.after == 0.0)
            continue; // both silent: noise in the table, drop it
        double delta = row.after - row.before;
        std::string pct;
        if (!row.inBefore) {
            pct = "new";
        } else if (!row.inAfter) {
            pct = "removed";
        } else if (row.before == 0.0) {
            pct = delta == 0.0 ? "0%" : "n/a";
        } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%+.2f%%",
                          100.0 * delta / row.before);
            pct = buf;
        }
        out << "| `" << row.key << "` | " << row.unit << " | "
            << (row.inBefore ? formatValue(row.before) : "-") << " | "
            << (row.inAfter ? formatValue(row.after) : "-") << " | "
            << (delta == 0.0 ? "0" : formatValue(delta)) << " | " << pct
            << " |\n";

        if (row.inBefore && row.inAfter && row.before != 0.0) {
            double rel = delta / row.before;
            if (std::fabs(rel) >= options.threshold) {
                char buf[160];
                std::snprintf(buf, sizeof(buf),
                              "- `%s`: %+.2f%% (%s -> %s %s)",
                              row.key.c_str(), 100.0 * rel,
                              formatValue(row.before).c_str(),
                              formatValue(row.after).c_str(),
                              row.unit.c_str());
                notable.push_back({buf, std::fabs(rel)});
            }
        }
    }

    char threshold[32];
    std::snprintf(threshold, sizeof(threshold), "%g%%",
                  100.0 * options.threshold);
    out << "\n## Notable changes (>= " << threshold << ")\n\n";
    if (notable.empty()) {
        out << "None.\n";
    } else {
        for (const Notable &n : notable)
            out << n.text << "\n";
        out << "\nTiming-valued instruments (seconds, microseconds) "
               "vary run to run; treat their deltas as indicative, "
               "not exact.\n";
    }
    return out.str();
}

std::string
renderRegistryDoc()
{
    const std::vector<InstrumentDesc> &catalog = instrumentCatalog();

    // Modules in first-appearance (catalog) order.
    std::vector<std::string> modules;
    for (const InstrumentDesc &desc : catalog) {
        bool seen = false;
        for (const std::string &m : modules)
            seen = seen || m == desc.module;
        if (!seen)
            modules.emplace_back(desc.module);
    }

    std::ostringstream out;
    out << "# copra metrics reference\n\n"
        << "<!-- Generated by `copra_report --doc-registry`. Do not "
           "edit by hand:\n"
           "     the `metrics_doc_drift` ctest gate regenerates this "
           "file from the\n"
           "     live instrument registry and fails the build on any "
           "drift. -->\n\n"
        << "Every telemetry instrument the copra binaries can emit, "
           "straight from\n"
        << "the registry catalog (`src/obs/instruments.cc`). Values "
           "land in run\n"
        << "manifests (`--metrics-out`, schema\n"
        << "`docs/schema/run_manifest.schema.json` version "
        << kManifestSchemaVersion << ") and in the\n"
        << "`--metrics-summary` table. See docs/OBSERVABILITY.md for "
           "usage.\n\n"
        << catalog.size() << " instruments across " << modules.size()
        << " modules.\n";

    for (const std::string &module : modules) {
        out << "\n## Module `" << module << "`\n\n"
            << "| key | type | unit | description |\n"
            << "|---|---|---|---|\n";
        for (const InstrumentDesc &desc : catalog) {
            if (module != desc.module)
                continue;
            out << "| `" << desc.key << "` | " << kindName(desc.kind)
                << " | " << desc.unit << " | " << desc.description;
            if (desc.kind == Kind::Histogram) {
                char buf[64];
                std::snprintf(buf, sizeof(buf),
                              " (bins: %u over [%g, %g])", desc.bins,
                              desc.lo, desc.hi);
                out << buf;
            }
            out << " |\n";
        }
    }
    return out.str();
}

} // namespace copra::obs
