/**
 * @file
 * A minimal JSON value, parser and writer — just enough for the run
 * manifests and copra_report, with zero external dependencies (the
 * container deliberately carries no JSON library).
 *
 * Deliberate restrictions: numbers are doubles (manifest counters fit
 * exactly up to 2^53, far beyond any real run), object keys keep
 * insertion order (so written manifests diff cleanly), and the parser
 * rejects everything RFC 8259 rejects except it ignores a UTF-8 BOM.
 * Parse errors throw std::runtime_error with a byte offset.
 */

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace copra::obs {

/** One JSON value of any type. */
class Json
{
  public:
    enum class Type : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Json() = default;
    static Json makeNull() { return Json(); }
    static Json makeBool(bool b);
    static Json makeNumber(double n);
    static Json makeString(std::string s);
    static Json makeArray();
    static Json makeObject();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Value accessors; throw std::runtime_error on type mismatch. */
    bool asBool() const;
    double asNumber() const;
    /** asNumber() rounded to uint64 (throws when negative). */
    uint64_t asUint() const;
    const std::string &asString() const;
    const std::vector<Json> &items() const;

    /** Object entries in insertion order. */
    const std::vector<std::pair<std::string, Json>> &entries() const;

    /** Object member by key, or nullptr when absent / not an object. */
    const Json *find(const std::string &key) const;

    /** Object member by key; throws when absent. */
    const Json &at(const std::string &key) const;

    /** Append to an array value. */
    void push(Json value);

    /** Set an object member (appends; keys are expected unique). */
    void set(const std::string &key, Json value);

    /** Serialize; @p indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /** Parse @p text as one JSON document (throws on any error). */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/** Escape @p s as a JSON string literal (with quotes). */
std::string jsonQuote(const std::string &s);

} // namespace copra::obs
