/**
 * @file
 * TAGE-lite: a TAgged GEometric-history-length predictor (Seznec &
 * Michaud, 2006), reduced to the parts the paper's "why" analysis needs.
 *
 * A bimodal base table backs N tagged tables whose history lengths grow
 * geometrically. Each tagged entry carries a partial tag, a prediction
 * counter, and a useful counter; the longest-history matching table
 * provides the prediction, entries are allocated on mispredicts into a
 * longer-history table with a free (useful == 0) slot, and the useful
 * counters age periodically so stale entries become reclaimable.
 *
 * Deliberate simplifications versus full TAGE (documented in DESIGN.md
 * §13): no alternate-prediction override of weak entries (USE_ALT_ON_NA),
 * deterministic first-free-slot allocation instead of randomized
 * candidate choice, and stateless block-folded history hashing
 * (predictor/history_fold.hpp) instead of incremental circular shift
 * registers.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "predictor/history_fold.hpp"
#include "predictor/predictor.hpp"
#include "predictor/state.hpp"

namespace copra::predictor {

/** Geometry and policy of a TAGE-lite predictor. */
struct TageConfig
{
    unsigned baseBits = 12;   //!< log2 entries of the bimodal base table
    unsigned tableBits = 10;  //!< log2 entries per tagged table
    unsigned tagBits = 9;     //!< partial tag width (1..16)
    unsigned counterBits = 3; //!< tagged-table prediction counter width
    unsigned usefulBits = 2;  //!< useful counter width
    unsigned numTables = 4;   //!< tagged tables (1..8)
    unsigned minHistory = 5;  //!< history length of the first tagged table
    unsigned maxHistory = 80; //!< history length of the last tagged table

    /** Updates between useful-counter halvings (0 disables aging). */
    uint64_t agingPeriod = 256 * 1024;

    std::string label = "tage";

    /** The history length of tagged table @p t (geometric series). */
    unsigned historyLength(unsigned t) const;
};

/** Observable internals for tests, telemetry, and the analysis layer. */
struct TageStats
{
    uint64_t allocations = 0;  //!< tagged entries (re)allocated
    uint64_t allocFailures = 0; //!< mispredicts that found no free slot
    uint64_t agingEvents = 0;  //!< periodic useful-counter halvings
    uint64_t providerTagged = 0; //!< predictions served by a tagged table
    uint64_t providerBase = 0;   //!< predictions served by the base table
};

/** A TAGE-lite predictor realized from a TageConfig. */
class Tage : public Predictor
{
  public:
    explicit Tage(const TageConfig &config);
    ~Tage() override;

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override;

    const TageConfig &config() const { return config_; }
    const TageStats &stats() const { return stats_; }

    /** Largest useful-counter value currently stored (tests). */
    unsigned maxUseful() const;

    /** Sum of all useful counters (tests: aging must shrink it). */
    uint64_t usefulSum() const;

    // State contract (DESIGN.md §14): 2 bits per base counter, then
    // tag + prediction + useful bits per tagged entry, the folded
    // history, and the aging clock.
    uint64_t
    stateBits() const override
    {
        uint64_t bits = uint64_t(2) * base_.size();
        const uint64_t per_entry = uint64_t(config_.tagBits) +
            config_.counterBits + config_.usefulBits;
        for (const auto &table : tables_)
            bits += per_entry * table.size();
        return bits;
    }

    void
    snapshotState(state::Writer &w) const override
    {
        state::writeVec(w, base_,
                        [](state::Writer &out, uint8_t c) { out.u8(c); });
        w.u64(tables_.size());
        for (const auto &table : tables_)
            state::writeVec(w, table,
                            [](state::Writer &out, const Entry &e) {
                                out.u16(e.tag);
                                out.u8(e.ctr);
                                out.u8(e.useful);
                            });
        history_.snapshot(w);
        w.u64(updates_);
    }

    void
    restoreState(state::Reader &r) override
    {
        state::readVec(r, base_,
                       [](state::Reader &in, uint8_t &c) { c = in.u8(); });
        panicIf(r.u64() != tables_.size(),
                "Tage restore: tagged-table count mismatch");
        for (auto &table : tables_)
            state::readVec(r, table, [](state::Reader &in, Entry &e) {
                e.tag = in.u16();
                e.ctr = in.u8();
                e.useful = in.u8();
            });
        history_.restore(r);
        updates_ = r.u64();
    }

    COPRA_CONFIG_FIELDS(config_, lengths_);
    COPRA_STATE_FIELDS(base_, tables_, history_, updates_);
    COPRA_TRANSIENT_FIELDS(stats_);

  protected:
    /** One tagged-table entry. */
    struct Entry
    {
        uint16_t tag = 0;
        uint8_t ctr = 0;    //!< prediction counter; taken iff MSB set
        uint8_t useful = 0; //!< replacement protection
    };

    /**
     * Install a fresh entry for @p tag at the chosen slot, initialized
     * weakly toward the observed outcome. Virtual as the seam for the
     * differential harness's allocation-path planted bug
     * (check/differential.cc); real subclasses are not expected.
     */
    virtual void allocateEntry(Entry &slot, uint16_t tag, bool taken) noexcept;

  private:
    /** Provider/alternate selection for one pc under current history. */
    struct Lookup
    {
        int provider = -1;   //!< tagged table index, -1 = base
        int alt = -1;        //!< next-longest match below provider
        bool prediction = false;
        bool altPrediction = false;
    };

    Lookup lookup(uint64_t pc) const noexcept;
    size_t indexOf(unsigned table, uint64_t pc) const noexcept;
    uint16_t tagOf(unsigned table, uint64_t pc) const noexcept;
    bool counterTaken(uint8_t ctr, unsigned bits) const noexcept;
    static void bumpCounter(uint8_t &ctr, unsigned bits, bool up) noexcept;

    TageConfig config_;
    std::vector<uint8_t> base_;              //!< bimodal counters (2-bit)
    std::vector<std::vector<Entry>> tables_; //!< tagged tables
    std::vector<unsigned> lengths_;          //!< per-table history length
    FoldedHistory history_;
    uint64_t updates_ = 0; //!< branches trained since reset (drives aging)
    TageStats stats_;
};

} // namespace copra::predictor
