/**
 * @file
 * Hashed perceptron predictor (Tarjan & Skadron, 2005 lineage): N small
 * weight tables, each indexed by the XOR of the branch address with one
 * folded segment of global history, summed with integer-only arithmetic
 * and trained against an adaptively tuned magnitude threshold
 * (Seznec's O-GEHL threshold-fitting counter).
 *
 * Compared with the original per-branch perceptron, hashing shares the
 * weight storage across branches (capacity), bounds the adder tree to N
 * terms regardless of history length (latency), and lets mildly
 * conflicting branches share weights gracefully (interference behaves
 * like gshare's, analyzed in EXPERIMENTS.md). Implementation choices are
 * documented in DESIGN.md §13.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "predictor/history_fold.hpp"
#include "predictor/predictor.hpp"
#include "predictor/state.hpp"

namespace copra::predictor {

/** Geometry and training policy of a hashed perceptron. */
struct PerceptronConfig
{
    unsigned tableBits = 12;   //!< log2 entries per weight table
    unsigned numTables = 8;    //!< weight tables, including the bias table
    unsigned segmentBits = 8;  //!< history bits folded into each table
    int weightMin = -64;       //!< saturation floor (inclusive)
    int weightMax = 63;        //!< saturation ceiling (inclusive)
    int initialTheta = 18;     //!< starting training threshold
    int thetaCounterSat = 64;  //!< adaptation counter saturation (TC)
    std::string label = "perceptron";

    /** History bits consumed: (numTables - 1) segments. */
    unsigned historyBits() const { return (numTables - 1) * segmentBits; }
};

/** Observable internals for tests and telemetry. */
struct PerceptronStats
{
    uint64_t trainEvents = 0;     //!< updates that adjusted weights
    uint64_t thresholdAdapts = 0; //!< theta increments + decrements
};

/** A hashed perceptron realized from a PerceptronConfig. */
class Perceptron : public Predictor
{
  public:
    explicit Perceptron(const PerceptronConfig &config);
    ~Perceptron() override;

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override;

    const PerceptronConfig &config() const { return config_; }
    const PerceptronStats &stats() const { return stats_; }

    /** Current training threshold (tests: adaptation moves it). */
    int theta() const { return theta_; }

    /** Largest |weight| currently stored (tests: saturation bound). */
    int maxAbsWeight() const;

    // State contract (DESIGN.md §14): enough bits per weight to span
    // [weightMin, weightMax], plus the folded history and the adaptive
    // threshold machinery (theta and its fitting counter, 16 bits each
    // by the O-GEHL convention).
    uint64_t
    stateBits() const override
    {
        const uint64_t span =
            uint64_t(config_.weightMax - config_.weightMin) + 1;
        uint64_t weight_bits = 1;
        while ((uint64_t(1) << weight_bits) < span)
            ++weight_bits;
        uint64_t weights = 0;
        for (const auto &table : tables_)
            weights += table.size();
        return weights * weight_bits + config_.historyBits() + 16 + 16;
    }

    void
    snapshotState(state::Writer &w) const override
    {
        w.u64(tables_.size());
        for (const auto &table : tables_)
            state::writeVec(w, table, [](state::Writer &out, int16_t v) {
                out.i16(v);
            });
        history_.snapshot(w);
        w.i32(theta_);
        w.i32(thetaCtr_);
    }

    void
    restoreState(state::Reader &r) override
    {
        panicIf(r.u64() != tables_.size(),
                "Perceptron restore: weight-table count mismatch");
        for (auto &table : tables_)
            state::readVec(r, table, [](state::Reader &in, int16_t &v) {
                v = in.i16();
            });
        history_.restore(r);
        theta_ = r.i32();
        thetaCtr_ = r.i32();
    }

    COPRA_CONFIG_FIELDS(config_);
    COPRA_STATE_FIELDS(tables_, history_, theta_, thetaCtr_);
    COPRA_TRANSIENT_FIELDS(stats_);

  protected:
    /**
     * Saturate @p weight one step toward @p taken. Virtual as the seam
     * for the differential harness's wraparound planted bug
     * (check/differential.cc); real subclasses are not expected.
     */
    virtual int clampWeight(int weight, bool taken) const noexcept;

  private:
    int sumOf(uint64_t pc) const noexcept;
    size_t indexOf(unsigned table, uint64_t pc) const noexcept;

    PerceptronConfig config_;
    std::vector<std::vector<int16_t>> tables_; //!< [table][index] weights
    FoldedHistory history_;
    int theta_;       //!< current training threshold
    int thetaCtr_ = 0; //!< threshold-fitting counter (TC)
    PerceptronStats stats_;
};

} // namespace copra::predictor
