/**
 * @file
 * Hashed perceptron predictor (Tarjan & Skadron, 2005 lineage): N small
 * weight tables, each indexed by the XOR of the branch address with one
 * folded segment of global history, summed with integer-only arithmetic
 * and trained against an adaptively tuned magnitude threshold
 * (Seznec's O-GEHL threshold-fitting counter).
 *
 * Compared with the original per-branch perceptron, hashing shares the
 * weight storage across branches (capacity), bounds the adder tree to N
 * terms regardless of history length (latency), and lets mildly
 * conflicting branches share weights gracefully (interference behaves
 * like gshare's, analyzed in EXPERIMENTS.md). Implementation choices are
 * documented in DESIGN.md §13.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "predictor/history_fold.hpp"
#include "predictor/predictor.hpp"

namespace copra::predictor {

/** Geometry and training policy of a hashed perceptron. */
struct PerceptronConfig
{
    unsigned tableBits = 12;   //!< log2 entries per weight table
    unsigned numTables = 8;    //!< weight tables, including the bias table
    unsigned segmentBits = 8;  //!< history bits folded into each table
    int weightMin = -64;       //!< saturation floor (inclusive)
    int weightMax = 63;        //!< saturation ceiling (inclusive)
    int initialTheta = 18;     //!< starting training threshold
    int thetaCounterSat = 64;  //!< adaptation counter saturation (TC)
    std::string label = "perceptron";

    /** History bits consumed: (numTables - 1) segments. */
    unsigned historyBits() const { return (numTables - 1) * segmentBits; }
};

/** Observable internals for tests and telemetry. */
struct PerceptronStats
{
    uint64_t trainEvents = 0;     //!< updates that adjusted weights
    uint64_t thresholdAdapts = 0; //!< theta increments + decrements
};

/** A hashed perceptron realized from a PerceptronConfig. */
class Perceptron : public Predictor
{
  public:
    explicit Perceptron(const PerceptronConfig &config);
    ~Perceptron() override;

    bool predict(const trace::BranchRecord &br) override;
    void update(const trace::BranchRecord &br, bool taken) override;
    void reset() override;
    std::string name() const override;

    const PerceptronConfig &config() const { return config_; }
    const PerceptronStats &stats() const { return stats_; }

    /** Current training threshold (tests: adaptation moves it). */
    int theta() const { return theta_; }

    /** Largest |weight| currently stored (tests: saturation bound). */
    int maxAbsWeight() const;

  protected:
    /**
     * Saturate @p weight one step toward @p taken. Virtual as the seam
     * for the differential harness's wraparound planted bug
     * (check/differential.cc); real subclasses are not expected.
     */
    virtual int clampWeight(int weight, bool taken) const;

  private:
    int sumOf(uint64_t pc) const;
    size_t indexOf(unsigned table, uint64_t pc) const;

    PerceptronConfig config_;
    std::vector<std::vector<int16_t>> tables_; //!< [table][index] weights
    FoldedHistory history_;
    int theta_;       //!< current training threshold
    int thetaCtr_ = 0; //!< threshold-fitting counter (TC)
    PerceptronStats stats_;
};

} // namespace copra::predictor
