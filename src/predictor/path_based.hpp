/**
 * @file
 * Path-based global predictor (Nair, 1995; paper §2.1): the first-level
 * history records low-order bits of the addresses along the path instead
 * of branch outcomes, which captures in-path correlation directly —
 * knowing a branch was on the path constrains earlier outcomes even when
 * its own direction is uninformative (paper Fig. 2).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "predictor/predictor.hpp"
#include "predictor/state.hpp"
#include "util/sat_counter.hpp"
#include "util/shift_register.hpp"

namespace copra::predictor {

/**
 * Global path-history predictor. The path register holds a few address
 * bits from each of the last p basic-block successors; the PHT is indexed
 * by path XOR pc.
 */
class PathBased : public Predictor
{
  public:
    /**
     * @param path_branches Branches encoded in the path register.
     * @param bits_per_branch Address bits retained per branch.
     * @param pht_bits log2 of the PHT size.
     */
    PathBased(unsigned path_branches = 8, unsigned bits_per_branch = 2,
              unsigned pht_bits = 16);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override;

    // State contract (DESIGN.md §14): the path register plus 2 bits per
    // PHT counter.
    uint64_t
    stateBits() const override
    {
        return uint64_t(pathBranches_) * bitsPerBranch_ +
            uint64_t(2) * pht_.size();
    }

    void
    snapshotState(state::Writer &w) const override
    {
        w.u64(path_.value());
        state::writeVec(w, pht_, [](state::Writer &out, Counter2 c) {
            out.u8(c.v);
        });
    }

    void
    restoreState(state::Reader &r) override
    {
        path_.set(r.u64());
        state::readVec(r, pht_, [](state::Reader &in, Counter2 &c) {
            c.v = in.u8();
        });
    }

    COPRA_CONFIG_FIELDS(pathBranches_, bitsPerBranch_, phtBits_);
    COPRA_STATE_FIELDS(path_, pht_);

  private:
    size_t indexOf(uint64_t pc) const noexcept;

    unsigned pathBranches_;
    unsigned bitsPerBranch_;
    unsigned phtBits_;
    PathRegister path_;
    std::vector<Counter2> pht_;
};

} // namespace copra::predictor

