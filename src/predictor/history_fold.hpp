/**
 * @file
 * Long global branch history with stateless block folding, shared by the
 * modern-predictor roster (TAGE-lite, hashed perceptron).
 *
 * Real TAGE implementations compress long histories through incremental
 * circular shift registers; copra instead defines the compressed value
 * *statelessly*: fold(L, C) is the XOR of consecutive C-bit chunks of
 * the newest L history bits (newest outcome in bit 0 of chunk 0). The
 * two formulations hash equally well, but the stateless one has a
 * one-line specification the clarity-first reference models
 * (check/ref_models.hpp) can recompute bit-for-bit from a plain
 * std::vector<bool> — which is exactly what makes incremental-update
 * bugs in this optimized version mechanically detectable (DESIGN.md
 * §13).
 */

#pragma once

#include <cstdint>

#include "predictor/state.hpp"
#include "util/logging.hpp"

namespace copra::predictor {

/**
 * The newest kMaxBits outcomes of the global branch history, packed into
 * words (newest outcome in bit 0 of word 0), with chunked folding down
 * to table-index width.
 */
class FoldedHistory
{
  public:
    /** Longest history window any consumer may fold. */
    static constexpr unsigned kMaxBits = 128;

    /** Shift in a new outcome (true = taken), newest in bit 0. */
    void
    push(bool taken) noexcept
    {
        words_[1] = (words_[1] << 1) | (words_[0] >> 63);
        words_[0] = (words_[0] << 1) | (taken ? 1 : 0);
    }

    /** Forget all recorded outcomes. */
    void clear() { words_[0] = words_[1] = 0; }

    /** The newest @p bits outcomes (bits <= 64), newest in bit 0. */
    uint64_t
    recent(unsigned bits) const
    {
        panicIf(bits > 64, "FoldedHistory::recent supports at most 64 bits");
        if (bits == 0)
            return 0;
        uint64_t mask = bits >= 64 ? ~uint64_t(0)
                                   : ((uint64_t(1) << bits) - 1);
        return words_[0] & mask;
    }

    /**
     * Fold the newest @p length outcomes to @p width bits: XOR of
     * consecutive width-bit chunks, newest outcome in bit 0 of the first
     * chunk; the final partial chunk is zero-padded.
     */
    uint64_t
    fold(unsigned length, unsigned width) const noexcept
    {
        panicIf(length > kMaxBits,
                "FoldedHistory::fold length exceeds kMaxBits");
        panicIf(width == 0 || width > 32,
                "FoldedHistory::fold width must be in 1..32");
        uint64_t out = 0;
        for (unsigned lo = 0; lo < length; lo += width) {
            unsigned take = length - lo < width ? length - lo : width;
            out ^= window(lo, take);
        }
        return out;
    }

    /** Serialize the packed history words (state contract). */
    void
    snapshot(state::Writer &w) const
    {
        w.u64(words_[0]);
        w.u64(words_[1]);
    }

    /** Restore history words written by snapshot(). */
    void
    restore(state::Reader &r)
    {
        words_[0] = r.u64();
        words_[1] = r.u64();
    }

  private:
    /** Bits [lo, lo + take) of the packed history, oldest ones zero. */
    uint64_t
    window(unsigned lo, unsigned take) const noexcept
    {
        uint64_t chunk;
        if (lo >= 64) {
            chunk = words_[1] >> (lo - 64);
        } else if (lo == 0) {
            chunk = words_[0];
        } else {
            chunk = (words_[0] >> lo) | (words_[1] << (64 - lo));
        }
        uint64_t mask = take >= 64 ? ~uint64_t(0)
                                   : ((uint64_t(1) << take) - 1);
        return chunk & mask;
    }

    uint64_t words_[2] = {0, 0};
};

} // namespace copra::predictor
