/**
 * @file
 * Interference-free two-level predictors (paper §2.2; Talcott et al. 1995,
 * Young et al. 1995): conceptually one private PHT per static branch, so
 * no two branches ever share a counter. Prohibitively large in hardware
 * but the right instrument for separating interference effects from
 * training effects, which is exactly how the paper uses them.
 */

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "predictor/predictor.hpp"
#include "predictor/state.hpp"
#include "util/sat_counter.hpp"
#include "util/shift_register.hpp"

namespace copra::predictor {

/**
 * Interference-free gshare: a global history register, with a private
 * pattern history table per static branch (realized as a hash map keyed
 * by (pc, history)). Identical inputs to gshare, zero aliasing.
 */
class IfGshare : public Predictor
{
  public:
    /** @param history_bits Global history length (paper uses 16). */
    explicit IfGshare(unsigned history_bits = 16);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override;

    /** Number of distinct (pc, history) counters allocated so far. */
    size_t countersAllocated() const { return pht_.size(); }

    // State contract (DESIGN.md §14). Unbounded instrument: reports
    // the dynamically allocated counter population, not a budget.
    uint64_t
    stateBits() const override
    {
        return historyBits_ + uint64_t(2) * pht_.size();
    }

    void
    snapshotState(state::Writer &w) const override
    {
        w.u64(history_.value());
        state::writeMap(w, pht_, [](state::Writer &out, Counter2 c) {
            out.u8(c.v);
        });
    }

    void
    restoreState(state::Reader &r) override
    {
        history_.set(r.u64());
        state::readMap(r, pht_, [](state::Reader &in, Counter2 &c) {
            c.v = in.u8();
        });
    }

    COPRA_CONFIG_FIELDS(historyBits_);
    COPRA_STATE_FIELDS(history_, pht_);

  private:
    uint64_t keyOf(uint64_t pc) const noexcept;

    unsigned historyBits_;
    HistoryRegister history_;
    std::unordered_map<uint64_t, Counter2> pht_;
};

/**
 * Interference-free PAs: a private history register per static branch
 * (a "very large BTB", paper §4.1.3) and a private PHT per branch.
 */
class IfPas : public Predictor
{
  public:
    /** @param history_bits Per-branch history length. */
    explicit IfPas(unsigned history_bits = 12);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override;

    /** Number of static branches tracked so far. */
    size_t branchesTracked() const { return histories_.size(); }

    // State contract (DESIGN.md §14). Unbounded instrument: reports
    // the dynamically allocated population, not a budget.
    uint64_t
    stateBits() const override
    {
        return uint64_t(historyBits_) * histories_.size() +
            uint64_t(2) * pht_.size();
    }

    void
    snapshotState(state::Writer &w) const override
    {
        state::writeMap(w, histories_,
                        [](state::Writer &out, uint64_t h) { out.u64(h); });
        state::writeMap(w, pht_, [](state::Writer &out, Counter2 c) {
            out.u8(c.v);
        });
    }

    void
    restoreState(state::Reader &r) override
    {
        state::readMap(r, histories_,
                       [](state::Reader &in, uint64_t &h) { h = in.u64(); });
        state::readMap(r, pht_, [](state::Reader &in, Counter2 &c) {
            c.v = in.u8();
        });
    }

    COPRA_CONFIG_FIELDS(historyBits_, historyMask_);
    COPRA_STATE_FIELDS(histories_, pht_);

  private:
    uint64_t keyOf(uint64_t pc) const noexcept;

    unsigned historyBits_;
    uint64_t historyMask_;
    std::unordered_map<uint64_t, uint64_t> histories_;
    std::unordered_map<uint64_t, Counter2> pht_;
};

} // namespace copra::predictor

