/**
 * @file
 * Tournament predictor: a McFarling-style chooser over a global gshare
 * and a local PAs component, augmented with the front-end structures a
 * real fetch engine needs — a finite BTB (predictor/btb.hpp) and a
 * return-address stack.
 *
 * The direction machinery is the paper's hybrid idea taken to the Alpha
 * 21264 shape: per-pc-indexed 2-bit chooser counters arbitrate between
 * the components and train only when exactly one was correct. The BTB
 * miss model captures the fetch reality the paper abstracts away: a
 * conditional branch predicted taken whose target is absent from the
 * BTB cannot be fetched as taken, so the effective prediction degrades
 * to not-taken. Calls push their return address onto a bounded stack;
 * returns pop it, and the hit rate is reported (direction prediction is
 * unaffected — returns are unconditional). Semantics are documented in
 * DESIGN.md §13.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "predictor/btb.hpp"
#include "predictor/predictor.hpp"
#include "predictor/state.hpp"
#include "predictor/two_level.hpp"
#include "util/sat_counter.hpp"

namespace copra::predictor {

/** Geometry of a tournament predictor and its front-end structures. */
struct TournamentConfig
{
    unsigned globalHistory = 12; //!< gshare component history bits
    unsigned localHistory = 10;  //!< PAs component history bits
    unsigned localBhtBits = 10;  //!< PAs branch-history-table log2 size
    unsigned localSelectBits = 4; //!< PAs pc-select bits
    unsigned chooserBits = 12;   //!< log2 chooser counters

    BtbConfig btb = BtbConfig::finite(9, 4); //!< target buffer geometry
    unsigned returnStackDepth = 16; //!< RAS entries (0 disables)

    std::string label = "tournament";
};

/** Observable internals for tests, telemetry, and the analysis layer. */
struct TournamentStats
{
    uint64_t choseGlobal = 0;   //!< predictions served by gshare
    uint64_t choseLocal = 0;    //!< predictions served by PAs
    uint64_t chooserTrains = 0; //!< updates where exactly one was right
    uint64_t btbMissSquashes = 0; //!< taken predictions forced not-taken
    uint64_t returnsSeen = 0;   //!< Return records observed
    uint64_t returnHits = 0;    //!< returns whose popped address matched
    uint64_t returnUnderflows = 0; //!< returns that found an empty stack
};

/** A tournament predictor realized from a TournamentConfig. */
class Tournament : public Predictor
{
  public:
    explicit Tournament(const TournamentConfig &config);
    Tournament(Tournament &&) = default;
    ~Tournament() override;

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;

    /** Tracks calls/returns for the RAS and jump targets for the BTB. */
    void observe(const trace::BranchRecord &br) noexcept override;

    void reset() override;
    std::string name() const override;

    const TournamentConfig &config() const { return config_; }
    const TournamentStats &stats() const { return stats_; }

    /** BTB evictions so far (capacity/conflict pressure, for tests). */
    uint64_t btbEvictions() const { return btb_.evictions(); }

    // State contract (DESIGN.md §14): both direction components, the
    // chooser counters, the BTB (64-bit target payloads), and the
    // return-address stack with its cursor registers.
    uint64_t
    stateBits() const override
    {
        return global_.stateBits() + local_.stateBits() +
            uint64_t(2) * chooser_.size() + btb_.stateBits(64) +
            uint64_t(64) * returnStack_.size();
    }

    void
    snapshotState(state::Writer &w) const override
    {
        global_.snapshotState(w);
        local_.snapshotState(w);
        state::writeVec(w, chooser_, [](state::Writer &out, Counter2 c) {
            out.u8(c.v);
        });
        btb_.snapshot(w, [](state::Writer &out, const uint64_t &target) {
            out.u64(target);
        });
        state::writeVec(w, returnStack_,
                        [](state::Writer &out, uint64_t addr) {
                            out.u64(addr);
                        });
        w.u64(rasTop_);
        w.u64(rasSize_);
    }

    void
    restoreState(state::Reader &r) override
    {
        global_.restoreState(r);
        local_.restoreState(r);
        state::readVec(r, chooser_, [](state::Reader &in, Counter2 &c) {
            c.v = in.u8();
        });
        btb_.restore(r, [](state::Reader &in, uint64_t &target) {
            target = in.u64();
        });
        state::readVec(r, returnStack_,
                       [](state::Reader &in, uint64_t &addr) {
                           addr = in.u64();
                       });
        rasTop_ = size_t(r.u64());
        rasSize_ = size_t(r.u64());
    }

    COPRA_CONFIG_FIELDS(config_);
    COPRA_STATE_FIELDS(global_, local_, chooser_, btb_, returnStack_,
                       rasTop_, rasSize_);
    COPRA_TRANSIENT_FIELDS(stats_);

  protected:
    /**
     * Is @p pc present in the BTB? Virtual as the seam for the
     * differential harness's miss-model planted bug
     * (check/differential.cc); real subclasses are not expected.
     */
    virtual bool btbHit(uint64_t pc) const noexcept;

  private:
    size_t chooserIndex(uint64_t pc) const noexcept;

    TournamentConfig config_;
    TwoLevel global_; //!< gshare component
    TwoLevel local_;  //!< PAs component
    std::vector<Counter2> chooser_; //!< >= 2 selects global
    BtbTable<uint64_t> btb_; //!< pc -> last observed target
    std::vector<uint64_t> returnStack_; //!< bounded circular stack
    size_t rasTop_ = 0;  //!< next push slot
    size_t rasSize_ = 0; //!< live entries (<= depth)
    TournamentStats stats_;
};

} // namespace copra::predictor
