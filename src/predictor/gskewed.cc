#include "predictor/gskewed.hpp"

#include "util/logging.hpp"

namespace copra::predictor {

namespace {

/**
 * Seznec's skewing is built from an H function (a one-bit-feedback
 * shuffle); any family of distinct mixing functions preserves the
 * property that matters — two addresses colliding under one function
 * rarely collide under another. We use three odd-multiplier hashes.
 */
constexpr uint64_t kMultipliers[3] = {
    0x9E3779B97F4A7C15ull, // golden ratio
    0xC2B2AE3D27D4EB4Full, // from murmur3 finalization
    0x165667B19E3779F9ull,
};

} // namespace

GSkewed::GSkewed(unsigned history_bits, unsigned bank_bits)
    : historyBits_(history_bits), bankBits_(bank_bits),
      history_(history_bits)
{
    fatalIf(history_bits == 0 || history_bits > 32,
            "gskewed history bits must be in 1..32");
    fatalIf(bank_bits == 0 || bank_bits > 26,
            "gskewed bank bits must be in 1..26");
    for (auto &bank : banks_)
        bank.assign(size_t(1) << bank_bits, Counter2{});
}

size_t
GSkewed::bankIndex(unsigned bank, uint64_t pc) const noexcept
{
    uint64_t key = (history_.value() << 20) ^ (pc >> 2);
    uint64_t mixed = key * kMultipliers[bank];
    return (mixed >> (64 - bankBits_)) & ((size_t(1) << bankBits_) - 1);
}

bool
GSkewed::predict(const trace::BranchRecord &br) noexcept
{
    int votes = 0;
    for (unsigned b = 0; b < 3; ++b)
        if (banks_[b][bankIndex(b, br.pc)].taken())
            ++votes;
    return votes >= 2;
}

void
GSkewed::update(const trace::BranchRecord &br, bool taken) noexcept
{
    // Partial update: on a correct majority vote, only the banks that
    // voted with the outcome strengthen; on a mispredict, all banks
    // train toward the outcome.
    int votes = 0;
    bool bank_taken[3];
    for (unsigned b = 0; b < 3; ++b) {
        bank_taken[b] = banks_[b][bankIndex(b, br.pc)].taken();
        if (bank_taken[b])
            ++votes;
    }
    bool predicted = votes >= 2;
    for (unsigned b = 0; b < 3; ++b) {
        if (predicted == taken && bank_taken[b] != taken)
            continue; // correct vote: leave the dissenting bank alone
        banks_[b][bankIndex(b, br.pc)].update(taken);
    }
    history_.push(taken);
}

void
GSkewed::reset()
{
    history_.clear();
    for (auto &bank : banks_)
        std::fill(bank.begin(), bank.end(), Counter2{});
}

std::string
GSkewed::name() const
{
    return "gskewed(h=" + std::to_string(historyBits_) + ",3x2^" +
        std::to_string(bankBits_) + ")";
}

} // namespace copra::predictor
