#include "predictor/btb.hpp"

namespace copra::predictor {

std::string
BtbConfig::describe() const
{
    if (isPerfect())
        return "perfect";
    return std::to_string(size_t(1) << setBits) + "x" +
        std::to_string(ways);
}

} // namespace copra::predictor
