/**
 * @file
 * NEON index kernels — the only aarch64 TU allowed to use raw
 * intrinsics (copra_lint banned-api). NEON is architectural on
 * aarch64, so there is no CPU probe; the tier is still routed through
 * kernels::activeTier() so COPRA_SIMD=off selects the scalar twins.
 * As with AVX2, only shifts, masks and xors are used, so results are
 * bit-identical to the scalar kernels.
 *
 * Variable shifts use vshlq_u64 with a (possibly negative) signed
 * count vector, NEON's one shift-by-register form.
 */

#include "predictor/kernels.hpp"

#if defined(COPRA_HAVE_NEON)

#include <arm_neon.h>

namespace copra::predictor::kernels {

namespace {

COPRA_HOT void
xorIndicesNeon(const uint64_t *hist, const uint64_t *pc, size_t n,
               uint64_t history_mask, uint64_t pht_mask, uint32_t *idx) noexcept
{
    const uint64x2_t hm = vdupq_n_u64(history_mask);
    const uint64x2_t pm = vdupq_n_u64(pht_mask);
    const int64x2_t shr2 = vdupq_n_s64(-2);
    size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        uint64x2_t h = vld1q_u64(hist + k);
        uint64x2_t p = vld1q_u64(pc + k);
        uint64x2_t v = veorq_u64(vandq_u64(h, hm), vshlq_u64(p, shr2));
        v = vandq_u64(v, pm);
        idx[k] = static_cast<uint32_t>(vgetq_lane_u64(v, 0));
        idx[k + 1] = static_cast<uint32_t>(vgetq_lane_u64(v, 1));
    }
    for (; k < n; ++k)
        idx[k] = static_cast<uint32_t>(
            ((hist[k] & history_mask) ^ (pc[k] >> 2)) & pht_mask);
}

COPRA_HOT void
maskIndicesNeon(const uint64_t *hist, size_t n, uint64_t history_mask,
                uint64_t pht_mask, uint32_t *idx) noexcept
{
    uint64_t mask = history_mask & pht_mask;
    const uint64x2_t m = vdupq_n_u64(mask);
    size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        uint64x2_t v = vandq_u64(vld1q_u64(hist + k), m);
        idx[k] = static_cast<uint32_t>(vgetq_lane_u64(v, 0));
        idx[k + 1] = static_cast<uint32_t>(vgetq_lane_u64(v, 1));
    }
    for (; k < n; ++k)
        idx[k] = static_cast<uint32_t>(hist[k] & mask);
}

COPRA_HOT void
concatIndicesNeon(const uint64_t *hist, const uint64_t *pc, size_t n,
                  uint64_t history_mask, unsigned history_bits,
                  uint64_t select_mask, uint64_t pht_mask, uint32_t *idx) noexcept
{
    const uint64x2_t hm = vdupq_n_u64(history_mask);
    const uint64x2_t sm = vdupq_n_u64(select_mask);
    const uint64x2_t pm = vdupq_n_u64(pht_mask);
    const int64x2_t shr2 = vdupq_n_s64(-2);
    const int64x2_t shl = vdupq_n_s64(static_cast<int64_t>(history_bits));
    size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        uint64x2_t h = vld1q_u64(hist + k);
        uint64x2_t p = vld1q_u64(pc + k);
        uint64x2_t select = vandq_u64(vshlq_u64(p, shr2), sm);
        uint64x2_t v = vorrq_u64(vshlq_u64(select, shl), vandq_u64(h, hm));
        v = vandq_u64(v, pm);
        idx[k] = static_cast<uint32_t>(vgetq_lane_u64(v, 0));
        idx[k + 1] = static_cast<uint32_t>(vgetq_lane_u64(v, 1));
    }
    for (; k < n; ++k) {
        uint64_t select = (pc[k] >> 2) & select_mask;
        idx[k] = static_cast<uint32_t>(
            ((select << history_bits) | (hist[k] & history_mask)) &
            pht_mask);
    }
}

COPRA_HOT void
pcIndicesNeon(const uint64_t *pc, size_t n, uint64_t mask, uint32_t *idx) noexcept
{
    const uint64x2_t m = vdupq_n_u64(mask);
    const int64x2_t shr2 = vdupq_n_s64(-2);
    size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        uint64x2_t v = vandq_u64(vshlq_u64(vld1q_u64(pc + k), shr2), m);
        idx[k] = static_cast<uint32_t>(vgetq_lane_u64(v, 0));
        idx[k + 1] = static_cast<uint32_t>(vgetq_lane_u64(v, 1));
    }
    for (; k < n; ++k)
        idx[k] = static_cast<uint32_t>((pc[k] >> 2) & mask);
}

constexpr Kernels kNeon = {
    &xorIndicesNeon,
    &maskIndicesNeon,
    &concatIndicesNeon,
    &pcIndicesNeon,
};

} // namespace

const Kernels &
neonKernels()
{
    return kNeon;
}

} // namespace copra::predictor::kernels

#endif // COPRA_HAVE_NEON
