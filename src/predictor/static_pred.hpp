/**
 * @file
 * Static (non-adaptive) predictors: always-taken, always-not-taken, and
 * backward-taken/forward-not-taken. The profile-based "ideal static"
 * predictor lives in predictor/ideal_static.hpp.
 */

#pragma once

#include <cstdint>
#include <string>

#include "predictor/predictor.hpp"
#include "predictor/state.hpp"

namespace copra::predictor {

/** Predicts every branch taken. */
class AlwaysTaken : public Predictor
{
  public:
    bool predict(const trace::BranchRecord &) noexcept override { return true; }
    void update(const trace::BranchRecord &, bool) noexcept override {}
    void reset() override {}
    std::string name() const override { return "always-taken"; }

    COPRA_STATE_FIELDS();
    uint64_t stateBits() const override { return 0; }
    void snapshotState(state::Writer &) const override {}
    void restoreState(state::Reader &) override {}
};

/** Predicts every branch not-taken. */
class AlwaysNotTaken : public Predictor
{
  public:
    bool predict(const trace::BranchRecord &) noexcept override { return false; }
    void update(const trace::BranchRecord &, bool) noexcept override {}
    void reset() override {}
    std::string name() const override { return "always-not-taken"; }

    COPRA_STATE_FIELDS();
    uint64_t stateBits() const override { return 0; }
    void snapshotState(state::Writer &) const override {}
    void restoreState(state::Reader &) override {}
};

/**
 * Backward-taken / forward-not-taken: the classic static heuristic that
 * assumes backward branches close loops.
 */
class Btfnt : public Predictor
{
  public:
    bool
    predict(const trace::BranchRecord &br) noexcept override
    {
        return br.isBackward();
    }
    void update(const trace::BranchRecord &, bool) noexcept override {}
    void reset() override {}
    std::string name() const override { return "btfnt"; }

    COPRA_STATE_FIELDS();
    uint64_t stateBits() const override { return 0; }
    void snapshotState(state::Writer &) const override {}
    void restoreState(state::Reader &) override {}
};

} // namespace copra::predictor

