/**
 * @file
 * AVX2 index kernels — the only x86 TU allowed to use raw intrinsics
 * (copra_lint banned-api). Compiled with -mavx2 and selected at
 * runtime behind kernels::activeTier(), so the binary still runs on
 * pre-AVX2 CPUs. Every kernel performs the same integer arithmetic as
 * its scalar twin in kernels.cc: shifts, masks and xors only, so the
 * results are bit-identical and the differential gate can compare the
 * tiers directly.
 */

#include "predictor/kernels.hpp"

#if defined(COPRA_HAVE_AVX2)

#include <immintrin.h>

namespace copra::predictor::kernels {

namespace {

/**
 * Store the low 32 bits of each 64-bit lane of @p v (all values fit in
 * 28 bits here) to idx[0..3].
 */
inline void
storeNarrowed(__m256i v, uint32_t *idx) noexcept
{
    const __m256i perm = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    __m256i packed = _mm256_permutevar8x32_epi32(v, perm);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(idx),
                     _mm256_castsi256_si128(packed));
}

COPRA_HOT void
xorIndicesAvx2(const uint64_t *hist, const uint64_t *pc, size_t n,
               uint64_t history_mask, uint64_t pht_mask, uint32_t *idx) noexcept
{
    const __m256i hm = _mm256_set1_epi64x(static_cast<long long>(history_mask));
    const __m256i pm = _mm256_set1_epi64x(static_cast<long long>(pht_mask));
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i h = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(hist + k));
        __m256i p = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pc + k));
        __m256i v = _mm256_xor_si256(_mm256_and_si256(h, hm),
                                     _mm256_srli_epi64(p, 2));
        storeNarrowed(_mm256_and_si256(v, pm), idx + k);
    }
    for (; k < n; ++k)
        idx[k] = static_cast<uint32_t>(
            ((hist[k] & history_mask) ^ (pc[k] >> 2)) & pht_mask);
}

COPRA_HOT void
maskIndicesAvx2(const uint64_t *hist, size_t n, uint64_t history_mask,
                uint64_t pht_mask, uint32_t *idx) noexcept
{
    uint64_t mask = history_mask & pht_mask;
    const __m256i m = _mm256_set1_epi64x(static_cast<long long>(mask));
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i h = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(hist + k));
        storeNarrowed(_mm256_and_si256(h, m), idx + k);
    }
    for (; k < n; ++k)
        idx[k] = static_cast<uint32_t>(hist[k] & mask);
}

COPRA_HOT void
concatIndicesAvx2(const uint64_t *hist, const uint64_t *pc, size_t n,
                  uint64_t history_mask, unsigned history_bits,
                  uint64_t select_mask, uint64_t pht_mask, uint32_t *idx) noexcept
{
    const __m256i hm = _mm256_set1_epi64x(static_cast<long long>(history_mask));
    const __m256i sm = _mm256_set1_epi64x(static_cast<long long>(select_mask));
    const __m256i pm = _mm256_set1_epi64x(static_cast<long long>(pht_mask));
    const __m128i hb = _mm_cvtsi32_si128(static_cast<int>(history_bits));
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i h = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(hist + k));
        __m256i p = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pc + k));
        __m256i select = _mm256_and_si256(_mm256_srli_epi64(p, 2), sm);
        __m256i v = _mm256_or_si256(_mm256_sll_epi64(select, hb),
                                    _mm256_and_si256(h, hm));
        storeNarrowed(_mm256_and_si256(v, pm), idx + k);
    }
    for (; k < n; ++k) {
        uint64_t select = (pc[k] >> 2) & select_mask;
        idx[k] = static_cast<uint32_t>(
            ((select << history_bits) | (hist[k] & history_mask)) &
            pht_mask);
    }
}

COPRA_HOT void
pcIndicesAvx2(const uint64_t *pc, size_t n, uint64_t mask, uint32_t *idx) noexcept
{
    const __m256i m = _mm256_set1_epi64x(static_cast<long long>(mask));
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i p = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pc + k));
        storeNarrowed(_mm256_and_si256(_mm256_srli_epi64(p, 2), m),
                      idx + k);
    }
    for (; k < n; ++k)
        idx[k] = static_cast<uint32_t>((pc[k] >> 2) & mask);
}

constexpr Kernels kAvx2 = {
    &xorIndicesAvx2,
    &maskIndicesAvx2,
    &concatIndicesAvx2,
    &pcIndicesAvx2,
};

} // namespace

const Kernels &
avx2Kernels()
{
    return kAvx2;
}

} // namespace copra::predictor::kernels

#endif // COPRA_HAVE_AVX2
