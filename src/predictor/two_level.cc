#include "predictor/two_level.hpp"

#include <algorithm>

#include "predictor/kernels.hpp"
#include "util/logging.hpp"

namespace copra::predictor {

TwoLevelConfig
TwoLevelConfig::gshare(unsigned h)
{
    TwoLevelConfig c;
    c.scope = Scope::Global;
    c.index = Index::Xor;
    c.historyBits = h;
    c.phtBits = h;
    c.label = "gshare(h=" + std::to_string(h) + ")";
    return c;
}

TwoLevelConfig
TwoLevelConfig::gag(unsigned h)
{
    TwoLevelConfig c;
    c.scope = Scope::Global;
    c.index = Index::HistoryOnly;
    c.historyBits = h;
    c.phtBits = h;
    c.label = "GAg(h=" + std::to_string(h) + ")";
    return c;
}

TwoLevelConfig
TwoLevelConfig::gas(unsigned h, unsigned pc_select)
{
    TwoLevelConfig c;
    c.scope = Scope::Global;
    c.index = Index::Concat;
    c.historyBits = h;
    c.pcSelectBits = pc_select;
    c.phtBits = h + pc_select;
    c.label = "GAs(h=" + std::to_string(h) + ",s=" +
        std::to_string(pc_select) + ")";
    return c;
}

TwoLevelConfig
TwoLevelConfig::pas(unsigned h, unsigned bht_bits, unsigned pc_select)
{
    TwoLevelConfig c;
    c.scope = Scope::PerAddress;
    c.index = Index::Concat;
    c.historyBits = h;
    c.bhtBits = bht_bits;
    c.pcSelectBits = pc_select;
    c.phtBits = h + pc_select;
    c.label = "PAs(h=" + std::to_string(h) + ",bht=" +
        std::to_string(bht_bits) + ",s=" + std::to_string(pc_select) + ")";
    return c;
}

TwoLevelConfig
TwoLevelConfig::pag(unsigned h, unsigned bht_bits)
{
    TwoLevelConfig c;
    c.scope = Scope::PerAddress;
    c.index = Index::HistoryOnly;
    c.historyBits = h;
    c.bhtBits = bht_bits;
    c.phtBits = h;
    c.label = "PAg(h=" + std::to_string(h) + ",bht=" +
        std::to_string(bht_bits) + ")";
    return c;
}

TwoLevel::TwoLevel(const TwoLevelConfig &config)
    : config_(config)
{
    fatalIf(config.historyBits == 0 || config.historyBits > 32,
            "two-level history bits must be in 1..32");
    fatalIf(config.phtBits == 0 || config.phtBits > 28,
            "two-level PHT bits must be in 1..28");
    fatalIf(config.scope == TwoLevelConfig::Scope::PerAddress &&
            (config.bhtBits == 0 || config.bhtBits > 24),
            "two-level BHT bits must be in 1..24");
    fatalIf(config.counterBits == 0 || config.counterBits > 8,
            "two-level counter bits must be in 1..8");

    historyMask_ = (uint64_t(1) << config.historyBits) - 1;
    phtMask_ = (size_t(1) << config.phtBits) - 1;
    counterMax_ = static_cast<uint8_t>((1u << config.counterBits) - 1);
    // Weakly-not-taken: the largest value still predicting not-taken.
    counterInit_ = static_cast<uint8_t>((counterMax_ + 1) / 2 - 1);
    size_t n_hist = config.scope == TwoLevelConfig::Scope::Global
        ? 1 : (size_t(1) << config.bhtBits);
    histories_.assign(n_hist, 0);
    pht_.assign(size_t(1) << config.phtBits, counterInit_);
    // The batch path is hot-region code (DESIGN.md §15): resolve the
    // kernel dispatch once (activeTier's guarded init is a lock) and
    // pre-size the tile scratch so the loop never touches the heap.
    kernels_ = &kernels::active();
    histScratch_.resize(kKernelTile);
    idxScratch_.resize(kKernelTile);
}

uint64_t &
TwoLevel::historyFor(uint64_t pc) noexcept
{
    if (config_.scope == TwoLevelConfig::Scope::Global)
        return histories_[0];
    size_t idx = (pc >> 2) & ((size_t(1) << config_.bhtBits) - 1);
    return histories_[idx];
}

uint64_t
TwoLevel::historyFor(uint64_t pc) const noexcept
{
    return const_cast<TwoLevel *>(this)->historyFor(pc);
}

size_t
TwoLevel::phtIndex(uint64_t pc) const noexcept
{
    uint64_t hist = historyFor(pc) & historyMask_;
    uint64_t pc_bits = pc >> 2;
    switch (config_.index) {
      case TwoLevelConfig::Index::HistoryOnly:
        return hist & phtMask_;
      case TwoLevelConfig::Index::Concat:
        {
            uint64_t select =
                pc_bits & ((uint64_t(1) << config_.pcSelectBits) - 1);
            return ((select << config_.historyBits) | hist) & phtMask_;
        }
      case TwoLevelConfig::Index::Xor:
        return (hist ^ pc_bits) & phtMask_;
    }
    return 0;
}

bool
TwoLevel::predict(const trace::BranchRecord &br) noexcept
{
    return pht_[phtIndex(br.pc)] > counterInit_;
}

void
TwoLevel::update(const trace::BranchRecord &br, bool taken) noexcept
{
    uint8_t &counter = pht_[phtIndex(br.pc)];
    if (taken) {
        if (counter < counterMax_)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
    uint64_t &hist = historyFor(br.pc);
    hist = ((hist << 1) | (taken ? 1 : 0)) & historyMask_;
}

uint64_t
TwoLevel::predictUpdateBatch(std::span<const trace::BranchRecord> batch,
                             uint8_t *correct_out) noexcept
{
    uint64_t n_correct = 0;
    size_t i = 0;
    for (const trace::BranchRecord &br : batch) {
        uint8_t &counter = pht_[phtIndex(br.pc)];
        bool prediction = counter > counterInit_;
        bool taken = br.taken;
        if (taken) {
            if (counter < counterMax_)
                ++counter;
        } else {
            if (counter > 0)
                --counter;
        }
        uint64_t &hist = historyFor(br.pc);
        hist = ((hist << 1) | (taken ? 1 : 0)) & historyMask_;

        bool correct = prediction == taken;
        n_correct += correct ? 1 : 0;
        if (correct_out)
            correct_out[i] = correct ? 1 : 0;
        ++i;
    }
    return n_correct;
}

uint64_t
TwoLevel::predictUpdateSoa(const SoaBatch &batch, uint8_t *correct_out) noexcept
{
    if (batch.count == 0)
        return 0;
    kernelCounts_.note(batch.count);
    return config_.scope == TwoLevelConfig::Scope::Global
        ? runGlobalSoa(batch, correct_out)
        : runPerAddressSoa(batch, correct_out);
}

uint64_t
TwoLevel::runGlobalSoa(const SoaBatch &batch, uint8_t *correct_out) noexcept
{
    // The global history register evolves only from the outcomes, so
    // per-branch history words — and hence every PHT index — are known
    // before any counter is touched. historyFill leaves the words
    // unmasked; masking distributes over the shift chain, so masking
    // once inside the index kernels is equivalent to the per-step
    // masking the scalar path performs.
    const kernels::Kernels &k = *kernels_;
    const uint64_t select_mask =
        (uint64_t(1) << config_.pcSelectBits) - 1;
    uint64_t w = histories_[0];
    uint64_t n_correct = 0;
    size_t base = 0;
    while (base < batch.count) {
        size_t n = std::min(kKernelTile, batch.count - base);
        w = kernels::historyFill(batch.taken + base, n, w,
                                 histScratch_.data());
        switch (config_.index) {
          case TwoLevelConfig::Index::HistoryOnly:
            k.maskIndices(histScratch_.data(), n, historyMask_, phtMask_,
                          idxScratch_.data());
            break;
          case TwoLevelConfig::Index::Concat:
            k.concatIndices(histScratch_.data(), batch.pc + base, n,
                            historyMask_, config_.historyBits,
                            select_mask, phtMask_, idxScratch_.data());
            break;
          case TwoLevelConfig::Index::Xor:
            k.xorIndices(histScratch_.data(), batch.pc + base, n,
                         historyMask_, phtMask_, idxScratch_.data());
            break;
        }
        // Counter training stays serial: two branches in one tile may
        // alias the same counter, and the second prediction must see
        // the first update.
        for (size_t j = 0; j < n; ++j) {
            uint8_t &counter = pht_[idxScratch_[j]];
            bool prediction = counter > counterInit_;
            uint8_t t = batch.taken[base + j];
            if (t) {
                if (counter < counterMax_)
                    ++counter;
            } else {
                if (counter > 0)
                    --counter;
            }
            bool correct = prediction == (t != 0);
            n_correct += correct ? 1 : 0;
            if (correct_out)
                correct_out[base + j] = correct ? 1 : 0;
        }
        base += n;
    }
    histories_[0] = w & historyMask_;
    return n_correct;
}

uint64_t
TwoLevel::runPerAddressSoa(const SoaBatch &batch, uint8_t *correct_out) noexcept
{
    // Per-address histories serialize on the BHT row, so only the row
    // lookup vectorizes; the PHT index still needs the just-updated
    // row history. Hoisting the index flavour out of the loop is the
    // remaining win over the record-based batch path.
    const kernels::Kernels &k = *kernels_;
    const uint64_t select_mask =
        (uint64_t(1) << config_.pcSelectBits) - 1;
    const uint64_t bht_mask = (uint64_t(1) << config_.bhtBits) - 1;
    uint64_t n_correct = 0;
    size_t base = 0;
    while (base < batch.count) {
        size_t n = std::min(kKernelTile, batch.count - base);
        k.pcIndices(batch.pc + base, n, bht_mask, idxScratch_.data());
        auto train = [&](auto pht_index_of) {
            for (size_t j = 0; j < n; ++j) {
                uint64_t &hist_reg = histories_[idxScratch_[j]];
                uint64_t pc_bits = batch.pc[base + j] >> 2;
                uint8_t &counter =
                    pht_[pht_index_of(pc_bits, hist_reg & historyMask_)];
                bool prediction = counter > counterInit_;
                uint8_t t = batch.taken[base + j];
                if (t) {
                    if (counter < counterMax_)
                        ++counter;
                } else {
                    if (counter > 0)
                        --counter;
                }
                hist_reg = ((hist_reg << 1) | t) & historyMask_;
                bool correct = prediction == (t != 0);
                n_correct += correct ? 1 : 0;
                if (correct_out)
                    correct_out[base + j] = correct ? 1 : 0;
            }
        };
        switch (config_.index) {
          case TwoLevelConfig::Index::HistoryOnly:
            train([&](uint64_t, uint64_t hist) {
                return hist & phtMask_;
            });
            break;
          case TwoLevelConfig::Index::Concat:
            train([&](uint64_t pc_bits, uint64_t hist) {
                uint64_t select = pc_bits & select_mask;
                return ((select << config_.historyBits) | hist) &
                    phtMask_;
            });
            break;
          case TwoLevelConfig::Index::Xor:
            train([&](uint64_t pc_bits, uint64_t hist) {
                return (hist ^ pc_bits) & phtMask_;
            });
            break;
        }
        base += n;
    }
    return n_correct;
}

void
TwoLevel::reset()
{
    std::fill(histories_.begin(), histories_.end(), 0);
    std::fill(pht_.begin(), pht_.end(), counterInit_);
}

std::string
TwoLevel::name() const
{
    return config_.label;
}

} // namespace copra::predictor
