/**
 * @file
 * A finite set-associative branch target buffer substrate.
 *
 * The paper's loop and block-pattern class predictors keep per-branch
 * counts "in a perfect BTB to prevent interference from affecting our
 * classification" (§4.1.1). This table makes the perfection assumption
 * ablatable: the same predictors can run over a finite, set-associative,
 * LRU-replaced BTB, exposing the capacity and conflict effects a real
 * implementation would see (bench/ablation_btb).
 */

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/logging.hpp"

namespace copra::predictor {

/** Geometry of a finite BTB. setBits = 0 and ways = 0 mean "perfect". */
struct BtbConfig
{
    unsigned setBits = 0; //!< log2 number of sets (0 with ways=0: perfect)
    unsigned ways = 0;    //!< associativity

    /** A perfect (unbounded, interference-free) table. */
    static BtbConfig perfect() { return {0, 0}; }

    /** A finite table with 2^set_bits sets of @p ways entries. */
    static BtbConfig
    finite(unsigned set_bits, unsigned ways)
    {
        return {set_bits, ways};
    }

    bool isPerfect() const { return ways == 0; }

    /** Total entries (0 = unbounded). */
    size_t
    entries() const
    {
        return isPerfect() ? 0 : (size_t(1) << setBits) * ways;
    }

    std::string describe() const;
};

/**
 * Set-associative, LRU-replaced table of per-branch state, tagged by
 * full pc. With a perfect config it degrades to an unbounded hash map.
 *
 * @tparam State Per-branch payload (default-constructed on allocation).
 */
template <typename State>
class BtbTable
{
  public:
    explicit BtbTable(const BtbConfig &config = BtbConfig::perfect())
        : config_(config)
    {
        if (!config_.isPerfect()) {
            fatalIf(config_.setBits > 24, "BTB set bits must be <= 24");
            fatalIf(config_.ways > 64, "BTB associativity must be <= 64");
            sets_.resize(size_t(1) << config_.setBits);
            for (auto &set : sets_)
                set.reserve(config_.ways);
        }
    }

    const BtbConfig &config() const { return config_; }

    /** Entries currently allocated. */
    size_t
    size() const
    {
        if (config_.isPerfect())
            return perfect_.size();
        size_t n = 0;
        for (const auto &set : sets_)
            n += set.size();
        return n;
    }

    /** Misses that caused an eviction (0 for perfect tables). */
    uint64_t evictions() const { return evictions_; }

    /**
     * Look up @p pc without modifying replacement state.
     * @return Pointer to the entry's state, or nullptr on miss.
     */
    const State *
    find(uint64_t pc) const
    {
        if (config_.isPerfect()) {
            auto it = perfect_.find(pc);
            return it == perfect_.end() ? nullptr : &it->second;
        }
        const auto &set = sets_[setOf(pc)];
        for (const auto &entry : set)
            if (entry.pc == pc)
                return &entry.state;
        return nullptr;
    }

    /**
     * Look up @p pc, allocating (and possibly evicting the LRU entry of
     * the set) on a miss. Freshly allocated entries hold a
     * default-constructed State. Updates LRU state.
     */
    State &
    access(uint64_t pc)
    {
        if (config_.isPerfect())
            return perfect_[pc];

        auto &set = sets_[setOf(pc)];
        ++tick_;
        for (auto &entry : set) {
            if (entry.pc == pc) {
                entry.lastUse = tick_;
                return entry.state;
            }
        }
        if (set.size() < config_.ways) {
            set.push_back({pc, tick_, State{}});
            return set.back().state;
        }
        // Evict the least recently used way.
        size_t victim = 0;
        for (size_t i = 1; i < set.size(); ++i)
            if (set[i].lastUse < set[victim].lastUse)
                victim = i;
        ++evictions_;
        set[victim] = {pc, tick_, State{}};
        return set[victim].state;
    }

    /** Drop all entries and statistics. */
    void
    clear()
    {
        perfect_.clear();
        for (auto &set : sets_)
            set.clear();
        evictions_ = 0;
        tick_ = 0;
    }

  private:
    struct Entry
    {
        uint64_t pc;
        uint64_t lastUse;
        State state;
    };

    size_t
    setOf(uint64_t pc) const
    {
        return (pc >> 2) & ((size_t(1) << config_.setBits) - 1);
    }

    BtbConfig config_;
    std::unordered_map<uint64_t, State> perfect_;
    std::vector<std::vector<Entry>> sets_;
    uint64_t evictions_ = 0;
    uint64_t tick_ = 0;
};

} // namespace copra::predictor

