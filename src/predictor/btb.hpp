/**
 * @file
 * A finite set-associative branch target buffer substrate.
 *
 * The paper's loop and block-pattern class predictors keep per-branch
 * counts "in a perfect BTB to prevent interference from affecting our
 * classification" (§4.1.1). This table makes the perfection assumption
 * ablatable: the same predictors can run over a finite, set-associative,
 * LRU-replaced BTB, exposing the capacity and conflict effects a real
 * implementation would see (bench/ablation_btb).
 */

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "predictor/state.hpp"
#include "util/logging.hpp"

namespace copra::predictor {

/** Geometry of a finite BTB. setBits = 0 and ways = 0 mean "perfect". */
struct BtbConfig
{
    unsigned setBits = 0; //!< log2 number of sets (0 with ways=0: perfect)
    unsigned ways = 0;    //!< associativity

    /** A perfect (unbounded, interference-free) table. */
    static BtbConfig perfect() { return {0, 0}; }

    /** A finite table with 2^set_bits sets of @p ways entries. */
    static BtbConfig
    finite(unsigned set_bits, unsigned ways)
    {
        return {set_bits, ways};
    }

    bool isPerfect() const noexcept { return ways == 0; }

    /** Total entries (0 = unbounded). */
    size_t
    entries() const
    {
        return isPerfect() ? 0 : (size_t(1) << setBits) * ways;
    }

    std::string describe() const;
};

/**
 * Set-associative, LRU-replaced table of per-branch state, tagged by
 * full pc. With a perfect config it degrades to an unbounded hash map.
 *
 * @tparam State Per-branch payload (default-constructed on allocation).
 */
template <typename State>
class BtbTable
{
  public:
    explicit BtbTable(const BtbConfig &config = BtbConfig::perfect())
        : config_(config)
    {
        if (!config_.isPerfect()) {
            fatalIf(config_.setBits > 24, "BTB set bits must be <= 24");
            fatalIf(config_.ways > 64, "BTB associativity must be <= 64");
            sets_.resize(size_t(1) << config_.setBits);
            for (auto &set : sets_)
                set.reserve(config_.ways);
        }
    }

    const BtbConfig &config() const { return config_; }

    /** Entries currently allocated. */
    size_t
    size() const
    {
        if (config_.isPerfect())
            return perfect_.size();
        size_t n = 0;
        for (const auto &set : sets_)
            n += set.size();
        return n;
    }

    /** Misses that caused an eviction (0 for perfect tables). */
    uint64_t evictions() const { return evictions_; }

    /**
     * Look up @p pc without modifying replacement state.
     * @return Pointer to the entry's state, or nullptr on miss.
     */
    const State *
    find(uint64_t pc) const
    {
        if (config_.isPerfect()) {
            auto it = perfect_.find(pc);
            return it == perfect_.end() ? nullptr : &it->second;
        }
        const auto &set = sets_[setOf(pc)];
        for (const auto &entry : set)
            if (entry.pc == pc)
                return &entry.state;
        return nullptr;
    }

    /**
     * Look up @p pc, allocating (and possibly evicting the LRU entry of
     * the set) on a miss. Freshly allocated entries hold a
     * default-constructed State. Updates LRU state.
     */
    State &
    access(uint64_t pc) noexcept
    {
        if (config_.isPerfect())
            return perfect_[pc];

        auto &set = sets_[setOf(pc)];
        ++tick_;
        for (auto &entry : set) {
            if (entry.pc == pc) {
                entry.lastUse = tick_;
                return entry.state;
            }
        }
        if (set.size() < config_.ways) {
            // First-touch fill of a BTB way (perfect BTBs grow one way
            // per static branch); growth stops once the working set is
            // resident, so the steady state measured by --hot-gates
            // allocates nothing.
            // copra-lint: allow(hot-alloc) -- first-touch fill, stops in steady state
            set.push_back({pc, tick_, State{}});
            return set.back().state;
        }
        // Evict the least recently used way.
        size_t victim = 0;
        for (size_t i = 1; i < set.size(); ++i)
            if (set[i].lastUse < set[victim].lastUse)
                victim = i;
        ++evictions_;
        set[victim] = {pc, tick_, State{}};
        return set[victim].state;
    }

    /**
     * Architectural bits at the current occupancy: a full-pc tag plus
     * @p payload_bits per live entry, and an LRU timestamp per entry
     * for finite tables. Perfect tables grow without bound, so this is
     * a measurement of the run, not of a hardware budget.
     */
    uint64_t
    stateBits(uint64_t payload_bits) const
    {
        uint64_t per = 64 + payload_bits + (config_.isPerfect() ? 0 : 64);
        return uint64_t(size()) * per;
    }

    /**
     * Serialize the table through @p write_state, one call per live
     * payload. Perfect-mode entries are written in sorted pc order so
     * snapshots never depend on hash-table iteration order.
     */
    template <typename WriteState>
    void
    snapshot(state::Writer &w, WriteState &&write_state) const
    {
        w.u64(evictions_);
        w.u64(tick_);
        if (config_.isPerfect()) {
            state::writeMap(w, perfect_, write_state);
            return;
        }
        w.u64(sets_.size());
        for (const auto &set : sets_) {
            w.u64(set.size());
            for (const Entry &entry : set) {
                w.u64(entry.pc);
                w.u64(entry.lastUse);
                write_state(w, entry.state);
            }
        }
    }

    /** Restore a snapshot() stream; geometry mismatches panic. */
    template <typename ReadState>
    void
    restore(state::Reader &r, ReadState &&read_state)
    {
        evictions_ = r.u64();
        tick_ = r.u64();
        if (config_.isPerfect()) {
            state::readMap(r, perfect_, read_state);
            return;
        }
        uint64_t n_sets = r.u64();
        panicIf(n_sets != sets_.size(),
                "BtbTable restore: set-count mismatch");
        for (auto &set : sets_) {
            set.clear();
            uint64_t n = r.u64();
            panicIf(n > config_.ways,
                    "BtbTable restore: overfull set in snapshot");
            for (uint64_t i = 0; i < n; ++i) {
                Entry entry{};
                entry.pc = r.u64();
                entry.lastUse = r.u64();
                read_state(r, entry.state);
                set.push_back(entry);
            }
        }
    }

    /** Drop all entries and statistics. */
    void
    clear()
    {
        perfect_.clear();
        for (auto &set : sets_)
            set.clear();
        evictions_ = 0;
        tick_ = 0;
    }

  private:
    struct Entry
    {
        uint64_t pc;
        uint64_t lastUse;
        State state;
    };

    size_t
    setOf(uint64_t pc) const noexcept
    {
        return (pc >> 2) & ((size_t(1) << config_.setBits) - 1);
    }

    BtbConfig config_;
    std::unordered_map<uint64_t, State> perfect_;
    std::vector<std::vector<Entry>> sets_;
    uint64_t evictions_ = 0;
    uint64_t tick_ = 0;
};

} // namespace copra::predictor

