/**
 * @file
 * The branch direction predictor interface.
 *
 * Every predictor in the zoo — static, bimodal, two-level, interference
 * free, loop/pattern, hybrid, and the paper's hypothetical selective
 * history predictor — implements this interface, so the simulation driver
 * and the analysis passes are predictor-agnostic.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "predictor/state.hpp"
#include "trace/branch_record.hpp"
#include "util/hot.hpp"
#include "util/logging.hpp"

namespace copra::predictor {

/**
 * One run of consecutive conditional branches in structure-of-arrays
 * form (columns borrowed from trace::SoABlocks, offset to the run).
 * records points at the same branches in AoS form so the default
 * predictUpdateSoa can fall back to the record-based batch path.
 */
struct SoaBatch
{
    const uint64_t *pc = nullptr;    //!< branch addresses
    const uint8_t *taken = nullptr;  //!< outcomes, 0/1
    const trace::BranchRecord *records = nullptr; //!< AoS mirror
    size_t count = 0;
};

/**
 * Abstract branch direction predictor.
 *
 * Contract: the driver calls predict() then update() exactly once per
 * dynamic conditional branch, in trace order. predict() must not examine
 * the record's `taken` field — the outcome is delivered via update().
 *
 * The five prediction-path virtuals (predict, update, observe, and the
 * two batch entry points) are `noexcept`: they sit inside the
 * COPRA_HOT region, which is exception-free, allocation-free, and
 * lock-free per branch after warm-up (DESIGN.md §15). Contract
 * violations still die loudly through the [[noreturn]] panic/fatal
 * frontier — that is termination, not unwinding.
 */
class Predictor
{
  public:
    virtual ~Predictor() = default;

    /**
     * Predict the direction of a conditional branch.
     *
     * @param br The branch about to execute. Implementations may use the
     *           pc and target fields only.
     * @return true for predicted taken.
     */
    virtual bool predict(const trace::BranchRecord &br) noexcept = 0;

    /**
     * Train on the resolved outcome of the branch most recently passed to
     * predict().
     *
     * @param br The same record passed to predict().
     * @param taken The actual outcome.
     */
    virtual void update(const trace::BranchRecord &br,
                        bool taken) noexcept = 0;

    /**
     * Observe a non-conditional control transfer (jump, call, return).
     * The driver delivers these in trace order between conditional
     * branches; most predictors ignore them, but path- and
     * iteration-aware predictors (e.g. the selective-history predictor)
     * need them for bookkeeping.
     */
    virtual void observe(const trace::BranchRecord &) noexcept {}

    /**
     * Predict-and-train a run of consecutive conditional branches in
     * one call, equivalent to predict(); update(rec, rec.taken) per
     * record in order. The simulation driver feeds batches through this
     * entry point so hot predictors can override it with a devirtualized
     * inner loop; the default keeps the two-virtual-calls-per-branch
     * behaviour, so overriding is purely an optimization and never
     * changes results.
     *
     * @param batch Consecutive conditional records, in trace order.
     * @param correct_out When non-null, receives one 0/1 entry per
     *                    record: was the prediction correct?
     * @return Number of correct predictions in the batch.
     */
    COPRA_HOT virtual uint64_t
    predictUpdateBatch(std::span<const trace::BranchRecord> batch,
                       uint8_t *correct_out) noexcept
    {
        uint64_t n_correct = 0;
        size_t i = 0;
        for (const trace::BranchRecord &br : batch) {
            bool correct = predict(br) == br.taken;
            update(br, br.taken);
            n_correct += correct ? 1 : 0;
            if (correct_out)
                correct_out[i] = correct ? 1 : 0;
            ++i;
        }
        return n_correct;
    }

    /**
     * Column-based twin of predictUpdateBatch: the driver hands each
     * conditional run as SoA columns so hot predictors can run batch
     * index kernels over contiguous pc/taken arrays (see
     * predictor/kernels.hpp). The default routes through
     * predictUpdateBatch via the batch's AoS mirror, so overriding is
     * purely an optimization and never changes results — the
     * differential suite compares every overriding predictor against
     * the scalar path.
     *
     * @param batch Consecutive conditional branches, in trace order.
     * @param correct_out When non-null, receives one 0/1 entry per
     *                    record: was the prediction correct?
     * @return Number of correct predictions in the batch.
     */
    COPRA_HOT virtual uint64_t
    predictUpdateSoa(const SoaBatch &batch, uint8_t *correct_out) noexcept
    {
        return predictUpdateBatch({batch.records, batch.count},
                                  correct_out);
    }

    /** Forget all adaptive state. */
    virtual void reset() = 0;

    /** Stable display name, e.g. "gshare(h=16)". */
    virtual std::string name() const = 0;

    // --- State contract (DESIGN.md §14) ----------------------------
    //
    // Roster predictors implement exact bit accounting and byte-stable
    // snapshot/restore; the copra_lint sema pass proves every member
    // field is covered by the contract, and copra_check's differential
    // state gates prove the snapshot is complete. The defaults panic
    // rather than being pure virtual so analysis-side helpers and test
    // stubs that are never snapshotted keep compiling unchanged.

    /**
     * Architectural state budget in bits at the current occupancy:
     * table counters, history registers, and tags. Unbounded
     * instruments (interference-free predictors, perfect BTBs) report
     * their dynamically allocated size. Inter-call latches and
     * telemetry are serialized by snapshotState() but not counted.
     */
    virtual uint64_t
    stateBits() const
    {
        panic("predictor '" + name() + "' implements no state "
              "contract (stateBits); roster predictors must");
    }

    /** Serialize every COPRA_STATE_FIELDS member, byte-stably. */
    virtual void
    snapshotState(state::Writer &) const
    {
        panic("predictor '" + name() + "' implements no state "
              "contract (snapshotState); roster predictors must");
    }

    /**
     * Restore state written by snapshotState() on a predictor of the
     * same configuration. Geometry mismatches panic.
     */
    virtual void
    restoreState(state::Reader &)
    {
        panic("predictor '" + name() + "' implements no state "
              "contract (restoreState); roster predictors must");
    }

    /** snapshotState() into a fresh byte buffer. */
    std::vector<uint8_t>
    snapshot() const
    {
        state::Writer w;
        snapshotState(w);
        return w.take();
    }

    /** restoreState() from @p bytes; trailing bytes panic. */
    void
    restore(std::span<const uint8_t> bytes)
    {
        state::Reader r(bytes);
        restoreState(r);
        panicIf(r.remaining() != 0,
                "predictor '" + name() + "' left " +
                    std::to_string(r.remaining()) +
                    " trailing snapshot bytes unconsumed");
    }

    /** FNV-1a over snapshot(): equal state implies equal hash, and
     *  the snapshot-completeness gate probes the converse. */
    uint64_t
    stateHash() const
    {
        std::vector<uint8_t> bytes = snapshot();
        return state::fnv1a(bytes);
    }
};

using PredictorPtr = std::unique_ptr<Predictor>;

} // namespace copra::predictor

