/**
 * @file
 * The branch direction predictor interface.
 *
 * Every predictor in the zoo — static, bimodal, two-level, interference
 * free, loop/pattern, hybrid, and the paper's hypothetical selective
 * history predictor — implements this interface, so the simulation driver
 * and the analysis passes are predictor-agnostic.
 */

#ifndef COPRA_PREDICTOR_PREDICTOR_HPP
#define COPRA_PREDICTOR_PREDICTOR_HPP

#include <memory>
#include <string>

#include "trace/branch_record.hpp"

namespace copra::predictor {

/**
 * Abstract branch direction predictor.
 *
 * Contract: the driver calls predict() then update() exactly once per
 * dynamic conditional branch, in trace order. predict() must not examine
 * the record's `taken` field — the outcome is delivered via update().
 */
class Predictor
{
  public:
    virtual ~Predictor() = default;

    /**
     * Predict the direction of a conditional branch.
     *
     * @param br The branch about to execute. Implementations may use the
     *           pc and target fields only.
     * @return true for predicted taken.
     */
    virtual bool predict(const trace::BranchRecord &br) = 0;

    /**
     * Train on the resolved outcome of the branch most recently passed to
     * predict().
     *
     * @param br The same record passed to predict().
     * @param taken The actual outcome.
     */
    virtual void update(const trace::BranchRecord &br, bool taken) = 0;

    /**
     * Observe a non-conditional control transfer (jump, call, return).
     * The driver delivers these in trace order between conditional
     * branches; most predictors ignore them, but path- and
     * iteration-aware predictors (e.g. the selective-history predictor)
     * need them for bookkeeping.
     */
    virtual void observe(const trace::BranchRecord &) {}

    /** Forget all adaptive state. */
    virtual void reset() = 0;

    /** Stable display name, e.g. "gshare(h=16)". */
    virtual std::string name() const = 0;
};

using PredictorPtr = std::unique_ptr<Predictor>;

} // namespace copra::predictor

#endif // COPRA_PREDICTOR_PREDICTOR_HPP
