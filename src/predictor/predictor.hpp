/**
 * @file
 * The branch direction predictor interface.
 *
 * Every predictor in the zoo — static, bimodal, two-level, interference
 * free, loop/pattern, hybrid, and the paper's hypothetical selective
 * history predictor — implements this interface, so the simulation driver
 * and the analysis passes are predictor-agnostic.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "trace/branch_record.hpp"

namespace copra::predictor {

/**
 * One run of consecutive conditional branches in structure-of-arrays
 * form (columns borrowed from trace::SoABlocks, offset to the run).
 * records points at the same branches in AoS form so the default
 * predictUpdateSoa can fall back to the record-based batch path.
 */
struct SoaBatch
{
    const uint64_t *pc = nullptr;    //!< branch addresses
    const uint8_t *taken = nullptr;  //!< outcomes, 0/1
    const trace::BranchRecord *records = nullptr; //!< AoS mirror
    size_t count = 0;
};

/**
 * Abstract branch direction predictor.
 *
 * Contract: the driver calls predict() then update() exactly once per
 * dynamic conditional branch, in trace order. predict() must not examine
 * the record's `taken` field — the outcome is delivered via update().
 */
class Predictor
{
  public:
    virtual ~Predictor() = default;

    /**
     * Predict the direction of a conditional branch.
     *
     * @param br The branch about to execute. Implementations may use the
     *           pc and target fields only.
     * @return true for predicted taken.
     */
    virtual bool predict(const trace::BranchRecord &br) = 0;

    /**
     * Train on the resolved outcome of the branch most recently passed to
     * predict().
     *
     * @param br The same record passed to predict().
     * @param taken The actual outcome.
     */
    virtual void update(const trace::BranchRecord &br, bool taken) = 0;

    /**
     * Observe a non-conditional control transfer (jump, call, return).
     * The driver delivers these in trace order between conditional
     * branches; most predictors ignore them, but path- and
     * iteration-aware predictors (e.g. the selective-history predictor)
     * need them for bookkeeping.
     */
    virtual void observe(const trace::BranchRecord &) {}

    /**
     * Predict-and-train a run of consecutive conditional branches in
     * one call, equivalent to predict(); update(rec, rec.taken) per
     * record in order. The simulation driver feeds batches through this
     * entry point so hot predictors can override it with a devirtualized
     * inner loop; the default keeps the two-virtual-calls-per-branch
     * behaviour, so overriding is purely an optimization and never
     * changes results.
     *
     * @param batch Consecutive conditional records, in trace order.
     * @param correct_out When non-null, receives one 0/1 entry per
     *                    record: was the prediction correct?
     * @return Number of correct predictions in the batch.
     */
    virtual uint64_t
    predictUpdateBatch(std::span<const trace::BranchRecord> batch,
                       uint8_t *correct_out)
    {
        uint64_t n_correct = 0;
        size_t i = 0;
        for (const trace::BranchRecord &br : batch) {
            bool correct = predict(br) == br.taken;
            update(br, br.taken);
            n_correct += correct ? 1 : 0;
            if (correct_out)
                correct_out[i] = correct ? 1 : 0;
            ++i;
        }
        return n_correct;
    }

    /**
     * Column-based twin of predictUpdateBatch: the driver hands each
     * conditional run as SoA columns so hot predictors can run batch
     * index kernels over contiguous pc/taken arrays (see
     * predictor/kernels.hpp). The default routes through
     * predictUpdateBatch via the batch's AoS mirror, so overriding is
     * purely an optimization and never changes results — the
     * differential suite compares every overriding predictor against
     * the scalar path.
     *
     * @param batch Consecutive conditional branches, in trace order.
     * @param correct_out When non-null, receives one 0/1 entry per
     *                    record: was the prediction correct?
     * @return Number of correct predictions in the batch.
     */
    virtual uint64_t
    predictUpdateSoa(const SoaBatch &batch, uint8_t *correct_out)
    {
        return predictUpdateBatch({batch.records, batch.count},
                                  correct_out);
    }

    /** Forget all adaptive state. */
    virtual void reset() = 0;

    /** Stable display name, e.g. "gshare(h=16)". */
    virtual std::string name() const = 0;
};

using PredictorPtr = std::unique_ptr<Predictor>;

} // namespace copra::predictor

