/**
 * @file
 * Compile-time predictor contracts.
 *
 * PR 1 devirtualized the hot path on the promise that every predictor
 * honours the Predictor interface shape; PR 2 diffs each one against a
 * reference model. This header makes the *structural* half of those
 * promises a build failure instead of a convention: every type the
 * factory can construct is checked, and adding a predictor to the
 * roster without meeting the contract stops the compile with a message
 * that names the broken clause.
 *
 * To extend the roster: add the header, add the type to the
 * kRosterValidated list below, and the build tells you what's missing.
 * tests/contracts_negative.cmake proves the failure mode stays
 * readable.
 */

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <type_traits>

#include "predictor/bias_hybrid.hpp"
#include "predictor/bimodal.hpp"
#include "predictor/block_pattern.hpp"
#include "predictor/fixed_pattern.hpp"
#include "predictor/gskewed.hpp"
#include "predictor/hybrid.hpp"
#include "predictor/ideal_static.hpp"
#include "predictor/interference_free.hpp"
#include "predictor/loop_predictor.hpp"
#include "predictor/path_based.hpp"
#include "predictor/perceptron.hpp"
#include "predictor/predictor.hpp"
#include "predictor/static_pht.hpp"
#include "predictor/static_pred.hpp"
#include "predictor/tage.hpp"
#include "predictor/tournament.hpp"
#include "predictor/two_level.hpp"
#include "trace/branch_record.hpp"

namespace copra::predictor::contracts {

namespace detail {

/** True when P declares COPRA_STATE_FIELDS(...) in its own scope. */
template <typename P, typename = void>
struct DeclaresStateFields : std::false_type
{
};

template <typename P>
struct DeclaresStateFields<P, std::void_t<decltype(P::kCopraStateFields)>>
    : std::true_type
{
};

} // namespace detail

/**
 * The structural contract every roster predictor must satisfy.
 * Instantiating this template for a non-conforming type fails the
 * build; each clause carries its own message so the first error names
 * the exact violation.
 */
template <typename P>
struct PredictorContract
{
    static_assert(std::is_base_of_v<Predictor, P>,
                  "copra predictor contract: roster types must derive "
                  "from copra::predictor::Predictor so the driver and "
                  "analysis passes stay predictor-agnostic");
    static_assert(!std::is_abstract_v<P>,
                  "copra predictor contract: roster types must be "
                  "concrete — the factory has to construct them");
    static_assert(std::is_move_constructible_v<P>,
                  "copra predictor contract: roster types must be "
                  "move-constructible so experiment tables and hybrids "
                  "can own them by value");
    static_assert(std::is_nothrow_destructible_v<P>,
                  "copra predictor contract: predictor teardown runs "
                  "inside ledger unwinding and must not throw");
    static_assert(
        std::is_invocable_r_v<uint64_t, decltype(&P::predictUpdateBatch),
                              P &, std::span<const trace::BranchRecord>,
                              uint8_t *>,
        "copra predictor contract: predictors must expose "
        "predictUpdateBatch(span<const BranchRecord>, uint8_t*) -> "
        "uint64_t — the driver's batched inner loop feeds it directly");
    static_assert(
        std::is_invocable_r_v<std::string, decltype(&P::name), const P &>,
        "copra predictor contract: name() must be const-callable and "
        "return std::string — it keys ledgers and golden output");

    // State contract (DESIGN.md §14). The base-class defaults panic at
    // runtime; the roster is held to the stricter compile-time bar so a
    // predictor cannot reach copra_check's differential state gates
    // without exact bit accounting and a byte-stable snapshot.
    static_assert(detail::DeclaresStateFields<P>::value,
                  "copra predictor contract: roster types must declare "
                  "COPRA_STATE_FIELDS(...) naming every mutable member "
                  "(copra_lint's sema pass cross-checks the list against "
                  "the parsed members)");
    static_assert(
        std::is_same_v<decltype(&P::stateBits), uint64_t (P::*)() const>,
        "copra predictor contract: roster types must override "
        "stateBits() themselves — inheriting the panicking base default "
        "leaves the predictor without exact state accounting");
    static_assert(std::is_same_v<decltype(&P::snapshotState),
                                 void (P::*)(state::Writer &) const>,
                  "copra predictor contract: roster types must override "
                  "snapshotState(state::Writer&) so copra_check can "
                  "capture their architectural state byte-stably");
    static_assert(std::is_same_v<decltype(&P::restoreState),
                                 void (P::*)(state::Reader &)>,
                  "copra predictor contract: roster types must override "
                  "restoreState(state::Reader&) so snapshots round-trip "
                  "through the differential state gates");

    /** Instantiation hook: naming this member forces the checks. */
    static constexpr bool ok = true;
};

/** Conjunction that instantiates the contract for every listed type. */
template <typename... Ps>
inline constexpr bool validateRoster = (PredictorContract<Ps>::ok && ...);

/**
 * Every concrete predictor makePredictor() can return, plus the
 * analysis-only predictors the experiment kernels own by value.
 * factory.cc includes this header, so the whole roster is re-checked
 * on every build of copra_predictor.
 */
inline constexpr bool kRosterValidated = validateRoster<
    // factory roster, in spec-name order (see knownPredictors()):
    AlwaysTaken, AlwaysNotTaken, Btfnt, Bimodal, TwoLevel, GSkewed,
    IfGshare, IfPas, PathBased, LoopPredictor, BlockPatternPredictor,
    FixedPattern, Hybrid, Tage, Perceptron, Tournament,
    // analysis-side predictors constructed outside the factory:
    BiasClassifyingHybrid, IdealStatic, StaticPhtTwoLevel>;

static_assert(kRosterValidated,
              "copra predictor contract: roster validation failed");

} // namespace copra::predictor::contracts
