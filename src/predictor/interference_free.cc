#include "predictor/interference_free.hpp"

#include "util/logging.hpp"

namespace copra::predictor {

IfGshare::IfGshare(unsigned history_bits)
    : historyBits_(history_bits), history_(history_bits)
{
    fatalIf(history_bits == 0 || history_bits > 32,
            "IF gshare history bits must be in 1..32");
    pht_.reserve(1 << 16);
}

uint64_t
IfGshare::keyOf(uint64_t pc) const noexcept
{
    // A private PHT per branch == counters keyed by the exact
    // (pc, history) pair. pc values fit in 32 bits for every workload in
    // this repo, so the packed key is collision-free; wider pcs fold
    // their high bits in and merely degrade to (excellent) hashing.
    return ((pc ^ (pc >> 32)) << 32) ^ history_.value();
}

bool
IfGshare::predict(const trace::BranchRecord &br) noexcept
{
    auto it = pht_.find(keyOf(br.pc));
    return it == pht_.end() ? Counter2{}.taken() : it->second.taken();
}

void
IfGshare::update(const trace::BranchRecord &br, bool taken) noexcept
{
    pht_[keyOf(br.pc)].update(taken);
    history_.push(taken);
}

void
IfGshare::reset()
{
    history_.clear();
    pht_.clear();
}

std::string
IfGshare::name() const
{
    return "IF-gshare(h=" + std::to_string(historyBits_) + ")";
}

IfPas::IfPas(unsigned history_bits)
    : historyBits_(history_bits),
      historyMask_((uint64_t(1) << history_bits) - 1)
{
    fatalIf(history_bits == 0 || history_bits > 32,
            "IF PAs history bits must be in 1..32");
    histories_.reserve(1 << 12);
    pht_.reserve(1 << 16);
}

uint64_t
IfPas::keyOf(uint64_t pc) const noexcept
{
    auto it = histories_.find(pc);
    uint64_t hist = it == histories_.end() ? 0 : it->second;
    // Exact (pc, history) key; see IfGshare::keyOf.
    return ((pc ^ (pc >> 32)) << 32) ^ hist;
}

bool
IfPas::predict(const trace::BranchRecord &br) noexcept
{
    auto it = pht_.find(keyOf(br.pc));
    return it == pht_.end() ? Counter2{}.taken() : it->second.taken();
}

void
IfPas::update(const trace::BranchRecord &br, bool taken) noexcept
{
    pht_[keyOf(br.pc)].update(taken);
    uint64_t &hist = histories_[br.pc];
    hist = ((hist << 1) | (taken ? 1 : 0)) & historyMask_;
}

void
IfPas::reset()
{
    histories_.clear();
    pht_.clear();
}

std::string
IfPas::name() const
{
    return "IF-PAs(h=" + std::to_string(historyBits_) + ")";
}

} // namespace copra::predictor
