/**
 * @file
 * Fixed-length-pattern predictors (paper §4.1.2): a branch repeating any
 * pattern of length k has each outcome equal to its outcome k executions
 * ago, so the class predictor simply replays the outcome from k ago.
 *
 * The paper simulates 32 variants (k = 1..32) and scores each branch by
 * the best of them; FixedPattern is the single-k predictor and
 * FixedPatternBank runs all 32 in one pass for the classification engine.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "predictor/predictor.hpp"
#include "predictor/state.hpp"

namespace copra::predictor {

/** Ring buffer of the last 32 outcomes of one branch. */
struct OutcomeRing
{
    uint32_t bits = 0;  //!< newest outcome in bit 0
    uint32_t count = 0; //!< outcomes recorded (saturates at 2^32-1)

    /** Record a new outcome. */
    void
    push(bool taken) noexcept
    {
        bits = (bits << 1) | (taken ? 1u : 0u);
        if (count < UINT32_MAX)
            ++count;
    }

    /**
     * Outcome @p k executions ago (k = 1..32). Returns @p cold_default
     * when fewer than k outcomes have been recorded.
     */
    bool
    kAgo(unsigned k, bool cold_default = true) const noexcept
    {
        if (count < k)
            return cold_default;
        return (bits >> (k - 1)) & 1u;
    }
};

/** Predict the same direction the branch took k executions ago. */
class FixedPattern : public Predictor
{
  public:
    /** @param k Pattern length hypothesis, 1..32. */
    explicit FixedPattern(unsigned k);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override;

    unsigned k() const { return k_; }

    // State contract (DESIGN.md §14). Unbounded instrument: 64 ring
    // bits (32 outcomes + 32-bit fill count) per tracked branch.
    uint64_t stateBits() const override { return rings_.size() * 64; }

    void
    snapshotState(state::Writer &w) const override
    {
        state::writeMap(w, rings_,
                        [](state::Writer &out, const OutcomeRing &ring) {
                            out.u32(ring.bits);
                            out.u32(ring.count);
                        });
    }

    void
    restoreState(state::Reader &r) override
    {
        state::readMap(r, rings_, [](state::Reader &in, OutcomeRing &ring) {
            ring.bits = in.u32();
            ring.count = in.u32();
        });
    }

    COPRA_CONFIG_FIELDS(k_);
    COPRA_STATE_FIELDS(rings_);

  private:
    unsigned k_;
    std::unordered_map<uint64_t, OutcomeRing> rings_;
};

/**
 * All 32 fixed-length-pattern predictors evaluated simultaneously, with
 * per-branch per-k correct counts. Not a Predictor (it makes 32
 * predictions per branch); used by the per-address classification engine,
 * which needs max-over-k accuracy per branch.
 */
class FixedPatternBank
{
  public:
    static constexpr unsigned kMaxK = 32;

    /** Per-branch accounting: correct predictions for each k. */
    struct BranchCounts
    {
        OutcomeRing ring;
        uint64_t execs = 0;
        std::array<uint64_t, kMaxK> correct{};
    };

    /** Observe one execution of the branch at @p pc. */
    void observe(uint64_t pc, bool taken) noexcept;

    /** Best correct-count over k for @p pc (0 if unseen). */
    uint64_t bestCorrect(uint64_t pc) const;

    /** The k achieving bestCorrect for @p pc (1 if unseen). */
    unsigned bestK(uint64_t pc) const;

    /** Per-branch table (for iteration by the classifier). */
    const std::unordered_map<uint64_t, BranchCounts> &table() const
    {
        return table_;
    }

  private:
    std::unordered_map<uint64_t, BranchCounts> table_;
};

} // namespace copra::predictor

