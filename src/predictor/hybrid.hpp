/**
 * @file
 * Hybrid (tournament) predictor (McFarling, 1993; paper §2.1): two
 * component predictors and a table of 2-bit chooser counters indexed by
 * branch address. The chooser learns, per address, which component to
 * trust; both components always train.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "predictor/predictor.hpp"
#include "predictor/state.hpp"
#include "util/sat_counter.hpp"

namespace copra::predictor {

/**
 * Two-component tournament predictor. Owns its components.
 *
 * The chooser counter semantics: value >= 2 selects component A,
 * otherwise component B. When exactly one component predicted correctly,
 * the chooser moves toward it.
 */
class Hybrid : public Predictor
{
  public:
    /**
     * @param a First component (selected when the chooser is high).
     * @param b Second component.
     * @param chooser_bits log2 of the chooser table size.
     */
    Hybrid(PredictorPtr a, PredictorPtr b, unsigned chooser_bits = 12);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override;

    /** Component A (for tests). */
    Predictor &componentA() { return *a_; }

    /** Component B (for tests). */
    Predictor &componentB() { return *b_; }

    // State contract (DESIGN.md §14): both components' state, plus 2
    // bits per chooser counter. The cached component predictions are
    // architectural (they feed the matching update()) so they snapshot
    // too, though they cost no hardware bits worth budgeting.
    uint64_t
    stateBits() const override
    {
        return a_->stateBits() + b_->stateBits() +
            uint64_t(2) * chooser_.size();
    }

    void
    snapshotState(state::Writer &w) const override
    {
        a_->snapshotState(w);
        b_->snapshotState(w);
        state::writeVec(w, chooser_, [](state::Writer &out, Counter2 c) {
            out.u8(c.v);
        });
        w.b(lastA_);
        w.b(lastB_);
        w.u64(lastPc_);
    }

    void
    restoreState(state::Reader &r) override
    {
        a_->restoreState(r);
        b_->restoreState(r);
        state::readVec(r, chooser_, [](state::Reader &in, Counter2 &c) {
            c.v = in.u8();
        });
        lastA_ = r.b();
        lastB_ = r.b();
        lastPc_ = r.u64();
    }

    COPRA_CONFIG_FIELDS(chooserBits_);
    COPRA_STATE_FIELDS(a_, b_, chooser_, lastA_, lastB_, lastPc_);

  private:
    size_t chooserIndex(uint64_t pc) const noexcept;

    PredictorPtr a_;
    PredictorPtr b_;
    unsigned chooserBits_;
    std::vector<Counter2> chooser_;

    // predict() caches component predictions for the matching update().
    bool lastA_ = false;
    bool lastB_ = false;
    uint64_t lastPc_ = ~uint64_t(0);
};

} // namespace copra::predictor

