#include "predictor/loop_predictor.hpp"

namespace copra::predictor {

LoopState
LoopPredictor::state(uint64_t pc) const
{
    const LoopState *st = table_.find(pc);
    return st ? *st : LoopState{};
}

bool
LoopPredictor::predict(const trace::BranchRecord &br) noexcept
{
    const LoopState *st = table_.find(br.pc);
    if (st == nullptr || !st->seen)
        return true; // cold: default taken
    // Predict the body direction for the learned trip count, then one
    // prediction of the exit direction.
    return st->run < st->trip ? st->dir : !st->dir;
}

void
LoopPredictor::update(const trace::BranchRecord &br, bool taken) noexcept
{
    LoopState &st = table_.access(br.pc);
    if (!st.seen) {
        st.seen = true;
        st.dir = taken;
        st.run = 1;
        st.trip = 255;
        return;
    }
    if (taken == st.dir) {
        if (st.run < kMaxRun)
            ++st.run;
    } else {
        if (st.run == 0) {
            // Two consecutive opposite outcomes: the roles are inverted
            // (e.g. a for-type loop whose body direction we guessed
            // wrong, or a while-type branch). Flip the body direction.
            st.dir = taken;
            st.run = 1;
            st.trip = 255;
        } else {
            // The run ended: remember its length as the trip count.
            st.trip = st.run;
            st.run = 0;
        }
    }
}

void
LoopPredictor::reset()
{
    table_.clear();
}

std::string
LoopPredictor::name() const
{
    if (table_.config().isPerfect())
        return "loop";
    return "loop(btb=" + table_.config().describe() + ")";
}

} // namespace copra::predictor
