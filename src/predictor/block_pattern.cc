#include "predictor/block_pattern.hpp"

namespace copra::predictor {

BlockState
BlockPatternPredictor::state(uint64_t pc) const
{
    const BlockState *st = table_.find(pc);
    return st ? *st : BlockState{};
}

bool
BlockPatternPredictor::predict(const trace::BranchRecord &br) noexcept
{
    const BlockState *st = table_.find(br.pc);
    if (st == nullptr || !st->seen)
        return true; // cold: default taken
    // Continue the current block until it reaches the length of the last
    // completed block in the same direction, then switch.
    return st->curRun < st->lastRun[st->curDir ? 1 : 0] ? st->curDir
                                                        : !st->curDir;
}

void
BlockPatternPredictor::update(const trace::BranchRecord &br, bool taken) noexcept
{
    BlockState &st = table_.access(br.pc);
    if (!st.seen) {
        st.seen = true;
        st.curDir = taken;
        st.curRun = 1;
        return;
    }
    if (taken == st.curDir) {
        if (st.curRun < kMaxRun)
            ++st.curRun;
    } else {
        st.lastRun[st.curDir ? 1 : 0] = st.curRun;
        st.curDir = taken;
        st.curRun = 1;
    }
}

void
BlockPatternPredictor::reset()
{
    table_.clear();
}

std::string
BlockPatternPredictor::name() const
{
    if (table_.config().isPerfect())
        return "block-pattern";
    return "block-pattern(btb=" + table_.config().describe() + ")";
}

} // namespace copra::predictor
