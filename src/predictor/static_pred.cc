// Static predictors are fully defined in the header; this translation
// unit exists so the library always has at least one symbol per module
// and to catch header self-containment regressions at build time.
#include "predictor/static_pred.hpp"
