/**
 * @file
 * The configurable two-level adaptive branch predictor engine
 * (Yeh & Patt, 1991/1992; McFarling's gshare variation, 1993).
 *
 * One engine covers the whole naming family: the first-level history can
 * be global (GA*) or per-address (PA*), and the second-level pattern
 * history table can be indexed by history alone (xAg), by history
 * concatenated with address bits (xAs — per-address-set PHTs), or by
 * history XORed with the address (gshare).
 */

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "predictor/kernels.hpp"
#include "predictor/predictor.hpp"
#include "predictor/state.hpp"
#include "util/sat_counter.hpp"
#include "util/shift_register.hpp"

namespace copra::predictor {

/** Configuration of a two-level predictor. */
struct TwoLevelConfig
{
    /** Where the first-level history lives. */
    enum class Scope : uint8_t
    {
        Global,     //!< one history register shared by all branches
        PerAddress, //!< a table of history registers indexed by pc
    };

    /** How the second-level PHT is indexed. */
    enum class Index : uint8_t
    {
        HistoryOnly, //!< PHT[hist]                 (GAg / PAg)
        Concat,      //!< PHT[pc_bits : hist]       (GAs / PAs)
        Xor,         //!< PHT[hist ^ pc_bits]       (gshare)
    };

    Scope scope = Scope::Global;
    Index index = Index::Xor;

    /** First-level history length in bits (1..32). */
    unsigned historyBits = 16;

    /** log2 of the branch history table size (PerAddress scope only). */
    unsigned bhtBits = 10;

    /**
     * Address bits prepended to the history under Index::Concat; these
     * select among 2^pcSelectBits logical PHTs.
     */
    unsigned pcSelectBits = 4;

    /** log2 of the total number of second-level counters. */
    unsigned phtBits = 16;

    /**
     * Width of the second-level saturating counters in bits (Smith's
     * classic choice is 2; 1 disables hysteresis, 3+ adds inertia).
     * Counters initialize to the weakly-not-taken state.
     */
    unsigned counterBits = 2;

    std::string label = "two-level";

    /** gshare with an @p h bit history and a 2^h entry PHT. */
    static TwoLevelConfig gshare(unsigned h = 16);

    /** GAg: global history indexing a single PHT. */
    static TwoLevelConfig gag(unsigned h = 16);

    /** GAs: global history with per-address-set PHTs. */
    static TwoLevelConfig gas(unsigned h = 12, unsigned pc_select = 4);

    /**
     * PAs: per-address histories (2^bht_bits registers) with
     * per-address-set PHTs (paper §2.1).
     */
    static TwoLevelConfig pas(unsigned h = 12, unsigned bht_bits = 12,
                              unsigned pc_select = 4);

    /** PAg: per-address histories indexing a single PHT. */
    static TwoLevelConfig pag(unsigned h = 12, unsigned bht_bits = 12);
};

/** A two-level adaptive predictor realized from a TwoLevelConfig. */
class TwoLevel : public Predictor
{
  public:
    explicit TwoLevel(const TwoLevelConfig &config);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;

    /** Devirtualized batch loop (same results as predict + update). */
    uint64_t
    predictUpdateBatch(std::span<const trace::BranchRecord> batch,
                       uint8_t *correct_out) noexcept override;

    /**
     * Column-kernel batch path (same results as predict + update):
     * the index phase runs through the dispatched batch kernels
     * (predictor/kernels.hpp) in fixed-size L1-resident tiles; only
     * the saturating-counter training loop stays serial.
     */
    uint64_t
    predictUpdateSoa(const SoaBatch &batch, uint8_t *correct_out) noexcept override;

    void reset() override;
    std::string name() const override;

    const TwoLevelConfig &config() const { return config_; }

    /** PHT index used for @p pc under the current history (for tests). */
    size_t phtIndex(uint64_t pc) const noexcept;

    // State contract (DESIGN.md §14): historyBits per first-level
    // register plus counterBits per second-level counter.
    uint64_t
    stateBits() const override
    {
        return uint64_t(config_.historyBits) * histories_.size() +
            uint64_t(config_.counterBits) * pht_.size();
    }

    void
    snapshotState(state::Writer &w) const override
    {
        state::writeVec(w, histories_,
                        [](state::Writer &out, uint64_t h) { out.u64(h); });
        state::writeVec(w, pht_,
                        [](state::Writer &out, uint8_t c) { out.u8(c); });
    }

    void
    restoreState(state::Reader &r) override
    {
        state::readVec(r, histories_,
                       [](state::Reader &in, uint64_t &h) { h = in.u64(); });
        state::readVec(r, pht_,
                       [](state::Reader &in, uint8_t &c) { c = in.u8(); });
    }

    COPRA_CONFIG_FIELDS(config_, historyMask_, phtMask_, counterMax_,
                        counterInit_);
    COPRA_STATE_FIELDS(histories_, pht_);
    COPRA_TRANSIENT_FIELDS(histScratch_, idxScratch_, kernelCounts_,
                           kernels_);

  private:
    /** Records per kernel tile; bounds the index scratch to ~24 KiB so
     * it stays L1-resident for any batch length. */
    static constexpr size_t kKernelTile = 2048;

    uint64_t &historyFor(uint64_t pc) noexcept;
    uint64_t historyFor(uint64_t pc) const noexcept;

    uint64_t runGlobalSoa(const SoaBatch &batch, uint8_t *correct_out) noexcept;
    uint64_t runPerAddressSoa(const SoaBatch &batch, uint8_t *correct_out) noexcept;

    TwoLevelConfig config_;
    uint64_t historyMask_;
    size_t phtMask_;
    uint8_t counterMax_;
    uint8_t counterInit_;
    std::vector<uint64_t> histories_; // size 1 (global) or 2^bhtBits
    std::vector<uint8_t> pht_;        // counterBits-wide counters
    std::vector<uint64_t> histScratch_; // kernel tile: history words
    std::vector<uint32_t> idxScratch_;  // kernel tile: table indices
    kernels::BatchCounters kernelCounts_; // flushes to obs on destroy
    /** Dispatch table resolved once at construction: the tier is fixed
     * per process, and activeTier()'s guarded initialization is off
     * limits inside the hot region (hot-lock). */
    const kernels::Kernels *kernels_ = nullptr;
};

} // namespace copra::predictor

