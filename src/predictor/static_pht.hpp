/**
 * @file
 * Two-level predictor with a statically determined PHT (Sechrest, Lee &
 * Mudge 1995; Young, Gloy & Smith 1995; paper §2.2).
 *
 * The first level is a normal history mechanism, but the second-level
 * table holds fixed directions computed from a profiling pass (the
 * majority outcome per PHT index) instead of adaptive 2-bit counters.
 * Comparing this against the adaptive TwoLevel on the same profiling and
 * testing set reproduces the adaptivity studies the paper cites: with
 * short per-address histories, or when profiling equals testing, the
 * static PHT performs on par with — sometimes above — 2-bit counters,
 * because it never pays training or hysteresis costs.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "predictor/state.hpp"
#include "predictor/two_level.hpp"
#include "trace/trace.hpp"

namespace copra::predictor {

/**
 * A two-level predictor whose PHT is a fixed direction table filled by
 * profiling. Construct via profile().
 */
class StaticPhtTwoLevel : public Predictor
{
  public:
    /**
     * Profile @p trace under geometry @p config: simulate the first
     * level exactly as TwoLevel would, tally outcomes per PHT index, and
     * freeze each entry at its majority direction (ties and never-seen
     * entries default taken).
     */
    static StaticPhtTwoLevel profile(const trace::Trace &trace,
                                     const TwoLevelConfig &config);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override;

    /** Fraction of PHT entries that were exercised during profiling. */
    double coverage() const;

    // State contract (DESIGN.md §14): only the first-level histories are
    // adaptive; the profiled direction table is frozen configuration.
    uint64_t stateBits() const override { return indexer_.stateBits(); }

    void
    snapshotState(state::Writer &w) const override
    {
        indexer_.snapshotState(w);
    }

    void restoreState(state::Reader &r) override { indexer_.restoreState(r); }

    COPRA_CONFIG_FIELDS(directions_, covered_);
    COPRA_STATE_FIELDS(indexer_);

  private:
    StaticPhtTwoLevel(const TwoLevelConfig &config,
                      std::vector<uint8_t> directions, size_t covered);

    /** First-level machinery reused from TwoLevel for exact indexing. */
    TwoLevel indexer_;
    std::vector<uint8_t> directions_;
    size_t covered_;
};

} // namespace copra::predictor

