#include "predictor/bimodal.hpp"

#include <algorithm>

#include "predictor/kernels.hpp"
#include "util/logging.hpp"

namespace copra::predictor {

Bimodal::Bimodal(unsigned table_bits)
    : tableBits_(table_bits)
{
    fatalIf(table_bits == 0 || table_bits > 30,
            "bimodal table bits must be in 1..30");
    table_.assign(size_t(1) << table_bits, Counter2{});
    // The batch path is hot-region code (DESIGN.md §15): resolve the
    // kernel dispatch once (activeTier's guarded init is a lock) and
    // pre-size the tile scratch so the loop never touches the heap.
    kernels_ = &kernels::active();
    idxScratch_.resize(kKernelTile);
}

size_t
Bimodal::indexOf(uint64_t pc) const noexcept
{
    // Branches are word aligned; drop the low two bits before indexing.
    return (pc >> 2) & ((size_t(1) << tableBits_) - 1);
}

bool
Bimodal::predict(const trace::BranchRecord &br) noexcept
{
    return table_[indexOf(br.pc)].taken();
}

void
Bimodal::update(const trace::BranchRecord &br, bool taken) noexcept
{
    table_[indexOf(br.pc)].update(taken);
}

uint64_t
Bimodal::predictUpdateSoa(const SoaBatch &batch, uint8_t *correct_out) noexcept
{
    if (batch.count == 0)
        return 0;
    kernelCounts_.note(batch.count);

    const kernels::Kernels &k = *kernels_;
    const uint64_t mask = (uint64_t(1) << tableBits_) - 1;
    uint64_t n_correct = 0;
    size_t base = 0;
    while (base < batch.count) {
        size_t n = std::min(kKernelTile, batch.count - base);
        k.pcIndices(batch.pc + base, n, mask, idxScratch_.data());
        for (size_t j = 0; j < n; ++j) {
            Counter2 &counter = table_[idxScratch_[j]];
            bool prediction = counter.taken();
            uint8_t t = batch.taken[base + j];
            counter.update(t != 0);
            bool correct = prediction == (t != 0);
            n_correct += correct ? 1 : 0;
            if (correct_out)
                correct_out[base + j] = correct ? 1 : 0;
        }
        base += n;
    }
    return n_correct;
}

void
Bimodal::reset()
{
    std::fill(table_.begin(), table_.end(), Counter2{});
}

std::string
Bimodal::name() const
{
    return "bimodal(" + std::to_string(tableBits_) + "b)";
}

} // namespace copra::predictor
