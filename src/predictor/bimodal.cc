#include "predictor/bimodal.hpp"

#include "util/logging.hpp"

namespace copra::predictor {

Bimodal::Bimodal(unsigned table_bits)
    : tableBits_(table_bits)
{
    fatalIf(table_bits == 0 || table_bits > 30,
            "bimodal table bits must be in 1..30");
    table_.assign(size_t(1) << table_bits, Counter2{});
}

size_t
Bimodal::indexOf(uint64_t pc) const
{
    // Branches are word aligned; drop the low two bits before indexing.
    return (pc >> 2) & ((size_t(1) << tableBits_) - 1);
}

bool
Bimodal::predict(const trace::BranchRecord &br)
{
    return table_[indexOf(br.pc)].taken();
}

void
Bimodal::update(const trace::BranchRecord &br, bool taken)
{
    table_[indexOf(br.pc)].update(taken);
}

void
Bimodal::reset()
{
    std::fill(table_.begin(), table_.end(), Counter2{});
}

std::string
Bimodal::name() const
{
    return "bimodal(" + std::to_string(tableBits_) + "b)";
}

} // namespace copra::predictor
