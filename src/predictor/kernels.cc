#include "predictor/kernels.hpp"

#include <string>

#include "obs/instruments.hpp"
#include "obs/registry.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"

namespace copra::predictor::kernels {

BatchCounters::~BatchCounters()
{
    if (branches == 0)
        return;
    obs::count(obs::ids().simKernelBatches, batches);
    obs::count(obs::ids().simKernelBranches, branches);
    if (simdBranches != 0)
        obs::count(obs::ids().simKernelSimdBranches, simdBranches);
}

namespace {

COPRA_HOT void
xorIndicesScalar(const uint64_t *hist, const uint64_t *pc, size_t n,
                 uint64_t history_mask, uint64_t pht_mask,
                 uint32_t *idx) noexcept
{
    for (size_t k = 0; k < n; ++k)
        idx[k] = static_cast<uint32_t>(
            ((hist[k] & history_mask) ^ (pc[k] >> 2)) & pht_mask);
}

COPRA_HOT void
maskIndicesScalar(const uint64_t *hist, size_t n, uint64_t history_mask,
                  uint64_t pht_mask, uint32_t *idx) noexcept
{
    uint64_t mask = history_mask & pht_mask;
    for (size_t k = 0; k < n; ++k)
        idx[k] = static_cast<uint32_t>(hist[k] & mask);
}

COPRA_HOT void
concatIndicesScalar(const uint64_t *hist, const uint64_t *pc, size_t n,
                    uint64_t history_mask, unsigned history_bits,
                    uint64_t select_mask, uint64_t pht_mask,
                    uint32_t *idx) noexcept
{
    for (size_t k = 0; k < n; ++k) {
        uint64_t select = (pc[k] >> 2) & select_mask;
        idx[k] = static_cast<uint32_t>(
            ((select << history_bits) | (hist[k] & history_mask)) &
            pht_mask);
    }
}

COPRA_HOT void
pcIndicesScalar(const uint64_t *pc, size_t n, uint64_t mask,
                uint32_t *idx) noexcept
{
    for (size_t k = 0; k < n; ++k)
        idx[k] = static_cast<uint32_t>((pc[k] >> 2) & mask);
}

constexpr Kernels kScalar = {
    &xorIndicesScalar,
    &maskIndicesScalar,
    &concatIndicesScalar,
    &pcIndicesScalar,
};

Tier
resolveTier()
{
    std::string v = util::envString("COPRA_SIMD", "auto");
    if (v == "0" || v == "off" || v == "scalar")
        return Tier::Scalar;
    if (v == "1" || v == "on" || v == "simd") {
        if (!simdAvailable()) {
            warn("COPRA_SIMD=" + v +
                 " requested but no SIMD kernels are available on this "
                 "CPU/build; using scalar kernels");
            return Tier::Scalar;
        }
        return Tier::Simd;
    }
    return simdAvailable() ? Tier::Simd : Tier::Scalar;
}

} // namespace

const char *
tierName(Tier tier)
{
    return tier == Tier::Simd ? "simd" : "scalar";
}

bool
simdAvailable()
{
#if defined(COPRA_HAVE_AVX2)
    return __builtin_cpu_supports("avx2") != 0;
#elif defined(COPRA_HAVE_NEON)
    return true; // NEON is architectural on aarch64
#else
    return false;
#endif
}

Tier
activeTier()
{
    static const Tier tier = resolveTier();
    return tier;
}

const Kernels &
scalarKernels()
{
    return kScalar;
}

const Kernels &
forTier(Tier tier)
{
    if (tier == Tier::Simd && simdAvailable()) {
#if defined(COPRA_HAVE_AVX2)
        return avx2Kernels();
#elif defined(COPRA_HAVE_NEON)
        return neonKernels();
#endif
    }
    return kScalar;
}

const Kernels &
active()
{
    return forTier(activeTier());
}

uint64_t
historyFill(const uint8_t *taken, size_t n, uint64_t w,
            uint64_t *w_out) noexcept
{
    for (size_t k = 0; k < n; ++k) {
        w_out[k] = w;
        w = (w << 1) | (taken[k] ? 1u : 0u);
    }
    return w;
}

} // namespace copra::predictor::kernels
