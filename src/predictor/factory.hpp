/**
 * @file
 * String-spec predictor factory for CLI tools and examples.
 *
 * Spec grammar: `name` or `name:key=value,key=value`. Examples:
 *   "gshare", "gshare:h=14", "pas:h=10,bht=8,s=4", "bimodal:bits=10",
 *   "fixed:k=7", "hybrid:a=gshare;b=pas" (components use ';' separators
 *   so the inner specs may themselves carry parameters via '.').
 */

#pragma once

#include <string>
#include <vector>

#include "predictor/predictor.hpp"

namespace copra::predictor {

/**
 * Create a predictor from a spec string. Calls fatal() on unknown names
 * or malformed parameters.
 */
PredictorPtr makePredictor(const std::string &spec);

/** Names accepted by makePredictor (for --help output). */
std::vector<std::string> knownPredictors();

} // namespace copra::predictor

