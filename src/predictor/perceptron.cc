#include "predictor/perceptron.hpp"

#include <cstdlib>

#include "obs/instruments.hpp"
#include "util/logging.hpp"

namespace copra::predictor {

Perceptron::Perceptron(const PerceptronConfig &config)
    : config_(config), theta_(config.initialTheta)
{
    fatalIf(config_.tableBits == 0 || config_.tableBits > 24,
            "perceptron table bits must be in 1..24");
    fatalIf(config_.numTables < 2 || config_.numTables > 16,
            "perceptron needs 2..16 tables (one is the bias table)");
    fatalIf(config_.segmentBits == 0 || config_.segmentBits > 32,
            "perceptron segment bits must be in 1..32");
    fatalIf(config_.historyBits() > FoldedHistory::kMaxBits,
            "perceptron history exceeds FoldedHistory::kMaxBits");
    fatalIf(config_.weightMin >= 0 || config_.weightMax <= 0,
            "perceptron weight range must straddle zero");
    fatalIf(config_.weightMin < -32768 || config_.weightMax > 32767,
            "perceptron weights must fit int16");
    fatalIf(config_.initialTheta < 1, "perceptron theta must be >= 1");
    fatalIf(config_.thetaCounterSat < 1,
            "perceptron theta counter saturation must be >= 1");

    tables_.assign(config_.numTables,
                   std::vector<int16_t>(size_t(1) << config_.tableBits, 0));
}

Perceptron::~Perceptron() = default;

size_t
Perceptron::indexOf(unsigned table, uint64_t pc) const noexcept
{
    uint64_t word = pc >> 2;
    uint64_t idx;
    if (table == 0) {
        // Bias table: address only, no history.
        idx = word;
    } else {
        // Table t sees history segment [(t-1)*S, t*S): fold the newest
        // t*S bits and XOR away the fold of the newest (t-1)*S bits
        // would *not* isolate the segment (folding is not prefix-local),
        // so instead fold the full window seen so far at each depth —
        // the windows nest, giving each table a progressively deeper
        // view, O-GEHL style.
        uint64_t folded =
            history_.fold(table * config_.segmentBits, config_.tableBits);
        idx = word ^ (word >> table) ^ folded;
    }
    return idx & ((size_t(1) << config_.tableBits) - 1);
}

int
Perceptron::sumOf(uint64_t pc) const noexcept
{
    int sum = 0;
    for (unsigned t = 0; t < config_.numTables; ++t)
        sum += tables_[t][indexOf(t, pc)];
    return sum;
}

bool
Perceptron::predict(const trace::BranchRecord &br) noexcept
{
    return sumOf(br.pc) >= 0;
}

int
Perceptron::clampWeight(int weight, bool taken) const noexcept
{
    int next = weight + (taken ? 1 : -1);
    if (next > config_.weightMax)
        return config_.weightMax;
    if (next < config_.weightMin)
        return config_.weightMin;
    return next;
}

void
Perceptron::update(const trace::BranchRecord &br, bool taken) noexcept
{
    // Indices depend only on pc and history, both unchanged since
    // predict(), so recomputing here (instead of caching) keeps batch
    // and scalar paths trivially equivalent.
    int yout = sumOf(br.pc);
    bool predicted = yout >= 0;
    bool mispredict = predicted != taken;
    bool weak = std::abs(yout) <= theta_;

    if (mispredict || weak) {
        for (unsigned t = 0; t < config_.numTables; ++t) {
            int16_t &w = tables_[t][indexOf(t, br.pc)];
            w = static_cast<int16_t>(clampWeight(w, taken));
        }
        ++stats_.trainEvents;
    }

    // Seznec's threshold fitting: mispredicts say theta is too low
    // (training stops too early), correct-but-weak says it is too high.
    if (mispredict) {
        if (++thetaCtr_ >= config_.thetaCounterSat) {
            ++theta_;
            thetaCtr_ = 0;
            ++stats_.thresholdAdapts;
            obs::count(obs::ids().perceptronThresholdAdapts);
        }
    } else if (weak) {
        if (--thetaCtr_ <= -config_.thetaCounterSat) {
            if (theta_ > 1)
                --theta_;
            thetaCtr_ = 0;
            ++stats_.thresholdAdapts;
            obs::count(obs::ids().perceptronThresholdAdapts);
        }
    }

    history_.push(taken);
}

void
Perceptron::reset()
{
    for (auto &table : tables_)
        table.assign(table.size(), 0);
    history_.clear();
    theta_ = config_.initialTheta;
    thetaCtr_ = 0;
    stats_ = PerceptronStats{};
}

std::string
Perceptron::name() const
{
    return config_.label;
}

int
Perceptron::maxAbsWeight() const
{
    int out = 0;
    for (const auto &table : tables_)
        for (int16_t w : table) {
            int a = w < 0 ? -w : w;
            if (a > out)
                out = a;
        }
    return out;
}

} // namespace copra::predictor
