/**
 * @file
 * Batch index-computation kernels behind a runtime dispatch seam.
 *
 * The two-level and bimodal batch paths split each run of conditional
 * branches into two phases: an index phase that turns the pc / history
 * columns into flat power-of-two table indices (pure data-parallel
 * integer math), and a train phase that walks the saturating counters
 * (a serial read-modify-write loop, because two branches in one batch
 * may hit the same counter). Only the index phase is worth
 * vectorizing, and this header is its seam: scalar reference kernels
 * always exist, and a SIMD kernel TU (AVX2 on x86-64, NEON on
 * aarch64) is substituted at runtime when the CPU supports it.
 *
 * Every SIMD kernel performs exactly the same integer arithmetic as
 * its scalar twin, so predictions are bit-identical across tiers; the
 * differential suite (check::diffPair) and the batch-vs-scalar ctest
 * gate enforce that. Raw intrinsics are only permitted inside the
 * dedicated kernel TUs (kernels_avx2.cc, kernels_neon.cc) —
 * copra_lint's banned-api rule rejects them anywhere else.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "util/hot.hpp"

namespace copra::predictor::kernels {

/** Which kernel implementation family is in use. */
enum class Tier : uint8_t
{
    Scalar, //!< portable reference loops
    Simd,   //!< AVX2 / NEON kernels (bit-identical to Scalar)
};

/** Display name of a tier ("scalar" / "simd"). */
const char *tierName(Tier tier);

/** True when this build contains a SIMD kernel TU usable on this CPU. */
bool simdAvailable();

/**
 * The tier selected for this process: COPRA_SIMD=0/off/scalar forces
 * Scalar, COPRA_SIMD=1/on/simd requests Simd (falling back to Scalar
 * with a warning when unavailable), anything else auto-detects.
 * Resolved once on first use.
 */
Tier activeTier();

/**
 * Index-phase kernels; one function pointer per index flavour. The
 * pointer types are `noexcept`: every kernel is hot-region code (the
 * implementations carry COPRA_HOT roots in their TUs, since the
 * call-graph pass cannot see through a function pointer).
 */
struct Kernels
{
    /** idx[k] = ((hist[k] & history_mask) ^ (pc[k] >> 2)) & pht_mask */
    void (*xorIndices)(const uint64_t *hist, const uint64_t *pc, size_t n,
                       uint64_t history_mask, uint64_t pht_mask,
                       uint32_t *idx) noexcept;

    /** idx[k] = hist[k] & history_mask & pht_mask */
    void (*maskIndices)(const uint64_t *hist, size_t n,
                        uint64_t history_mask, uint64_t pht_mask,
                        uint32_t *idx) noexcept;

    /**
     * idx[k] = ((((pc[k] >> 2) & select_mask) << history_bits) |
     *           (hist[k] & history_mask)) & pht_mask
     */
    void (*concatIndices)(const uint64_t *hist, const uint64_t *pc,
                          size_t n, uint64_t history_mask,
                          unsigned history_bits, uint64_t select_mask,
                          uint64_t pht_mask, uint32_t *idx) noexcept;

    /** idx[k] = (pc[k] >> 2) & mask */
    void (*pcIndices)(const uint64_t *pc, size_t n, uint64_t mask,
                      uint32_t *idx) noexcept;
};

/** The kernel table for the active tier. */
const Kernels &active();

/** Kernel table for an explicit tier (Simd degrades to Scalar when
 * unavailable); used by tests to pin a tier. */
const Kernels &forTier(Tier tier);

/**
 * Serial history fill: w[k] receives the running global-history word
 * *before* branch k, evolving w by the actual outcomes
 * (w = (w << 1) | taken[k]). Returns the running word after the batch.
 * Deliberately not dispatched — the loop is a strict bit-recurrence
 * and already runs at ~1 cycle per branch; masking happens downstream
 * in the index kernels, so the word may carry stale high bits.
 */
COPRA_HOT uint64_t historyFill(const uint8_t *taken, size_t n, uint64_t w,
                               uint64_t *w_out) noexcept;

/**
 * Deferred kernel telemetry. The obs counters for batches/branches are
 * cheap but not free (one locked thread-sink update each), and the
 * batch entry points run once per ~20-branch conditional segment — so
 * counting there per call costs more than the kernels themselves.
 * Predictors accumulate into this plain struct instead and the totals
 * flush to obs (sim.kernel.*) once, when the predictor is destroyed.
 */
struct BatchCounters
{
    uint64_t batches = 0;
    uint64_t branches = 0;
    uint64_t simdBranches = 0;
    /** Tier resolved at construction (cold): note() runs per batch in
     *  the hot region, where the activeTier() magic static — a guarded
     *  initialization, i.e. a potential lock — is off limits. */
    bool simdTier = activeTier() == Tier::Simd;

    BatchCounters() = default;
    // Copying would double-count on flush; moves transfer the totals
    // (predictors must stay move-constructible per contracts.hpp).
    BatchCounters(const BatchCounters &) = delete;
    BatchCounters &operator=(const BatchCounters &) = delete;
    BatchCounters(BatchCounters &&other) noexcept { *this = std::move(other); }
    BatchCounters &
    operator=(BatchCounters &&other) noexcept
    {
        batches += other.batches;
        branches += other.branches;
        simdBranches += other.simdBranches;
        other.batches = other.branches = other.simdBranches = 0;
        return *this;
    }
    ~BatchCounters();

    /** Record one batch of @p n branches on the active tier. */
    void
    note(size_t n) noexcept
    {
        batches += 1;
        branches += n;
        if (simdTier)
            simdBranches += n;
    }
};

/** Scalar kernel table (always available; the differential twin). */
const Kernels &scalarKernels();

#if defined(COPRA_HAVE_AVX2)
/** AVX2 kernel table (kernels_avx2.cc; x86-64 builds only). */
const Kernels &avx2Kernels();
#endif

#if defined(COPRA_HAVE_NEON)
/** NEON kernel table (kernels_neon.cc; aarch64 builds only). */
const Kernels &neonKernels();
#endif

} // namespace copra::predictor::kernels
