#include "predictor/factory.hpp"

#include <unordered_map>

#include "predictor/bimodal.hpp"
#include "predictor/block_pattern.hpp"
#include "predictor/contracts.hpp"
#include "predictor/fixed_pattern.hpp"
#include "predictor/gskewed.hpp"
#include "predictor/hybrid.hpp"
#include "predictor/interference_free.hpp"
#include "predictor/loop_predictor.hpp"
#include "predictor/path_based.hpp"
#include "predictor/perceptron.hpp"
#include "predictor/static_pred.hpp"
#include "predictor/tage.hpp"
#include "predictor/tournament.hpp"
#include "predictor/two_level.hpp"
#include "util/logging.hpp"

namespace copra::predictor {

namespace {

struct Spec
{
    std::string name;
    std::unordered_map<std::string, std::string> params;
};

Spec
parseSpec(const std::string &text)
{
    Spec spec;
    auto colon = text.find(':');
    spec.name = text.substr(0, colon);
    if (colon == std::string::npos)
        return spec;
    std::string rest = text.substr(colon + 1);
    size_t pos = 0;
    while (pos < rest.size()) {
        size_t comma = rest.find(',', pos);
        std::string item = rest.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        auto eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal("malformed predictor parameter '" + item + "' in '" +
                  text + "'");
        spec.params[item.substr(0, eq)] = item.substr(eq + 1);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return spec;
}

unsigned
getUnsigned(const Spec &spec, const std::string &key, unsigned fallback)
{
    auto it = spec.params.find(key);
    if (it == spec.params.end())
        return fallback;
    try {
        return static_cast<unsigned>(std::stoul(it->second));
    } catch (const std::exception &) {
        fatal("predictor parameter " + key + "='" + it->second +
              "' is not a number");
    }
}

std::string
getString(const Spec &spec, const std::string &key,
          const std::string &fallback)
{
    auto it = spec.params.find(key);
    return it == spec.params.end() ? fallback : it->second;
}

/** Inner hybrid component specs use '.' where a top-level spec uses ':'
 * and ';' where it uses ',', so they survive the outer parse. */
std::string
decodeInner(std::string text)
{
    for (char &ch : text) {
        if (ch == '.')
            ch = ':';
        else if (ch == ';')
            ch = ',';
    }
    return text;
}

} // namespace

PredictorPtr
makePredictor(const std::string &text)
{
    Spec spec = parseSpec(text);
    const std::string &name = spec.name;

    if (name == "taken")
        return std::make_unique<AlwaysTaken>();
    if (name == "nottaken")
        return std::make_unique<AlwaysNotTaken>();
    if (name == "btfnt")
        return std::make_unique<Btfnt>();
    if (name == "bimodal")
        return std::make_unique<Bimodal>(getUnsigned(spec, "bits", 12));
    if (name == "gshare") {
        auto config = TwoLevelConfig::gshare(getUnsigned(spec, "h", 16));
        config.counterBits = getUnsigned(spec, "cbits", 2);
        return std::make_unique<TwoLevel>(config);
    }
    if (name == "gag") {
        return std::make_unique<TwoLevel>(
            TwoLevelConfig::gag(getUnsigned(spec, "h", 16)));
    }
    if (name == "gas") {
        return std::make_unique<TwoLevel>(TwoLevelConfig::gas(
            getUnsigned(spec, "h", 12), getUnsigned(spec, "s", 4)));
    }
    if (name == "pas") {
        auto config = TwoLevelConfig::pas(
            getUnsigned(spec, "h", 12), getUnsigned(spec, "bht", 12),
            getUnsigned(spec, "s", 4));
        config.counterBits = getUnsigned(spec, "cbits", 2);
        return std::make_unique<TwoLevel>(config);
    }
    if (name == "pag") {
        return std::make_unique<TwoLevel>(TwoLevelConfig::pag(
            getUnsigned(spec, "h", 12), getUnsigned(spec, "bht", 12)));
    }
    if (name == "gskewed") {
        return std::make_unique<GSkewed>(getUnsigned(spec, "h", 16),
                                         getUnsigned(spec, "bank", 14));
    }
    if (name == "ifgshare")
        return std::make_unique<IfGshare>(getUnsigned(spec, "h", 16));
    if (name == "ifpas")
        return std::make_unique<IfPas>(getUnsigned(spec, "h", 12));
    if (name == "path") {
        return std::make_unique<PathBased>(
            getUnsigned(spec, "n", 8), getUnsigned(spec, "b", 2),
            getUnsigned(spec, "pht", 16));
    }
    if (name == "loop")
        return std::make_unique<LoopPredictor>();
    if (name == "block")
        return std::make_unique<BlockPatternPredictor>();
    if (name == "fixed")
        return std::make_unique<FixedPattern>(getUnsigned(spec, "k", 1));
    if (name == "tage") {
        TageConfig config;
        config.baseBits = getUnsigned(spec, "base", config.baseBits);
        config.tableBits = getUnsigned(spec, "tbits", config.tableBits);
        config.tagBits = getUnsigned(spec, "tag", config.tagBits);
        config.numTables = getUnsigned(spec, "tables", config.numTables);
        config.minHistory = getUnsigned(spec, "hmin", config.minHistory);
        config.maxHistory = getUnsigned(spec, "hmax", config.maxHistory);
        config.agingPeriod = getUnsigned(
            spec, "aging", static_cast<unsigned>(config.agingPeriod));
        return std::make_unique<Tage>(config);
    }
    if (name == "perceptron") {
        PerceptronConfig config;
        config.tableBits = getUnsigned(spec, "tbits", config.tableBits);
        config.numTables = getUnsigned(spec, "tables", config.numTables);
        config.segmentBits = getUnsigned(spec, "seg", config.segmentBits);
        config.initialTheta = static_cast<int>(
            getUnsigned(spec, "theta",
                        static_cast<unsigned>(config.initialTheta)));
        return std::make_unique<Perceptron>(config);
    }
    if (name == "tournament") {
        TournamentConfig config;
        config.globalHistory =
            getUnsigned(spec, "gh", config.globalHistory);
        config.localHistory = getUnsigned(spec, "lh", config.localHistory);
        config.localBhtBits =
            getUnsigned(spec, "bht", config.localBhtBits);
        config.localSelectBits =
            getUnsigned(spec, "s", config.localSelectBits);
        config.chooserBits =
            getUnsigned(spec, "chooser", config.chooserBits);
        unsigned btb_sets = getUnsigned(spec, "btbsets", 9);
        unsigned btb_ways = getUnsigned(spec, "btbways", 4);
        config.btb = btb_ways == 0 ? BtbConfig::perfect()
                                   : BtbConfig::finite(btb_sets, btb_ways);
        config.returnStackDepth =
            getUnsigned(spec, "ras", config.returnStackDepth);
        return std::make_unique<Tournament>(config);
    }
    if (name == "hybrid") {
        std::string a = decodeInner(getString(spec, "a", "gshare"));
        std::string b = decodeInner(getString(spec, "b", "pas"));
        return std::make_unique<Hybrid>(makePredictor(a), makePredictor(b),
                                        getUnsigned(spec, "chooser", 12));
    }
    fatal("unknown predictor '" + name + "'");
}

std::vector<std::string>
knownPredictors()
{
    return {
        "taken", "nottaken", "btfnt", "bimodal", "gshare", "gag", "gas",
        "pas", "pag", "gskewed", "ifgshare", "ifpas", "path", "loop",
        "block", "fixed", "hybrid", "tage", "perceptron", "tournament",
    };
}

} // namespace copra::predictor
