#include "predictor/fixed_pattern.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace copra::predictor {

FixedPattern::FixedPattern(unsigned k)
    : k_(k)
{
    fatalIf(k == 0 || k > 32, "fixed-pattern k must be in 1..32");
}

bool
FixedPattern::predict(const trace::BranchRecord &br) noexcept
{
    auto it = rings_.find(br.pc);
    if (it == rings_.end())
        return true;
    return it->second.kAgo(k_);
}

void
FixedPattern::update(const trace::BranchRecord &br, bool taken) noexcept
{
    rings_[br.pc].push(taken);
}

void
FixedPattern::reset()
{
    rings_.clear();
}

std::string
FixedPattern::name() const
{
    return "fixed-k(" + std::to_string(k_) + ")";
}

void
FixedPatternBank::observe(uint64_t pc, bool taken) noexcept
{
    BranchCounts &bc = table_[pc];
    for (unsigned k = 1; k <= kMaxK; ++k)
        if (bc.ring.kAgo(k) == taken)
            ++bc.correct[k - 1];
    bc.ring.push(taken);
    ++bc.execs;
}

uint64_t
FixedPatternBank::bestCorrect(uint64_t pc) const
{
    auto it = table_.find(pc);
    if (it == table_.end())
        return 0;
    uint64_t best = 0;
    for (uint64_t c : it->second.correct)
        best = std::max(best, c);
    return best;
}

unsigned
FixedPatternBank::bestK(uint64_t pc) const
{
    auto it = table_.find(pc);
    if (it == table_.end())
        return 1;
    unsigned best_k = 1;
    uint64_t best = 0;
    for (unsigned k = 1; k <= kMaxK; ++k) {
        uint64_t c = it->second.correct[k - 1];
        if (c > best) {
            best = c;
            best_k = k;
        }
    }
    return best_k;
}

} // namespace copra::predictor
