#include "predictor/tournament.hpp"

#include "util/logging.hpp"

namespace copra::predictor {

Tournament::Tournament(const TournamentConfig &config)
    : config_(config),
      global_(TwoLevelConfig::gshare(config.globalHistory)),
      local_(TwoLevelConfig::pas(config.localHistory, config.localBhtBits,
                                 config.localSelectBits)),
      btb_(config.btb)
{
    fatalIf(config_.chooserBits == 0 || config_.chooserBits > 24,
            "tournament chooser bits must be in 1..24");
    fatalIf(config_.returnStackDepth > 1024,
            "tournament return stack depth must be <= 1024");
    chooser_.assign(size_t(1) << config_.chooserBits, Counter2{});
    returnStack_.assign(config_.returnStackDepth, 0);
}

Tournament::~Tournament() = default;

size_t
Tournament::chooserIndex(uint64_t pc) const noexcept
{
    return (pc >> 2) & ((size_t(1) << config_.chooserBits) - 1);
}

bool
Tournament::btbHit(uint64_t pc) const noexcept
{
    return btb_.find(pc) != nullptr;
}

bool
Tournament::predict(const trace::BranchRecord &br) noexcept
{
    bool global_pred = global_.predict(br);
    bool local_pred = local_.predict(br);
    bool use_global = chooser_[chooserIndex(br.pc)].taken();
    bool direction = use_global ? global_pred : local_pred;
    if (use_global)
        ++stats_.choseGlobal;
    else
        ++stats_.choseLocal;
    // BTB miss model: a taken prediction without a buffered target
    // cannot redirect fetch, so the effective prediction collapses to
    // not-taken (fall-through is the only fetchable path).
    if (direction && !btbHit(br.pc)) {
        ++stats_.btbMissSquashes;
        return false;
    }
    return direction;
}

void
Tournament::update(const trace::BranchRecord &br, bool taken) noexcept
{
    // Component predictions are recomputed from pre-update state
    // (TwoLevel::predict is side-effect free) rather than cached in
    // predict(), keeping batch and scalar paths trivially equivalent.
    bool global_pred = global_.predict(br);
    bool local_pred = local_.predict(br);

    // The chooser learns only from disagreement: move toward the
    // component that was right when exactly one of them was.
    if (global_pred != local_pred) {
        chooser_[chooserIndex(br.pc)].update(global_pred == taken);
        ++stats_.chooserTrains;
    }

    // Both components always train — the Alpha 21264 policy; training
    // only the selected one starves the loser and locks the chooser in.
    global_.update(br, taken);
    local_.update(br, taken);

    // A taken conditional installs (or refreshes) its BTB entry.
    if (taken)
        btb_.access(br.pc) = br.target;
}

void
Tournament::observe(const trace::BranchRecord &br) noexcept
{
    using trace::BranchKind;
    switch (br.kind) {
      case BranchKind::Jump:
        // Unconditional transfers occupy BTB entries too — they are the
        // capacity pressure a conditional-only model would miss.
        btb_.access(br.pc) = br.target;
        break;
      case BranchKind::Call:
        btb_.access(br.pc) = br.target;
        if (config_.returnStackDepth != 0) {
            returnStack_[rasTop_] = br.pc + 4; // return address
            rasTop_ = (rasTop_ + 1) % config_.returnStackDepth;
            if (rasSize_ < config_.returnStackDepth)
                ++rasSize_;
        }
        break;
      case BranchKind::Return:
        ++stats_.returnsSeen;
        if (config_.returnStackDepth == 0 || rasSize_ == 0) {
            ++stats_.returnUnderflows;
        } else {
            rasTop_ = (rasTop_ + config_.returnStackDepth - 1) %
                config_.returnStackDepth;
            --rasSize_;
            if (returnStack_[rasTop_] == br.target)
                ++stats_.returnHits;
        }
        break;
      case BranchKind::Conditional:
        break; // delivered via predict/update, never here
    }
}

void
Tournament::reset()
{
    global_.reset();
    local_.reset();
    chooser_.assign(chooser_.size(), Counter2{});
    btb_.clear();
    returnStack_.assign(returnStack_.size(), 0);
    rasTop_ = 0;
    rasSize_ = 0;
    stats_ = TournamentStats{};
}

std::string
Tournament::name() const
{
    return config_.label;
}

} // namespace copra::predictor
