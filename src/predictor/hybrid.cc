#include "predictor/hybrid.hpp"

#include "util/logging.hpp"

namespace copra::predictor {

Hybrid::Hybrid(PredictorPtr a, PredictorPtr b, unsigned chooser_bits)
    : a_(std::move(a)), b_(std::move(b)), chooserBits_(chooser_bits)
{
    fatalIf(!a_ || !b_, "hybrid needs two components");
    fatalIf(chooser_bits == 0 || chooser_bits > 24,
            "hybrid chooser bits must be in 1..24");
    // Start neutral-leaning-A: weakly-taken selects component A.
    chooser_.assign(size_t(1) << chooser_bits, Counter2{2});
}

size_t
Hybrid::chooserIndex(uint64_t pc) const noexcept
{
    return (pc >> 2) & ((size_t(1) << chooserBits_) - 1);
}

bool
Hybrid::predict(const trace::BranchRecord &br) noexcept
{
    lastA_ = a_->predict(br);
    lastB_ = b_->predict(br);
    lastPc_ = br.pc;
    return chooser_[chooserIndex(br.pc)].taken() ? lastA_ : lastB_;
}

void
Hybrid::update(const trace::BranchRecord &br, bool taken) noexcept
{
    // The driver contract guarantees update() follows predict() for the
    // same branch; recompute defensively if the contract was violated.
    if (br.pc != lastPc_) {
        lastA_ = a_->predict(br);
        lastB_ = b_->predict(br);
    }
    bool correct_a = lastA_ == taken;
    bool correct_b = lastB_ == taken;
    if (correct_a != correct_b)
        chooser_[chooserIndex(br.pc)].update(correct_a);
    a_->update(br, taken);
    b_->update(br, taken);
}

void
Hybrid::reset()
{
    a_->reset();
    b_->reset();
    std::fill(chooser_.begin(), chooser_.end(), Counter2{2});
    lastA_ = false;
    lastB_ = false;
    lastPc_ = ~uint64_t(0);
}

std::string
Hybrid::name() const
{
    return "hybrid(" + a_->name() + "," + b_->name() + ")";
}

} // namespace copra::predictor
