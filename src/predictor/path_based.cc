#include "predictor/path_based.hpp"

#include "util/logging.hpp"

namespace copra::predictor {

PathBased::PathBased(unsigned path_branches, unsigned bits_per_branch,
                     unsigned pht_bits)
    : pathBranches_(path_branches), bitsPerBranch_(bits_per_branch),
      phtBits_(pht_bits), path_(path_branches, bits_per_branch)
{
    fatalIf(pht_bits == 0 || pht_bits > 28,
            "path predictor PHT bits must be in 1..28");
    pht_.assign(size_t(1) << pht_bits, Counter2{});
}

size_t
PathBased::indexOf(uint64_t pc) const noexcept
{
    return (path_.value() ^ (pc >> 2)) & ((size_t(1) << phtBits_) - 1);
}

bool
PathBased::predict(const trace::BranchRecord &br) noexcept
{
    return pht_[indexOf(br.pc)].taken();
}

void
PathBased::update(const trace::BranchRecord &br, bool taken) noexcept
{
    pht_[indexOf(br.pc)].update(taken);
    // Record the address actually followed: the taken target or the
    // fall-through. This is what distinguishes paths rather than
    // outcomes.
    path_.push(taken ? br.target : br.pc + 4);
}

void
PathBased::reset()
{
    path_.clear();
    std::fill(pht_.begin(), pht_.end(), Counter2{});
}

std::string
PathBased::name() const
{
    return "path(" + std::to_string(pathBranches_) + "x" +
        std::to_string(bitsPerBranch_) + "b)";
}

} // namespace copra::predictor
