/**
 * @file
 * Branch-classification hybrid (Chang, Hao, Yeh & Patt, MICRO 1994;
 * paper §2.2): branches are classified by their profiled taken rate, the
 * strongly biased ones are predicted statically (their profiled majority
 * direction) and only the weakly biased ones consume dynamic predictor
 * resources. The paper's Figs. 6-8 quantify exactly why this works: half
 * the dynamic branch stream is at least as predictable statically.
 */

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "predictor/predictor.hpp"
#include "predictor/state.hpp"
#include "trace/trace.hpp"

namespace copra::predictor {

/** Per-branch profile entry used for classification. */
struct BiasProfile
{
    bool majority = true; //!< profiled majority direction
    bool strongly = false; //!< bias above the classification threshold
};

/**
 * Profile-classified hybrid: static prediction for strongly biased
 * branches, a dynamic component for everything else. Unprofiled branches
 * go to the dynamic component.
 */
class BiasClassifyingHybrid : public Predictor
{
  public:
    /**
     * @param profile Per-branch classification (see profileTrace).
     * @param dynamic Dynamic component for weakly biased branches.
     * @param label Suffix describing the profile (for name()).
     */
    BiasClassifyingHybrid(std::unordered_map<uint64_t, BiasProfile> profile,
                          PredictorPtr dynamic, std::string label = "");

    /**
     * Build the classification profile from a trace: a branch is
     * "strongly biased" when max(taken, not-taken)/execs >= threshold.
     */
    static std::unordered_map<uint64_t, BiasProfile>
    profileTrace(const trace::Trace &trace, double threshold = 0.95);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void observe(const trace::BranchRecord &br) noexcept override;
    void reset() override;
    std::string name() const override;

    /** Number of profiled branches classified strongly biased. */
    size_t stronglyBiasedBranches() const;

    // State contract (DESIGN.md §14): the classification profile is
    // frozen at construction; all adaptive state lives in the dynamic
    // component.
    uint64_t stateBits() const override { return dynamic_->stateBits(); }

    void
    snapshotState(state::Writer &w) const override
    {
        dynamic_->snapshotState(w);
    }

    void
    restoreState(state::Reader &r) override
    {
        dynamic_->restoreState(r);
    }

    COPRA_CONFIG_FIELDS(profile_, label_);
    COPRA_STATE_FIELDS(dynamic_);

  private:
    const BiasProfile *entry(uint64_t pc) const noexcept;

    std::unordered_map<uint64_t, BiasProfile> profile_;
    PredictorPtr dynamic_;
    std::string label_;
};

} // namespace copra::predictor

