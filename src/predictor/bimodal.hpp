/**
 * @file
 * Bimodal predictor (Smith, 1981): a table of 2-bit saturating counters
 * indexed by branch address.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "predictor/kernels.hpp"
#include "predictor/predictor.hpp"
#include "predictor/state.hpp"
#include "util/sat_counter.hpp"

namespace copra::predictor {

/**
 * A direct-mapped table of 2^tableBits two-bit counters indexed by the
 * branch address. Aliasing between branches mapping to the same counter
 * is real, as in hardware.
 */
class Bimodal : public Predictor
{
  public:
    /** @param table_bits log2 of the number of counters (1..30). */
    explicit Bimodal(unsigned table_bits = 12);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;

    /**
     * Column-kernel batch path: table indices come from the dispatched
     * pcIndices kernel (predictor/kernels.hpp); the counter walk stays
     * serial because aliasing branches must see each other's updates.
     */
    uint64_t predictUpdateSoa(const SoaBatch &batch,
                              uint8_t *correct_out) noexcept override;

    void reset() override;
    std::string name() const override;

    /** Number of counters in the table. */
    size_t tableSize() const { return table_.size(); }

    // State contract (DESIGN.md §14): 2 bits per counter.
    uint64_t stateBits() const override { return uint64_t(2) * table_.size(); }

    void
    snapshotState(state::Writer &w) const override
    {
        state::writeVec(w, table_, [](state::Writer &out, Counter2 c) {
            out.u8(c.v);
        });
    }

    void
    restoreState(state::Reader &r) override
    {
        state::readVec(r, table_, [](state::Reader &in, Counter2 &c) {
            c.v = in.u8();
        });
    }

    COPRA_CONFIG_FIELDS(tableBits_);
    COPRA_STATE_FIELDS(table_);
    COPRA_TRANSIENT_FIELDS(idxScratch_, kernelCounts_, kernels_);

  private:
    /** Records per kernel tile (see TwoLevel::kKernelTile). */
    static constexpr size_t kKernelTile = 2048;

    size_t indexOf(uint64_t pc) const noexcept;

    unsigned tableBits_;
    std::vector<Counter2> table_;
    std::vector<uint32_t> idxScratch_; // kernel tile: table indices
    kernels::BatchCounters kernelCounts_; // flushes to obs on destroy
    /** Dispatch table resolved once at construction: the tier is fixed
     * per process, and activeTier()'s guarded initialization is off
     * limits inside the hot region (hot-lock). */
    const kernels::Kernels *kernels_ = nullptr;
};

} // namespace copra::predictor

