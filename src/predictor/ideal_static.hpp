/**
 * @file
 * The "ideal static" predictor (paper §4.1): for each static branch,
 * always predict the direction the branch takes most often over the whole
 * run. This is the best any static predictor can do, and the paper uses
 * it as the floor against which the dynamic predictability classes are
 * measured. It requires profile knowledge, so it is built from a
 * completed trace (or any per-branch taken/not-taken profile).
 */

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "predictor/predictor.hpp"
#include "predictor/state.hpp"
#include "trace/trace.hpp"

namespace copra::predictor {

/** Profile-based per-branch majority-direction predictor. */
class IdealStatic : public Predictor
{
  public:
    /** Construct with an explicit pc -> majority-direction table. */
    explicit IdealStatic(std::unordered_map<uint64_t, bool> majority);

    /** Profile @p trace and build the ideal static predictor for it. */
    static IdealStatic fromTrace(const trace::Trace &trace);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &, bool) noexcept override {}
    void reset() override {} // profile knowledge is not adaptive state
    std::string name() const override { return "ideal-static"; }

    /** Number of profiled branches. */
    size_t branches() const { return majority_.size(); }

    // State contract (DESIGN.md §14): the profile table is frozen at
    // construction and never mutated — configuration, not mutable state.
    uint64_t stateBits() const override { return 0; }
    void snapshotState(state::Writer &) const override {}
    void restoreState(state::Reader &) override {}

    COPRA_CONFIG_FIELDS(majority_);
    COPRA_STATE_FIELDS();

  private:
    std::unordered_map<uint64_t, bool> majority_;
};

} // namespace copra::predictor

