#include "predictor/bias_hybrid.hpp"

#include "util/logging.hpp"

namespace copra::predictor {

BiasClassifyingHybrid::BiasClassifyingHybrid(
    std::unordered_map<uint64_t, BiasProfile> profile, PredictorPtr dynamic,
    std::string label)
    : profile_(std::move(profile)), dynamic_(std::move(dynamic)),
      label_(std::move(label))
{
    fatalIf(!dynamic_, "bias hybrid needs a dynamic component");
}

std::unordered_map<uint64_t, BiasProfile>
BiasClassifyingHybrid::profileTrace(const trace::Trace &trace,
                                    double threshold)
{
    struct Counts
    {
        uint64_t taken = 0;
        uint64_t total = 0;
    };
    std::unordered_map<uint64_t, Counts> counts;
    for (const auto &rec : trace.records()) {
        if (!rec.isConditional())
            continue;
        auto &c = counts[rec.pc];
        ++c.total;
        if (rec.taken)
            ++c.taken;
    }
    std::unordered_map<uint64_t, BiasProfile> profile;
    profile.reserve(counts.size());
    // copra-lint: allow(unordered-iter) -- per-key transform into a keyed container; no cross-key order dependence
    for (const auto &[pc, c] : counts) {
        BiasProfile entry;
        entry.majority = 2 * c.taken >= c.total;
        uint64_t majority_count =
            entry.majority ? c.taken : c.total - c.taken;
        entry.strongly = static_cast<double>(majority_count) >=
            threshold * static_cast<double>(c.total);
        profile.emplace(pc, entry);
    }
    return profile;
}

const BiasProfile *
BiasClassifyingHybrid::entry(uint64_t pc) const noexcept
{
    auto it = profile_.find(pc);
    return it == profile_.end() ? nullptr : &it->second;
}

bool
BiasClassifyingHybrid::predict(const trace::BranchRecord &br) noexcept
{
    const BiasProfile *e = entry(br.pc);
    if (e != nullptr && e->strongly)
        return e->majority;
    return dynamic_->predict(br);
}

void
BiasClassifyingHybrid::update(const trace::BranchRecord &br, bool taken) noexcept
{
    const BiasProfile *e = entry(br.pc);
    // Strongly biased branches neither consult nor train the dynamic
    // component — that is the scheme's point: the weakly biased branches
    // get the whole dynamic table to themselves. Their outcomes still
    // reach the component's *history* via observe-like shifting in real
    // designs; we follow Chang et al. in excluding them entirely.
    if (e != nullptr && e->strongly)
        return;
    dynamic_->update(br, taken);
}

void
BiasClassifyingHybrid::observe(const trace::BranchRecord &br) noexcept
{
    dynamic_->observe(br);
}

void
BiasClassifyingHybrid::reset()
{
    dynamic_->reset(); // the profile is not adaptive state
}

std::string
BiasClassifyingHybrid::name() const
{
    return "bias-hybrid(" + dynamic_->name() + label_ + ")";
}

size_t
BiasClassifyingHybrid::stronglyBiasedBranches() const
{
    size_t n = 0;
    // copra-lint: allow(unordered-iter) -- commutative integer aggregation; result is order-independent
    for (const auto &[pc, e] : profile_)
        if (e.strongly)
            ++n;
    return n;
}

} // namespace copra::predictor
