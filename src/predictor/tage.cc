#include "predictor/tage.hpp"

#include <cmath>

#include "obs/instruments.hpp"
#include "util/logging.hpp"

namespace copra::predictor {

unsigned
TageConfig::historyLength(unsigned t) const
{
    if (numTables <= 1 || minHistory >= maxHistory)
        return minHistory;
    // Geometric series L(t) = min * (max/min)^(t / (N-1)), rounded;
    // monotonicity is enforced so two tables never share a length.
    double ratio = static_cast<double>(maxHistory) / minHistory;
    double exact =
        minHistory * std::pow(ratio, static_cast<double>(t) / (numTables - 1));
    auto len = static_cast<unsigned>(std::lround(exact));
    unsigned floor = minHistory + t;
    return len < floor ? floor : len;
}

Tage::Tage(const TageConfig &config) : config_(config)
{
    fatalIf(config_.baseBits == 0 || config_.baseBits > 24,
            "TAGE base bits must be in 1..24");
    fatalIf(config_.tableBits == 0 || config_.tableBits > 24,
            "TAGE table bits must be in 1..24");
    fatalIf(config_.tagBits == 0 || config_.tagBits > 16,
            "TAGE tag bits must be in 1..16");
    fatalIf(config_.counterBits < 2 || config_.counterBits > 8,
            "TAGE counter bits must be in 2..8");
    fatalIf(config_.usefulBits == 0 || config_.usefulBits > 8,
            "TAGE useful bits must be in 1..8");
    fatalIf(config_.numTables == 0 || config_.numTables > 8,
            "TAGE needs 1..8 tagged tables");
    fatalIf(config_.minHistory == 0, "TAGE min history must be > 0");
    fatalIf(config_.maxHistory < config_.minHistory,
            "TAGE max history must be >= min history");
    fatalIf(config_.maxHistory > FoldedHistory::kMaxBits,
            "TAGE max history exceeds FoldedHistory::kMaxBits");

    base_.assign(size_t(1) << config_.baseBits, 1); // weakly not-taken
    tables_.assign(config_.numTables,
                   std::vector<Entry>(size_t(1) << config_.tableBits));
    lengths_.resize(config_.numTables);
    for (unsigned t = 0; t < config_.numTables; ++t)
        lengths_[t] = config_.historyLength(t);
}

Tage::~Tage() = default;

size_t
Tage::indexOf(unsigned table, uint64_t pc) const noexcept
{
    uint64_t word = pc >> 2;
    uint64_t folded = history_.fold(lengths_[table], config_.tableBits);
    // Skew the pc contribution per table so tables disagree about which
    // static branches collide.
    uint64_t idx = folded ^ word ^ (word >> (table + 1));
    return idx & ((size_t(1) << config_.tableBits) - 1);
}

uint16_t
Tage::tagOf(unsigned table, uint64_t pc) const noexcept
{
    uint64_t word = pc >> 2;
    uint64_t f1 = history_.fold(lengths_[table], config_.tagBits);
    // The second, shifted fold at width-1 breaks the symmetry that a
    // single fold shares with the index hash (classic TAGE trick).
    uint64_t f2 = config_.tagBits > 1
        ? history_.fold(lengths_[table], config_.tagBits - 1) << 1
        : 0;
    uint64_t tag = word ^ f1 ^ f2;
    return static_cast<uint16_t>(tag &
                                 ((uint64_t(1) << config_.tagBits) - 1));
}

bool
Tage::counterTaken(uint8_t ctr, unsigned bits) const noexcept
{
    return ctr >= (uint8_t(1) << (bits - 1));
}

void
Tage::bumpCounter(uint8_t &ctr, unsigned bits, bool up) noexcept
{
    uint8_t max = static_cast<uint8_t>((1u << bits) - 1);
    if (up && ctr < max)
        ++ctr;
    else if (!up && ctr > 0)
        --ctr;
}

Tage::Lookup
Tage::lookup(uint64_t pc) const noexcept
{
    Lookup out;
    size_t base_idx = (pc >> 2) & ((size_t(1) << config_.baseBits) - 1);
    bool base_pred = counterTaken(base_[base_idx], 2);
    out.prediction = base_pred;
    out.altPrediction = base_pred;
    for (int t = static_cast<int>(config_.numTables) - 1; t >= 0; --t) {
        const Entry &e = tables_[t][indexOf(t, pc)];
        if (e.tag != tagOf(t, pc))
            continue;
        bool pred = counterTaken(e.ctr, config_.counterBits);
        if (out.provider < 0) {
            out.provider = t;
            out.prediction = pred;
            out.altPrediction = base_pred; // until a lower match appears
        } else {
            out.alt = t;
            out.altPrediction = pred;
            break; // only the next-longest match matters
        }
    }
    return out;
}

bool
Tage::predict(const trace::BranchRecord &br) noexcept
{
    Lookup l = lookup(br.pc);
    if (l.provider >= 0)
        ++stats_.providerTagged;
    else
        ++stats_.providerBase;
    return l.prediction;
}

void
Tage::allocateEntry(Entry &slot, uint16_t tag, bool taken) noexcept
{
    slot.tag = tag;
    // Weakly toward the observed outcome: the weakest taken value is
    // 2^(bits-1), the weakest not-taken value is one below it.
    uint8_t weak_taken = uint8_t(1) << (config_.counterBits - 1);
    slot.ctr = taken ? weak_taken : uint8_t(weak_taken - 1);
    slot.useful = 0;
}

void
Tage::update(const trace::BranchRecord &br, bool taken) noexcept
{
    // Recompute the provider from pre-update state rather than caching
    // it in predict(): batch and scalar paths then trivially agree, and
    // stats-only predict() stays side-effect free.
    Lookup l = lookup(br.pc);
    bool mispredict = l.prediction != taken;

    if (l.provider >= 0) {
        Entry &e = tables_[l.provider][indexOf(l.provider, br.pc)];
        bumpCounter(e.ctr, config_.counterBits, taken);
        // The useful counter tracks whether the provider beats its
        // alternate — only meaningful when they disagree.
        if (l.prediction != l.altPrediction) {
            bumpCounter(e.useful, config_.usefulBits,
                        l.prediction == taken);
        }
    } else {
        size_t base_idx =
            (br.pc >> 2) & ((size_t(1) << config_.baseBits) - 1);
        bumpCounter(base_[base_idx], 2, taken);
    }

    // Allocate into a longer-history table on a final mispredict.
    if (mispredict &&
        l.provider < static_cast<int>(config_.numTables) - 1) {
        bool allocated = false;
        for (unsigned t = l.provider + 1; t < config_.numTables; ++t) {
            Entry &cand = tables_[t][indexOf(t, br.pc)];
            if (cand.useful == 0) {
                allocateEntry(cand, tagOf(t, br.pc), taken);
                ++stats_.allocations;
                obs::count(obs::ids().tageAllocations);
                allocated = true;
                break;
            }
        }
        if (!allocated) {
            // All candidates are protected: decay them so a future
            // mispredict can get in (full TAGE decrements u here too).
            for (unsigned t = l.provider + 1; t < config_.numTables; ++t) {
                Entry &cand = tables_[t][indexOf(t, br.pc)];
                if (cand.useful > 0)
                    --cand.useful;
            }
            ++stats_.allocFailures;
        }
    }

    history_.push(taken);

    ++updates_;
    if (config_.agingPeriod != 0 && updates_ % config_.agingPeriod == 0) {
        for (auto &table : tables_)
            for (Entry &e : table)
                e.useful >>= 1;
        ++stats_.agingEvents;
    }
}

void
Tage::reset()
{
    base_.assign(base_.size(), 1);
    for (auto &table : tables_)
        table.assign(table.size(), Entry{});
    history_.clear();
    updates_ = 0;
    stats_ = TageStats{};
}

std::string
Tage::name() const
{
    return config_.label;
}

unsigned
Tage::maxUseful() const
{
    unsigned out = 0;
    for (const auto &table : tables_)
        for (const Entry &e : table)
            if (e.useful > out)
                out = e.useful;
    return out;
}

uint64_t
Tage::usefulSum() const
{
    uint64_t out = 0;
    for (const auto &table : tables_)
        for (const Entry &e : table)
            out += e.useful;
    return out;
}

} // namespace copra::predictor
