/**
 * @file
 * Loop predictor (paper §4.1.1): captures "for-type" branches (taken n
 * times, then not-taken once) and "while-type" branches (not-taken n
 * times, then taken once), where n stays the same or changes infrequently.
 *
 * The predictor makes n predictions in a row of one direction, then a
 * single prediction of the opposite direction; n is the length of the
 * branch's previous same-direction run. A direction bit distinguishes the
 * for/while flavours. Per-branch state lives in a BTB: perfect by default
 * (the paper's choice, so classification is never polluted by table
 * interference), or finite set-associative for the capacity ablation.
 * Run lengths saturate at 255 (the paper assumes n < 256).
 */

#pragma once

#include <cstdint>
#include <string>

#include "predictor/btb.hpp"
#include "predictor/predictor.hpp"
#include "predictor/state.hpp"

namespace copra::predictor {

/** Per-branch loop tracking state (exposed for tests). */
struct LoopState
{
    bool seen = false;   //!< any outcome observed yet
    bool dir = true;     //!< the repeated ("body") direction
    uint8_t run = 0;     //!< length of the current same-direction run
    uint8_t trip = 255;  //!< learned n: previous run length of `dir`
};

/** The paper's loop-class predictor. */
class LoopPredictor : public Predictor
{
  public:
    /** @param btb BTB geometry; perfect (the paper's setup) by default. */
    explicit LoopPredictor(const BtbConfig &btb = BtbConfig::perfect())
        : table_(btb)
    {
    }

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override;

    /** Current state for @p pc (default state if absent). */
    LoopState state(uint64_t pc) const;

    /** BTB evictions suffered (0 with a perfect BTB). */
    uint64_t btbEvictions() const { return table_.evictions(); }

    // State contract (DESIGN.md §14): per tracked branch, 2 flag bits
    // plus two 8-bit run counts (18 payload bits), on top of the BTB's
    // own tag/bookkeeping accounting.
    uint64_t stateBits() const override { return table_.stateBits(18); }

    void
    snapshotState(state::Writer &w) const override
    {
        table_.snapshot(w, [](state::Writer &out, const LoopState &s) {
            out.b(s.seen);
            out.b(s.dir);
            out.u8(s.run);
            out.u8(s.trip);
        });
    }

    void
    restoreState(state::Reader &r) override
    {
        table_.restore(r, [](state::Reader &in, LoopState &s) {
            s.seen = in.b();
            s.dir = in.b();
            s.run = in.u8();
            s.trip = in.u8();
        });
    }

    COPRA_STATE_FIELDS(table_);

  private:
    static constexpr uint8_t kMaxRun = 255;

    BtbTable<LoopState> table_;
};

} // namespace copra::predictor

