/**
 * @file
 * Block-pattern predictor (paper §4.1.2): captures branches that are
 * taken n times, then not-taken m times, then taken n times, and so on.
 *
 * After the n-th consecutive taken outcome it predicts not-taken for the
 * previous not-taken block length m, and symmetrically for taken blocks.
 * Counts are kept per branch in a BTB (perfect by default, finite for
 * the capacity ablation), saturating at 255, as the paper assumes
 * (n < 256, m < 256).
 */

#pragma once

#include <cstdint>
#include <string>

#include "predictor/btb.hpp"
#include "predictor/predictor.hpp"
#include "predictor/state.hpp"

namespace copra::predictor {

/** Per-branch block tracking state (exposed for tests). */
struct BlockState
{
    bool seen = false;
    bool curDir = true;     //!< direction of the in-progress block
    uint8_t curRun = 0;     //!< length of the in-progress block so far
    uint8_t lastRun[2] = {255, 255}; //!< last completed block length per
                                     //!< direction, [0]=not-taken [1]=taken
};

/** The paper's block-pattern class predictor. */
class BlockPatternPredictor : public Predictor
{
  public:
    /** @param btb BTB geometry; perfect (the paper's setup) by default. */
    explicit BlockPatternPredictor(
        const BtbConfig &btb = BtbConfig::perfect())
        : table_(btb)
    {
    }

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override;

    /** Current state for @p pc (default state if absent). */
    BlockState state(uint64_t pc) const;

    /** BTB evictions suffered (0 with a perfect BTB). */
    uint64_t btbEvictions() const { return table_.evictions(); }

    // State contract (DESIGN.md §14): per tracked branch, 2 flag bits
    // plus three 8-bit run counts (26 payload bits), on top of the
    // BTB's own tag/bookkeeping accounting.
    uint64_t stateBits() const override { return table_.stateBits(26); }

    void
    snapshotState(state::Writer &w) const override
    {
        table_.snapshot(w, [](state::Writer &out, const BlockState &s) {
            out.b(s.seen);
            out.b(s.curDir);
            out.u8(s.curRun);
            out.u8(s.lastRun[0]);
            out.u8(s.lastRun[1]);
        });
    }

    void
    restoreState(state::Reader &r) override
    {
        table_.restore(r, [](state::Reader &in, BlockState &s) {
            s.seen = in.b();
            s.curDir = in.b();
            s.curRun = in.u8();
            s.lastRun[0] = in.u8();
            s.lastRun[1] = in.u8();
        });
    }

    COPRA_STATE_FIELDS(table_);

  private:
    static constexpr uint8_t kMaxRun = 255;

    BtbTable<BlockState> table_;
};

} // namespace copra::predictor

