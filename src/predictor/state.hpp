/**
 * @file
 * The predictor state contract: byte-stable serialization primitives
 * and the per-class field-taxonomy declarations the copra_lint sema
 * pass cross-checks against the parsed member list (DESIGN.md §14).
 *
 * Every roster predictor declares each member field in exactly one of
 * three lists — COPRA_STATE_FIELDS (adaptive state, serialized),
 * COPRA_CONFIG_FIELDS (immutable after construction), or
 * COPRA_TRANSIENT_FIELDS (scratch/telemetry that must never influence
 * predictions) — and implements stateBits()/snapshotState()/
 * restoreState() against the Writer/Reader below. The encoding is
 * explicit little-endian bytes, so snapshots hash identically across
 * platforms, and unordered containers are serialized in sorted key
 * order so snapshots never depend on hash-table iteration order.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/logging.hpp"

namespace copra::predictor::state {

/** Append-only byte stream collecting one predictor snapshot. */
class Writer
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u16(uint16_t v)
    {
        u8(static_cast<uint8_t>(v));
        u8(static_cast<uint8_t>(v >> 8));
    }

    void
    u32(uint32_t v)
    {
        u16(static_cast<uint16_t>(v));
        u16(static_cast<uint16_t>(v >> 16));
    }

    void
    u64(uint64_t v)
    {
        u32(static_cast<uint32_t>(v));
        u32(static_cast<uint32_t>(v >> 32));
    }

    void i16(int16_t v) { u16(static_cast<uint16_t>(v)); }
    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }

    const std::vector<uint8_t> &bytes() const { return buf_; }
    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

/** Cursor over snapshot bytes; overruns panic (a truncated snapshot
 *  is a copra bug, never a recoverable condition). */
class Reader
{
  public:
    explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

    uint8_t
    u8()
    {
        panicIf(pos_ >= bytes_.size(),
                "state::Reader: read past the end of a snapshot");
        return bytes_[pos_++];
    }

    uint16_t
    u16()
    {
        uint16_t lo = u8();
        return static_cast<uint16_t>(lo | (uint16_t(u8()) << 8));
    }

    uint32_t
    u32()
    {
        uint32_t lo = u16();
        return lo | (uint32_t(u16()) << 16);
    }

    uint64_t
    u64()
    {
        uint64_t lo = u32();
        return lo | (uint64_t(u32()) << 32);
    }

    int16_t i16() { return static_cast<int16_t>(u16()); }
    int32_t i32() { return static_cast<int32_t>(u32()); }
    bool b() { return u8() != 0; }

    /** Bytes not yet consumed. */
    size_t remaining() const { return bytes_.size() - pos_; }

  private:
    std::span<const uint8_t> bytes_;
    size_t pos_ = 0;
};

/** FNV-1a over snapshot bytes: the predictor stateHash(). */
inline uint64_t
fnv1a(std::span<const uint8_t> bytes)
{
    uint64_t h = 1469598103934665603ull;
    for (uint8_t byte : bytes) {
        h ^= byte;
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * Serialize a fixed-geometry vector: the size prefix is a tripwire the
 * restore side checks, because restoring a snapshot into a predictor
 * of a different geometry is a caller bug.
 */
template <typename T, typename Fn>
void
writeVec(Writer &w, const std::vector<T> &vec, Fn &&item)
{
    w.u64(vec.size());
    for (const T &x : vec)
        item(w, x);
}

template <typename T, typename Fn>
void
readVec(Reader &r, std::vector<T> &vec, Fn &&item)
{
    uint64_t n = r.u64();
    panicIf(n != vec.size(),
            "state restore: table geometry mismatch (snapshot has " +
                std::to_string(n) + " entries, predictor has " +
                std::to_string(vec.size()) + ")");
    for (T &x : vec)
        item(r, x);
}

/**
 * Serialize an unordered map with integral keys in sorted key order.
 * Sorting is the whole point: two predictors holding equal state must
 * produce byte-identical snapshots regardless of hash-table history,
 * or stateHash() comparisons would be meaningless.
 */
template <typename Map, typename Fn>
void
writeMap(Writer &w, const Map &map, Fn &&value)
{
    std::vector<typename Map::key_type> keys;
    keys.reserve(map.size());
    for (const auto &kv : map)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (const auto &k : keys) {
        w.u64(static_cast<uint64_t>(k));
        value(w, map.at(k));
    }
}

template <typename Map, typename Fn>
void
readMap(Reader &r, Map &map, Fn &&value)
{
    map.clear();
    uint64_t n = r.u64();
    for (uint64_t i = 0; i < n; ++i) {
        auto key = static_cast<typename Map::key_type>(r.u64());
        value(r, map[key]);
    }
}

} // namespace copra::predictor::state

/**
 * Field-taxonomy declarations. Each expands to a constexpr character
 * array holding the stringized field list, which gives the sema pass a
 * lexically visible declaration to cross-check against the parsed
 * member list and gives contracts.hpp a compile-time detection hook.
 */
#define COPRA_STATE_FIELDS(...)                                           \
    static constexpr const char kCopraStateFields[] = "" #__VA_ARGS__
#define COPRA_CONFIG_FIELDS(...)                                          \
    static constexpr const char kCopraConfigFields[] = "" #__VA_ARGS__
#define COPRA_TRANSIENT_FIELDS(...)                                       \
    static constexpr const char kCopraTransientFields[] = "" #__VA_ARGS__
