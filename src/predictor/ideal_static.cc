#include "predictor/ideal_static.hpp"

namespace copra::predictor {

IdealStatic::IdealStatic(std::unordered_map<uint64_t, bool> majority)
    : majority_(std::move(majority))
{
}

IdealStatic
IdealStatic::fromTrace(const trace::Trace &trace)
{
    struct Counts
    {
        uint64_t taken = 0;
        uint64_t total = 0;
    };
    std::unordered_map<uint64_t, Counts> counts;
    for (const auto &rec : trace.records()) {
        if (!rec.isConditional())
            continue;
        auto &c = counts[rec.pc];
        ++c.total;
        if (rec.taken)
            ++c.taken;
    }
    std::unordered_map<uint64_t, bool> majority;
    majority.reserve(counts.size());
    // copra-lint: allow(unordered-iter) -- per-key transform into a keyed container; no cross-key order dependence
    for (const auto &[pc, c] : counts)
        majority[pc] = 2 * c.taken >= c.total;
    return IdealStatic(std::move(majority));
}

bool
IdealStatic::predict(const trace::BranchRecord &br) noexcept
{
    auto it = majority_.find(br.pc);
    return it == majority_.end() ? true : it->second;
}

} // namespace copra::predictor
