#include "predictor/static_pht.hpp"

namespace copra::predictor {

StaticPhtTwoLevel::StaticPhtTwoLevel(const TwoLevelConfig &config,
                                     std::vector<uint8_t> directions,
                                     size_t covered)
    : indexer_(config), directions_(std::move(directions)),
      covered_(covered)
{
}

StaticPhtTwoLevel
StaticPhtTwoLevel::profile(const trace::Trace &trace,
                           const TwoLevelConfig &config)
{
    TwoLevel walker(config);
    struct Tally
    {
        uint32_t taken = 0;
        uint32_t total = 0;
    };
    std::vector<Tally> tallies(size_t(1) << config.phtBits);

    for (const auto &rec : trace.records()) {
        if (!rec.isConditional())
            continue;
        Tally &tally = tallies[walker.phtIndex(rec.pc)];
        ++tally.total;
        if (rec.taken)
            ++tally.taken;
        // Advance the first-level history exactly as the adaptive
        // predictor would (the PHT it trains internally is unused).
        walker.update(rec, rec.taken);
    }

    std::vector<uint8_t> directions(tallies.size(), 1);
    size_t covered = 0;
    for (size_t i = 0; i < tallies.size(); ++i) {
        if (tallies[i].total == 0)
            continue;
        ++covered;
        directions[i] = 2 * tallies[i].taken >= tallies[i].total ? 1 : 0;
    }
    return StaticPhtTwoLevel(config, std::move(directions), covered);
}

bool
StaticPhtTwoLevel::predict(const trace::BranchRecord &br) noexcept
{
    return directions_[indexer_.phtIndex(br.pc)] != 0;
}

void
StaticPhtTwoLevel::update(const trace::BranchRecord &br, bool taken) noexcept
{
    indexer_.update(br, taken);
}

void
StaticPhtTwoLevel::reset()
{
    // Histories are adaptive state; the profiled directions are not.
    indexer_.reset();
}

std::string
StaticPhtTwoLevel::name() const
{
    return "static-pht[" + indexer_.name() + "]";
}

double
StaticPhtTwoLevel::coverage() const
{
    if (directions_.empty())
        return 0.0;
    return static_cast<double>(covered_)
        / static_cast<double>(directions_.size());
}

} // namespace copra::predictor
