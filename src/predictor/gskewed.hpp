/**
 * @file
 * Skewed branch predictor (Seznec, ISCA 1997; cited by the paper as a
 * response to exactly the PHT interference its analysis quantifies).
 *
 * Three counter banks are indexed by three different hash (skewing)
 * functions of the same (history, pc) pair, and the prediction is the
 * majority vote. Two branches that collide in one bank almost never
 * collide in the other two, so a destructive alias is outvoted —
 * trading capacity for conflict resilience.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "predictor/predictor.hpp"
#include "util/sat_counter.hpp"
#include "util/shift_register.hpp"

namespace copra::predictor {

/**
 * e-gskew-style global predictor: 3 banks of 2^bank_bits 2-bit counters,
 * global history, majority vote, partial update (only the banks that
 * agreed with the outcome train when the vote was correct; all banks
 * train on a mispredict — Seznec's "partial update" policy).
 */
class GSkewed : public Predictor
{
  public:
    /**
     * @param history_bits Global history length.
     * @param bank_bits log2 of each bank's counter count.
     */
    explicit GSkewed(unsigned history_bits = 16, unsigned bank_bits = 14);

    bool predict(const trace::BranchRecord &br) override;
    void update(const trace::BranchRecord &br, bool taken) override;
    void reset() override;
    std::string name() const override;

    /** Bank index of @p bank for @p pc under the current history. */
    size_t bankIndex(unsigned bank, uint64_t pc) const;

  private:
    unsigned historyBits_;
    unsigned bankBits_;
    HistoryRegister history_;
    std::array<std::vector<Counter2>, 3> banks_;
};

} // namespace copra::predictor

