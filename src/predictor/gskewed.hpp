/**
 * @file
 * Skewed branch predictor (Seznec, ISCA 1997; cited by the paper as a
 * response to exactly the PHT interference its analysis quantifies).
 *
 * Three counter banks are indexed by three different hash (skewing)
 * functions of the same (history, pc) pair, and the prediction is the
 * majority vote. Two branches that collide in one bank almost never
 * collide in the other two, so a destructive alias is outvoted —
 * trading capacity for conflict resilience.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "predictor/predictor.hpp"
#include "predictor/state.hpp"
#include "util/sat_counter.hpp"
#include "util/shift_register.hpp"

namespace copra::predictor {

/**
 * e-gskew-style global predictor: 3 banks of 2^bank_bits 2-bit counters,
 * global history, majority vote, partial update (only the banks that
 * agreed with the outcome train when the vote was correct; all banks
 * train on a mispredict — Seznec's "partial update" policy).
 */
class GSkewed : public Predictor
{
  public:
    /**
     * @param history_bits Global history length.
     * @param bank_bits log2 of each bank's counter count.
     */
    explicit GSkewed(unsigned history_bits = 16, unsigned bank_bits = 14);

    bool predict(const trace::BranchRecord &br) noexcept override;
    void update(const trace::BranchRecord &br, bool taken) noexcept override;
    void reset() override;
    std::string name() const override;

    /** Bank index of @p bank for @p pc under the current history. */
    size_t bankIndex(unsigned bank, uint64_t pc) const noexcept;

    // State contract (DESIGN.md §14): the global history register plus
    // 2 bits per counter across the three banks.
    uint64_t
    stateBits() const override
    {
        return historyBits_ + uint64_t(3) * 2 * banks_[0].size();
    }

    void
    snapshotState(state::Writer &w) const override
    {
        w.u64(history_.value());
        for (const auto &bank : banks_)
            state::writeVec(w, bank, [](state::Writer &out, Counter2 c) {
                out.u8(c.v);
            });
    }

    void
    restoreState(state::Reader &r) override
    {
        history_.set(r.u64());
        for (auto &bank : banks_)
            state::readVec(r, bank, [](state::Reader &in, Counter2 &c) {
                c.v = in.u8();
            });
    }

    COPRA_CONFIG_FIELDS(historyBits_, bankBits_);
    COPRA_STATE_FIELDS(history_, banks_);

  private:
    unsigned historyBits_;
    unsigned bankBits_;
    HistoryRegister history_;
    std::array<std::vector<Counter2>, 3> banks_;
};

} // namespace copra::predictor

