/**
 * @file
 * Ablation — the role of adaptivity in the second level (Sechrest et
 * al. 1995, Young et al. 1995; paper §2.2): a statically determined PHT
 * (profile-filled majority directions) against adaptive 2-bit counters,
 * with the same profiling and testing set, for gshare and PAs
 * geometries; and the Chang-et-al. branch-classification hybrid that
 * statically predicts the strongly biased branches.
 */

#include <iostream>

#include "bench_common.hpp"
#include "predictor/bias_hybrid.hpp"
#include "predictor/static_pht.hpp"
#include "predictor/two_level.hpp"
#include "sim/driver.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    copra::bench::BenchOptions opts;
    opts.config.branches = 1000000;
    if (!opts.parse(argc, argv,
                    "Ablation: static vs adaptive PHTs, and the "
                    "branch-classification hybrid"))
        return 0;
    copra::bench::banner(
        "Ablation: second-level adaptivity and bias classification",
        opts);

    using namespace copra::predictor;
    copra::Table table({"benchmark", "gshare", "static-PHT gshare", "PAs",
                        "static-PHT PAs", "bias-hybrid(gshare)",
                        "strongly biased branches"});

    for (const auto &name : copra::workload::benchmarkNames()) {
        auto trace = copra::workload::makeBenchmarkTrace(
            name, opts.config.branches, opts.config.seed);
        auto gshare_cfg = TwoLevelConfig::gshare(16);
        auto pas_cfg = TwoLevelConfig::pas(12, 12, 4);

        TwoLevel gshare(gshare_cfg);
        TwoLevel pas(pas_cfg);
        auto static_gshare = StaticPhtTwoLevel::profile(trace, gshare_cfg);
        auto static_pas = StaticPhtTwoLevel::profile(trace, pas_cfg);
        BiasClassifyingHybrid bias_hybrid(
            BiasClassifyingHybrid::profileTrace(trace, 0.95),
            std::make_unique<TwoLevel>(gshare_cfg));
        size_t strongly = bias_hybrid.stronglyBiasedBranches();

        table.row()
            .cell(name)
            .cell(copra::sim::run(trace, gshare).accuracyPercent(), 2)
            .cell(copra::sim::run(trace, static_gshare).accuracyPercent(),
                  2)
            .cell(copra::sim::run(trace, pas).accuracyPercent(), 2)
            .cell(copra::sim::run(trace, static_pas).accuracyPercent(), 2)
            .cell(copra::sim::run(trace, bias_hybrid).accuracyPercent(),
                  2)
            .cell(static_cast<uint64_t>(strongly));
    }
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nexpectation (paper §2.2): with profiling == testing "
                "set, static PHTs are on par with or above 2-bit "
                "counters; bias classification never hurts and frees "
                "dynamic capacity.\n");
    return 0;
}
