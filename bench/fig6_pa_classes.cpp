/**
 * @file
 * Figure 6 — per-address predictability class distribution: for every
 * benchmark, the fraction of dynamic branch executions whose branch is
 * best predicted by the loop / repeating-pattern / non-repeating-pattern
 * class predictor, or by the ideal static predictor (unclassified).
 */

#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"
#include "workload/frontier.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    copra::bench::BenchOptions opts;
    if (!opts.parse(argc, argv,
                    "Figure 6: per-address predictability classes, "
                    "dynamic-weighted"))
        return 0;
    copra::bench::banner("Figure 6: per-address class distribution",
                         opts);

    copra::Table table({"benchmark", "ideal static %", "loop %",
                        "repeating %", "non-repeating %",
                        "static bucket >99% biased %"});
    copra::bench::SuiteTiming timing;
    auto produced = copra::bench::runSuite(
        opts, &timing, copra::workload::workloadSuiteNames(),
        [](copra::core::BenchmarkExperiment &experiment) {
            return experiment.fig6Row();
        });

    double sums[5] = {0, 0, 0, 0, 0};
    int rows = 0;
    for (const copra::core::Fig6Row &row : produced) {
        table.row()
            .cell(row.name)
            .cell(100.0 * row.fractions[0], 1)
            .cell(100.0 * row.fractions[1], 1)
            .cell(100.0 * row.fractions[2], 1)
            .cell(100.0 * row.fractions[3], 1)
            .cell(100.0 * row.staticBiasedFraction, 1);
        for (int i = 0; i < 4; ++i)
            sums[i] += 100.0 * row.fractions[static_cast<size_t>(i)];
        sums[4] += 100.0 * row.staticBiasedFraction;
        ++rows;
    }
    table.row().cell("average");
    for (double sum : sums)
        table.cell(sum / rows, 1);

    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\npaper shape: about half ideal-static (88%% of that "
                ">99%% biased), about a third non-repeating, about a "
                "sixth loop, repeating infrequent.\n");
    copra::bench::reportTiming("fig6_pa_classes", opts, timing);
    return 0;
}
