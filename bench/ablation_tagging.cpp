/**
 * @file
 * Ablation — instance tagging methods (§3.2): the paper tags candidate
 * instances by occurrence numbering AND backward-branch counting and
 * treats the union as the candidate space. This harness reruns the
 * 3-branch selective oracle with each method alone to quantify what the
 * union buys.
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/oracle.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    copra::bench::BenchOptions opts;
    opts.config.branches = 500000;
    opts.config.mineConditionals = 500000;
    if (!opts.parse(argc, argv,
                    "Ablation: selective-history accuracy with each "
                    "instance-tagging method alone vs both"))
        return 0;
    copra::bench::banner("Ablation: tagging methods (sel-3 accuracy)",
                         opts);

    using Filter = copra::core::OracleConfig::TagFilter;
    copra::Table table({"benchmark", "occurrence only", "backward only",
                        "both (paper)"});
    for (const auto &name : copra::workload::benchmarkNames()) {
        auto trace = copra::core::makeExperimentTrace(name, opts.config);
        table.row().cell(name);
        for (Filter filter : {Filter::OccurrenceOnly,
                              Filter::BackwardOnly, Filter::Both}) {
            copra::core::OracleConfig oc;
            oc.historyDepth = opts.config.historyDepth;
            oc.candidatePool = opts.config.candidatePool;
            oc.mineConditionals = opts.config.mineConditionals;
            oc.tagFilter = filter;
            copra::core::SelectiveOracle oracle(trace, oc);
            table.cell(oracle.accuracyPercent(3), 2);
        }
    }
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nexpectation: the union tracks the better single "
                "method within noise on every benchmark (a tenth of a "
                "point of dilution is possible: duplicated tags crowd "
                "the fixed-size candidate pool). Its value is "
                "robustness - each method wins somewhere (DESIGN.md "
                "SS5.1).\n");
    return 0;
}
