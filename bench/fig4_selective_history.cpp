/**
 * @file
 * Figure 4 — selective history vs gshare and interference-free gshare:
 * prediction accuracy using an oracle-chosen selective history of 1, 2,
 * or 3 branches (3-valued taken / not-taken / not-in-path encoding, 16
 * prior branches considered), against IF gshare and regular gshare.
 */

#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"
#include "workload/frontier.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    copra::bench::BenchOptions opts;
    if (!opts.parse(argc, argv,
                    "Figure 4: selective history (1/2/3 oracle-chosen "
                    "branches) vs gshare and IF gshare"))
        return 0;
    copra::bench::banner("Figure 4: selective history vs gshare", opts);

    copra::bench::SuiteTiming timing;
    auto rows = copra::bench::runSuite(
        opts, &timing, copra::workload::workloadSuiteNames(),
        [](copra::core::BenchmarkExperiment &experiment) {
            return experiment.fig4Row();
        });

    copra::Table table({"benchmark", "IF sel-1", "IF sel-2", "IF sel-3",
                        "IF gshare", "gshare"});
    for (const copra::core::Fig4Row &row : rows) {
        table.row()
            .cell(row.name)
            .cell(row.selective1, 2)
            .cell(row.selective2, 2)
            .cell(row.selective3, 2)
            .cell(row.ifGshare, 2)
            .cell(row.gshare, 2);
    }
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\npaper shape: sel-1 already respectable; sel-3 close "
                "to IF gshare; gshare below IF gshare.\n");
    copra::bench::reportTiming("fig4_selective_history", opts, timing);
    return 0;
}
