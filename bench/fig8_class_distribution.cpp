/**
 * @file
 * Figure 8 — distribution of branches best predicted using global
 * correlation (IF gshare or the 3-branch selective history), the
 * per-address class predictors of §4.1, or an ideal static predictor,
 * weighted by execution frequency. The paper reports ~38% global, ~22%
 * per-address, ~40% static (92% of it >99% biased).
 */

#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"
#include "workload/frontier.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    copra::bench::BenchOptions opts;
    if (!opts.parse(argc, argv,
                    "Figure 8: best of {global correlation, per-address "
                    "classes, ideal static}, dynamic-weighted"))
        return 0;
    copra::bench::banner(
        "Figure 8: global / per-address / ideal-static split", opts);

    copra::Table table({"benchmark", "global best %",
                        "per-address best %", "ideal static best %",
                        "static >99% biased %"});
    copra::bench::SuiteTiming timing;
    auto splits = copra::bench::runSuite(
        opts, &timing, copra::workload::workloadSuiteNames(),
        [](copra::core::BenchmarkExperiment &experiment) {
            return experiment.fig8Split();
        });

    const auto &names = copra::workload::workloadSuiteNames();
    double sums[4] = {0, 0, 0, 0};
    int rows = 0;
    for (size_t i = 0; i < splits.size(); ++i) {
        const copra::core::BestOfSplit &split = splits[i];
        table.row()
            .cell(names[i])
            .cell(100.0 * split.fracA, 1)
            .cell(100.0 * split.fracB, 1)
            .cell(100.0 * split.fracStatic, 1)
            .cell(100.0 * split.staticBiasedFraction, 1);
        sums[0] += 100.0 * split.fracA;
        sums[1] += 100.0 * split.fracB;
        sums[2] += 100.0 * split.fracStatic;
        sums[3] += 100.0 * split.staticBiasedFraction;
        ++rows;
    }
    table.row().cell("average");
    for (double sum : sums)
        table.cell(sum / rows, 1);

    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\npaper averages: global 38%%, per-address 22%%, ideal "
                "static 40%% (92%% of it >99%% biased).\n");
    copra::bench::reportTiming("fig8_class_distribution", opts, timing);
    return 0;
}
