/**
 * @file
 * Ablation — oracle search parameters: candidate pool size K (DESIGN.md
 * §5.2) and greedy vs exhaustive subset selection (§5.3), on a reduced
 * trace so the exhaustive run stays cheap.
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/oracle.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    copra::bench::BenchOptions opts;
    opts.config.branches = 200000;
    opts.config.mineConditionals = 200000;
    if (!opts.parse(argc, argv,
                    "Ablation: oracle candidate pool size and greedy vs "
                    "exhaustive selection"))
        return 0;
    copra::bench::banner("Ablation: oracle search (sel-3 accuracy)",
                         opts);

    const std::vector<unsigned> pools = {4, 8, 14};
    std::vector<std::string> headers = {"benchmark"};
    for (unsigned k : pools)
        headers.push_back("greedy K=" + std::to_string(k));
    headers.push_back("exhaustive K=8");
    copra::Table table(headers);

    for (const auto &name : copra::workload::benchmarkNames()) {
        auto trace = copra::core::makeExperimentTrace(name, opts.config);
        table.row().cell(name);
        for (unsigned k : pools) {
            copra::core::OracleConfig oc;
            oc.historyDepth = opts.config.historyDepth;
            oc.candidatePool = k;
            oc.mineConditionals = opts.config.mineConditionals;
            copra::core::SelectiveOracle oracle(trace, oc);
            table.cell(oracle.accuracyPercent(3), 2);
        }
        copra::core::OracleConfig oc;
        oc.historyDepth = opts.config.historyDepth;
        oc.candidatePool = 8;
        oc.mineConditionals = opts.config.mineConditionals;
        oc.exhaustive = true;
        copra::core::SelectiveOracle oracle(trace, oc);
        table.cell(oracle.accuracyPercent(3), 2);
    }
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nexpectation: accuracy saturates with K; exhaustive "
                "gains little over greedy (the candidates the miner "
                "ranks first are rarely complementary-only).\n");
    return 0;
}
