/**
 * @file
 * Shared plumbing for the bench binaries: common CLI options, the
 * standard header each harness prints, the parallel suite fan-out, and
 * wall-clock timing instrumentation. Every bench regenerates one of the
 * paper's tables or figures over the synthetic benchmark suite and
 * prints the paper's published values alongside for comparison.
 *
 * Parallelism: runSuite() runs a bench's workload roster — the paper's
 * 8 benchmarks by default, or an explicit name list (the figure benches
 * pass workload::workloadSuiteNames() to include the frontier families)
 * — concurrently on the global thread pool (size --threads /
 * COPRA_THREADS), collecting rows in suite order so the printed table
 * is byte-identical for every thread count. Traces are served from the
 * on-disk cache (.copra-cache/ or $COPRA_CACHE_DIR) unless
 * --no-trace-cache is given.
 *
 * Timing: each harness prints a "timing=" line (per-phase seconds and
 * branch throughput) and appends a machine-readable entry to
 * bench_results.json, so successive PRs have a perf trajectory to
 * compare against.
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "core/experiments.hpp"
#include "obs/instruments.hpp"
#include "obs/manifest.hpp"
#include "obs/registry.hpp"
#include "trace/trace_cache.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"
#include "workload/profiles.hpp"

namespace copra::bench {

/** CLI options shared by all table/figure harnesses. */
struct BenchOptions
{
    core::ExperimentConfig config;
    bool csv = false;
    uint64_t threads = 0;     //!< worker threads (0 = auto)
    bool noTraceCache = false;
    std::string resultsPath = "bench_results.json";
    //! run-manifest path; "" disables (docs/OBSERVABILITY.md)
    std::string metricsOut = util::envString("COPRA_METRICS_OUT", "");
    bool metricsSummary = false; //!< print the instrument table (stderr)
    std::string argvLine;        //!< reconstructed command line

    /**
     * Parse argv; returns false if the program should exit (e.g.
     * --help). @p extra lets a harness register additional options.
     * On success, sizes the global thread pool and enables the trace
     * cache (unless --no-trace-cache).
     */
    bool
    parse(int argc, char **argv, const std::string &description,
          const std::function<void(OptionParser &)> &extra = {})
    {
        OptionParser options(description);
        options.addUint("branches", &config.branches,
                        "dynamic conditional branches per benchmark");
        options.addUint("seed", &config.seed,
                        "workload seed (0 = canonical)");
        options.addUint("mine", &config.mineConditionals,
                        "branches used for candidate mining (0 = all)");
        options.addFlag("csv", &csv, "emit CSV instead of aligned text");
        options.addUint("threads", &threads,
                        "worker threads (0 = COPRA_THREADS or hardware)");
        options.addFlag("no-trace-cache", &noTraceCache,
                        "regenerate traces instead of using "
                        ".copra-cache/ ($COPRA_CACHE_DIR)");
        options.addString("results", &resultsPath,
                          "bench_results.json path (empty = skip)");
        options.addString("metrics-out", &metricsOut,
                          "write a run-manifest JSON here "
                          "($COPRA_METRICS_OUT; empty = off)");
        options.addFlag("metrics-summary", &metricsSummary,
                        "print non-zero telemetry instruments to stderr");
        uint64_t depth = config.historyDepth;
        uint64_t pool = config.candidatePool;
        options.addUint("depth", &depth, "history window depth n");
        options.addUint("pool", &pool, "oracle candidate pool size K");
        if (extra)
            extra(options);
        if (!options.parse(argc, argv))
            return false;
        config.historyDepth = static_cast<unsigned>(depth);
        config.candidatePool = static_cast<unsigned>(pool);

        std::ostringstream line;
        for (int i = 1; i < argc; ++i)
            line << (i > 1 ? " " : "") << argv[i];
        argvLine = line.str();

        setGlobalPoolThreads(static_cast<unsigned>(threads));
        trace::setTraceCacheEnabled(!noTraceCache);
        // Telemetry before any simulation work, so every instrument
        // sees the whole run; recording stays off unless requested.
        obs::setEnabled(!metricsOut.empty() || metricsSummary);
        return true;
    }
};

/** Print the standard harness banner. */
inline void
banner(const char *artifact, const BenchOptions &opts)
{
    std::printf("== %s ==\n", artifact);
    std::printf("synthetic SPECint95-like suite, %llu branches/benchmark, "
                "seed %llu (see DESIGN.md for the substitution rationale)\n\n",
                static_cast<unsigned long long>(opts.config.branches),
                static_cast<unsigned long long>(opts.config.seed));
}

/** Aggregate timing of one harness run, summed over the suite. */
struct SuiteTiming
{
    double wallSeconds = 0.0;      //!< end-to-end fan-out wall clock
    double traceSeconds = 0.0;     //!< trace gen/load, summed per task
    double predictorSeconds = 0.0; //!< predictor runs, summed per task
    double oracleSeconds = 0.0;    //!< oracle + classifier, summed
    uint64_t dynamicBranches = 0;  //!< conditional branches simulated
};

/**
 * Mutex-guarded SuiteTiming accumulator for the parallel fan-out. The
 * guarded_by annotation makes the locking discipline a compile-time
 * property under -Wthread-safety (DESIGN.md §10): a task adding its
 * phase times without the lock no longer compiles on Clang.
 */
struct SuiteTimingAccumulator
{
    util::Mutex mutex;
    SuiteTiming totals COPRA_GUARDED_BY(mutex);

    /** Fold one completed experiment's phase times into the totals. */
    void
    add(const core::PhaseTimes &phases, uint64_t branches)
    {
        util::MutexLock lock(mutex);
        totals.traceSeconds += phases.traceSeconds;
        totals.predictorSeconds += phases.predictorSeconds;
        totals.oracleSeconds += phases.oracleSeconds;
        totals.dynamicBranches += branches;
    }

    /** Snapshot the totals (taken after the fan-out has joined). */
    SuiteTiming
    snapshot()
    {
        util::MutexLock lock(mutex);
        return totals;
    }
};

/**
 * Run @p producer over @p names concurrently and return the produced
 * rows in that order (deterministic regardless of thread count or
 * scheduling: each task owns its BenchmarkExperiment and writes only
 * its own slot). Names must be suite workloads
 * (workload::makeBenchmarkTrace dispatches paper and frontier alike).
 *
 * @param timing Optional sink for per-phase and wall-clock seconds.
 */
template <typename Producer>
auto
runSuite(const BenchOptions &opts, SuiteTiming *timing,
         const std::vector<std::string> &names, Producer &&producer)
    -> std::vector<std::decay_t<
        std::invoke_result_t<Producer &, core::BenchmarkExperiment &>>>
{
    using Row = std::decay_t<
        std::invoke_result_t<Producer &, core::BenchmarkExperiment &>>;
    std::vector<Row> rows(names.size());

    SuiteTimingAccumulator accumulator;
    auto start = std::chrono::steady_clock::now();
    parallelFor(globalPool(), names.size(), [&](size_t i) {
        core::BenchmarkExperiment experiment(names[i], opts.config);
        rows[i] = producer(experiment);
        if (timing)
            accumulator.add(experiment.phaseTimes(),
                            experiment.trace().conditionalCount());
    });
    if (timing) {
        *timing = accumulator.snapshot();
        timing->wallSeconds = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start).count();
    }
    return rows;
}

/** runSuite over the paper's eight benchmarks (the tables' roster). */
template <typename Producer>
auto
runSuite(const BenchOptions &opts, SuiteTiming *timing,
         Producer &&producer)
{
    return runSuite(opts, timing, workload::benchmarkNames(),
                    std::forward<Producer>(producer));
}

/**
 * Append one run's entry to the bench_results.json array (creating the
 * file on first use; a file that is not a well-formed array is started
 * over). Records enough to reconstruct a perf trajectory across PRs.
 */
inline void
appendBenchResult(const std::string &path, const std::string &name,
                  const BenchOptions &opts, const SuiteTiming &timing)
{
    double branches_per_sec = timing.wallSeconds > 0
        ? static_cast<double>(timing.dynamicBranches) / timing.wallSeconds
        : 0.0;
    std::ostringstream entry;
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"%s\", \"threads\": %u, "
                  "\"branches\": %llu, \"seconds\": %.3f, "
                  "\"branches_per_sec\": %.0f, "
                  "\"trace_seconds\": %.3f, "
                  "\"predictor_seconds\": %.3f, "
                  "\"oracle_seconds\": %.3f, "
                  "\"trace_cache\": %s}",
                  name.c_str(), globalPool().size(),
                  static_cast<unsigned long long>(timing.dynamicBranches),
                  timing.wallSeconds, branches_per_sec,
                  timing.traceSeconds, timing.predictorSeconds,
                  timing.oracleSeconds,
                  opts.noTraceCache ? "false" : "true");
    entry << buf;

    std::string existing;
    {
        std::ifstream in(path);
        if (in) {
            std::ostringstream slurp;
            slurp << in.rdbuf();
            existing = slurp.str();
        }
    }
    // Keep the file a valid JSON array: strip the closing bracket and
    // append, or start fresh when absent/not an array.
    size_t open = existing.find('[');
    size_t close = existing.rfind(']');
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return;
    if (open != std::string::npos && close != std::string::npos &&
        open < close) {
        std::string body = existing.substr(open + 1, close - open - 1);
        while (!body.empty() &&
               (body.back() == '\n' || body.back() == ' ' ||
                body.back() == ','))
            body.pop_back();
        out << "[" << body;
        if (!body.empty())
            out << ",";
        out << "\n" << entry.str() << "\n]\n";
    } else {
        out << "[\n" << entry.str() << "\n]\n";
    }
}

/**
 * Print the timing= line for @p artifact and append the matching
 * bench_results.json entry (unless --results ""). Call after the table.
 * The line goes to stderr so stdout (the table) stays byte-identical
 * across thread counts and machines.
 */
inline void
reportTiming(const char *artifact, const BenchOptions &opts,
             const SuiteTiming &timing)
{
    double branches_per_sec = timing.wallSeconds > 0
        ? static_cast<double>(timing.dynamicBranches) / timing.wallSeconds
        : 0.0;
    std::fprintf(stderr,
                 "timing= total=%.3fs trace=%.3fs predictors=%.3fs "
                 "oracle=%.3fs threads=%u branches=%llu "
                 "branches/sec=%.0f\n",
                 timing.wallSeconds, timing.traceSeconds,
                 timing.predictorSeconds, timing.oracleSeconds,
                 globalPool().size(),
                 static_cast<unsigned long long>(timing.dynamicBranches),
                 branches_per_sec);
    if (!opts.resultsPath.empty())
        appendBenchResult(opts.resultsPath, artifact, opts, timing);

    if (!obs::enabled())
        return;
    obs::observe(obs::ids().benchSuiteWallSeconds, timing.wallSeconds);
    obs::gaugeMax(obs::ids().poolWorkerCount, globalPool().size());
    obs::RunInfo info;
    info.tool = artifact;
    info.args = opts.argvLine;
    info.seed = opts.config.seed;
    info.threads = globalPool().size();
    if (!opts.metricsOut.empty())
        obs::writeManifest(opts.metricsOut, info);
    if (opts.metricsSummary)
        std::fputs(
            obs::renderSummary(obs::Registry::instance().snapshot())
                .c_str(),
            stderr);
}

} // namespace copra::bench

