/**
 * @file
 * Shared plumbing for the bench binaries: common CLI options and the
 * standard header each harness prints. Every bench regenerates one of
 * the paper's tables or figures over the synthetic benchmark suite and
 * prints the paper's published values alongside for comparison.
 */

#ifndef COPRA_BENCH_BENCH_COMMON_HPP
#define COPRA_BENCH_BENCH_COMMON_HPP

#include <cstdio>
#include <functional>
#include <string>

#include "core/experiments.hpp"
#include "util/cli.hpp"

namespace copra::bench {

/** CLI options shared by all table/figure harnesses. */
struct BenchOptions
{
    core::ExperimentConfig config;
    bool csv = false;

    /**
     * Parse argv; returns false if the program should exit (e.g.
     * --help). @p extra lets a harness register additional options.
     */
    bool
    parse(int argc, char **argv, const std::string &description,
          const std::function<void(OptionParser &)> &extra = {})
    {
        OptionParser options(description);
        options.addUint("branches", &config.branches,
                        "dynamic conditional branches per benchmark");
        options.addUint("seed", &config.seed,
                        "workload seed (0 = canonical)");
        options.addUint("mine", &config.mineConditionals,
                        "branches used for candidate mining (0 = all)");
        options.addFlag("csv", &csv, "emit CSV instead of aligned text");
        uint64_t depth = config.historyDepth;
        uint64_t pool = config.candidatePool;
        options.addUint("depth", &depth, "history window depth n");
        options.addUint("pool", &pool, "oracle candidate pool size K");
        if (extra)
            extra(options);
        if (!options.parse(argc, argv))
            return false;
        config.historyDepth = static_cast<unsigned>(depth);
        config.candidatePool = static_cast<unsigned>(pool);
        return true;
    }
};

/** Print the standard harness banner. */
inline void
banner(const char *artifact, const BenchOptions &opts)
{
    std::printf("== %s ==\n", artifact);
    std::printf("synthetic SPECint95-like suite, %llu branches/benchmark, "
                "seed %llu (see DESIGN.md for the substitution rationale)\n\n",
                static_cast<unsigned long long>(opts.config.branches),
                static_cast<unsigned long long>(opts.config.seed));
}

} // namespace copra::bench

#endif // COPRA_BENCH_BENCH_COMMON_HPP
