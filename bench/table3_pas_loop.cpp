/**
 * @file
 * Table 3 — PAs with and without the loop enhancement: the hypothetical
 * "PAs w/ Loop" uses the loop-class predictor for every branch in the
 * loop class and PAs for the rest, quantifying the loop predictability
 * PAs leaves unexploited.
 */

#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    copra::bench::BenchOptions opts;
    if (!opts.parse(argc, argv,
                    "Table 3: PAs / PAs w\\ Loop / IF PAs / IF PAs "
                    "w\\ Loop"))
        return 0;
    copra::bench::banner("Table 3: loop predictability PAs misses", opts);

    copra::bench::SuiteTiming timing;
    auto rows = copra::bench::runSuite(
        opts, &timing,
        [](copra::core::BenchmarkExperiment &experiment) {
            return experiment.table3Row();
        });

    copra::Table table({"benchmark", "PAs", "PAs w/Loop", "IF PAs",
                        "IF PAs w/Loop", "paper PAs", "paper PAs w/Loop",
                        "paper IF PAs", "paper IF w/Loop"});
    for (const copra::core::Table3Row &row : rows) {
        const auto &ref = copra::workload::paperReference(row.name);
        table.row()
            .cell(row.name)
            .cell(row.pas, 2)
            .cell(row.pasWithLoop, 2)
            .cell(row.ifPas, 2)
            .cell(row.ifPasWithLoop, 2)
            .cell(ref.pas, 2)
            .cell(ref.pasWithLoop, 2)
            .cell(ref.ifPas, 2)
            .cell(ref.ifPasWithLoop, 2);
    }
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\npaper shape: the loop enhancement helps every "
                "benchmark, most on gcc/go/ijpeg/m88ksim.\n");
    copra::bench::reportTiming("table3_pas_loop", opts, timing);
    return 0;
}
