/**
 * @file
 * Ablation — the perfect-BTB assumption (paper §4.1.1): the class
 * predictors keep per-branch counts "in a perfect BTB to prevent
 * interference from affecting our classification". This harness reruns
 * the loop predictor over finite set-associative BTBs and measures its
 * accuracy on the loop-class branches (the population the instrument
 * exists to classify): conflict evictions lose trip-count state exactly
 * where it matters.
 *
 * Measuring over *all* branches would mislead here: on non-loop
 * branches the loop state machine is worse than a cold taken default,
 * so a thrashing BTB can look "better" overall while destroying the
 * classification signal.
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/pa_class.hpp"
#include "predictor/btb.hpp"
#include "predictor/loop_predictor.hpp"
#include "sim/driver.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

namespace {

/** Loop-class accuracy of one geometry over one trace. */
double
loopClassAccuracy(const copra::trace::Trace &trace,
                  const copra::core::PaClassifier &classifier,
                  const copra::predictor::BtbConfig &config,
                  uint64_t *evictions)
{
    copra::predictor::LoopPredictor pred(config);
    copra::sim::Ledger ledger;
    copra::sim::run(trace, pred, &ledger);
    if (evictions != nullptr)
        *evictions = pred.btbEvictions();

    uint64_t execs = 0;
    uint64_t correct = 0;
    // copra-lint: allow(unordered-iter) -- commutative integer aggregation; result is order-independent
    for (const auto &[pc, res] : classifier.branches()) {
        if (res.cls != copra::core::PaClass::Loop)
            continue;
        auto tally = ledger.branch(pc);
        execs += tally.execs;
        correct += tally.correct;
    }
    if (execs == 0)
        return 0.0;
    return 100.0 * static_cast<double>(correct)
        / static_cast<double>(execs);
}

} // namespace

int
main(int argc, char **argv)
{
    copra::bench::BenchOptions opts;
    opts.config.branches = 1000000;
    if (!opts.parse(argc, argv,
                    "Ablation: loop predictor accuracy on loop-class "
                    "branches under perfect vs finite BTBs"))
        return 0;
    copra::bench::banner("Ablation: perfect-BTB assumption "
                         "(loop-class accuracy)",
                         opts);

    using copra::predictor::BtbConfig;
    struct Geometry
    {
        const char *label;
        BtbConfig config;
    };
    const Geometry geometries[] = {
        {"perfect", BtbConfig::perfect()},
        {"1024x4", BtbConfig::finite(10, 4)},
        {"256x4", BtbConfig::finite(8, 4)},
        {"64x2", BtbConfig::finite(6, 2)},
        {"16x1", BtbConfig::finite(4, 1)},
    };

    std::vector<std::string> headers = {"benchmark", "loop-class dyn %"};
    for (const auto &g : geometries)
        headers.push_back(g.label);
    headers.push_back("evictions@16x1");
    copra::Table table(headers);

    for (const auto &name : copra::workload::benchmarkNames()) {
        auto trace = copra::workload::makeBenchmarkTrace(
            name, opts.config.branches, opts.config.seed);
        copra::core::PaClassifier classifier(trace,
                                             opts.config.ifPasHistory);
        table.row().cell(name);
        table.cell(
            100.0 * classifier.classFractions()[static_cast<size_t>(
                copra::core::PaClass::Loop)],
            1);
        uint64_t smallest_evictions = 0;
        for (const auto &g : geometries) {
            uint64_t evictions = 0;
            table.cell(loopClassAccuracy(trace, classifier, g.config,
                                         &evictions),
                       2);
            smallest_evictions = evictions;
        }
        table.cell(smallest_evictions);
    }
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nexpectation: generous BTBs match perfect on the "
                "loop-class branches; small ones lose trip-count state "
                "on every conflict and degrade toward the cold "
                "default.\n");
    return 0;
}
