/**
 * @file
 * Figure 9 — difference between gshare and PAs accuracy: for each
 * benchmark, the percentile-of-dynamic-branches curve of the per-branch
 * accuracy difference (gshare - PAs, percentage points). The paper
 * plots gcc and perl; the left tail is where PAs is much better, the
 * right tail where gshare is much better, and both tails being fat is
 * why hybrids win.
 */

#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"
#include "workload/frontier.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    copra::bench::BenchOptions opts;
    if (!opts.parse(argc, argv,
                    "Figure 9: percentile curve of per-branch gshare - "
                    "PAs accuracy difference"))
        return 0;
    copra::bench::banner("Figure 9: gshare - PAs accuracy difference",
                         opts);

    const std::vector<double> percentiles = {0,  5,  10, 25, 50,
                                             75, 90, 95, 100};
    std::vector<std::string> headers = {"benchmark"};
    for (double p : percentiles)
        headers.push_back("p" + std::to_string(static_cast<int>(p)));
    copra::Table table(headers);

    copra::bench::SuiteTiming timing;
    auto curves = copra::bench::runSuite(
        opts, &timing, copra::workload::workloadSuiteNames(),
        [](copra::core::BenchmarkExperiment &experiment) {
            return experiment.fig9Percentiles();
        });

    const auto &names = copra::workload::workloadSuiteNames();
    for (size_t i = 0; i < curves.size(); ++i) {
        table.row().cell(names[i]);
        for (double p : percentiles)
            table.cell(curves[i].percentile(p), 1);
    }
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\npaper reference (gcc): p10 ~ -7.0 (PAs better), p90 "
                "~ +10.4 (gshare better); perl much flatter.\n");
    copra::bench::reportTiming("fig9_gshare_vs_pas", opts, timing);
    return 0;
}
