/**
 * @file
 * Figure 10 (extension) — the modern predictor roster over the paper's
 * suite: TAGE-lite, hashed perceptron and a tournament (chooser over
 * local PAs / global gshare with a BTB miss model) next to the paper's
 * gshare baseline, plus hard-to-predict (H2P) branch analysis after
 * Lin & Tarsa (PAPERS.md). The H2P table uses the per-branch best-of
 * combination of all four predictors — "the best predictor we have" —
 * and reports how concentrated the surviving mispredictions are
 * (per-static-branch misprediction CDF).
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/h2p.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

namespace {

/** Everything one benchmark contributes to the two tables. */
struct Fig10Row
{
    double gshare = 0.0;     //!< accuracy %
    double tage = 0.0;
    double perceptron = 0.0;
    double tournament = 0.0;
    uint64_t h2pPerPred[4] = {0, 0, 0, 0}; //!< H2P count per predictor
    uint64_t h2pBest = 0;       //!< H2P count under best-of
    double h2pStaticPct = 0.0;  //!< % of static branches that are H2P
    double h2pMispredPct = 0.0; //!< % of best-of mispredicts on H2Ps
    double cdfTop1 = 0.0;       //!< mispredict share of worst 1% branches
    double cdfTop10 = 0.0;      //!< mispredict share of worst 10% branches
};

} // namespace

int
main(int argc, char **argv)
{
    copra::bench::BenchOptions opts;
    if (!opts.parse(argc, argv,
                    "Figure 10 (extension): modern roster accuracy "
                    "(TAGE-lite, perceptron, tournament) and H2P "
                    "analysis under the per-branch best-of combination"))
        return 0;
    copra::bench::banner(
        "Figure 10: modern roster (TAGE / perceptron / tournament) + H2P",
        opts);

    copra::bench::SuiteTiming timing;
    auto rows = copra::bench::runSuite(
        opts, &timing,
        [](copra::core::BenchmarkExperiment &experiment) {
            Fig10Row row;
            const copra::sim::Ledger &gshare = experiment.gshareLedger();
            const copra::sim::Ledger &tage = experiment.ledgerFor("tage");
            const copra::sim::Ledger &perceptron =
                experiment.ledgerFor("perceptron");
            const copra::sim::Ledger &tournament =
                experiment.ledgerFor("tournament");
            row.gshare = gshare.accuracyPercent();
            row.tage = tage.accuracyPercent();
            row.perceptron = perceptron.accuracyPercent();
            row.tournament = tournament.accuracyPercent();

            const copra::sim::Ledger *all[4] = {&gshare, &tage,
                                                &perceptron, &tournament};
            for (int i = 0; i < 4; ++i)
                row.h2pPerPred[i] =
                    copra::core::identifyH2p(*all[i]).branches.size();
            copra::sim::Ledger best = copra::core::bestPerBranchLedger(
                {&gshare, &tage, &perceptron, &tournament});
            copra::core::H2pReport report = copra::core::identifyH2p(best);
            row.h2pBest = report.branches.size();
            row.h2pStaticPct = 100.0 * report.staticFraction();
            row.h2pMispredPct = 100.0 * report.mispredictFraction();
            copra::core::MispredictCdf cdf =
                copra::core::mispredictCdf(best);
            row.cdfTop1 = 100.0 * cdf.fractionFromTopPercent(1.0);
            row.cdfTop10 = 100.0 * cdf.fractionFromTopPercent(10.0);
            return row;
        });

    const auto &names = copra::workload::benchmarkNames();

    copra::Table accuracy({"benchmark", "gshare %", "TAGE %",
                           "perceptron %", "tournament %"});
    double sums[4] = {0, 0, 0, 0};
    for (size_t i = 0; i < rows.size(); ++i) {
        const Fig10Row &row = rows[i];
        accuracy.row()
            .cell(names[i])
            .cell(row.gshare, 2)
            .cell(row.tage, 2)
            .cell(row.perceptron, 2)
            .cell(row.tournament, 2);
        sums[0] += row.gshare;
        sums[1] += row.tage;
        sums[2] += row.perceptron;
        sums[3] += row.tournament;
    }
    accuracy.row().cell("average");
    for (double sum : sums)
        accuracy.cell(sum / rows.size(), 2);
    if (opts.csv)
        accuracy.printCsv(std::cout);
    else
        accuracy.print(std::cout);

    std::printf("\nH2P branches (>=1k execs, <99%% accuracy) per "
                "predictor, and under the per-branch best-of:\n\n");
    copra::Table h2p({"benchmark", "gshare", "TAGE", "perceptron",
                      "tournament", "best-of", "static %", "mispred %",
                      "top 1% CDF", "top 10% CDF"});
    for (size_t i = 0; i < rows.size(); ++i) {
        const Fig10Row &row = rows[i];
        h2p.row().cell(names[i]);
        for (uint64_t count : row.h2pPerPred)
            h2p.cell(count);
        h2p.cell(row.h2pBest)
            .cell(row.h2pStaticPct, 1)
            .cell(row.h2pMispredPct, 1)
            .cell(row.cdfTop1, 1)
            .cell(row.cdfTop10, 1);
    }
    if (opts.csv)
        h2p.printCsv(std::cout);
    else
        h2p.print(std::cout);

    std::printf("\nextension of the paper's per-branch analysis; H2P "
                "criterion after Lin & Tarsa (no paper counterpart).\n");
    copra::bench::reportTiming("fig10_modern_roster", opts, timing);
    return 0;
}
