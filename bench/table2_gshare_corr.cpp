/**
 * @file
 * Table 2 — accuracy of gshare with and without additional correlation:
 * the hypothetical "gshare w/ Corr" uses the 1-branch selective history
 * for every branch where it beats gshare, showing that gshare fails to
 * exploit even the single strongest correlation for some branches.
 */

#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    copra::bench::BenchOptions opts;
    if (!opts.parse(argc, argv,
                    "Table 2: gshare / gshare w\\ Corr / IF gshare / IF "
                    "gshare w\\ Corr"))
        return 0;
    copra::bench::banner("Table 2: correlation gshare fails to exploit",
                         opts);

    copra::bench::SuiteTiming timing;
    auto rows = copra::bench::runSuite(
        opts, &timing,
        [](copra::core::BenchmarkExperiment &experiment) {
            return experiment.table2Row();
        });

    copra::Table table({"benchmark", "gshare", "gshare w/Corr",
                        "IF gshare", "IF gshare w/Corr", "paper gshare",
                        "paper gsh w/Corr", "paper IF", "paper IF w/Corr"});
    for (const copra::core::Table2Row &row : rows) {
        const auto &ref = copra::workload::paperReference(row.name);
        table.row()
            .cell(row.name)
            .cell(row.gshare, 2)
            .cell(row.gshareWithCorr, 2)
            .cell(row.ifGshare, 2)
            .cell(row.ifGshareWithCorr, 2)
            .cell(ref.gshare, 2)
            .cell(ref.gshareWithCorr, 2)
            .cell(ref.ifGshare, 2)
            .cell(ref.ifGshareWithCorr, 2);
    }
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\npaper shape: w/Corr > base for every benchmark, with "
                "the largest gains on gcc and go.\n");
    copra::bench::reportTiming("table2_gshare_corr", opts, timing);
    return 0;
}
