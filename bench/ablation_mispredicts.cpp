/**
 * @file
 * Ablation — where gshare's mispredictions come from: a per-mispredict
 * decomposition into cold / interference / training / noise causes.
 * This separates the two factors the paper's §3.6.3 identifies (PHT
 * interference and training time) and quantifies each directly, per
 * benchmark — the paper's IF-gap argument made causal.
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/mispredict_taxonomy.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    copra::bench::BenchOptions opts;
    opts.config.branches = 1000000;
    if (!opts.parse(argc, argv,
                    "Ablation: gshare misprediction taxonomy "
                    "(cold / interference / training / noise)"))
        return 0;
    copra::bench::banner("Ablation: gshare misprediction causes", opts);

    copra::Table table({"benchmark", "accuracy %", "mispredicts",
                        "cold %", "interference %", "training %",
                        "noise %"});
    for (const auto &name : copra::workload::benchmarkNames()) {
        auto trace = copra::workload::makeBenchmarkTrace(
            name, opts.config.branches, opts.config.seed);
        auto breakdown = copra::core::classifyMispredicts(
            trace, opts.config.gshareHistory);
        using Cause = copra::core::MispredictCause;
        table.row()
            .cell(name)
            .cell(breakdown.accuracyPercent(), 2)
            .cell(breakdown.mispredicts())
            .cell(100.0 * breakdown.causeFraction(Cause::Cold), 1)
            .cell(100.0 * breakdown.causeFraction(Cause::Interference), 1)
            .cell(100.0 * breakdown.causeFraction(Cause::Training), 1)
            .cell(100.0 * breakdown.causeFraction(Cause::Noise), 1);
    }
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nreading: interference + training is the IF-gshare "
                "gap of Table 2 decomposed; noise is the floor no "
                "global predictor of this geometry can cross.\n");
    return 0;
}
