/**
 * @file
 * Ablation — predictor simulation throughput (google-benchmark): how
 * fast each predictor processes dynamic branches. Not a paper artifact;
 * it documents the cost of the instruments (table predictors are O(1)
 * per branch; interference-free and selective machinery pay hash-map
 * and window-collection costs).
 */

#include <benchmark/benchmark.h>

#include "core/selective.hpp"
#include "predictor/factory.hpp"
#include "sim/driver.hpp"
#include "workload/profiles.hpp"

namespace {

const copra::trace::Trace &
sharedTrace()
{
    static const copra::trace::Trace trace =
        copra::workload::makeBenchmarkTrace("gcc", 100000, 0);
    return trace;
}

void
BM_Predictor(benchmark::State &state, const std::string &spec)
{
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        auto pred = copra::predictor::makePredictor(spec);
        auto result = copra::sim::run(trace, *pred);
        benchmark::DoNotOptimize(result.correct);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(trace.conditionalCount()));
}

/**
 * Reference scalar loop: two virtual calls per branch, the driver's
 * pre-batching behaviour. The delta against BM_Predictor (which goes
 * through sim::run and therefore TwoLevel::predictUpdateBatch) is the
 * devirtualization win.
 */
void
BM_PredictorScalarVirtual(benchmark::State &state, const std::string &spec)
{
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        auto pred = copra::predictor::makePredictor(spec);
        uint64_t correct = 0;
        for (const auto &rec : trace.records()) {
            if (!rec.isConditional()) {
                pred->observe(rec);
                continue;
            }
            bool prediction = pred->predict(rec);
            pred->update(rec, rec.taken);
            if (prediction == rec.taken)
                ++correct;
        }
        benchmark::DoNotOptimize(correct);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(trace.conditionalCount()));
}

void
BM_SelectivePredictor(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        copra::core::SelectivePredictor pred({}, 16);
        auto result = copra::sim::run(trace, pred);
        benchmark::DoNotOptimize(result.correct);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(trace.conditionalCount()));
}

} // namespace

BENCHMARK_CAPTURE(BM_Predictor, bimodal, std::string("bimodal"));
BENCHMARK_CAPTURE(BM_Predictor, gshare, std::string("gshare"));
BENCHMARK_CAPTURE(BM_Predictor, pas, std::string("pas"));
BENCHMARK_CAPTURE(BM_Predictor, path, std::string("path"));
BENCHMARK_CAPTURE(BM_Predictor, loop, std::string("loop"));
BENCHMARK_CAPTURE(BM_Predictor, block, std::string("block"));
BENCHMARK_CAPTURE(BM_Predictor, ifgshare, std::string("ifgshare"));
BENCHMARK_CAPTURE(BM_Predictor, ifpas, std::string("ifpas"));
BENCHMARK_CAPTURE(BM_Predictor, hybrid, std::string("hybrid"));
BENCHMARK_CAPTURE(BM_PredictorScalarVirtual, gshare_scalar,
                  std::string("gshare"));
BENCHMARK_CAPTURE(BM_PredictorScalarVirtual, pas_scalar,
                  std::string("pas"));
BENCHMARK(BM_SelectivePredictor);

BENCHMARK_MAIN();
