/**
 * @file
 * Table 1 — benchmark summary: the synthetic suite standing in for
 * SPECint95, with dynamic branch counts, static branch populations, and
 * bias structure, next to the paper's dynamic branch counts.
 */

#include <iostream>

#include "bench_common.hpp"
#include "trace/trace_stats.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    copra::bench::BenchOptions opts;
    opts.config.branches = 2000000;
    if (!opts.parse(argc, argv,
                    "Table 1: benchmark suite summary (synthetic "
                    "SPECint95 substitution)"))
        return 0;
    copra::bench::banner("Table 1: benchmark summary", opts);

    struct Row
    {
        std::string name;
        uint64_t dynamicBranches = 0;
        uint64_t staticBranches = 0;
        double takenPct = 0;
        double biasedPct = 0;
        double idealStaticPct = 0;
    };
    copra::bench::SuiteTiming timing;
    auto rows = copra::bench::runSuite(
        opts, &timing,
        [](copra::core::BenchmarkExperiment &experiment) {
            const copra::trace::TraceStats &stats = experiment.stats();
            Row row;
            row.name = experiment.name();
            row.dynamicBranches = stats.dynamicBranches();
            row.staticBranches =
                static_cast<uint64_t>(stats.staticBranches());
            row.takenPct =
                100.0 * stats.dynamicTaken() / stats.dynamicBranches();
            row.biasedPct =
                100.0 * stats.dynamicFractionWithBiasAbove(0.99);
            row.idealStaticPct = 100.0 * stats.idealStaticCorrect()
                / stats.dynamicBranches();
            return row;
        });

    copra::Table table({"benchmark", "dyn branches", "static", "taken %",
                        ">99% biased %", "ideal static %",
                        "paper dyn branches"});
    for (const Row &row : rows) {
        const auto &ref = copra::workload::paperReference(row.name);
        table.row()
            .cell(row.name)
            .cell(row.dynamicBranches)
            .cell(row.staticBranches)
            .cell(row.takenPct, 1)
            .cell(row.biasedPct, 1)
            .cell(row.idealStaticPct, 2)
            .cell(ref.paperDynamicBranches);
    }
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    copra::bench::reportTiming("table1_benchmarks", opts, timing);
    return 0;
}
