/**
 * @file
 * Table 1 — benchmark summary: the synthetic suite standing in for
 * SPECint95, with dynamic branch counts, static branch populations, and
 * bias structure, next to the paper's dynamic branch counts.
 */

#include <iostream>

#include "bench_common.hpp"
#include "trace/trace_stats.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    copra::bench::BenchOptions opts;
    opts.config.branches = 2000000;
    if (!opts.parse(argc, argv,
                    "Table 1: benchmark suite summary (synthetic "
                    "SPECint95 substitution)"))
        return 0;
    copra::bench::banner("Table 1: benchmark summary", opts);

    copra::Table table({"benchmark", "dyn branches", "static", "taken %",
                        ">99% biased %", "ideal static %",
                        "paper dyn branches"});
    for (const auto &name : copra::workload::benchmarkNames()) {
        auto trace = copra::workload::makeBenchmarkTrace(
            name, opts.config.branches, opts.config.seed);
        copra::trace::TraceStats stats(trace);
        const auto &ref = copra::workload::paperReference(name);
        table.row()
            .cell(name)
            .cell(stats.dynamicBranches())
            .cell(static_cast<uint64_t>(stats.staticBranches()))
            .cell(100.0 * stats.dynamicTaken() / stats.dynamicBranches(),
                  1)
            .cell(100.0 * stats.dynamicFractionWithBiasAbove(0.99), 1)
            .cell(100.0 * stats.idealStaticCorrect()
                      / stats.dynamicBranches(),
                  2)
            .cell(ref.paperDynamicBranches);
    }
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
