/**
 * @file
 * Ablation — seed robustness: the paper's conclusions should not be
 * artifacts of one particular synthetic data stream. This harness
 * reruns the Table 2 headline (gshare w/ Corr gain) and the gshare/PAs
 * ordering across several execution seeds of the same programs and
 * reports mean and spread.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    copra::bench::BenchOptions opts;
    opts.config.branches = 500000;
    opts.config.mineConditionals = 500000;
    uint64_t seeds = 5;
    if (!opts.parse(argc, argv,
                    "Ablation: seed robustness of the Table 2 headline",
                    [&](copra::OptionParser &options) {
                        options.addUint("seeds", &seeds,
                                        "number of execution seeds");
                    }))
        return 0;
    copra::bench::banner("Ablation: seed robustness", opts);

    copra::Table table({"benchmark", "gshare mean", "gshare sd",
                        "w/Corr gain mean", "gain sd",
                        "gshare>PAs (seeds)"});
    for (const auto &name : copra::workload::benchmarkNames()) {
        std::vector<double> gshare_acc;
        std::vector<double> gains;
        int gshare_wins = 0;
        for (uint64_t s = 0; s < seeds; ++s) {
            copra::core::ExperimentConfig config = opts.config;
            config.seed = 1000 + 17 * s;
            copra::core::BenchmarkExperiment experiment(name, config);
            auto row = experiment.table2Row();
            gshare_acc.push_back(row.gshare);
            gains.push_back(row.gshareWithCorr - row.gshare);
            if (row.gshare >=
                experiment.pasLedger().accuracyPercent())
                ++gshare_wins;
        }
        auto mean = [](const std::vector<double> &v) {
            double sum = 0;
            for (double x : v)
                sum += x;
            return sum / static_cast<double>(v.size());
        };
        auto stdev = [&](const std::vector<double> &v) {
            double m = mean(v);
            double ss = 0;
            for (double x : v)
                ss += (x - m) * (x - m);
            return std::sqrt(ss / static_cast<double>(v.size()));
        };
        table.row()
            .cell(name)
            .cell(mean(gshare_acc), 2)
            .cell(stdev(gshare_acc), 3)
            .cell(mean(gains), 2)
            .cell(stdev(gains), 3)
            .cell(std::to_string(gshare_wins) + "/" +
                  std::to_string(seeds));
    }
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nexpectation: accuracies move by tenths across seeds "
                "(go, the noisiest, by ~2 points); the w/Corr gain is "
                "always positive. Decisive gshare-vs-PAs orderings are "
                "stable; near-ties (gcc, perl - the paper's own gaps "
                "are under a quarter point there) legitimately flip.\n");
    return 0;
}
