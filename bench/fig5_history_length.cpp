/**
 * @file
 * Figure 5 — accuracy as a function of history length using a 3-branch
 * selective history: the window depth n sweeps 8..32 in steps of 4. The
 * paper's finding: accuracy grows up to n ~ 20 and flattens, i.e. the
 * important correlated branches are close to the predicted branch.
 */

#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"
#include "workload/frontier.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    copra::bench::BenchOptions opts;
    opts.config.branches = 500000;
    opts.config.mineConditionals = 500000;
    if (!opts.parse(argc, argv,
                    "Figure 5: 3-branch selective history accuracy vs "
                    "history window depth (8..32)"))
        return 0;
    copra::bench::banner(
        "Figure 5: accuracy vs history length (3-branch selective)",
        opts);

    const std::vector<unsigned> depths = {8, 12, 16, 20, 24, 28, 32};
    std::vector<std::string> headers = {"benchmark"};
    for (unsigned d : depths)
        headers.push_back("n=" + std::to_string(d));
    copra::Table table(headers);

    copra::bench::SuiteTiming timing;
    auto all_series = copra::bench::runSuite(
        opts, &timing, copra::workload::workloadSuiteNames(),
        [&depths,
         &opts](copra::core::BenchmarkExperiment &experiment) {
            return copra::core::fig5Series(experiment.trace(),
                                           opts.config, depths);
        });

    const auto &names = copra::workload::workloadSuiteNames();
    for (size_t i = 0; i < all_series.size(); ++i) {
        table.row().cell(names[i]);
        for (const auto &[depth, accuracy] : all_series[i])
            table.cell(accuracy, 2);
    }
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\npaper shape: slow growth up to n~20, little beyond "
                "(correlated branches are nearby).\n");
    copra::bench::reportTiming("fig5_history_length", opts, timing);
    return 0;
}
