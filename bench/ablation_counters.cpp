/**
 * @file
 * Ablation — second-level counter width: every predictor in the paper
 * inherits Smith's 2-bit saturating counter. This harness sweeps the
 * width for gshare and PAs: 1 bit (no hysteresis — one deviation flips
 * the prediction), 2 bits (the classic), and 3 bits (more inertia,
 * slower recovery after behaviour changes).
 */

#include <iostream>

#include "bench_common.hpp"
#include "predictor/two_level.hpp"
#include "sim/driver.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    copra::bench::BenchOptions opts;
    opts.config.branches = 1000000;
    if (!opts.parse(argc, argv,
                    "Ablation: second-level counter width (1/2/3-bit) "
                    "for gshare and PAs"))
        return 0;
    copra::bench::banner("Ablation: PHT counter width", opts);

    using namespace copra::predictor;
    copra::Table table({"benchmark", "gshare 1b", "gshare 2b",
                        "gshare 3b", "PAs 1b", "PAs 2b", "PAs 3b"});
    for (const auto &name : copra::workload::benchmarkNames()) {
        auto trace = copra::workload::makeBenchmarkTrace(
            name, opts.config.branches, opts.config.seed);
        table.row().cell(name);
        for (unsigned bits : {1u, 2u, 3u}) {
            auto config = TwoLevelConfig::gshare(opts.config.gshareHistory);
            config.counterBits = bits;
            TwoLevel pred(config);
            table.cell(copra::sim::run(trace, pred).accuracyPercent(), 2);
        }
        for (unsigned bits : {1u, 2u, 3u}) {
            auto config = TwoLevelConfig::pas(12, 12, 4);
            config.counterBits = bits;
            TwoLevel pred(config);
            table.cell(copra::sim::run(trace, pred).accuracyPercent(), 2);
        }
    }
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nexpectation (Smith 1981): 2-bit hysteresis beats "
                "1-bit nearly everywhere (loop exits cost one mispredict "
                "instead of two); 3 bits rarely pays.\n");
    return 0;
}
