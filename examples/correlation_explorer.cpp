/**
 * @file
 * Correlation explorer: runs the selective-history oracle on one
 * benchmark and shows, for the most-executed hard branches, which prior
 * branch instances carry the most information — the per-branch view
 * behind the paper's Fig. 4 aggregate.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/experiments.hpp"
#include "core/tagging.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

std::string
tagToString(const copra::core::Tag &tag)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s(0x%llx,%u)",
                  tag.method() == copra::core::TagMethod::Occurrence
                      ? "occ" : "bwd",
                  static_cast<unsigned long long>(tag.pc()), tag.num());
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string benchmark = "gcc";
    uint64_t branches = 300000;
    uint64_t top = 12;

    copra::OptionParser options(
        "copra correlation explorer: per-branch selective-history "
        "selections and the accuracy they unlock");
    options.addString("benchmark", &benchmark, "benchmark name");
    options.addUint("branches", &branches, "dynamic branches to simulate");
    options.addUint("top", &top, "hard branches to display");
    if (!options.parse(argc, argv))
        return 0;

    copra::core::ExperimentConfig config;
    config.branches = branches;
    config.mineConditionals = branches;
    copra::core::BenchmarkExperiment experiment(benchmark, config);

    const auto &oracle = experiment.oracle();
    const auto &gshare = experiment.gshareLedger();

    // Rank branches by mispredictions under gshare: the interesting ones.
    std::vector<const copra::core::BranchSelection *> hard;
    for (const auto &[pc, sel] : oracle.branches())
        hard.push_back(&sel);
    std::sort(hard.begin(), hard.end(),
              [&](const auto *a, const auto *b) {
                  auto ga = gshare.branch(a->pc);
                  auto gb = gshare.branch(b->pc);
                  return ga.execs - ga.correct > gb.execs - gb.correct;
              });
    if (hard.size() > top)
        hard.resize(top);

    copra::Table table({"pc", "execs", "gshare %", "sel-1 %", "sel-3 %",
                        "best single correlated instance"});
    for (const auto *sel : hard) {
        auto g = gshare.branch(sel->pc);
        char pc_buf[32];
        std::snprintf(pc_buf, sizeof(pc_buf), "0x%llx",
                      static_cast<unsigned long long>(sel->pc));
        std::string best_tag = sel->chosen[0].empty()
            ? "(none)" : tagToString(sel->chosen[0][0]);
        table.row()
            .cell(std::string(pc_buf))
            .cell(sel->execs)
            .cell(100.0 * g.accuracy(), 2)
            .cell(100.0 * sel->correct[0] / sel->execs, 2)
            .cell(100.0 * sel->correct[2] / sel->execs, 2)
            .cell(best_tag);
    }
    table.print(std::cout);

    std::printf("\naggregate: sel-1 %.2f%%  sel-2 %.2f%%  sel-3 %.2f%%  "
                "IF-gshare %.2f%%  gshare %.2f%%\n",
                oracle.accuracyPercent(1), oracle.accuracyPercent(2),
                oracle.accuracyPercent(3),
                experiment.ifGshareLedger().accuracyPercent(),
                gshare.accuracyPercent());
    return 0;
}
