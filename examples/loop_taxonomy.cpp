/**
 * @file
 * Loop taxonomy: classifies every branch of a benchmark into the paper's
 * per-address predictability classes (§4) and prints the distribution
 * plus sample branches from each class — the per-branch view behind the
 * paper's Fig. 6.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/pa_class.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    std::string benchmark = "ijpeg";
    uint64_t branches = 300000;
    uint64_t samples = 4;

    copra::OptionParser options(
        "copra loop taxonomy: per-address predictability classes of one "
        "benchmark");
    options.addString("benchmark", &benchmark, "benchmark name");
    options.addUint("branches", &branches, "dynamic branches to simulate");
    options.addUint("samples", &samples, "sample branches per class");
    if (!options.parse(argc, argv))
        return 0;

    auto trace = copra::workload::makeBenchmarkTrace(benchmark, branches, 0);
    copra::core::PaClassifier classifier(trace);

    auto fractions = classifier.classFractions();
    std::printf("%s dynamic-weighted class distribution:\n",
                benchmark.c_str());
    for (unsigned c = 0; c < 4; ++c) {
        std::printf("  %-14s %6.2f%%\n",
                    copra::core::paClassName(
                        static_cast<copra::core::PaClass>(c)),
                    100.0 * fractions[c]);
    }
    std::printf("  (%.0f%% of the static bucket is >99%% biased)\n\n",
                100.0 * classifier.staticBucketBiasFraction());

    // Show the hottest branches of each class.
    for (unsigned c = 0; c < 4; ++c) {
        auto cls = static_cast<copra::core::PaClass>(c);
        std::vector<const copra::core::PaBranchResult *> members;
        for (const auto &[pc, res] : classifier.branches())
            if (res.cls == cls)
                members.push_back(&res);
        std::sort(members.begin(), members.end(),
                  [](const auto *a, const auto *b) {
                      return a->execs > b->execs;
                  });
        if (members.size() > samples)
            members.resize(samples);

        std::printf("%s examples:\n", copra::core::paClassName(cls));
        copra::Table table({"pc", "execs", "loop %", "repeat %",
                            "non-rep %", "static %", "best k"});
        for (const auto *res : members) {
            char pc_buf[32];
            std::snprintf(pc_buf, sizeof(pc_buf), "0x%llx",
                          static_cast<unsigned long long>(res->pc));
            double e = static_cast<double>(res->execs);
            table.row()
                .cell(std::string(pc_buf))
                .cell(res->execs)
                .cell(100.0 * res->loopCorrect / e, 1)
                .cell(100.0 * res->repeatingCorrect() / e, 1)
                .cell(100.0 * res->ifPasCorrect / e, 1)
                .cell(100.0 * res->staticCorrect / e, 1)
                .cell(static_cast<uint64_t>(res->bestFixedK));
        }
        table.print(std::cout);
        std::printf("\n");
    }
    return 0;
}
