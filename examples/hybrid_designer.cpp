/**
 * @file
 * Hybrid designer: explores the hybrid design space the paper's §5
 * motivates. For one benchmark it reports the components, the real
 * tournament hybrid, the Chang-style bias-classifying hybrid, and the
 * per-branch-oracle upper bound (what a perfect chooser would achieve),
 * showing how much of the oracle gap each realizable scheme closes.
 */

#include <cstdio>
#include <iostream>

#include "predictor/bias_hybrid.hpp"
#include "predictor/hybrid.hpp"
#include "predictor/two_level.hpp"
#include "sim/driver.hpp"
#include "trace/trace_stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    std::string benchmark = "gcc";
    uint64_t branches = 500000;
    double threshold = 0.95;

    copra::OptionParser options(
        "copra hybrid designer: component predictors, realizable "
        "hybrids, and the oracle-chooser upper bound");
    options.addString("benchmark", &benchmark, "benchmark name");
    options.addUint("branches", &branches, "dynamic branches to simulate");
    options.addDouble("threshold", &threshold,
                      "bias classification threshold");
    if (!options.parse(argc, argv))
        return 0;

    using namespace copra::predictor;
    auto trace =
        copra::workload::makeBenchmarkTrace(benchmark, branches, 0);
    auto gshare_cfg = TwoLevelConfig::gshare(16);
    auto pas_cfg = TwoLevelConfig::pas(12, 12, 4);

    // Components, with ledgers for the oracle bound.
    TwoLevel gshare(gshare_cfg);
    TwoLevel pas(pas_cfg);
    copra::sim::Ledger gshare_ledger, pas_ledger;
    auto g_res = copra::sim::run(trace, gshare, &gshare_ledger);
    auto p_res = copra::sim::run(trace, pas, &pas_ledger);

    // Realizable hybrids.
    Hybrid tournament(std::make_unique<TwoLevel>(gshare_cfg),
                      std::make_unique<TwoLevel>(pas_cfg), 12);
    auto t_res = copra::sim::run(trace, tournament);

    BiasClassifyingHybrid bias_hybrid(
        BiasClassifyingHybrid::profileTrace(trace, threshold),
        std::make_unique<Hybrid>(std::make_unique<TwoLevel>(gshare_cfg),
                                 std::make_unique<TwoLevel>(pas_cfg),
                                 12));
    auto b_res = copra::sim::run(trace, bias_hybrid);

    // Oracle bound: per-branch best of the two component ledgers.
    double oracle =
        copra::sim::bestOfAccuracyPercent(gshare_ledger, pas_ledger);

    copra::Table table({"scheme", "accuracy %", "of oracle gap closed %"});
    // Skip undefined components (all-non-conditional trace → NaN
    // accuracy) instead of letting NaN poison the max.
    double base = 0.0;
    if (g_res.defined())
        base = std::max(base, g_res.accuracyPercent());
    if (p_res.defined())
        base = std::max(base, p_res.accuracyPercent());
    auto closed = [&](double acc) {
        if (oracle <= base)
            return 100.0;
        return 100.0 * (acc - base) / (oracle - base);
    };
    table.row().cell(g_res.predictorName)
        .cell(g_res.accuracyPercent(), 2).cell("-");
    table.row().cell(p_res.predictorName)
        .cell(p_res.accuracyPercent(), 2).cell("-");
    table.row().cell(t_res.predictorName)
        .cell(t_res.accuracyPercent(), 2)
        .cell(closed(t_res.accuracyPercent()), 1);
    table.row().cell("bias-classified tournament")
        .cell(b_res.accuracyPercent(), 2)
        .cell(closed(b_res.accuracyPercent()), 1);
    table.row().cell("per-branch oracle chooser").cell(oracle, 2)
        .cell(100.0, 1);
    table.print(std::cout);

    std::printf("\n%zu of %zu profiled branches are >=%.0f%% biased and "
                "predicted statically by the classifying hybrid.\n",
                bias_hybrid.stronglyBiasedBranches(),
                copra::trace::TraceStats(trace).staticBranches(),
                100.0 * threshold);
    return 0;
}
