/**
 * @file
 * Trace tools: generate, save, load, and summarize copra traces. Shows
 * the trace I/O API and makes synthetic traces available to external
 * tools (or external traces available to copra, via the text format).
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    std::string generate;
    std::string load;
    std::string save;
    uint64_t branches = 100000;
    uint64_t seed = 0;
    bool text = false;

    copra::OptionParser options(
        "copra trace tools: generate/save/load/summarize branch traces");
    options.addString("generate", &generate,
                      "benchmark to generate (empty = none)");
    options.addString("load", &load, "trace file to load and summarize");
    options.addString("save", &save, "write the trace to this path");
    options.addUint("branches", &branches, "branches when generating");
    options.addUint("seed", &seed, "seed when generating");
    options.addFlag("text", &text, "use the text format for --save");
    if (!options.parse(argc, argv))
        return 0;

    copra::trace::Trace trace;
    if (!generate.empty()) {
        trace = copra::workload::makeBenchmarkTrace(generate, branches,
                                                    seed);
    } else if (!load.empty()) {
        trace = copra::trace::loadBinary(load);
    } else {
        std::printf("nothing to do: pass --generate <benchmark> or "
                    "--load <file>\n");
        return 0;
    }

    copra::trace::TraceStats stats(trace);
    std::printf("trace '%s' (seed %llu): %zu records, %llu conditional, "
                "%zu static branches\n",
                trace.name().c_str(),
                static_cast<unsigned long long>(trace.seed()),
                trace.size(),
                static_cast<unsigned long long>(stats.dynamicBranches()),
                stats.staticBranches());
    std::printf("taken rate %.2f%%, >99%% biased fraction %.2f%%, ideal "
                "static accuracy %.2f%%\n",
                100.0 * stats.dynamicTaken() / stats.dynamicBranches(),
                100.0 * stats.dynamicFractionWithBiasAbove(0.99),
                100.0 * stats.idealStaticCorrect()
                    / stats.dynamicBranches());

    copra::Table table({"pc", "execs", "taken %", "bias %"});
    for (const auto &branch : stats.hottest(10)) {
        char pc_buf[32];
        std::snprintf(pc_buf, sizeof(pc_buf), "0x%llx",
                      static_cast<unsigned long long>(branch.pc));
        table.row()
            .cell(std::string(pc_buf))
            .cell(branch.execs)
            .cell(100.0 * branch.takenRate(), 2)
            .cell(100.0 * branch.bias(), 2);
    }
    table.print(std::cout);

    if (!save.empty()) {
        if (text) {
            std::ofstream os(save);
            copra::trace::writeText(trace, os);
        } else {
            copra::trace::saveBinary(trace, save);
        }
        std::printf("saved to %s (%s format)\n", save.c_str(),
                    text ? "text" : "binary");
    }
    return 0;
}
