/**
 * @file
 * Quickstart: generate a synthetic benchmark trace, run a few predictors
 * over it, and print their accuracies. This is the 60-second tour of the
 * copra public API: workload -> trace -> predictor -> sim::run.
 */

#include <cstdio>
#include <iostream>

#include "predictor/bimodal.hpp"
#include "predictor/hybrid.hpp"
#include "predictor/two_level.hpp"
#include "sim/driver.hpp"
#include "trace/trace_stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    std::string benchmark = "gcc";
    uint64_t branches = 500000;
    uint64_t seed = 0;

    copra::OptionParser options(
        "copra quickstart: simulate classic predictors on one synthetic "
        "SPECint95-like benchmark");
    options.addString("benchmark", &benchmark,
                      "benchmark name (compress gcc go ijpeg m88ksim perl "
                      "vortex xlisp)");
    options.addUint("branches", &branches,
                    "dynamic conditional branches to simulate");
    options.addUint("seed", &seed, "execution seed (0 = canonical)");
    if (!options.parse(argc, argv))
        return 0;

    // 1. Generate a workload trace.
    auto trace =
        copra::workload::makeBenchmarkTrace(benchmark, branches, seed);
    copra::trace::TraceStats stats(trace);
    std::printf("benchmark %s: %llu dynamic conditional branches, "
                "%zu static branches, %.1f%% taken\n",
                benchmark.c_str(),
                static_cast<unsigned long long>(stats.dynamicBranches()),
                stats.staticBranches(),
                100.0 * stats.dynamicTaken() / stats.dynamicBranches());

    // 2. Build predictors.
    copra::predictor::Bimodal bimodal(12);
    copra::predictor::TwoLevel gshare(
        copra::predictor::TwoLevelConfig::gshare(16));
    copra::predictor::TwoLevel pas(
        copra::predictor::TwoLevelConfig::pas(12, 12, 4));
    copra::predictor::Hybrid hybrid(
        std::make_unique<copra::predictor::TwoLevel>(
            copra::predictor::TwoLevelConfig::gshare(16)),
        std::make_unique<copra::predictor::TwoLevel>(
            copra::predictor::TwoLevelConfig::pas(12, 12, 4)),
        12);

    // 3. Run them all in one pass over the trace.
    std::vector<copra::predictor::Predictor *> preds = {
        &bimodal, &gshare, &pas, &hybrid,
    };
    auto results = copra::sim::runAll(trace, preds);

    // 4. Report.
    copra::Table table({"predictor", "accuracy %", "mispredict %"});
    for (const auto &res : results) {
        table.row()
            .cell(res.predictorName)
            .cell(res.accuracyPercent(), 2)
            .cell(res.mispredictPercent(), 2);
    }
    table.print(std::cout);
    return 0;
}
