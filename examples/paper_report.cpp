/**
 * @file
 * Paper report: every analysis of the paper for a single benchmark, in
 * one run — the full per-benchmark view the bench/ harnesses aggregate
 * across the suite. Useful when studying one workload in depth (or one
 * of your own traces via --load, using the copra binary trace format).
 */

#include <cstdio>
#include <iostream>

#include "core/experiments.hpp"
#include "trace/trace_io.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    std::string benchmark = "gcc";
    std::string load;
    uint64_t branches = 500000;

    copra::OptionParser options(
        "copra paper report: all of the paper's analyses for one "
        "benchmark (or an external trace)");
    options.addString("benchmark", &benchmark, "benchmark name");
    options.addString("load", &load,
                      "binary trace file to analyze instead");
    options.addUint("branches", &branches, "dynamic branches to simulate");
    if (!options.parse(argc, argv))
        return 0;

    copra::core::ExperimentConfig config;
    config.branches = branches;
    config.mineConditionals = branches;

    auto experiment = load.empty()
        ? copra::core::BenchmarkExperiment(benchmark, config)
        : copra::core::BenchmarkExperiment(copra::trace::loadBinary(load),
                                           config);

    std::printf("=== copra paper report: %s (%llu branches) ===\n\n",
                experiment.name().c_str(),
                static_cast<unsigned long long>(
                    experiment.trace().conditionalCount()));

    // Fig. 4 / Table 2: correlation.
    auto fig4 = experiment.fig4Row();
    auto table2 = experiment.table2Row();
    copra::Table corr({"metric", "accuracy %"});
    corr.row().cell("selective history, 1 branch").cell(fig4.selective1, 2);
    corr.row().cell("selective history, 2 branches").cell(fig4.selective2, 2);
    corr.row().cell("selective history, 3 branches").cell(fig4.selective3, 2);
    corr.row().cell("IF gshare (n=16)").cell(fig4.ifGshare, 2);
    corr.row().cell("gshare").cell(fig4.gshare, 2);
    corr.row().cell("gshare w/ Corr").cell(table2.gshareWithCorr, 2);
    corr.row().cell("IF gshare w/ Corr").cell(table2.ifGshareWithCorr, 2);
    std::printf("-- correlation (paper SS3) --\n");
    corr.print(std::cout);

    // Fig. 6 / Table 3: per-address predictability.
    auto fig6 = experiment.fig6Row();
    auto table3 = experiment.table3Row();
    std::printf("\n-- per-address predictability (paper SS4) --\n");
    copra::Table classes({"class", "dynamic %"});
    static const char *kClassNames[] = {"ideal static", "loop",
                                        "repeating", "non-repeating"};
    for (int c = 0; c < 4; ++c) {
        classes.row().cell(kClassNames[c])
            .cell(100.0 * fig6.fractions[static_cast<size_t>(c)], 1);
    }
    classes.print(std::cout);
    std::printf("static bucket >99%% biased: %.1f%%\n",
                100.0 * fig6.staticBiasedFraction);
    copra::Table pas({"metric", "accuracy %"});
    pas.row().cell("PAs").cell(table3.pas, 2);
    pas.row().cell("PAs w/ Loop").cell(table3.pasWithLoop, 2);
    pas.row().cell("IF PAs").cell(table3.ifPas, 2);
    pas.row().cell("IF PAs w/ Loop").cell(table3.ifPasWithLoop, 2);
    pas.print(std::cout);

    // Fig. 7/8/9: global vs per-address.
    std::printf("\n-- global vs per-address (paper SS5) --\n");
    auto fig7 = experiment.fig7Split();
    auto fig8 = experiment.fig8Split();
    copra::Table splits({"comparison", "A best %", "B best %",
                         "static best %"});
    splits.row().cell("A=gshare, B=PAs")
        .cell(100.0 * fig7.fracA, 1)
        .cell(100.0 * fig7.fracB, 1)
        .cell(100.0 * fig7.fracStatic, 1);
    splits.row().cell("A=global corr, B=PA classes")
        .cell(100.0 * fig8.fracA, 1)
        .cell(100.0 * fig8.fracB, 1)
        .cell(100.0 * fig8.fracStatic, 1);
    splits.print(std::cout);

    auto wp = experiment.fig9Percentiles();
    std::printf("gshare - PAs per-branch difference: p5 %.1f  p25 %.1f  "
                "p50 %.1f  p75 %.1f  p95 %.1f (percentage points)\n",
                wp.percentile(5), wp.percentile(25), wp.percentile(50),
                wp.percentile(75), wp.percentile(95));
    return 0;
}
