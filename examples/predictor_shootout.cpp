/**
 * @file
 * Predictor shootout: every predictor in the zoo against every synthetic
 * benchmark, one row per benchmark, one column per predictor. Useful for
 * exploring the predictor space and for sanity-checking workload
 * calibration against the paper's accuracy fingerprints.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "predictor/factory.hpp"
#include "sim/driver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int
main(int argc, char **argv)
{
    uint64_t branches = 500000;
    uint64_t seed = 0;
    std::string specs =
        "bimodal,gshare,pas,gag,pag,path,ifgshare,ifpas,loop,block,"
        "hybrid";
    bool csv = false;

    copra::OptionParser options(
        "copra predictor shootout: the predictor zoo vs the synthetic "
        "SPECint95-like benchmark suite");
    options.addUint("branches", &branches,
                    "dynamic conditional branches per benchmark");
    options.addUint("seed", &seed, "execution seed (0 = canonical)");
    options.addString("predictors", &specs,
                      "comma separated predictor specs (see "
                      "predictor/factory.hpp)");
    options.addFlag("csv", &csv, "emit CSV instead of an aligned table");
    if (!options.parse(argc, argv))
        return 0;

    // Parse the spec list.
    std::vector<std::string> spec_list;
    size_t pos = 0;
    while (pos < specs.size()) {
        size_t comma = specs.find(',', pos);
        spec_list.push_back(specs.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }

    std::vector<std::string> headers = {"benchmark"};
    for (const auto &spec : spec_list)
        headers.push_back(spec);
    copra::Table table(headers);

    for (const auto &name : copra::workload::benchmarkNames()) {
        auto trace =
            copra::workload::makeBenchmarkTrace(name, branches, seed);
        table.row().cell(name);
        // Fresh predictors per benchmark; run all in a single pass.
        std::vector<copra::predictor::PredictorPtr> owners;
        std::vector<copra::predictor::Predictor *> preds;
        for (const auto &spec : spec_list) {
            owners.push_back(copra::predictor::makePredictor(spec));
            preds.push_back(owners.back().get());
        }
        for (const auto &res : copra::sim::runAll(trace, preds))
            table.cell(res.accuracyPercent(), 2);
    }

    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
