/**
 * @file
 * Rule engine for copra_lint. Each rule is a pure function from a
 * FileScan (plus cross-file unordered-container knowledge) to
 * findings; suppression and scoping are applied uniformly at the end.
 *
 * Scoping philosophy: the determinism rules bite hardest where results
 * are produced (src/sim, src/predictor, src/core), the hygiene rules
 * apply tree-wide. See DESIGN.md §9 for the rule-by-rule contract.
 */

#include "copra_lint/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace copra::lint {

namespace fs = std::filesystem;

namespace {

bool
inDir(const std::string &rel, const std::string &prefix)
{
    return rel.rfind(prefix, 0) == 0;
}

bool
isHeader(const std::string &rel)
{
    return rel.size() > 4 && (rel.ends_with(".hpp") || rel.ends_with(".h"));
}

bool
contains(const std::set<std::string> &set, const std::string &name)
{
    return set.find(name) != set.end();
}

/** Identifiers whose mere qualified mention is an entropy leak. */
const std::set<std::string> kBannedTypes = {
    "random_device", "steady_clock", "system_clock",
    "high_resolution_clock",
};

/** Functions banned when called (identifier followed by `(`). */
const std::set<std::string> kBannedCalls = {
    "rand", "srand", "time", "clock",
};

/** Statement keywords that mark a namespace-scope decl as harmless. */
const std::set<std::string> kDeclExemptKeywords = {
    "using",    "typedef", "template",      "friend",   "extern",
    "namespace", "class",  "struct",        "union",    "enum",
    "concept",  "operator", "static_assert", "constexpr",
    "constinit", "const",
};

/** IWYU-lite: curated `std::` name -> required standard header. */
const std::vector<std::pair<std::string, std::string>> kIncludeMap = {
    {"vector", "vector"},
    {"string", "string"},
    {"unordered_map", "unordered_map"},
    {"unordered_set", "unordered_set"},
    {"map", "map"},
    {"optional", "optional"},
    {"nullopt", "optional"},
    {"span", "span"},
    {"array", "array"},
    {"unique_ptr", "memory"},
    {"shared_ptr", "memory"},
    {"make_unique", "memory"},
    {"make_shared", "memory"},
    {"function", "functional"},
    {"atomic", "atomic"},
    {"mutex", "mutex"},
    {"lock_guard", "mutex"},
    {"unique_lock", "mutex"},
    {"condition_variable", "condition_variable"},
    {"thread", "thread"},
};

/** Bare typedef names that require <cstdint>. */
const std::set<std::string> kCstdintTypes = {
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "int8_t",  "int16_t",  "int32_t",  "int64_t",
};

void
report(std::vector<Finding> &out, const FileScan &scan, int line,
       const std::string &rule, const std::string &message)
{
    out.push_back({scan.rel, line, rule, message});
}

/** True for identifiers that are unmistakably raw SIMD intrinsics:
 * `_mm...` calls and `__m128/__m256/__m512` vector types (x86), which
 * only exist via <immintrin.h>. NEON spellings are too generic to
 * token-match safely, so NEON is policed via its header instead. */
bool
isIntrinsicToken(const std::string &t)
{
    if (t.rfind("_mm", 0) == 0)
        return true;
    return t.rfind("__m", 0) == 0 && t.size() > 3 &&
        std::isdigit(static_cast<unsigned char>(t[3]));
}

/** The only TUs allowed to touch raw intrinsics (kernels.hpp seam). */
bool
isKernelTu(const std::string &rel)
{
    return rel == "src/predictor/kernels_avx2.cc" ||
        rel == "src/predictor/kernels_neon.cc";
}

/**
 * Rule banned-api: entropy and environment doorways are forbidden in
 * result-producing code. Clock types anywhere in scope need an
 * explicit allow() marking them as timing-only; getenv is legal only
 * under src/util (the env.hpp doorway). Raw SIMD intrinsics (and their
 * headers) are confined to the dedicated kernel TUs so vector code
 * stays behind the predictor/kernels.hpp dispatch seam, where the
 * scalar twin and the differential gate can police it.
 */
void
ruleBannedApi(const FileScan &scan, std::vector<Finding> &out)
{
    bool resultScope = inDir(scan.rel, "src/sim/") ||
        inDir(scan.rel, "src/predictor/") || inDir(scan.rel, "src/core/");
    bool getenvScope = inDir(scan.rel, "src/") &&
        !inDir(scan.rel, "src/util/");
    bool intrinsicScope = !isKernelTu(scan.rel);
    if (!resultScope && !getenvScope && !intrinsicScope)
        return;

    if (intrinsicScope) {
        for (const Include &inc : scan.includeList) {
            if (inc.target == "immintrin.h" ||
                inc.target == "arm_neon.h") {
                report(out, scan, inc.line, "banned-api",
                       "<" + inc.target + "> outside the kernel TUs: "
                       "raw SIMD lives only in kernels_avx2.cc / "
                       "kernels_neon.cc behind predictor/kernels.hpp");
            }
        }
    }

    const auto &toks = scan.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
        const std::string &t = toks[i].text;
        bool qualified = i > 0 && toks[i - 1].text == "::";
        // `->` reaches us as two one-char tokens, so arrow access is
        // prev == ">" with a "-" right before it.
        bool member = i > 0 &&
            (toks[i - 1].text == "." ||
             (toks[i - 1].text == ">" && i > 1 &&
              toks[i - 2].text == "-"));
        bool called = i + 1 < toks.size() && toks[i + 1].text == "(";

        if (intrinsicScope && isIntrinsicToken(t) && !member) {
            report(out, scan, toks[i].line, "banned-api",
                   "raw SIMD intrinsic '" + t + "' outside the kernel "
                   "TUs: add it to kernels_avx2.cc/kernels_neon.cc and "
                   "dispatch through predictor/kernels.hpp");
            continue;
        }
        if (getenvScope && t == "getenv" && (qualified || called) &&
            !member) {
            report(out, scan, toks[i].line, "banned-api",
                   "getenv outside src/util: route environment access "
                   "through util/env.hpp");
            continue;
        }
        if (!resultScope)
            continue;
        if (kBannedTypes.count(t) && qualified) {
            report(out, scan, toks[i].line, "banned-api",
                   "std::" + t + " in result-producing code: entropy "
                   "and wall clocks break run-to-run determinism");
        } else if (kBannedCalls.count(t) && called && !member) {
            // `time(...)`/`clock(...)` style calls; member functions
            // and locals that merely reuse the name stay legal.
            bool plain = !qualified ||
                (i >= 2 && toks[i - 2].text == "std");
            if (plain)
                report(out, scan, toks[i].line, "banned-api",
                       t + "() in result-producing code: use the "
                       "seeded util/rng.hpp or pass time in explicitly");
        }
    }
}

/**
 * Rule unordered-iter: range-for over a std::unordered_{map,set}
 * (directly, or through an accessor returning one) makes downstream
 * output and float aggregation depend on hash order. Commutative
 * integer aggregation is fine but must say so via allow().
 */
void
ruleUnorderedIter(const FileScan &scan, const UnorderedDecls &decls,
                  std::vector<Finding> &out)
{
    if (!inDir(scan.rel, "src/") && !inDir(scan.rel, "bench/"))
        return;

    const auto &toks = scan.tokens;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].text != "for" || toks[i + 1].text != "(")
            continue;
        // Find the range `:` at depth 1, then the closing paren.
        int depth = 0;
        size_t colon = 0, close = 0;
        for (size_t j = i + 1; j < toks.size(); ++j) {
            const std::string &t = toks[j].text;
            if (t == "(")
                ++depth;
            else if (t == ")") {
                if (--depth == 0) {
                    close = j;
                    break;
                }
            } else if (t == ":" && depth == 1 && colon == 0) {
                colon = j;
            } else if (t == ";" && depth == 1) {
                break; // classic three-clause for
            }
        }
        if (colon == 0 || close == 0)
            continue;
        for (size_t j = colon + 1; j < close; ++j) {
            const std::string &name = toks[j].text;
            bool call = j + 1 < close && toks[j + 1].text == "(";
            if ((contains(decls.variables, name) && !call) ||
                (contains(decls.accessors, name) && call)) {
                report(out, scan, toks[i].line, "unordered-iter",
                       "iteration over unordered container '" + name +
                       "': order is hash-dependent; sort first or "
                       "justify with allow(unordered-iter)");
                break;
            }
        }
    }
}

/** Context for one `{ ... }` scope while walking a token stream. */
enum class Scope { Namespace, Class, Func, Init };

/**
 * Rule mutable-global: namespace-scope (incl. anonymous-namespace and
 * thread_local) mutable variables and non-const static locals are
 * hidden channels between runs and between threads; each survivor
 * must carry a sanctioned-global(<reason>) annotation.
 */
void
ruleMutableGlobal(const FileScan &scan, std::vector<Finding> &out)
{
    const auto &toks = scan.tokens;
    std::vector<Scope> stack;
    size_t stmt = 0; // index of the first token of the open statement

    auto stmtHas = [&](size_t from, size_t to, const std::string &w) {
        for (size_t k = from; k < to; ++k)
            if (toks[k].text == w)
                return true;
        return false;
    };

    auto atNamespaceScope = [&]() {
        return std::all_of(stack.begin(), stack.end(), [](Scope s) {
            return s == Scope::Namespace;
        });
    };
    auto inFunction = [&]() {
        return std::any_of(stack.begin(), stack.end(), [](Scope s) {
            return s == Scope::Func;
        });
    };

    auto checkDecl = [&](size_t from, size_t to) {
        if (from >= to)
            return;
        bool nsScope = atNamespaceScope();
        bool staticLocal = inFunction() && stmtHas(from, to, "static");
        if (!nsScope && !staticLocal)
            return;
        for (const std::string &kw : kDeclExemptKeywords)
            if (stmtHas(from, to, kw))
                return;
        if (stmtHas(from, to, "(")) // function decl or macro invocation
            return;
        // Count identifier-ish tokens: a declaration needs a type and
        // a name; stray expression statements don't get this far.
        size_t idents = 0;
        std::string name;
        int line = toks[from].line;
        for (size_t k = from; k < to; ++k) {
            const std::string &t = toks[k].text;
            if (t == "=" || t == "{" || t == "[")
                break;
            if ((std::isalpha(static_cast<unsigned char>(t[0])) ||
                 t[0] == '_')) {
                ++idents;
                name = t;
                line = toks[k].line;
            }
        }
        if (idents < 2)
            return;
        report(out, scan, line, "mutable-global",
               std::string(staticLocal && !nsScope ? "static local"
                                                   : "file-scope") +
               " mutable state '" + name + "': annotate with "
               "sanctioned-global(<reason>) or remove");
    };

    for (size_t i = 0; i < toks.size(); ++i) {
        const std::string &t = toks[i].text;
        if (t == "{") {
            Scope scope;
            if (stmtHas(stmt, i, "namespace") ||
                stmtHas(stmt, i, "extern"))
                scope = Scope::Namespace;
            else if (stmtHas(stmt, i, "class") ||
                     stmtHas(stmt, i, "struct") ||
                     stmtHas(stmt, i, "union") ||
                     stmtHas(stmt, i, "enum"))
                scope = Scope::Class;
            else if (stmtHas(stmt, i, "("))
                // Function definition (possibly `const`/`noexcept`
                // qualified), control statement, or lambda body.
                scope = Scope::Func;
            else if (i > 0 && (toks[i - 1].text == "=" ||
                               toks[i - 1].text == ">" ||
                               toks[i - 1].text == "]" ||
                               (std::isalnum(static_cast<unsigned char>(
                                    toks[i - 1].text[0])) ||
                                toks[i - 1].text[0] == '_') ||
                               toks[i - 1].text == "::"))
                scope = Scope::Init; // brace initializer, not a scope
            else
                scope = Scope::Func;
            stack.push_back(scope);
            if (scope != Scope::Init)
                stmt = i + 1;
        } else if (t == "}") {
            bool wasInit = !stack.empty() && stack.back() == Scope::Init;
            if (!stack.empty())
                stack.pop_back();
            if (!wasInit)
                stmt = i + 1;
        } else if (t == ";") {
            // Ignore `;` inside for(...) headers: they sit at paren
            // depth > 0, which we detect by scanning the statement.
            int parens = 0;
            for (size_t k = stmt; k < i; ++k) {
                if (toks[k].text == "(")
                    ++parens;
                else if (toks[k].text == ")")
                    --parens;
            }
            if (parens > 0)
                continue;
            checkDecl(stmt, i);
            stmt = i + 1;
        }
    }
}

/**
 * Rule header-guard: headers use `#pragma once`, never the macro
 * guard dance — one convention, zero chance of a copy-pasted guard
 * name collision.
 */
void
ruleHeaderGuard(const FileScan &scan, std::vector<Finding> &out)
{
    if (!isHeader(scan.rel))
        return;
    if (scan.guardLine != 0)
        report(out, scan, scan.guardLine, "header-guard",
               "legacy #ifndef include guard: use #pragma once");
    if (!scan.pragmaOnce)
        report(out, scan, 1, "header-guard",
               "header lacks #pragma once");
}

/**
 * Rule include-lite: headers must directly include what they use,
 * for a curated set of unmistakable std names. Keeps headers
 * self-contained without dragging in a full IWYU implementation.
 */
void
ruleIncludeLite(const FileScan &scan, std::vector<Finding> &out)
{
    if (!isHeader(scan.rel))
        return;

    std::map<std::string, int> missing; // header -> first-use line
    const auto &toks = scan.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
        const std::string &t = toks[i].text;
        bool stdQualified = i >= 2 && toks[i - 1].text == "::" &&
            toks[i - 2].text == "std";
        if (stdQualified) {
            for (const auto &[name, header] : kIncludeMap) {
                if (t == name && !scan.includes.count(header)) {
                    missing.emplace(header, toks[i].line);
                    break;
                }
            }
        } else if (kCstdintTypes.count(t) &&
                   !scan.includes.count("cstdint")) {
            missing.emplace("cstdint", toks[i].line);
        }
    }
    for (const auto &[header, line] : missing)
        report(out, scan, line, "include-lite",
               "uses std names from <" + header +
               "> without including it directly");
}

/** Malformed copra-lint comments are findings themselves. */
void
ruleAnnotation(const FileScan &scan, std::vector<Finding> &out)
{
    for (const Annotation &ann : scan.annotations)
        if (ann.kind == Annotation::Kind::Malformed)
            report(out, scan, ann.line, "annotation", ann.error);
}

/**
 * Rule layering, per-file half: a direct #include whose spelling
 * already names a module the including file's module may not depend
 * on (DESIGN.md §10). runGraphRules adds the resolution- and
 * transitivity-aware findings this lexical check cannot see.
 */
void
ruleLayering(const FileScan &scan, std::vector<Finding> &out)
{
    std::string from = moduleOf(scan.rel);
    if (from.empty())
        return;
    for (const Include &inc : scan.includeList) {
        std::string to = includeModule(inc.target);
        if (to.empty() || moduleAllowed(from, to))
            continue;
        report(out, scan, inc.line, "layering",
               "module '" + from + "' may not include '" + inc.target +
               "' (module '" + to + "'); the DAG is util -> trace -> "
               "{workload, predictor} -> sim -> core -> check "
               "(DESIGN.md §10)");
    }
}

} // namespace

/**
 * Apply suppressions: an allow(rule) covers findings of that rule on
 * its own line and the next; sanctioned-global covers mutable-global
 * the same way. `annotation` findings cannot be suppressed. Public so
 * the graph-level rules honour the owning file's annotations too.
 */
std::vector<Finding>
applySuppressions(const FileScan &scan, std::vector<Finding> findings)
{
    std::vector<Finding> kept;
    for (Finding &f : findings) {
        bool suppressed = false;
        if (f.rule != "annotation") {
            for (const Annotation &ann : scan.annotations) {
                bool covers = ann.line == f.line ||
                    ann.line + 1 == f.line;
                if (!covers)
                    continue;
                if (ann.kind == Annotation::Kind::Allow &&
                    ann.rule == f.rule)
                    suppressed = true;
                if (ann.kind == Annotation::Kind::SanctionedGlobal &&
                    f.rule == "mutable-global")
                    suppressed = true;
            }
        }
        if (!suppressed)
            kept.push_back(std::move(f));
    }
    return kept;
}

std::vector<std::pair<std::string, std::string>>
ruleCatalog()
{
    return {
        {"layering",
         "src modules obey the DAG util -> trace -> {workload, "
         "predictor} -> sim -> core -> check; tools/bench/tests/"
         "examples are sinks"},
        {"include-cycle",
         "the file-level include graph is acyclic"},
        {"banned-api",
         "no rand/srand/time/clock/random_device/*_clock in src/{sim,"
         "predictor,core}; getenv only under src/util; raw SIMD "
         "intrinsics only in the kernels_avx2/kernels_neon TUs"},
        {"unordered-iter",
         "no range-for over std::unordered_{map,set} in src/ or bench/ "
         "without an allow() justification"},
        {"mutable-global",
         "no unsanctioned mutable file-scope/static-local state"},
        {"header-guard", "headers use #pragma once, not macro guards"},
        {"include-lite",
         "headers directly include the curated std headers they use"},
        {"annotation",
         "copra-lint comments must parse and carry reasons"},
        {"state-decl",
         "Predictor-derived classes under src/predictor declare "
         "COPRA_STATE_FIELDS(...) plus stateBits/snapshotState/"
         "restoreState, and field lists name only real members"},
        {"state-coverage",
         "every member field of a contracted predictor appears in "
         "exactly one of the state/config/transient lists"},
        {"state-mutation",
         "prediction-path methods mutate no config-listed member; "
         "uncontracted predictors mutate no member there at all"},
        {"hot-alloc",
         "the COPRA_HOT-rooted region performs no heap allocation: no "
         "new/delete, no allocating std types or member calls "
         "(push_back/resize/reserve/...)"},
        {"hot-lock",
         "the hot region takes no locks: no util::Mutex/MutexLock, no "
         "std lock types, no function-local statics, no atomics "
         "without an explicit relaxed memory order"},
        {"hot-throw",
         "the hot region is exception-free: no throw, and every hot "
         "function (and COPRA_HOT declaration) spells noexcept"},
        {"hot-io",
         "the hot region performs no IO: no streams, stdio, file, or "
         "logging calls (panic/fatal stay legal as the assertion "
         "frontier)"},
        {"hot-unresolved",
         "every call in the hot region resolves to a known definition "
         "or carries an allow() naming why it is safe (function "
         "pointers, trusted frontiers)"},
    };
}

bool
knownRule(const std::string &rule)
{
    for (const auto &[name, blurb] : ruleCatalog())
        if (name == rule)
            return true;
    return false;
}

void
collectUnorderedDecls(const FileScan &scan, UnorderedDecls &out)
{
    const auto &toks = scan.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].text != "unordered_map" &&
            toks[i].text != "unordered_set")
            continue;
        // Skip the template argument list, then `&`/`*` decoration.
        size_t j = i + 1;
        if (j < toks.size() && toks[j].text == "<") {
            int depth = 0;
            for (; j < toks.size(); ++j) {
                if (toks[j].text == "<")
                    ++depth;
                else if (toks[j].text == ">" && --depth == 0) {
                    ++j;
                    break;
                }
            }
        }
        while (j < toks.size() &&
               (toks[j].text == "&" || toks[j].text == "*" ||
                toks[j].text == "const"))
            ++j;
        // Step over `Class::` qualifiers on out-of-line definitions so
        // the declared name, not the class, is what gets registered.
        while (j + 2 < toks.size() && toks[j + 1].text == "::")
            j += 2;
        if (j >= toks.size())
            continue;
        const std::string &name = toks[j].text;
        if (!(std::isalpha(static_cast<unsigned char>(name[0])) ||
              name[0] == '_'))
            continue;
        bool isCall = j + 1 < toks.size() && toks[j + 1].text == "(";
        (isCall ? out.accessors : out.variables).insert(name);
    }
}

std::vector<Finding>
runRules(const FileScan &scan, const UnorderedDecls &extra)
{
    UnorderedDecls decls = extra;
    collectUnorderedDecls(scan, decls);

    std::vector<Finding> out;
    ruleBannedApi(scan, out);
    ruleUnorderedIter(scan, decls, out);
    ruleMutableGlobal(scan, out);
    ruleHeaderGuard(scan, out);
    ruleIncludeLite(scan, out);
    ruleLayering(scan, out);
    out = applySuppressions(scan, std::move(out));
    ruleAnnotation(scan, out);
    std::sort(out.begin(), out.end());
    return out;
}

namespace {

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool
lintableFile(const fs::path &path)
{
    std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

/** Directories that hold planted violations or generated artifacts. */
bool
skippedDir(const std::string &name)
{
    return name == "lint_corpus" || name == "golden" ||
        name == ".git" || name.rfind("build", 0) == 0;
}

/**
 * Expand the requested paths to lintable files. A path that names
 * neither a regular file nor a directory — or a directory the walk
 * cannot read — lands in `errors`: a linter that silently skips its
 * input reports "clean" about code it never saw.
 */
std::vector<fs::path>
collectFiles(const fs::path &root, const std::vector<std::string> &paths,
             std::vector<std::string> &errors)
{
    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        fs::path abs = root / p;
        if (fs::is_regular_file(abs)) {
            if (lintableFile(abs))
                files.push_back(abs);
            continue;
        }
        if (!fs::is_directory(abs)) {
            errors.push_back(p + ": no such file or directory (under "
                             "root " + root.string() + ")");
            continue;
        }
        try {
            fs::recursive_directory_iterator it(abs), end;
            for (; it != end; ++it) {
                if (it->is_directory() &&
                    skippedDir(it->path().filename().string())) {
                    it.disable_recursion_pending();
                    continue;
                }
                if (it->is_regular_file() && lintableFile(it->path()))
                    files.push_back(it->path());
            }
        } catch (const fs::filesystem_error &err) {
            errors.push_back(p + ": " + err.what());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
relPath(const fs::path &root, const fs::path &file)
{
    return fs::relative(file, root).generic_string();
}

} // namespace

TreeLint
lintTreeFull(const std::string &rootStr,
             const std::vector<std::string> &paths)
{
    fs::path root(rootStr);
    TreeLint result;
    std::vector<fs::path> files =
        collectFiles(root, paths, result.errors);

    // First pass: lex everything and harvest unordered declarations
    // per header, keyed by include spelling (e.g. "sim/ledger.hpp").
    std::vector<FileScan> scans;
    std::map<std::string, UnorderedDecls> headerDecls;
    scans.reserve(files.size());
    for (const fs::path &file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            result.errors.push_back(relPath(root, file) +
                                    ": unreadable");
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        FileScan scan = scanSource(relPath(root, file), buf.str());
        if (isHeader(scan.rel)) {
            UnorderedDecls decls;
            collectUnorderedDecls(scan, decls);
            // Headers are included src-relative ("sim/ledger.hpp") or,
            // for bench/, by bare name ("bench_common.hpp").
            std::string key = scan.rel;
            if (key.rfind("src/", 0) == 0)
                key = key.substr(4);
            else if (key.rfind("bench/", 0) == 0)
                key = key.substr(6);
            headerDecls[key] = decls;
        }
        scans.push_back(std::move(scan));
    }

    // Second pass: run rules, seeding each file with the declarations
    // of the project headers it directly includes.
    std::vector<Finding> all;
    for (const FileScan &scan : scans) {
        UnorderedDecls extra;
        for (const std::string &inc : scan.includes) {
            auto it = headerDecls.find(inc);
            if (it != headerDecls.end()) {
                extra.variables.insert(it->second.variables.begin(),
                                       it->second.variables.end());
                extra.accessors.insert(it->second.accessors.begin(),
                                       it->second.accessors.end());
            }
        }
        std::vector<Finding> found = runRules(scan, extra);
        all.insert(all.end(), found.begin(), found.end());
    }

    // Graph passes: include cycles and include-through layering over
    // the resolved file-level include graph of everything scanned.
    result.graph = buildIncludeGraph(scans);
    std::vector<Finding> graphFindings =
        runGraphRules(scans, result.graph);
    all.insert(all.end(), graphFindings.begin(), graphFindings.end());

    // Semantic pass: the cross-TU state-contract audit over every
    // Predictor-derived class the scan set defines (DESIGN.md §14).
    SemaModel model = buildSemaModel(scans);
    std::vector<Finding> semaFindings = runSemaRules(model, scans);
    all.insert(all.end(), semaFindings.begin(), semaFindings.end());

    // Call-graph pass: COPRA_HOT reachability and the hot-path
    // discipline rules (DESIGN.md §15).
    CallGraph cg = buildCallGraph(model, scans);
    std::vector<Finding> hotFindings = runCallGraphRules(cg, model, scans);
    all.insert(all.end(), hotFindings.begin(), hotFindings.end());
    for (size_t f = 0; f < cg.functions.size(); ++f)
        if (cg.hot[f])
            result.hotFiles.insert(scans[cg.functions[f].scanIndex].rel);
    result.hotPathDoc = renderHotPathDoc(cg, model, scans);

    // Emit display columns, never raw byte offsets: SARIF consumers
    // count code points, and the lexer records bytes.
    std::map<std::string, const FileScan *> byRel;
    for (const FileScan &scan : scans)
        byRel.emplace(scan.rel, &scan);
    for (Finding &f : all) {
        auto it = byRel.find(f.rel);
        if (it == byRel.end() || f.line < 1 ||
            size_t(f.line) > it->second->lines.size())
            continue;
        f.col = displayColumn(it->second->lines[f.line - 1], f.col);
    }

    // Identical findings (multi-include headers, overlapping passes)
    // deduplicate so --json/SARIF artifacts diff stably across runs.
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    result.findings = std::move(all);
    return result;
}

std::vector<Finding>
lintTree(const std::string &rootStr, const std::vector<std::string> &paths)
{
    return lintTreeFull(rootStr, paths).findings;
}

bool
selfTest(const std::string &rootStr, const std::string &corpus,
         std::string &report)
{
    fs::path root(rootStr);
    fs::path dir = root / corpus;
    std::ostringstream log;
    bool ok = true;

    std::vector<fs::path> files;
    if (fs::is_directory(dir))
        for (const auto &entry : fs::directory_iterator(dir))
            if (entry.is_regular_file() && lintableFile(entry.path()))
                files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    if (files.empty()) {
        report += "self-test: no corpus files under " + dir.string() +
            "\n";
        return false;
    }

    // Corpus files carry their intended repo location in their name:
    // `src__sim__planted.cc` lints as `src/sim/planted.cc`, so scoped
    // rules see the directory they police — and corpus-internal
    // includes resolve against these rels, so the graph rules are
    // exercised on planted cycles and include-through chains too.
    std::vector<FileScan> scans;
    for (const fs::path &file : files) {
        std::string rel = file.filename().string();
        size_t pos;
        while ((pos = rel.find("__")) != std::string::npos)
            rel.replace(pos, 2, "/");
        scans.push_back(scanSource(rel, readFile(file)));
    }

    std::set<std::string> fired;      // rules seen firing as expected
    std::set<std::string> suppressed; // rules exercised via allow()
    std::map<std::string, std::set<std::pair<int, std::string>>>
        expected, actual;

    for (const FileScan &scan : scans) {
        for (const Annotation &ann : scan.annotations) {
            if (ann.kind == Annotation::Kind::Expect)
                expected[scan.rel].insert({ann.line, ann.rule});
            if (ann.kind == Annotation::Kind::Allow)
                suppressed.insert(ann.rule);
            if (ann.kind == Annotation::Kind::SanctionedGlobal)
                suppressed.insert("mutable-global");
        }
        for (const Finding &f : runRules(scan, {}))
            actual[scan.rel].insert({f.line, f.rule});
    }
    for (const Finding &f : runGraphRules(scans, buildIncludeGraph(scans)))
        actual[f.rel].insert({f.line, f.rule});
    SemaModel model = buildSemaModel(scans);
    for (const Finding &f : runSemaRules(model, scans))
        actual[f.rel].insert({f.line, f.rule});
    for (const Finding &f :
         runCallGraphRules(buildCallGraph(model, scans), model, scans))
        actual[f.rel].insert({f.line, f.rule});

    for (const FileScan &scan : scans) {
        for (const auto &[line, rule] : expected[scan.rel]) {
            if (actual[scan.rel].count({line, rule})) {
                fired.insert(rule);
            } else {
                ok = false;
                log << scan.rel << ":" << line << ": expected " << rule
                    << " did not fire\n";
            }
        }
        for (const auto &[line, rule] : actual[scan.rel]) {
            if (!expected[scan.rel].count({line, rule})) {
                ok = false;
                log << scan.rel << ":" << line << ": unexpected "
                    << rule << " finding\n";
            }
        }
    }

    for (const auto &[rule, blurb] : ruleCatalog()) {
        if (!fired.count(rule)) {
            ok = false;
            log << "corpus never fires rule " << rule << "\n";
        }
        if (rule != "annotation" && !suppressed.count(rule)) {
            ok = false;
            log << "corpus never exercises suppression of " << rule
                << "\n";
        }
    }

    report += log.str();
    return ok;
}

} // namespace copra::lint
