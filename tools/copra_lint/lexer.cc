/**
 * @file
 * Lexer for copra_lint: splits a C++ source file into raw lines, a
 * comment/string/preprocessor-free token stream, include directives,
 * guard information, and parsed copra-lint annotations.
 */

#include "copra_lint/lint.hpp"

#include <cctype>
#include <cstddef>

namespace copra::lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string
trimmed(const std::string &text)
{
    size_t begin = text.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    size_t end = text.find_last_not_of(" \t");
    return text.substr(begin, end - begin + 1);
}

/**
 * Parse one `//`-free segment of comment text for copra-lint
 * directives and the corpus-only expectation markers. Anything that
 * starts with the copra-lint prefix but does not parse becomes a
 * Malformed annotation so typos fail the lint run instead of silently
 * suppressing nothing.
 */
void
parseCommentSegment(const std::string &text, int line,
                    std::vector<Annotation> &out)
{
    size_t pos = text.find("copra-lint:");
    if (pos != std::string::npos) {
        std::string body = trimmed(text.substr(pos + 11));
        Annotation ann;
        ann.line = line;
        if (body.rfind("allow(", 0) == 0) {
            size_t close = body.find(')');
            if (close == std::string::npos) {
                ann.error = "unterminated allow(...)";
            } else {
                ann.rule = trimmed(body.substr(6, close - 6));
                std::string reason = trimmed(body.substr(close + 1));
                while (!reason.empty() &&
                       (reason.front() == '-' || reason.front() == ':'))
                    reason.erase(reason.begin());
                ann.reason = trimmed(reason);
                if (!knownRule(ann.rule))
                    ann.error = "allow() names unknown rule '" +
                        ann.rule + "'";
                else if (ann.reason.empty())
                    ann.error = "allow(" + ann.rule +
                        ") carries no reason";
                else
                    ann.kind = Annotation::Kind::Allow;
            }
        } else if (body.rfind("sanctioned-global(", 0) == 0) {
            size_t close = body.rfind(')');
            if (close == std::string::npos || close < 18) {
                ann.error = "unterminated sanctioned-global(...)";
            } else {
                ann.reason = trimmed(body.substr(18, close - 18));
                if (ann.reason.empty())
                    ann.error = "sanctioned-global() carries no reason";
                else
                    ann.kind = Annotation::Kind::SanctionedGlobal;
            }
        } else {
            ann.error = "unknown copra-lint directive '" + body + "'";
        }
        out.push_back(ann);
        return;
    }

    // Corpus marker: `expect: rule-a, rule-b` pins planted violations.
    pos = text.find("expect:");
    if (pos == std::string::npos)
        return;
    std::string body = trimmed(text.substr(pos + 7));
    size_t start = 0;
    while (start <= body.size()) {
        size_t comma = body.find(',', start);
        std::string rule = trimmed(body.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start));
        if (!rule.empty()) {
            Annotation ann;
            ann.kind = Annotation::Kind::Expect;
            ann.rule = rule;
            ann.line = line;
            out.push_back(ann);
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
}

/**
 * One physical comment can stack several logical ones (`// a // b`),
 * which the corpus uses to pin an expectation next to a deliberately
 * malformed directive. Split and parse each segment independently.
 */
void
parseCommentText(const std::string &text, int line,
                 std::vector<Annotation> &out)
{
    size_t start = 0;
    for (;;) {
        size_t next = text.find("//", start);
        parseCommentSegment(
            text.substr(start, next == std::string::npos
                                   ? std::string::npos
                                   : next - start),
            line, out);
        if (next == std::string::npos)
            break;
        start = next + 2;
    }
}

} // namespace

FileScan
scanSource(const std::string &rel, const std::string &content)
{
    FileScan scan;
    scan.rel = rel;

    // Raw lines first; every other view indexes into these.
    {
        std::string line;
        for (char c : content) {
            if (c == '\n') {
                scan.lines.push_back(line);
                line.clear();
            } else {
                line += c;
            }
        }
        if (!line.empty())
            scan.lines.push_back(line);
    }

    enum class State { Code, LineComment, BlockComment, String, Char,
                       RawString };
    State state = State::Code;
    std::string comment;  // accumulating comment text
    std::string rawDelim; // raw-string delimiter, e.g. `)foo"`
    int commentLine = 0;
    int line = 1;
    bool lineStart = true; // only whitespace seen on this line so far
    size_t lineBegin = 0;  // index of the current line's first byte

    auto colOf = [&](size_t at) {
        return static_cast<int>(at - lineBegin) + 1;
    };

    const std::string &src = content;
    size_t n = src.size();
    for (size_t i = 0; i < n; ++i) {
        char c = src[i];
        char next = i + 1 < n ? src[i + 1] : '\0';

        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                comment.clear();
                commentLine = line;
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                comment.clear();
                commentLine = line;
                ++i;
            } else if (c == '"') {
                // R"delim( ... )delim"
                size_t open;
                if (!scan.tokens.empty() &&
                    scan.tokens.back().text == "R" &&
                    i > 0 && src[i - 1] == 'R' &&
                    (open = src.find('(', i + 1)) != std::string::npos) {
                    scan.tokens.pop_back();
                    rawDelim = ")" +
                        src.substr(i + 1, open - i - 1) + "\"";
                    state = State::RawString;
                    i = open;
                } else {
                    state = State::String;
                }
            } else if (c == '\'') {
                state = State::Char;
            } else if (c == '#' && lineStart) {
                // Preprocessor line: recorded for include/guard rules,
                // excluded from the statement token stream.
                size_t end = i;
                std::string directive;
                bool trailingComment = false;
                while (end < n && src[end] != '\n') {
                    if (src[end] == '/' && end + 1 < n &&
                        src[end + 1] == '/') {
                        // Hand `// ...` back to the comment states so
                        // directives on guard lines stay annotatable.
                        trailingComment = true;
                        break;
                    }
                    directive += src[end];
                    if (src[end] == '\\' && end + 1 < n &&
                        src[end + 1] == '\n')
                        directive += src[++end]; // keep continuation
                    ++end;
                }
                std::string flat = trimmed(directive.substr(1));
                if (flat.rfind("include", 0) == 0) {
                    std::string rest = trimmed(flat.substr(7));
                    if (rest.size() >= 2 &&
                        (rest[0] == '<' || rest[0] == '"')) {
                        char closer = rest[0] == '<' ? '>' : '"';
                        size_t close = rest.find(closer, 1);
                        if (close != std::string::npos) {
                            std::string target =
                                rest.substr(1, close - 1);
                            scan.includes.insert(target);
                            scan.includeList.push_back({target, line});
                        }
                    }
                } else if (flat.rfind("pragma", 0) == 0 &&
                           trimmed(flat.substr(6)) == "once") {
                    scan.pragmaOnce = true;
                } else if (flat.rfind("ifndef", 0) == 0 &&
                           scan.guardLine == 0 && !scan.pragmaOnce &&
                           scan.includes.empty()) {
                    // A classic guard opens before any include; the
                    // header-guard rule decides what to do with it.
                    scan.guardLine = line;
                }
                for (size_t k = i; k < end; ++k)
                    if (src[k] == '\n')
                        ++line;
                if (trailingComment) {
                    i = end - 1; // next iteration sees the `//`
                    lineStart = false;
                } else {
                    i = end;
                    if (i < n)
                        ++line; // the newline ending the directive
                    lineStart = true;
                    lineBegin = i + 1;
                }
                continue;
            } else if (isIdentStart(c)) {
                int col = colOf(i);
                std::string word(1, c);
                while (i + 1 < n && isIdentChar(src[i + 1]))
                    word += src[++i];
                scan.tokens.push_back({word, line, col});
            } else if (std::isdigit(static_cast<unsigned char>(c))) {
                int col = colOf(i);
                std::string num(1, c);
                while (i + 1 < n &&
                       (isIdentChar(src[i + 1]) || src[i + 1] == '.' ||
                        ((src[i] == 'e' || src[i] == 'E') &&
                         (src[i + 1] == '+' || src[i + 1] == '-'))))
                    num += src[++i];
                scan.tokens.push_back({num, line, col});
            } else if (c == ':' && next == ':') {
                scan.tokens.push_back({"::", line, colOf(i)});
                ++i;
            } else if (!std::isspace(static_cast<unsigned char>(c))) {
                scan.tokens.push_back({std::string(1, c), line, colOf(i)});
            }
            break;

          case State::LineComment:
            if (c == '\n') {
                parseCommentText(comment, commentLine,
                                 scan.annotations);
                state = State::Code;
            } else {
                comment += c;
            }
            break;

          case State::BlockComment:
            if (c == '*' && next == '/') {
                parseCommentText(comment, commentLine,
                                 scan.annotations);
                state = State::Code;
                ++i;
            } else {
                comment += c;
            }
            break;

          case State::String:
            if (c == '\\')
                ++i;
            else if (c == '"')
                state = State::Code;
            break;

          case State::Char:
            if (c == '\\')
                ++i;
            else if (c == '\'')
                state = State::Code;
            break;

          case State::RawString:
            if (src.compare(i, rawDelim.size(), rawDelim) == 0) {
                i += rawDelim.size() - 1;
                state = State::Code;
            }
            break;
        }

        if (c == '\n') {
            ++line;
            lineStart = true;
            lineBegin = i + 1;
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            lineStart = false;
        }
    }
    if (state == State::LineComment)
        parseCommentText(comment, commentLine, scan.annotations);

    return scan;
}

} // namespace copra::lint
