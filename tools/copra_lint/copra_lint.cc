/**
 * @file
 * CLI for copra_lint. Exit codes: 0 clean, 1 findings (or self-test
 * mismatch), 2 usage error.
 *
 *   copra_lint --root . src bench tests tools   # the ctest gate
 *   copra_lint --root . --self-test tests/lint_corpus
 *   copra_lint --list-rules
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "copra_lint/lint.hpp"

namespace {

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--root DIR] [--self-test CORPUS_DIR] [--list-rules]\n"
        << "       [PATH...]\n\n"
        << "Lints PATHs (default: src bench tests tools) relative to\n"
        << "--root (default: .) against copra's determinism contract.\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string corpus;
    std::vector<std::string> paths;
    bool listRules = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--self-test" && i + 1 < argc) {
            corpus = argv[++i];
        } else if (arg == "--list-rules") {
            listRules = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option " << arg << "\n";
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }

    if (listRules) {
        for (const auto &[name, blurb] : copra::lint::ruleCatalog())
            std::cout << name << ": " << blurb << "\n";
        return 0;
    }

    if (!corpus.empty()) {
        std::string report;
        bool ok = copra::lint::selfTest(root, corpus, report);
        std::cout << report;
        std::cout << (ok ? "self-test passed: every planted violation "
                           "fired and every suppression held\n"
                         : "self-test FAILED\n");
        return ok ? 0 : 1;
    }

    if (paths.empty())
        paths = {"src", "bench", "tests", "tools"};

    std::vector<copra::lint::Finding> findings =
        copra::lint::lintTree(root, paths);
    for (const copra::lint::Finding &f : findings)
        std::cout << f.rel << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
    if (!findings.empty()) {
        std::cout << findings.size()
                  << " finding(s); see DESIGN.md section 9 for the "
                     "suppression policy\n";
        return 1;
    }
    return 0;
}
