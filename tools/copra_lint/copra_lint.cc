/**
 * @file
 * CLI for copra_lint. Exit codes: 0 clean, 1 findings (or self-test
 * mismatch), 2 usage error or missing/unreadable input path.
 *
 *   copra_lint --root . src bench tests tools   # the ctest gate
 *   copra_lint --root . --self-test tests/lint_corpus
 *   copra_lint --root . --json src bench        # machine findings
 *   copra_lint --root . --sarif findings.sarif src  # code scanning
 *   copra_lint --root . --graph-dot includes.dot src
 *   copra_lint --root . --baseline known.txt src    # warn-only landing
 *   copra_lint --root . --doc-hot-path src          # docs/HOT_PATH.md
 *   copra_lint --list-rules
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "copra_lint/lint.hpp"

// Build provenance is generated into the build tree by src/obs; the
// CLI stays buildable standalone (e.g. unit-test links) without it.
#if __has_include("obs/build_info.hpp")
#include "obs/build_info.hpp"
#define COPRA_LINT_HAVE_BUILD_INFO 1
#endif

namespace {

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--root DIR] [--self-test CORPUS_DIR] [--list-rules]\n"
        << "       [--json] [--sarif FILE] [--graph-dot FILE]\n"
        << "       [--baseline FILE] [--write-baseline FILE]\n"
        << "       [--doc-hot-path [--check FILE]] [PATH...]\n\n"
        << "Lints PATHs (default: src bench tests tools) relative to\n"
        << "--root (default: .) against copra's determinism contract,\n"
        << "the module-layering DAG, the predictor state contract, and\n"
        << "the hot-path discipline rules (DESIGN.md sections 9, 10,\n"
        << "14, and 15).\n"
        << "--json emits findings as a JSON object on stdout;\n"
        << "--sarif writes SARIF 2.1.0 to FILE ('-' for stdout) for\n"
        << "GitHub code scanning; --graph-dot writes the include graph\n"
        << "(hot-region files filled) as Graphviz DOT to FILE ('-' for\n"
        << "stdout); --baseline suppresses findings listed in FILE\n"
        << "(one 'rel:line:rule' per line, '#' comments) so new rules\n"
        << "can land warn-only; --write-baseline records the current\n"
        << "findings in that format; --doc-hot-path prints the\n"
        << "generated docs/HOT_PATH.md (--check FILE exits 1 on\n"
        << "drift). Missing or unreadable PATHs are a hard error\n"
        << "(exit 2), never a silent skip.\n";
    return 2;
}

/** One `rel:line:rule` baseline entry. */
struct BaselineEntry
{
    std::string rel;
    int line = 0;
    std::string rule;

    bool operator<(const BaselineEntry &o) const
    {
        if (rel != o.rel)
            return rel < o.rel;
        if (line != o.line)
            return line < o.line;
        return rule < o.rule;
    }
};

/** Parse a baseline file; returns false (with a message) on bad input. */
bool
readBaseline(const std::string &path, std::set<BaselineEntry> &out,
             std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot read baseline file " + path;
        return false;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#')
            continue;
        // rel may contain no ':', so split from the right: the last
        // two fields are line and rule.
        size_t lastColon = line.rfind(':');
        size_t midColon =
            lastColon == std::string::npos || lastColon == 0
                ? std::string::npos
                : line.rfind(':', lastColon - 1);
        if (midColon == std::string::npos) {
            error = path + ":" + std::to_string(lineno) +
                ": expected rel:line:rule";
            return false;
        }
        BaselineEntry e;
        e.rel = line.substr(start, midColon - start);
        e.rule = line.substr(lastColon + 1);
        try {
            e.line = std::stoi(
                line.substr(midColon + 1, lastColon - midColon - 1));
        } catch (...) {
            error = path + ":" + std::to_string(lineno) +
                ": bad line number";
            return false;
        }
        out.insert(std::move(e));
    }
    return true;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** The tool's git revision, or "unknown" outside the build tree. */
std::string
buildGitSha()
{
#ifdef COPRA_LINT_HAVE_BUILD_INFO
    return copra::obs::kBuildGitSha;
#else
    return "unknown";
#endif
}

/** Emit the build_info provenance object (shared by --json/--sarif). */
void
writeBuildInfo(std::ostream &out)
{
    out << "{\"git_sha\": \"" << jsonEscape(buildGitSha()) << "\"";
#ifdef COPRA_LINT_HAVE_BUILD_INFO
    out << ", \"build_type\": \""
        << jsonEscape(copra::obs::kBuildType) << "\", \"compiler\": \""
        << jsonEscape(copra::obs::kBuildCompiler) << "\"";
#endif
    out << "}";
}

/**
 * SARIF 2.1.0 for GitHub code scanning: one run, the full rule
 * catalog as driver rules, findings as error-level results anchored
 * to %SRCROOT%-relative locations, and the git SHA as version-control
 * provenance so alerts attach to the right commit.
 */
void
writeSarif(std::ostream &out, const std::vector<copra::lint::Finding> &fs)
{
    out << "{\"$schema\": \"https://raw.githubusercontent.com/oasis-"
           "tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\", "
           "\"version\": \"2.1.0\", \"runs\": [{\"tool\": {\"driver\": "
           "{\"name\": \"copra_lint\", \"informationUri\": "
           "\"DESIGN.md\", \"rules\": [";
    bool first = true;
    for (const auto &[name, blurb] : copra::lint::ruleCatalog()) {
        out << (first ? "" : ", ") << "{\"id\": \"copra." << name
            << "\", \"shortDescription\": {\"text\": \""
            << jsonEscape(blurb) << "\"}}";
        first = false;
    }
    out << "]}}, \"versionControlProvenance\": [{\"repositoryUri\": "
           "\"\", \"revisionId\": \"" << jsonEscape(buildGitSha())
        << "\"}], \"results\": [";
    for (size_t i = 0; i < fs.size(); ++i) {
        const copra::lint::Finding &f = fs[i];
        out << (i ? ", " : "") << "{\"ruleId\": \"" << f.ruleId()
            << "\", \"level\": \"error\", \"message\": {\"text\": \""
            << jsonEscape(f.message)
            << "\"}, \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \"" << jsonEscape(f.rel)
            << "\", \"uriBaseId\": \"%SRCROOT%\"}, \"region\": "
               "{\"startLine\": " << f.line
            << ", \"startColumn\": " << f.col << "}}}]}";
    }
    out << "]}]}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string corpus;
    std::string dotPath;
    std::string sarifPath;
    std::string baselinePath;
    std::string writeBaselinePath;
    std::string checkPath;
    std::vector<std::string> paths;
    bool listRules = false;
    bool json = false;
    bool docHotPath = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--self-test" && i + 1 < argc) {
            corpus = argv[++i];
        } else if (arg == "--graph-dot" && i + 1 < argc) {
            dotPath = argv[++i];
        } else if (arg == "--sarif" && i + 1 < argc) {
            sarifPath = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baselinePath = argv[++i];
        } else if (arg == "--write-baseline" && i + 1 < argc) {
            writeBaselinePath = argv[++i];
        } else if (arg == "--doc-hot-path") {
            docHotPath = true;
        } else if (arg == "--check" && i + 1 < argc) {
            checkPath = argv[++i];
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--list-rules") {
            listRules = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option " << arg << "\n";
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }

    if (listRules) {
        for (const auto &[name, blurb] : copra::lint::ruleCatalog())
            std::cout << name << ": " << blurb << "\n";
        return 0;
    }

    if (!corpus.empty()) {
        std::string report;
        bool ok = copra::lint::selfTest(root, corpus, report);
        std::cout << report;
        std::cout << (ok ? "self-test passed: every planted violation "
                           "fired and every suppression held\n"
                         : "self-test FAILED\n");
        return ok ? 0 : 1;
    }

    if (paths.empty())
        paths = {"src", "bench", "tests", "tools"};

    copra::lint::TreeLint tree = copra::lint::lintTreeFull(root, paths);

    // Input that could not be walked is a hard error: a linter that
    // silently skips paths reports "clean" about code it never saw.
    if (!tree.errors.empty()) {
        for (const std::string &e : tree.errors)
            std::cerr << "copra_lint: error: " << e << "\n";
        return 2;
    }

    if (docHotPath) {
        if (checkPath.empty()) {
            std::cout << tree.hotPathDoc;
            return 0;
        }
        std::ifstream in(checkPath, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        if (!in || buf.str() != tree.hotPathDoc) {
            std::cerr << "copra_lint: " << checkPath
                      << " is out of date; regenerate with\n  "
                      << argv[0] << " --root " << root
                      << " --doc-hot-path";
            for (const std::string &p : paths)
                std::cerr << " " << p;
            std::cerr << " > " << checkPath << "\n";
            return 1;
        }
        std::cout << checkPath << " is up to date\n";
        return 0;
    }

    size_t baselined = 0;
    if (!baselinePath.empty()) {
        std::set<BaselineEntry> baseline;
        std::string error;
        if (!readBaseline(baselinePath, baseline, error)) {
            std::cerr << "copra_lint: error: " << error << "\n";
            return 2;
        }
        std::vector<copra::lint::Finding> kept;
        for (copra::lint::Finding &f : tree.findings) {
            if (baseline.count({f.rel, f.line, f.rule}))
                ++baselined;
            else
                kept.push_back(std::move(f));
        }
        tree.findings = std::move(kept);
    }

    if (!writeBaselinePath.empty()) {
        std::ofstream out(writeBaselinePath, std::ios::binary);
        out << "# copra_lint baseline: rel:line:rule entries excluded\n"
               "# from future runs; shrink this file, never grow it.\n";
        for (const copra::lint::Finding &f : tree.findings)
            out << f.rel << ":" << f.line << ":" << f.rule << "\n";
        if (!out) {
            std::cerr << "copra_lint: error: cannot write "
                      << writeBaselinePath << "\n";
            return 2;
        }
    }

    if (!dotPath.empty()) {
        std::string dot =
            copra::lint::graphToDot(tree.graph, tree.hotFiles);
        if (dotPath == "-") {
            std::cout << dot;
        } else {
            std::ofstream out(dotPath, std::ios::binary);
            out << dot;
            if (!out) {
                std::cerr << "copra_lint: error: cannot write "
                          << dotPath << "\n";
                return 2;
            }
        }
    }

    if (!sarifPath.empty()) {
        if (sarifPath == "-") {
            writeSarif(std::cout, tree.findings);
        } else {
            std::ofstream out(sarifPath, std::ios::binary);
            writeSarif(out, tree.findings);
            if (!out) {
                std::cerr << "copra_lint: error: cannot write "
                          << sarifPath << "\n";
                return 2;
            }
        }
        if (!json)
            return tree.findings.empty() ? 0 : 1;
    }

    if (json) {
        std::cout << "{\"count\": " << tree.findings.size()
                  << ", \"build_info\": ";
        writeBuildInfo(std::cout);
        std::cout << ", \"findings\": [";
        for (size_t i = 0; i < tree.findings.size(); ++i) {
            const copra::lint::Finding &f = tree.findings[i];
            std::cout << (i ? ", " : "")
                      << "{\"file\": \"" << jsonEscape(f.rel)
                      << "\", \"line\": " << f.line
                      << ", \"col\": " << f.col
                      << ", \"rule\": \"" << jsonEscape(f.rule)
                      << "\", \"rule_id\": \"" << jsonEscape(f.ruleId())
                      << "\", \"message\": \"" << jsonEscape(f.message)
                      << "\"}";
        }
        std::cout << "]}\n";
        return tree.findings.empty() ? 0 : 1;
    }

    for (const copra::lint::Finding &f : tree.findings)
        std::cout << f.rel << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
    if (baselined)
        std::cout << baselined << " baselined finding(s) excluded ("
                  << baselinePath << ")\n";
    if (!tree.findings.empty()) {
        std::cout << tree.findings.size()
                  << " finding(s); see DESIGN.md section 9 for the "
                     "suppression policy\n";
        return 1;
    }
    return 0;
}
