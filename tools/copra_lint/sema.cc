/**
 * @file
 * Cross-TU semantic pass for copra_lint: the predictor state-contract
 * audit (DESIGN.md §14).
 *
 * Where the token rules in rules.cc look at one statement at a time,
 * this pass builds a lightweight symbol table over every scanned file:
 * class definitions with their base classes, member fields, declared
 * methods, and COPRA_{STATE,CONFIG,TRANSIENT}_FIELDS declarations —
 * plus every out-of-line `Class::method(...) { ... }` body, bound back
 * to its class across translation units. Three rules run on top:
 *
 *  - state-decl: every Predictor-derived class under src/predictor/
 *    must declare COPRA_STATE_FIELDS(...) and the stateBits() /
 *    snapshotState() / restoreState() trio, and every name a field
 *    list mentions must be a real member (no stale entries).
 *  - state-coverage: every parsed member field must appear in exactly
 *    one of the three lists — an unlisted field is exactly the hidden
 *    state the snapshot gates exist to catch.
 *  - state-mutation: prediction-path bodies (predict, update, observe,
 *    predictUpdateBatch, predictUpdateSoa) may not mutate config-listed
 *    members; classes without the contract may not mutate any member
 *    there at all.
 *
 * The parser is the same honest lexical machinery as the rest of the
 * tool (DESIGN.md §14 discusses why declaration-cross-check beats a
 * libclang dependency here): a brace-depth statement walker that
 * classifies each class-body statement as nested type, method, field,
 * or field-list declaration. It parses every construct this codebase
 * uses; the planted corpus under tests/lint_corpus/ pins the behaviour.
 */

#include "copra_lint/lint.hpp"

#include <algorithm>

namespace copra::lint {

namespace {

bool
isIdentTok(const std::string &t)
{
    return !t.empty() &&
        (std::isalpha(static_cast<unsigned char>(t[0])) || t[0] == '_');
}

/** Keywords that can open a class-body statement we never classify as
 * a field or method of the class itself. */
bool
isSkippedHead(const std::string &t)
{
    return t == "using" || t == "typedef" || t == "friend" ||
        t == "template" || t == "static_assert" || t == "operator";
}

bool
isNestedTypeKeyword(const std::string &t)
{
    return t == "class" || t == "struct" || t == "union" || t == "enum";
}

bool
isAccessKeyword(const std::string &t)
{
    return t == "public" || t == "private" || t == "protected";
}

/** Token index just past the `}` matching the `{` at `open`. */
size_t
skipBraces(const std::vector<Token> &toks, size_t open)
{
    int depth = 0;
    for (size_t j = open; j < toks.size(); ++j) {
        if (toks[j].text == "{")
            ++depth;
        else if (toks[j].text == "}" && --depth == 0)
            return j + 1;
    }
    return toks.size();
}

/** Token index just past the matcher of the bracket at `open`. */
size_t
skipPair(const std::vector<Token> &toks, size_t open,
         const std::string &openTok, const std::string &closeTok)
{
    int depth = 0;
    for (size_t j = open; j < toks.size(); ++j) {
        if (toks[j].text == openTok)
            ++depth;
        else if (toks[j].text == closeTok && --depth == 0)
            return j + 1;
    }
    return toks.size();
}

/** The three field-list macros, mapped to their list kind. */
bool
fieldListMacro(const std::string &t, FieldList &list)
{
    if (t == "COPRA_STATE_FIELDS") {
        list = FieldList::State;
        return true;
    }
    if (t == "COPRA_CONFIG_FIELDS") {
        list = FieldList::Config;
        return true;
    }
    if (t == "COPRA_TRANSIENT_FIELDS") {
        list = FieldList::Transient;
        return true;
    }
    return false;
}

/**
 * Field name of a data-member statement: scanning backward from the
 * terminator (`=`, `{`, or `;`), the first identifier is the declared
 * name — everything between it and the terminator is array extents or
 * punctuation (`lastRun[2] = ...`), everything before it is type.
 */
bool
fieldNameBackward(const std::vector<Token> &toks, size_t from, size_t to,
                  SemaField &out)
{
    for (size_t j = to; j-- > from;) {
        const std::string &t = toks[j].text;
        if (isIdentTok(t)) {
            out.name = t;
            out.line = toks[j].line;
            out.col = toks[j].col;
            return true;
        }
    }
    return false;
}

/**
 * Parse one class body (tokens strictly between its braces) into
 * `cls`. `scanIndex` names the scan the tokens belong to, so inline
 * method bodies can be recorded for the mutation rule.
 */
void
parseClassBody(const std::vector<Token> &toks, size_t begin, size_t end,
               size_t scanIndex, SemaClass &cls)
{
    size_t stmt = begin; // first token of the open statement
    size_t j = begin;
    while (j < end) {
        const std::string &t = toks[j].text;

        // Access labels reset the statement without ending one.
        if (isAccessKeyword(t) && j + 1 < end && toks[j + 1].text == ":") {
            j += 2;
            stmt = j;
            continue;
        }

        if (t == "{") {
            // Classify the statement head [stmt, j).
            size_t bodyEnd = skipBraces(toks, j); // one past the `}`
            bool nested = false, isStatic = false;
            size_t firstParen = end, firstEq = end;
            for (size_t k = stmt; k < j; ++k) {
                const std::string &h = toks[k].text;
                if (isNestedTypeKeyword(h))
                    nested = true;
                if (h == "static")
                    isStatic = true;
                if (h == "(" && firstParen == end)
                    firstParen = k;
                if (h == "=" && firstEq == end)
                    firstEq = k;
            }
            if (nested || isStatic ||
                (stmt < j && isSkippedHead(toks[stmt].text))) {
                // Nested type / static member / exempt statement.
            } else if (firstParen < firstEq) {
                // Method definition: name is the identifier before the
                // parameter list (ctors included).
                SemaField name;
                if (fieldNameBackward(toks, stmt, firstParen, name)) {
                    cls.methods.insert(name.name);
                    cls.bodies.push_back(
                        {name.name, scanIndex, j, bodyEnd - 1, stmt});
                }
            } else {
                // Data member with a braced initializer.
                SemaField field;
                size_t term = firstEq != end ? firstEq : j;
                if (fieldNameBackward(toks, stmt, term, field))
                    cls.fields.push_back(field);
            }
            j = bodyEnd;
            if (j < end && toks[j].text == ";")
                ++j; // nested types and brace-inits close with one
            stmt = j;
            continue;
        }

        if (t == ";") {
            // Classify the statement [stmt, j).
            if (stmt < j) {
                const std::string &head = toks[stmt].text;
                FieldList list;
                if (fieldListMacro(head, list)) {
                    cls.hasStateFields |= list == FieldList::State;
                    cls.hasConfigFields |= list == FieldList::Config;
                    cls.hasTransientFields |= list == FieldList::Transient;
                    for (size_t k = stmt + 1; k < j; ++k)
                        if (isIdentTok(toks[k].text))
                            cls.listed.push_back({toks[k].text, list,
                                                  toks[stmt].line,
                                                  toks[stmt].col});
                } else if (isSkippedHead(head) ||
                           isNestedTypeKeyword(head)) {
                    // using/typedef/friend/forward declarations etc.
                } else {
                    bool isStatic = false;
                    size_t firstParen = end, firstEq = end;
                    for (size_t k = stmt; k < j; ++k) {
                        const std::string &h = toks[k].text;
                        if (h == "static")
                            isStatic = true;
                        if (h == "(" && firstParen == end)
                            firstParen = k;
                        if (h == "=" && firstEq == end)
                            firstEq = k;
                    }
                    if (isStatic) {
                        // Static members are class-wide, not snapshot
                        // state; the mutable-global rule polices them.
                    } else if (firstParen < firstEq) {
                        SemaField name;
                        if (fieldNameBackward(toks, stmt, firstParen,
                                              name))
                            cls.methods.insert(name.name);
                    } else {
                        SemaField field;
                        size_t term = firstEq != end ? firstEq : j;
                        if (fieldNameBackward(toks, stmt, term, field))
                            cls.fields.push_back(field);
                    }
                }
            }
            ++j;
            stmt = j;
            continue;
        }

        ++j;
    }
}

/**
 * Try to parse a class definition whose `class`/`struct` keyword sits
 * at `at`. On success fills `cls` (without body parsing), sets
 * `bodyBegin` to the token after the opening `{`, and returns true.
 */
bool
parseClassHead(const std::vector<Token> &toks, size_t at, SemaClass &cls,
               size_t &bodyBegin)
{
    // `enum class` is an enum; `template <class T>` is a parameter.
    if (at > 0 &&
        (toks[at - 1].text == "enum" || toks[at - 1].text == "<" ||
         toks[at - 1].text == ","))
        return false;

    size_t j = at + 1;
    if (j >= toks.size() || !isIdentTok(toks[j].text))
        return false; // anonymous or macro-ish; not a named definition
    cls.name = toks[j].text;
    cls.line = toks[j].line;
    ++j;
    if (j < toks.size() && toks[j].text == "final")
        ++j;
    if (j >= toks.size())
        return false;

    if (toks[j].text == ":") {
        // Base list: `public virtual ns::Base<T>, Base2, ...`.
        ++j;
        std::string lastIdent;
        while (j < toks.size()) {
            const std::string &t = toks[j].text;
            if (t == "{")
                break;
            if (t == ",") {
                if (!lastIdent.empty())
                    cls.bases.push_back(lastIdent);
                lastIdent.clear();
                ++j;
            } else if (t == "<") {
                j = skipPair(toks, j, "<", ">");
            } else if (isAccessKeyword(t) || t == "virtual" ||
                       t == "::") {
                ++j;
            } else if (isIdentTok(t)) {
                lastIdent = t;
                ++j;
            } else {
                return false; // not a class definition after all
            }
        }
        if (j >= toks.size())
            return false;
        if (!lastIdent.empty())
            cls.bases.push_back(lastIdent);
    }

    if (toks[j].text != "{")
        return false; // forward declaration or variable of class type
    bodyBegin = j + 1;
    return true;
}

/** Mutating container/member calls the mutation rule recognizes. */
bool
isMutatorCall(const std::string &t)
{
    return t == "clear" || t == "resize" || t == "push_back" ||
        t == "pop_back" || t == "insert" || t == "erase" ||
        t == "emplace" || t == "emplace_back" || t == "push" ||
        t == "pop" || t == "assign" || t == "set" || t == "fill" ||
        t == "swap";
}

/**
 * Scan the body token range for mutations of any name in `targets`:
 * assignment, compound assignment, shift-assignment, increment or
 * decrement (either side), indexed forms of all of those, and calls
 * to the recognized mutating members. Mutations through some *other*
 * object (`x.field = ...`) are ignored — only the class's own members
 * count.
 */
void
findMutations(const std::vector<Token> &toks, size_t begin, size_t end,
              const std::set<std::string> &targets,
              std::vector<const Token *> &hits)
{
    auto opAt = [&](size_t k) {
        if (k >= end)
            return false;
        const std::string &t = toks[k].text;
        if (t == "=" && (k + 1 >= end || toks[k + 1].text != "="))
            return true; // plain assignment, not `==`
        if ((t == "+" || t == "-" || t == "*" || t == "/" || t == "%" ||
             t == "&" || t == "|" || t == "^") &&
            k + 1 < end && toks[k + 1].text == "=")
            return true; // compound assignment
        if ((t == "<" || t == ">") && k + 2 < end &&
            toks[k + 1].text == t && toks[k + 2].text == "=")
            return true; // shift-assignment
        if ((t == "+" || t == "-") && k + 1 < end &&
            toks[k + 1].text == t)
            return true; // postfix ++/--
        if (t == "." && k + 2 < end && isMutatorCall(toks[k + 1].text) &&
            toks[k + 2].text == "(")
            return true; // mutating member call
        return false;
    };

    for (size_t j = begin; j < end; ++j) {
        if (!targets.count(toks[j].text))
            continue;
        // `other.field` / `other->field` is not our member.
        if (j > begin &&
            (toks[j - 1].text == "." ||
             (toks[j - 1].text == ">" && j > begin + 1 &&
              toks[j - 2].text == "-")))
            continue;
        // Prefix ++/--.
        if (j > begin + 1 &&
            ((toks[j - 1].text == "+" && toks[j - 2].text == "+") ||
             (toks[j - 1].text == "-" && toks[j - 2].text == "-"))) {
            hits.push_back(&toks[j]);
            continue;
        }
        size_t k = j + 1;
        if (k < end && toks[k].text == "[")
            k = skipPair(toks, k, "[", "]"); // indexed access
        if (opAt(k))
            hits.push_back(&toks[j]);
    }
}

/** Methods whose bodies the mutation rule audits. */
bool
isPredictPathMethod(const std::string &m)
{
    return m == "predict" || m == "update" || m == "observe" ||
        m == "predictUpdateBatch" || m == "predictUpdateSoa";
}

} // namespace

bool
derivesFrom(const SemaModel &model, const std::string &cls,
            const std::string &base)
{
    std::set<std::string> visited;
    std::vector<std::string> work;
    auto it = model.classes.find(cls);
    if (it == model.classes.end())
        return false;
    work.insert(work.end(), it->second.bases.begin(),
                it->second.bases.end());
    while (!work.empty()) {
        std::string b = work.back();
        work.pop_back();
        if (!visited.insert(b).second)
            continue;
        if (b == base)
            return true;
        auto bit = model.classes.find(b);
        if (bit != model.classes.end())
            work.insert(work.end(), bit->second.bases.begin(),
                        bit->second.bases.end());
    }
    return false;
}

bool
derivesFromPredictor(const SemaModel &model, const std::string &cls)
{
    return derivesFrom(model, cls, "Predictor");
}

SemaModel
buildSemaModel(const std::vector<FileScan> &scans)
{
    SemaModel model;

    // Pass 1: class definitions (any nesting level registers under its
    // own name — only Predictor-derived classes are ever audited, so
    // helper structs are inert entries).
    for (size_t s = 0; s < scans.size(); ++s) {
        const auto &toks = scans[s].tokens;
        for (size_t i = 0; i < toks.size(); ++i) {
            if (toks[i].text != "class" && toks[i].text != "struct")
                continue;
            SemaClass cls;
            size_t bodyBegin = 0;
            if (!parseClassHead(toks, i, cls, bodyBegin))
                continue;
            cls.rel = scans[s].rel;
            cls.scanIndex = s;
            size_t bodyEnd = skipBraces(toks, bodyBegin - 1) - 1;
            cls.bodyBegin = bodyBegin;
            cls.bodyEnd = bodyEnd;
            parseClassBody(toks, bodyBegin, bodyEnd, s, cls);
            model.classes.emplace(cls.name, std::move(cls));
        }
    }

    // Pass 2: out-of-line bodies. `Class :: method ( ... ) ... {` at
    // any depth binds a body; a `;` before the `{` is a declaration or
    // a qualified call, not a definition.
    for (size_t s = 0; s < scans.size(); ++s) {
        const auto &toks = scans[s].tokens;
        for (size_t i = 0; i + 3 < toks.size(); ++i) {
            if (toks[i + 1].text != "::" || toks[i + 3].text != "(")
                continue;
            if (!isIdentTok(toks[i].text) || !isIdentTok(toks[i + 2].text))
                continue;
            auto it = model.classes.find(toks[i].text);
            if (it == model.classes.end())
                continue;
            size_t afterParams = skipPair(toks, i + 3, "(", ")");
            // Walk to the body `{`, crossing a ctor's member-init list;
            // paren depth going negative means we were inside a larger
            // expression (e.g. a qualified call as a default argument).
            size_t j = afterParams;
            int parens = 0;
            bool isDef = false;
            for (; j < toks.size(); ++j) {
                const std::string &t = toks[j].text;
                if (t == "(") {
                    ++parens;
                } else if (t == ")") {
                    if (--parens < 0)
                        break;
                } else if (parens == 0) {
                    if (t == ";" || t == "}")
                        break;
                    if (t == "{") {
                        isDef = true;
                        break;
                    }
                }
            }
            if (!isDef)
                continue;
            size_t bodyEnd = skipBraces(toks, j) - 1;
            it->second.bodies.push_back(
                {toks[i + 2].text, s, j, bodyEnd, i});
            i = j; // resume after the header; bodies may nest lambdas
        }
    }

    return model;
}

namespace {

/** True when the class is subject to the state-contract audit. */
bool
inAuditScope(const SemaModel &model, const SemaClass &cls)
{
    return cls.rel.rfind("src/predictor/", 0) == 0 &&
        derivesFromPredictor(model, cls.name);
}

void
ruleStateDecl(const SemaClass &cls, std::vector<Finding> &out)
{
    if (!cls.hasStateFields) {
        out.push_back({cls.rel, cls.line, "state-decl",
                       "class '" + cls.name + "' derives from Predictor "
                       "but declares no COPRA_STATE_FIELDS(...): every "
                       "mutable member must be assigned to a state, "
                       "config, or transient list (DESIGN.md §14)",
                       1});
    }
    const char *trio[] = {"stateBits", "snapshotState", "restoreState"};
    for (const char *m : trio) {
        if (!cls.methods.count(m))
            out.push_back({cls.rel, cls.line, "state-decl",
                           "class '" + cls.name + "' does not declare " +
                           std::string(m) + "(): the state contract "
                           "needs exact bit accounting and a byte-"
                           "stable snapshot/restore pair",
                           1});
    }

    std::set<std::string> memberNames;
    for (const SemaField &f : cls.fields)
        memberNames.insert(f.name);
    for (const SemaListEntry &e : cls.listed) {
        if (!memberNames.count(e.name))
            out.push_back({cls.rel, e.line, "state-decl",
                           "field list of '" + cls.name + "' names '" +
                           e.name + "' but the class has no such "
                           "member (stale entry — remove it or fix the "
                           "spelling)",
                           e.col});
    }
}

void
ruleStateCoverage(const SemaClass &cls, std::vector<Finding> &out)
{
    if (!cls.hasStateFields)
        return; // state-decl already fired; don't double-report
    std::map<std::string, int> listedCount;
    for (const SemaListEntry &e : cls.listed)
        ++listedCount[e.name];
    for (const SemaField &f : cls.fields) {
        auto it = listedCount.find(f.name);
        int n = it == listedCount.end() ? 0 : it->second;
        if (n == 0)
            out.push_back({cls.rel, f.line, "state-coverage",
                           "member '" + f.name + "' of '" + cls.name +
                           "' appears in no COPRA_*_FIELDS list: "
                           "unregistered members are exactly the "
                           "hidden state the snapshot gates catch",
                           f.col});
        else if (n > 1)
            out.push_back({cls.rel, f.line, "state-coverage",
                           "member '" + f.name + "' of '" + cls.name +
                           "' appears in more than one COPRA_*_FIELDS "
                           "list: state, config, and transient are "
                           "mutually exclusive",
                           f.col});
    }
}

void
ruleStateMutation(const SemaClass &cls,
                  const std::vector<FileScan> &scans,
                  std::vector<Finding> &out)
{
    std::set<std::string> targets;
    if (cls.hasStateFields) {
        for (const SemaListEntry &e : cls.listed)
            if (e.list == FieldList::Config)
                targets.insert(e.name);
    } else {
        for (const SemaField &f : cls.fields)
            targets.insert(f.name);
    }
    if (targets.empty())
        return;

    for (const SemaBody &body : cls.bodies) {
        if (!isPredictPathMethod(body.method))
            continue;
        const auto &toks = scans[body.scanIndex].tokens;
        std::vector<const Token *> hits;
        findMutations(toks, body.beginTok + 1, body.endTok, targets,
                      hits);
        for (const Token *hit : hits) {
            std::string what = cls.hasStateFields
                ? "config-listed member '" + hit->text + "': config is "
                  "frozen geometry; if it adapts at runtime it belongs "
                  "in COPRA_STATE_FIELDS"
                : "member '" + hit->text + "' without a state "
                  "contract: snapshots cannot see this state, so "
                  "checkpointed replay diverges silently";
            out.push_back({scans[body.scanIndex].rel, hit->line,
                           "state-mutation",
                           body.method + "() of '" + cls.name +
                           "' mutates " + what,
                           hit->col});
        }
    }
}

} // namespace

std::vector<Finding>
runSemaRules(const SemaModel &model, const std::vector<FileScan> &scans)
{
    std::vector<Finding> raw;
    for (const auto &[name, cls] : model.classes) {
        if (!inAuditScope(model, cls))
            continue;
        ruleStateDecl(cls, raw);
        ruleStateCoverage(cls, raw);
        ruleStateMutation(cls, scans, raw);
    }

    // Suppressions come from the file each finding lands in (which for
    // state-mutation may be a .cc, not the class's header).
    std::map<std::string, const FileScan *> byRel;
    for (const FileScan &scan : scans)
        byRel.emplace(scan.rel, &scan);
    std::vector<Finding> kept;
    std::map<std::string, std::vector<Finding>> grouped;
    for (Finding &f : raw)
        grouped[f.rel].push_back(std::move(f));
    for (auto &[rel, findings] : grouped) {
        auto it = byRel.find(rel);
        if (it == byRel.end()) {
            kept.insert(kept.end(), findings.begin(), findings.end());
            continue;
        }
        std::vector<Finding> surviving =
            applySuppressions(*it->second, std::move(findings));
        kept.insert(kept.end(), surviving.begin(), surviving.end());
    }
    return kept;
}

} // namespace copra::lint
