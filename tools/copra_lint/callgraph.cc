/**
 * @file
 * Hot-path call-graph pass for copra_lint (DESIGN.md §15).
 *
 * Builds a cross-TU function symbol table — every method body from the
 * sema class model plus every namespace-scope free-function definition
 * — then binds COPRA_HOT root annotations and computes the reachable
 * hot region: a mark on a class method roots that method in the class
 * and in every class transitively deriving from it (virtual fan-out to
 * overriders); a mark on a free function roots every definition of
 * that name. Calls inside region bodies are resolved lexically through
 * the class table (member calls by method name, qualified calls by
 * class or namespace, unqualified calls through the enclosing class
 * hierarchy, then free functions); callees the resolver cannot bind
 * are reported through the hot-unresolved rule, never ignored.
 *
 * Four discipline rules run over the region:
 *
 *  - hot-alloc: no new/delete, no allocating std:: types or calls
 *    (string/vector construction, to_string, ...), no allocating
 *    member calls (push_back, resize, reserve, ...).
 *  - hot-lock: no util::Mutex/MutexLock or std lock types, no
 *    function-local statics (guarded initialization), no atomics
 *    without an explicit relaxed memory order.
 *  - hot-throw: no throw, and every hot function (and every COPRA_HOT
 *    declaration) must spell noexcept.
 *  - hot-io: no stream/stdio/file APIs, and no warn()/inform() —
 *    panic/fatal stay legal as the [[noreturn]] assertion frontier.
 *
 * Deliberate scope cuts, documented in DESIGN.md §15: bodies outside
 * src/ and under src/check/ never join the region (reference models
 * and harnesses are clarity-first); obs::count/gaugeMax/observe are a
 * trusted frontier (the one-relaxed-load pattern is audited once, in
 * obs); operator[]-driven container growth is lexically invisible and
 * is exactly what the runtime gate (`copra_check --hot-gates`) exists
 * to catch.
 */

#include "copra_lint/lint.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

namespace copra::lint {

namespace {

bool
isIdentTok(const std::string &t)
{
    return !t.empty() &&
        (std::isalpha(static_cast<unsigned char>(t[0])) || t[0] == '_');
}

/** Token index just past the `}` matching the `{` at `open`. */
size_t
skipBraces(const std::vector<Token> &toks, size_t open)
{
    int depth = 0;
    for (size_t j = open; j < toks.size(); ++j) {
        if (toks[j].text == "{")
            ++depth;
        else if (toks[j].text == "}" && --depth == 0)
            return j + 1;
    }
    return toks.size();
}

/** Token index just past the matcher of the bracket at `open`. */
size_t
skipPair(const std::vector<Token> &toks, size_t open,
         const std::string &openTok, const std::string &closeTok)
{
    int depth = 0;
    for (size_t j = open; j < toks.size(); ++j) {
        if (toks[j].text == openTok)
            ++depth;
        else if (toks[j].text == closeTok && --depth == 0)
            return j + 1;
    }
    return toks.size();
}

/** May a body in this file join the hot region? Reference models and
 * harnesses under src/check/ are clarity-first by design; tests,
 * tools, and bench harnesses are cold by definition; src/obs/ is the
 * audited telemetry frontier — hot code reaches it only through the
 * kObsFrontier entry points, whose one-relaxed-load discipline is
 * checked by clang thread-safety analysis, not by this pass. */
bool
eligibleRel(const std::string &rel)
{
    return rel.rfind("src/", 0) == 0 &&
        rel.rfind("src/check/", 0) != 0 && rel.rfind("src/obs/", 0) != 0;
}

/** Compiler intrinsics (SIMD lanes, builtins): single-instruction
 * register ops that cannot allocate, lock, throw, or do IO. Raw
 * intrinsics are confined to the kernel TUs by the banned-api rule. */
bool
isIntrinsicName(const std::string &t)
{
    if (t.rfind("_mm", 0) == 0 || t.rfind("__", 0) == 0)
        return true; // x86 _mm*/_mm256_* and __builtin_* families
    return t.size() > 2 && t[0] == 'v' &&
        t.find("q_") != std::string::npos; // NEON vaddq_u64-style names
}

bool
inSet(const std::set<std::string> &s, const std::string &t)
{
    return s.find(t) != s.end();
}

/** Statement keywords the call classifier must never treat as callees. */
const std::set<std::string> kKeywords = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "noexcept", "static_cast", "reinterpret_cast",
    "const_cast", "dynamic_cast", "static_assert", "alignas", "typeid",
    "case", "catch", "new", "delete", "co_await", "co_yield",
    "co_return", "requires", "throw", "assert", "else", "do", "try",
    "template", "typename", "operator", "goto",
};

/** Builtin value types: `uint64_t(x)` is a cast, not a call. */
const std::set<std::string> kTypeNames = {
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t", "int16_t",
    "int32_t", "int64_t", "size_t", "ptrdiff_t", "uintptr_t", "intptr_t",
    "int", "unsigned", "long", "short", "char", "bool", "float",
    "double", "signed", "auto",
};

/** Calls that never allocate, lock, throw, or do IO — the resolver
 * skips them instead of reporting hot-unresolved noise. `clear` is
 * the non-freeing container reset; a project method of that name is
 * shadowed here (documented over-approximation, DESIGN.md §15). */
const std::set<std::string> kBenignCalls = {
    "size", "empty", "data", "begin", "end", "cbegin", "cend", "rbegin",
    "rend", "front", "back", "min", "max", "clamp", "abs", "memcpy",
    "memset", "memmove", "c_str", "find", "contains", "at", "popcount",
    "countr_zero", "countl_zero", "rotl", "rotr", "subspan", "first",
    "last", "get", "swap", "fill", "exchange", "bit_cast", "midpoint",
    "clear",
};

/** The kernel dispatch seam's function-pointer fields. Calls through
 * them are lexically unresolvable, but the pointer types are declared
 * noexcept and every implementation carries its own COPRA_HOT root in
 * its TU — the targets are all independently inside the region. */
const std::set<std::string> kKernelSeam = {
    "xorIndices", "maskIndices", "concatIndices", "pcIndices",
};

/** `std::` names whose mention in a hot body is an allocation. */
const std::set<std::string> kStdAlloc = {
    "string", "wstring", "vector", "deque", "list", "map", "set",
    "multimap", "multiset", "unordered_map", "unordered_set",
    "function", "to_string", "make_unique", "make_shared",
    "ostringstream", "istringstream", "stringstream", "basic_string",
};

/** `std::` names whose mention in a hot body is IO. */
const std::set<std::string> kStdIo = {
    "cout", "cerr", "cin", "clog", "endl", "ofstream", "ifstream",
    "fstream", "getline", "printf", "fprintf", "puts", "fopen",
    "filesystem",
};

/** `std::` names whose mention in a hot body is locking/ordering. */
const std::set<std::string> kStdLock = {
    "mutex", "recursive_mutex", "shared_mutex", "timed_mutex",
    "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
    "condition_variable", "condition_variable_any",
    "memory_order_seq_cst", "this_thread", "thread", "barrier", "latch",
    "counting_semaphore", "binary_semaphore",
};

/** Unqualified lock-type identifiers (util/sync.hpp doorway types). */
const std::set<std::string> kLockIdents = {
    "Mutex", "MutexLock", "lock_guard", "unique_lock", "scoped_lock",
    "condition_variable",
};

/** Member calls that may (re)allocate their container. */
const std::set<std::string> kAllocMembers = {
    "push_back", "emplace_back", "emplace", "insert", "resize",
    "reserve", "assign", "append", "shrink_to_fit", "push",
    "emplace_front", "push_front", "try_emplace",
};

/** Member calls that acquire or release a lock. */
const std::set<std::string> kLockMembers = {
    "lock", "unlock", "try_lock", "lock_shared", "unlock_shared",
};

/** Atomic member operations; legal only with explicit relaxed order. */
const std::set<std::string> kAtomicMembers = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong", "wait", "notify_one", "notify_all",
    "test_and_set",
};

/** stdio-family free calls (hot-io at the call site). */
const std::set<std::string> kIoCalls = {
    "printf", "fprintf", "fputs", "fputc", "puts", "putchar", "fwrite",
    "fread", "fopen", "fclose", "fflush", "perror", "snprintf",
    "vsnprintf", "fscanf",
};

/** The [[noreturn]] assertion frontier: a hot path may still die loudly
 * on contract violation — that is not steady-state behaviour. */
const std::set<std::string> kPanicCalls = {
    "panic", "panicIf", "fatal", "fatalIf", "abort", "unreachable",
};

/** The obs one-relaxed-load frontier (audited once, in src/obs). */
const std::set<std::string> kObsFrontier = {
    "count", "gaugeMax", "observe", "ids", "enabled", "enabledRelaxed",
};

/** Index over a CallGraph's functions, plus hierarchy maps. */
struct Resolver
{
    std::map<std::string, std::vector<size_t>> byMethod;
    std::map<std::string, std::vector<size_t>> byFree;
    /** class -> transitive base classes */
    std::map<std::string, std::set<std::string>> ancestors;
    /** class -> classes transitively deriving from it */
    std::map<std::string, std::set<std::string>> descendants;
};

Resolver
buildResolver(const CallGraph &cg, const SemaModel &model)
{
    Resolver r;
    for (size_t i = 0; i < cg.functions.size(); ++i) {
        const CgFunction &f = cg.functions[i];
        if (f.cls.empty())
            r.byFree[f.name].push_back(i);
        else
            r.byMethod[f.name].push_back(i);
    }
    for (const auto &[name, cls] : model.classes) {
        std::set<std::string> anc;
        std::vector<std::string> work(cls.bases.begin(), cls.bases.end());
        while (!work.empty()) {
            std::string b = work.back();
            work.pop_back();
            if (!anc.insert(b).second)
                continue;
            auto it = model.classes.find(b);
            if (it != model.classes.end())
                work.insert(work.end(), it->second.bases.begin(),
                            it->second.bases.end());
        }
        for (const std::string &b : anc)
            r.descendants[b].insert(name);
        r.ancestors.emplace(name, std::move(anc));
    }
    return r;
}

/** One rule violation discovered inside a hot body. */
struct Violation
{
    const Token *tok;
    std::string rule;
    std::string what;
};

/** Does the head range [from, to) contain a `noexcept` token? */
bool
rangeHasNoexcept(const std::vector<Token> &toks, size_t from, size_t to)
{
    for (size_t k = from; k < to && k < toks.size(); ++k)
        if (toks[k].text == "noexcept")
            return true;
    return false;
}

/**
 * Scan one function body: discover resolved callees (into `callees`,
 * when non-null) and discipline violations (into `viols`, when
 * non-null). The two outputs come from the same single classifier so
 * the region BFS and the rule pass can never disagree about an edge.
 */
void
scanBody(const CallGraph &cg, const Resolver &rsv, const SemaModel &model,
         const std::vector<FileScan> &scans, size_t fnIdx,
         std::vector<size_t> *callees, std::vector<Violation> *viols)
{
    const CgFunction &fn = cg.functions[fnIdx];
    const auto &toks = scans[fn.scanIndex].tokens;
    size_t begin = fn.beginTok + 1;
    size_t end = fn.endTok;

    auto viol = [&](size_t at, const char *rule, const std::string &what) {
        if (viols)
            viols->push_back({&toks[at], rule, what});
    };
    auto edges = [&](const std::vector<size_t> &targets) {
        if (!callees)
            return;
        callees->insert(callees->end(), targets.begin(), targets.end());
    };

    // Pre-pass: names bound to lambdas in this body are benign calls —
    // their bodies sit inside this token range and are scanned as part
    // of it, so the call itself adds nothing. `auto name` catches
    // generic-lambda parameters (the callable arrives as an argument,
    // its body still lives in an enclosing hot function).
    std::set<std::string> lambdaNames;
    for (size_t j = begin + 1; j + 1 < end; ++j) {
        if (toks[j].text == "=" && toks[j + 1].text == "[" &&
            isIdentTok(toks[j - 1].text))
            lambdaNames.insert(toks[j - 1].text);
        if (toks[j].text == "auto" && isIdentTok(toks[j + 1].text))
            lambdaNames.insert(toks[j + 1].text);
    }

    for (size_t j = begin; j < end; ++j) {
        const std::string &t = toks[j].text;

        if (t == "throw") {
            viol(j, "hot-throw", "throw in the hot path");
            continue;
        }
        if (t == "new" || t == "delete") {
            if (j > begin && toks[j - 1].text == "operator")
                continue;
            viol(j, "hot-alloc", "'" + t + "' in the hot path");
            continue;
        }
        if (t == "static") {
            if (j + 1 < end && toks[j + 1].text == "constexpr")
                continue;
            viol(j, "hot-lock",
                 "function-local static (guarded initialization) in "
                 "the hot path");
            continue;
        }
        if (inSet(kLockIdents, t)) {
            viol(j, "hot-lock", "lock type '" + t + "' in the hot path");
            continue;
        }
        if (t == "std" && j + 2 < end && toks[j + 1].text == "::") {
            const std::string &m = toks[j + 2].text;
            if (inSet(kStdAlloc, m))
                viol(j + 2, "hot-alloc",
                     "allocating std::" + m + " in the hot path");
            else if (inSet(kStdIo, m))
                viol(j + 2, "hot-io", "std::" + m + " in the hot path");
            else if (inSet(kStdLock, m))
                viol(j + 2, "hot-lock", "std::" + m + " in the hot path");
            j += 2; // everything else under std:: is trusted not to
                    // allocate/lock/throw (min, span, bit ops, ...)
            continue;
        }

        if (!isIdentTok(t) || j + 1 >= end || toks[j + 1].text != "(")
            continue;

        const std::string *prev = j > 0 ? &toks[j - 1].text : nullptr;
        const std::string *prev2 = j > 1 ? &toks[j - 2].text : nullptr;
        bool member = prev &&
            (*prev == "." || (*prev == ">" && prev2 && *prev2 == "-"));
        bool qualified = prev && *prev == "::" && prev2;

        if (member) {
            if (inSet(kBenignCalls, t) || lambdaNames.count(t) ||
                inSet(kKernelSeam, t))
                continue;
            if (inSet(kLockMembers, t)) {
                viol(j, "hot-lock",
                     "lock member call '" + t + "' in the hot path");
                continue;
            }
            if (inSet(kAtomicMembers, t)) {
                size_t close = skipPair(toks, j + 1, "(", ")");
                bool relaxed = false;
                for (size_t k = j + 2; k + 1 < close; ++k)
                    if (toks[k].text == "memory_order_relaxed")
                        relaxed = true;
                if (!relaxed)
                    viol(j, "hot-lock",
                         "atomic '" + t + "' without an explicit "
                         "relaxed memory order in the hot path");
                continue;
            }
            if (inSet(kAllocMembers, t)) {
                // `push` alone prefers a project definition over the
                // std-container reading: the shift-register/ring types
                // all push in place, and their bodies get scanned. The
                // price is that std::queue::push is invisible here —
                // the runtime gate covers that hole. Every other
                // allocating name flags unconditionally.
                auto it = t == "push" ? rsv.byMethod.find(t)
                                      : rsv.byMethod.end();
                if (it != rsv.byMethod.end()) {
                    edges(it->second);
                    continue;
                }
                viol(j, "hot-alloc",
                     "allocating member call '" + t + "' in the hot path");
                continue;
            }
            auto it = rsv.byMethod.find(t);
            if (it == rsv.byMethod.end()) {
                viol(j, "hot-unresolved",
                     "member call '" + t + "' resolves to no known "
                     "method definition");
                continue;
            }
            edges(it->second);
            continue;
        }

        if (qualified) {
            const std::string &q = *prev2;
            if (q == "std")
                continue; // handled by the std:: scan above
            if (q == "obs" && inSet(kObsFrontier, t))
                continue;
            if (inSet(kBenignCalls, t) || inSet(kTypeNames, t))
                continue;
            auto cit = model.classes.find(q);
            if (cit != model.classes.end()) {
                // Explicit Class::method(...) call: the class itself,
                // then its ancestors, provide the body — no virtual
                // dispatch through an explicit qualifier.
                std::vector<size_t> targets;
                auto mit = rsv.byMethod.find(t);
                if (mit != rsv.byMethod.end()) {
                    auto anc = rsv.ancestors.find(q);
                    for (size_t f : mit->second) {
                        const std::string &owner = cg.functions[f].cls;
                        if (owner == q ||
                            (anc != rsv.ancestors.end() &&
                             anc->second.count(owner)))
                            targets.push_back(f);
                    }
                }
                if (targets.empty())
                    viol(j, "hot-unresolved",
                         "no definition of " + q + "::" + t + " found");
                else
                    edges(targets);
                continue;
            }
            // Namespace-qualified free call (kernels::, state::, ...).
            auto fit = rsv.byFree.find(t);
            if (fit == rsv.byFree.end()) {
                viol(j, "hot-unresolved",
                     "qualified call " + q + "::" + t +
                     " resolves to no known definition");
                continue;
            }
            edges(fit->second);
            continue;
        }

        // Unqualified call.
        if (inSet(kKeywords, t) || inSet(kTypeNames, t) ||
            inSet(kBenignCalls, t) || lambdaNames.count(t))
            continue;
        if (inSet(kPanicCalls, t) || isIntrinsicName(t))
            continue;
        if (model.classes.count(t)) {
            // Constructor call `Type(...)`: user-declared constructor
            // bodies (recorded under the class name) join the region;
            // a class with none has member-default initialization
            // only, which this pass treats as benign.
            std::vector<size_t> targets;
            auto mit = rsv.byMethod.find(t);
            if (mit != rsv.byMethod.end())
                for (size_t f : mit->second)
                    if (cg.functions[f].cls == t)
                        targets.push_back(f);
            edges(targets);
            continue;
        }
        if (t == "warn" || t == "inform") {
            viol(j, "hot-io",
                 "'" + t + "' (stderr logging) in the hot path");
            continue;
        }
        if (inSet(kIoCalls, t)) {
            viol(j, "hot-io", "'" + t + "' in the hot path");
            continue;
        }
        // `Type name(args)` declaration, not a call: the preceding
        // token is part of a type spelling. Statement keywords are
        // not type spellings — `return foo(x)` is still a call.
        if (prev &&
            ((isIdentTok(*prev) && !inSet(kKeywords, *prev)) ||
             *prev == ">" || *prev == "&" || *prev == "*"))
            continue;
        if (!fn.cls.empty()) {
            // Resolve through the enclosing class hierarchy: the class
            // itself, its bases (inherited helpers), and — because the
            // call may dispatch virtually — every derived overrider.
            std::vector<size_t> targets;
            auto mit = rsv.byMethod.find(t);
            if (mit != rsv.byMethod.end()) {
                auto anc = rsv.ancestors.find(fn.cls);
                auto dsc = rsv.descendants.find(fn.cls);
                for (size_t f : mit->second) {
                    const std::string &owner = cg.functions[f].cls;
                    if (owner == fn.cls ||
                        (anc != rsv.ancestors.end() &&
                         anc->second.count(owner)) ||
                        (dsc != rsv.descendants.end() &&
                         dsc->second.count(owner)))
                        targets.push_back(f);
                }
            }
            if (!targets.empty()) {
                edges(targets);
                continue;
            }
        }
        auto fit = rsv.byFree.find(t);
        if (fit != rsv.byFree.end()) {
            edges(fit->second);
            continue;
        }
        viol(j, "hot-unresolved",
             "call '" + t + "' resolves to no known definition "
             "(declare it, qualify it, or allow(hot-unresolved) with "
             "the reason it is safe)");
    }
}

/**
 * Collect namespace-scope free-function definitions from one scan.
 * A statement walker that descends into namespace braces, skips class
 * and enum bodies (the sema model owns those), skips initializers, and
 * records every `name(...) ... { ... }` head whose name is not
 * class-qualified.
 */
void
collectFreeFunctions(const FileScan &scan, size_t scanIndex,
                     std::vector<CgFunction> &out)
{
    const auto &toks = scan.tokens;

    // Explicit stack of namespace-body end indices; everything else is
    // skipped wholesale, so the walker only ever stands at namespace
    // scope.
    struct Frame
    {
        size_t end;
    };
    std::vector<Frame> frames{{toks.size()}};
    size_t stmt = 0;
    size_t j = 0;
    while (j < toks.size()) {
        while (frames.size() > 1 && j >= frames.back().end)
            frames.pop_back(); // the `}` itself advances via the branch below
        const std::string &t = toks[j].text;
        if (t == "(") {
            j = skipPair(toks, j, "(", ")");
            continue;
        }
        if (t == "=") {
            // Initializer: skip to the statement's `;`, crossing any
            // lambda bodies, call parens, and brace initializers.
            ++j;
            while (j < frames.back().end && toks[j].text != ";") {
                if (toks[j].text == "{")
                    j = skipBraces(toks, j);
                else if (toks[j].text == "(")
                    j = skipPair(toks, j, "(", ")");
                else if (toks[j].text == "[")
                    j = skipPair(toks, j, "[", "]");
                else
                    ++j;
            }
            continue;
        }
        if (t == ";") {
            ++j;
            stmt = j;
            continue;
        }
        if (t == "}") {
            ++j;
            stmt = j;
            continue;
        }
        if (t != "{") {
            ++j;
            continue;
        }

        // Classify the statement head [stmt, j).
        bool isNamespace = false, isType = false;
        size_t firstParen = j;
        for (size_t k = stmt; k < j; ++k) {
            const std::string &h = toks[k].text;
            if (h == "namespace")
                isNamespace = true;
            else if (h == "class" || h == "struct" || h == "union" ||
                     h == "enum")
                isType = true;
            else if (h == "(" && firstParen == j)
                firstParen = k;
        }
        if (isNamespace) {
            frames.push_back({skipBraces(toks, j) - 1});
            j = j + 1;
            stmt = j;
            continue;
        }
        size_t past = skipBraces(toks, j);
        if (!isType && firstParen < j) {
            // Function definition: name is the identifier right before
            // the parameter list; `Class::name` heads belong to the
            // sema model's out-of-line pass, not here.
            size_t nameIdx = firstParen;
            bool found = false;
            while (nameIdx > stmt) {
                --nameIdx;
                if (isIdentTok(toks[nameIdx].text)) {
                    found = true;
                    break;
                }
            }
            bool classQualified = found && nameIdx > stmt &&
                toks[nameIdx - 1].text == "::";
            if (found && !classQualified) {
                CgFunction fn;
                fn.cls = "";
                fn.name = toks[nameIdx].text;
                fn.scanIndex = scanIndex;
                fn.headTok = stmt;
                fn.beginTok = j;
                fn.endTok = past - 1;
                fn.line = toks[stmt].line;
                fn.hasNoexcept = rangeHasNoexcept(toks, stmt, j);
                fn.eligible = eligibleRel(scan.rel);
                out.push_back(std::move(fn));
            }
        }
        j = past;
        if (j < toks.size() && toks[j].text == ";")
            ++j;
        stmt = j;
    }
}

/** The model class whose body range encloses token `i` of scan `s`,
 * innermost definition winning; empty when at namespace scope. */
std::string
enclosingClass(const SemaModel &model, size_t s, size_t i)
{
    std::string best;
    size_t bestBegin = 0;
    for (const auto &[name, cls] : model.classes) {
        if (cls.scanIndex != s || cls.bodyBegin > i || i >= cls.bodyEnd)
            continue;
        if (best.empty() || cls.bodyBegin > bestBegin) {
            best = name;
            bestBegin = cls.bodyBegin;
        }
    }
    return best;
}

/** Parse COPRA_HOT annotations out of every scan. */
std::vector<HotMark>
collectMarks(const SemaModel &model, const std::vector<FileScan> &scans)
{
    std::vector<HotMark> marks;
    for (size_t s = 0; s < scans.size(); ++s) {
        const auto &toks = scans[s].tokens;
        for (size_t i = 0; i < toks.size(); ++i) {
            if (toks[i].text != "COPRA_HOT")
                continue;
            // The annotated statement runs to the first `;` or `{` at
            // paren depth 0; the function name is the identifier just
            // before the parameter list.
            size_t termin = toks.size();
            size_t firstParen = toks.size();
            int parens = 0;
            for (size_t k = i + 1; k < toks.size(); ++k) {
                const std::string &t = toks[k].text;
                if (t == "(") {
                    if (parens == 0 && firstParen == toks.size())
                        firstParen = k;
                    ++parens;
                } else if (t == ")") {
                    --parens;
                } else if (parens == 0 && (t == ";" || t == "{")) {
                    termin = k;
                    break;
                }
            }
            if (firstParen >= termin)
                continue; // not a function statement; nothing to root
            size_t nameIdx = firstParen;
            while (nameIdx-- > i)
                if (isIdentTok(toks[nameIdx].text))
                    break;
            if (nameIdx <= i && !isIdentTok(toks[nameIdx].text))
                continue;
            HotMark mark;
            mark.method = toks[nameIdx].text;
            if (nameIdx >= 2 && toks[nameIdx - 1].text == "::" &&
                isIdentTok(toks[nameIdx - 2].text))
                mark.cls = toks[nameIdx - 2].text;
            else
                mark.cls = enclosingClass(model, s, i);
            mark.rel = scans[s].rel;
            mark.line = toks[i].line;
            mark.hasNoexcept = rangeHasNoexcept(toks, i, termin);
            marks.push_back(std::move(mark));
        }
    }
    return marks;
}

} // namespace

CallGraph
buildCallGraph(const SemaModel &model, const std::vector<FileScan> &scans)
{
    CallGraph cg;

    // Function table: method bodies from the class model first (the
    // model's map order keeps this deterministic), then free functions
    // in scan order.
    for (const auto &[name, cls] : model.classes) {
        for (const SemaBody &body : cls.bodies) {
            const auto &toks = scans[body.scanIndex].tokens;
            CgFunction fn;
            fn.cls = name;
            fn.name = body.method;
            fn.scanIndex = body.scanIndex;
            fn.headTok = body.headTok;
            fn.beginTok = body.beginTok;
            fn.endTok = body.endTok;
            fn.line = body.headTok < toks.size()
                ? toks[body.headTok].line
                : 0;
            fn.hasNoexcept =
                rangeHasNoexcept(toks, body.headTok, body.beginTok);
            fn.eligible = eligibleRel(scans[body.scanIndex].rel);
            cg.functions.push_back(std::move(fn));
        }
    }
    for (size_t s = 0; s < scans.size(); ++s)
        collectFreeFunctions(scans[s], s, cg.functions);

    cg.marks = collectMarks(model, scans);
    cg.hot.assign(cg.functions.size(), 0);
    cg.hotVia.assign(cg.functions.size(), "");
    cg.markBound.assign(cg.marks.size(), 0);

    Resolver rsv = buildResolver(cg, model);

    // Roots: a class-method mark fans out to every overriding body in
    // derived classes; a free mark roots every definition of the name.
    std::deque<size_t> work;
    auto enqueue = [&](size_t f, const std::string &via) {
        if (!cg.functions[f].eligible || cg.hot[f])
            return;
        cg.hot[f] = 1;
        cg.hotVia[f] = via;
        work.push_back(f);
    };
    for (size_t m = 0; m < cg.marks.size(); ++m) {
        const HotMark &mark = cg.marks[m];
        if (mark.cls.empty()) {
            auto it = rsv.byFree.find(mark.method);
            if (it == rsv.byFree.end())
                continue;
            for (size_t f : it->second) {
                cg.markBound[m] = 1;
                enqueue(f, cg.functions[f].label());
            }
            continue;
        }
        auto it = rsv.byMethod.find(mark.method);
        if (it == rsv.byMethod.end())
            continue;
        auto dsc = rsv.descendants.find(mark.cls);
        for (size_t f : it->second) {
            const std::string &owner = cg.functions[f].cls;
            if (owner != mark.cls &&
                (dsc == rsv.descendants.end() ||
                 !dsc->second.count(owner)))
                continue;
            cg.markBound[m] = 1;
            enqueue(f, mark.cls + "::" + mark.method +
                           (owner == mark.cls
                                ? ""
                                : " -> " + cg.functions[f].label()));
        }
    }

    // Reachability: breadth-first, deterministic order, each body
    // visited once; the first discovery fixes the provenance chain.
    while (!work.empty()) {
        size_t f = work.front();
        work.pop_front();
        std::vector<size_t> callees;
        scanBody(cg, rsv, model, scans, f, &callees, nullptr);
        for (size_t c : callees) {
            std::string via = cg.hotVia[f];
            // Keep chains readable: after three hops, elide the middle.
            if (std::count(via.begin(), via.end(), '>') >= 3) {
                size_t cut = via.find(" -> ");
                via = via.substr(0, cut) + " -> ...";
            }
            enqueue(c, via + " -> " + cg.functions[c].label());
        }
    }
    return cg;
}

std::vector<Finding>
runCallGraphRules(const CallGraph &cg, const SemaModel &model,
                  const std::vector<FileScan> &scans)
{
    Resolver rsv = buildResolver(cg, model);
    std::vector<Finding> raw;

    // Every COPRA_HOT declaration must spell noexcept and must bind to
    // at least one known function definition.
    for (size_t m = 0; m < cg.marks.size(); ++m) {
        const HotMark &mark = cg.marks[m];
        std::string label = mark.cls.empty()
            ? mark.method
            : mark.cls + "::" + mark.method;
        if (!mark.hasNoexcept)
            raw.push_back({mark.rel, mark.line, "hot-throw",
                           "COPRA_HOT function '" + label +
                               "' is not declared noexcept: the hot "
                               "region is exception-free by contract",
                           1});
        if (!cg.markBound[m])
            raw.push_back({mark.rel, mark.line, "hot-unresolved",
                           "COPRA_HOT on '" + label + "' roots no "
                           "known function definition",
                           1});
    }

    for (size_t f = 0; f < cg.functions.size(); ++f) {
        if (!cg.hot[f])
            continue;
        const CgFunction &fn = cg.functions[f];
        const FileScan &scan = scans[fn.scanIndex];
        std::string via = " [hot via " + cg.hotVia[f] + "]";
        if (!fn.hasNoexcept) {
            const auto &toks = scan.tokens;
            int col = fn.headTok < toks.size() ? toks[fn.headTok].col : 1;
            raw.push_back({scan.rel, fn.line, "hot-throw",
                           "hot function '" + fn.label() +
                               "' is not declared noexcept" + via,
                           col});
        }
        std::vector<Violation> viols;
        scanBody(cg, rsv, model, scans, f, nullptr, &viols);
        for (const Violation &v : viols)
            raw.push_back({scan.rel, v.tok->line, v.rule, v.what + via,
                           v.tok->col});
    }

    // Suppressions come from the file each finding lands in.
    std::map<std::string, const FileScan *> byRel;
    for (const FileScan &scan : scans)
        byRel.emplace(scan.rel, &scan);
    std::vector<Finding> kept;
    std::map<std::string, std::vector<Finding>> grouped;
    for (Finding &f : raw)
        grouped[f.rel].push_back(std::move(f));
    for (auto &[rel, findings] : grouped) {
        auto it = byRel.find(rel);
        if (it == byRel.end()) {
            kept.insert(kept.end(), findings.begin(), findings.end());
            continue;
        }
        std::vector<Finding> surviving =
            applySuppressions(*it->second, std::move(findings));
        kept.insert(kept.end(), surviving.begin(), surviving.end());
    }
    return kept;
}

std::string
renderHotPathDoc(const CallGraph &cg, const SemaModel &model,
                 const std::vector<FileScan> &scans)
{
    std::ostringstream os;
    os << "# Hot-path region\n"
          "\n"
          "Generated by `copra_lint --doc-hot-path`; the\n"
          "`hot_path_doc_drift` ctest gate fails when this file drifts\n"
          "from the COPRA_HOT-rooted call-graph closure. Regenerate\n"
          "with:\n"
          "\n"
          "    build/tools/copra_lint --root . "
          "--doc-hot-path src bench tests tools > docs/HOT_PATH.md\n"
          "\n"
          "Every function below is reachable from a COPRA_HOT root and\n"
          "is therefore subject to the hot-alloc / hot-lock /\n"
          "hot-throw / hot-io rules (DESIGN.md §15) and to the runtime\n"
          "allocation/lock gates (`copra_check --hot-gates`).\n"
          "\n"
          "## Hot roots\n"
          "\n";
    std::set<std::string> rootLines;
    for (const HotMark &mark : cg.marks) {
        std::string label = mark.cls.empty()
            ? mark.method
            : mark.cls + "::" + mark.method;
        rootLines.insert("- `" + label + "` (" + mark.rel + ")\n");
    }
    for (const std::string &line : rootLines)
        os << line;

    // Per-predictor hot methods: every Predictor-derived class under
    // src/predictor/ with at least one hot body, with the methods the
    // region includes for it.
    os << "\n## Hot region per predictor\n"
          "\n"
          "| class | file | hot methods |\n"
          "|---|---|---|\n";
    std::map<std::string, std::set<std::string>> perClass;
    std::map<std::string, std::set<std::string>> shared;
    for (size_t f = 0; f < cg.functions.size(); ++f) {
        if (!cg.hot[f])
            continue;
        const CgFunction &fn = cg.functions[f];
        const std::string &rel = scans[fn.scanIndex].rel;
        if (!fn.cls.empty() &&
            model.classes.count(fn.cls) &&
            model.classes.at(fn.cls).rel.rfind("src/predictor/", 0) ==
                0 &&
            derivesFromPredictor(model, fn.cls))
            perClass[fn.cls].insert(fn.name);
        else
            shared["`" + fn.label() + "`"].insert(rel);
    }
    for (const auto &[cls, methods] : perClass) {
        os << "| " << cls << " | " << model.classes.at(cls).rel << " | ";
        bool first = true;
        for (const std::string &m : methods) {
            os << (first ? "" : ", ") << m;
            first = false;
        }
        os << " |\n";
    }

    os << "\n## Shared hot functions\n"
          "\n"
          "Support code (kernels, counters, record accessors, the\n"
          "driver loop) reached by more than one predictor's path.\n"
          "\n"
          "| function | defined in |\n"
          "|---|---|\n";
    for (const auto &[label, rels] : shared) {
        os << "| " << label << " | ";
        bool first = true;
        for (const std::string &rel : rels) {
            os << (first ? "" : ", ") << rel;
            first = false;
        }
        os << " |\n";
    }
    return os.str();
}

int
displayColumn(const std::string &line, int byteCol)
{
    if (byteCol <= 1)
        return byteCol;
    size_t limit = std::min(line.size(), size_t(byteCol) - 1);
    int col = 1;
    for (size_t i = 0; i < limit; ++i) {
        unsigned char c = static_cast<unsigned char>(line[i]);
        if (c == '\t')
            col += 8 - ((col - 1) % 8); // advance to the next tab stop
        else if ((c & 0xC0) != 0x80)
            ++col; // count code points, not UTF-8 continuation bytes
    }
    if (size_t(byteCol) - 1 > line.size())
        col += int(size_t(byteCol) - 1 - line.size());
    return col;
}

} // namespace copra::lint
