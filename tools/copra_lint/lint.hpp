/**
 * @file
 * copra_lint: the project's determinism-contract static analyzer.
 *
 * A deliberately small token-level scanner (no libclang) that enforces
 * the invariants PR 1 and PR 2 only checked dynamically: no hidden
 * entropy sources in simulation code, no unsanctioned mutable global
 * state, no hash-order-dependent iteration feeding results, and header
 * hygiene. See DESIGN.md §9 for the rule list and suppression policy.
 *
 * The analysis is honest about being lexical: it tokenizes after
 * stripping comments, strings, and preprocessor lines, then pattern
 * matches. That catches every construct this codebase actually uses;
 * the planted corpus under tests/lint_corpus/ pins the behaviour.
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace copra::lint {

/** One lexical token: an identifier, number, or punctuator. */
struct Token
{
    std::string text;
    int line = 0;
    int col = 0; ///< 1-based byte column of the token's first character
};

/** A parsed copra-lint directive or corpus expectation comment. */
struct Annotation
{
    enum class Kind {
        Allow,            ///< the allow(rule) -- reason directive
        SanctionedGlobal, ///< the sanctioned-global(reason) directive
        Expect,           ///< a corpus-file expectation marker
        Malformed,        ///< a directive the parser rejects
    };

    Kind kind = Kind::Malformed;
    std::string rule;   ///< rule name for Allow/Expect
    std::string reason; ///< mandatory justification text
    int line = 0;       ///< line the comment appears on
    std::string error;  ///< parser diagnostic for Malformed
};

/** One #include directive with its location. */
struct Include
{
    std::string target; ///< include spelling, verbatim
    int line = 0;
};

/** Lexed view of one source file, input to every rule. */
struct FileScan
{
    std::string rel; ///< repo-relative path, forward slashes
    std::vector<std::string> lines;
    std::vector<Token> tokens; ///< comments/strings/preproc stripped
    std::vector<Annotation> annotations;
    std::set<std::string> includes; ///< #include targets, verbatim
    std::vector<Include> includeList; ///< same targets, with lines
    bool pragmaOnce = false;        ///< has a #pragma once line
    int guardLine = 0;              ///< line of a legacy ifndef guard, or 0
};

/** One rule violation. */
struct Finding
{
    std::string rel;
    int line = 0;
    std::string rule;
    std::string message;
    int col = 1; ///< 1-based column (1 when the rule is line-granular)

    /** Stable machine identifier, e.g. "copra.mutable-global". */
    std::string ruleId() const { return "copra." + rule; }

    bool operator<(const Finding &o) const
    {
        if (rel != o.rel)
            return rel < o.rel;
        if (line != o.line)
            return line < o.line;
        if (rule != o.rule)
            return rule < o.rule;
        return col < o.col;
    }
};

/** Every rule copra_lint knows, with its one-line contract. */
std::vector<std::pair<std::string, std::string>> ruleCatalog();

/** True iff `rule` is in the catalog. */
bool knownRule(const std::string &rule);

/** Lex `content` as the file at repo-relative path `rel`. */
FileScan scanSource(const std::string &rel, const std::string &content);

/**
 * Unordered-container knowledge harvested from declarations: variable
 * and accessor names whose type involves std::unordered_map/set.
 * Collected from a file's own tokens plus its directly included
 * project headers, so `for (x : ledger.table())` is visible from a
 * .cc that only includes sim/ledger.hpp.
 */
struct UnorderedDecls
{
    std::set<std::string> variables;
    std::set<std::string> accessors;
};

/** Harvest unordered declarations from one scan. */
void collectUnorderedDecls(const FileScan &scan, UnorderedDecls &out);

/**
 * Run every applicable rule over one file. `extra` carries unordered
 * declarations harvested from included headers (may be empty).
 * Suppressed findings are dropped; malformed annotations surface as
 * `annotation` findings.
 */
std::vector<Finding> runRules(const FileScan &scan,
                              const UnorderedDecls &extra);

/**
 * Drop findings covered by an allow()/sanctioned-global annotation in
 * `scan` (own line or the next). `annotation` findings are immune.
 */
std::vector<Finding> applySuppressions(const FileScan &scan,
                                       std::vector<Finding> findings);

// --- State-contract semantic pass (DESIGN.md §14) -------------------

/** One parsed member field of a class definition. */
struct SemaField
{
    std::string name;
    int line = 0;
    int col = 1;
};

/** Which COPRA_*_FIELDS list a member name was declared in. */
enum class FieldList
{
    State,
    Config,
    Transient,
};

/** One name appearing in a COPRA_*_FIELDS declaration. */
struct SemaListEntry
{
    std::string name;
    FieldList list = FieldList::State;
    int line = 0;
    int col = 1;
};

/** One method body bound to a class — in-class or out-of-line. */
struct SemaBody
{
    std::string method;
    size_t scanIndex = 0; ///< index into the scans the model was built from
    size_t beginTok = 0;  ///< token index of the opening `{`
    size_t endTok = 0;    ///< token index of the matching `}`
};

/**
 * Lightweight model of one class definition: name, bases, parsed
 * member fields, declared methods, COPRA_*_FIELDS declarations, and
 * every method body the scanned set binds to it (including bodies
 * defined out of line in other translation units).
 */
struct SemaClass
{
    std::string name;
    std::string rel; ///< file the definition lives in
    int line = 0;
    size_t scanIndex = 0;
    std::vector<std::string> bases; ///< unqualified base-class names
    std::vector<SemaField> fields;
    std::set<std::string> methods;
    std::vector<SemaListEntry> listed;
    bool hasStateFields = false;
    bool hasConfigFields = false;
    bool hasTransientFields = false;
    std::vector<SemaBody> bodies;
};

/** Cross-TU symbol table over one set of scans. */
struct SemaModel
{
    /** Class definitions by name; first definition wins on collision. */
    std::map<std::string, SemaClass> classes;
};

/** Does `cls` (a name in `model`) transitively derive from Predictor? */
bool derivesFromPredictor(const SemaModel &model, const std::string &cls);

/**
 * Build the symbol table: pass 1 collects class definitions (fields,
 * methods, field-list declarations, inline bodies); pass 2 binds
 * out-of-line `Class::method(...) { ... }` bodies from every scan.
 */
SemaModel buildSemaModel(const std::vector<FileScan> &scans);

/**
 * The state-contract audit (rules state-decl, state-coverage,
 * state-mutation) over every Predictor-derived class defined under
 * src/predictor/. Suppressions from the file owning each finding
 * apply; results are unsorted (callers sort the merged set).
 */
std::vector<Finding> runSemaRules(const SemaModel &model,
                                  const std::vector<FileScan> &scans);

// --- Module layering (DESIGN.md §10) --------------------------------

/**
 * Module of a repo-relative path: "util", "trace", "workload",
 * "predictor", "sim", "core", "check" for src/<module>/...; "tools",
 * "bench", "tests", "examples" for the sink trees; "" when the path
 * belongs to no declared module.
 */
std::string moduleOf(const std::string &rel);

/**
 * Module an include spelling points at, resolved lexically:
 * "sim/driver.hpp" -> "sim", "copra_lint/lint.hpp" -> "tools",
 * "" for system headers and other non-module includes.
 */
std::string includeModule(const std::string &target);

/**
 * True when module `from` may depend on module `to` under the declared
 * DAG: util -> trace -> {workload, predictor} -> sim -> core -> check,
 * with tools/bench/tests/examples as sinks that may depend on
 * anything. Self-dependency is always legal; unknown modules are never
 * constrained.
 */
bool moduleAllowed(const std::string &from, const std::string &to);

/**
 * The file-level include graph of one lint run: edges from each
 * scanned file to the scanned files its includes resolve to (system
 * headers and unscanned files do not appear).
 */
struct IncludeGraph
{
    /** Adjacency: rel path -> resolved targets, include order. */
    std::map<std::string, std::vector<Include>> edges;
};

/** Build the include graph over `scans` (targets resolved to rels). */
IncludeGraph buildIncludeGraph(const std::vector<FileScan> &scans);

/**
 * Graph-level rules, run once per tree: `include-cycle` for file-level
 * include cycles, and transitive `layering` ("include-through")
 * findings for files whose include closure reaches a module their own
 * module may not depend on through individually legal edges.
 * Suppressions from the owning file apply; results are sorted.
 */
std::vector<Finding> runGraphRules(const std::vector<FileScan> &scans,
                                   const IncludeGraph &graph);

/** Render the include graph as Graphviz DOT, module-clustered;
 *  DAG-violating edges are drawn red. */
std::string graphToDot(const IncludeGraph &graph);

/** Everything lintTreeFull learned about one tree. */
struct TreeLint
{
    std::vector<Finding> findings;
    IncludeGraph graph;
    /** Missing or unreadable input paths — the caller must treat any
     *  entry as a hard error, not a clean run. */
    std::vector<std::string> errors;
};

/**
 * Lint a source tree rooted at `root`, restricted to `paths`
 * (root-relative directories or files). Resolves project includes so
 * cross-header unordered knowledge is available, builds the include
 * graph, and runs both the per-file and the graph-level rules.
 * Results are sorted.
 */
TreeLint lintTreeFull(const std::string &root,
                      const std::vector<std::string> &paths);

/** lintTreeFull, findings only (kept for existing callers; path
 *  errors surface through lintTreeFull). */
std::vector<Finding> lintTree(const std::string &root,
                              const std::vector<std::string> &paths);

/**
 * Self-test over a planted-violation corpus: every expectation
 * marker must produce exactly one finding of that rule on its line,
 * no unexpected findings may appear, every rule must both fire and be
 * exercised in suppressed form somewhere in the corpus. Returns true
 * on success; mismatch details are appended to `report`.
 */
bool selfTest(const std::string &root, const std::string &corpus,
              std::string &report);

} // namespace copra::lint
